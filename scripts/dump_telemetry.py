#!/usr/bin/env python3
"""Collect post-mortem telemetry into one directory (CI failure triage).

When the chaos or process CI job goes red, this script gathers everything
the telemetry plane knows into ``--out`` (default ``ci-debug/``) for the
``upload-artifact`` step:

1. **Existing flight files** — any ``*.flight.jsonl`` / ``*.flight.ring``
   post-mortems the failed tests left in the service store or a directory
   passed via ``--scan``.
2. **A deterministic chaos reproduction** — one crash-preset run on the
   process substrate with the flight recorder and step streaming enabled;
   its flight post-mortem (``chaos_repro.flight.jsonl``) shows what every
   rank was doing when the injected crash hit, and the last ``--last``
   streamed step records land in ``stream_tail.jsonl``.

Everything is best-effort: a triage helper must never turn a red job into
a hang or mask the original failure, so each stage reports and continues.

Usage::

    PYTHONPATH=src python scripts/dump_telemetry.py --out ci-debug
    python scripts/trace_report.py ci-debug/chaos_repro.flight.jsonl
"""

import argparse
import glob
import json
import os
import queue as _queue
import shutil
import sys


def _copy_existing(out: str, scan_dirs: list[str]) -> list[str]:
    """Copy flight post-mortems the failed run already left behind."""
    copied = []
    for d in scan_dirs:
        for pattern in ("*.flight.jsonl", "*.flight.ring"):
            for path in sorted(glob.glob(os.path.join(d, pattern))):
                try:
                    shutil.copy(path, out)
                except OSError as exc:
                    print(f"  skip {path}: {exc}")
                    continue
                copied.append(path)
    return copied


def _chaos_repro(out: str, steps: int, last: int) -> None:
    """One deterministic crash run with flight + streaming captured."""
    import multiprocessing as mp

    from repro.api import run
    from repro.msglib.virtual import RankFailure
    from repro.obs import QueueStepStream, write_flight_jsonl

    channel = mp.get_context("fork").Queue(4096)
    stream = QueueStepStream(channel)
    flight = None
    outcome = "completed cleanly (crash preset did not fire in window)"
    try:
        res = run(
            "sod",
            steps=steps,
            nprocs=2,
            substrate="process",
            faults="crash-rank1",
            fault_seed=7,
            max_restarts=0,
            flight=True,
            stream=stream,
        )
        flight = res.flight
    except RankFailure as failure:
        outcome = (
            f"RankFailure on rank {failure.rank} "
            f"(last_good_step={getattr(failure, 'last_good_step', '?')})"
        )
        flight = getattr(failure, "flight", None)
    except Exception as exc:  # triage helper: report, never crash
        outcome = f"unexpected {type(exc).__name__}: {exc}"
    print(f"  chaos repro: {outcome}")
    if flight:
        path = os.path.join(out, "chaos_repro.flight.jsonl")
        write_flight_jsonl(flight, path)
        total = sum(len(v) for v in flight.values())
        print(f"  flight post-mortem: {path} "
              f"({len(flight)} rank(s), {total} events)")
    records = []
    while True:
        try:
            records.append(channel.get_nowait())
        except (_queue.Empty, OSError):
            break
    tail = records[-last:]
    path = os.path.join(out, "stream_tail.jsonl")
    with open(path, "w") as fh:
        for rec in tail:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    print(f"  stream tail: {path} (last {len(tail)} of "
          f"{len(records)} records)")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="ci-debug",
                    help="artifact directory (default ci-debug)")
    ap.add_argument("--last", type=int, default=50,
                    help="streamed step records to keep (default 50)")
    ap.add_argument("--steps", type=int, default=60,
                    help="steps of the chaos reproduction run")
    ap.add_argument("--scan", action="append", default=[],
                    help="extra directories to scan for *.flight.* files")
    args = ap.parse_args(argv)

    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    os.makedirs(args.out, exist_ok=True)

    scan = list(args.scan)
    try:
        from repro.config import default_service_dir

        scan.append(str(default_service_dir() / "results"))
    except Exception as exc:
        print(f"service store not resolvable: {exc}")
    print(f"scanning for existing flight files: {scan}")
    copied = _copy_existing(args.out, scan)
    for path in copied:
        print(f"  copied {path}")
    if not copied:
        print("  none found")

    print("running deterministic chaos reproduction (process substrate):")
    _chaos_repro(args.out, args.steps, args.last)

    print(f"telemetry dump complete: {sorted(os.listdir(args.out))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
