"""Reproduction benchmark: Figure 9: Navier-Stokes execution time on all computing platforms."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig09(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig09"),
        "Figure 9: Navier-Stokes execution time on all computing platforms",
    )
