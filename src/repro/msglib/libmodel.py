"""Cost models of the 1995 message-passing libraries (paper Sections 4, 7.3).

The paper's explanation of library overheads (Section 7.2): *"These
overheads arise mainly from the multiple times that data to be communicated
is copied and from the context switching overheads that arise in
transferring a message between the application level and the physical layer
of the network."*  The model therefore charges, per message:

* ``cpu_send_overhead`` / ``cpu_recv_overhead`` — fixed CPU time on the
  sending/receiving processor (context switches, header processing, XDR
  packing).  This is *busy* time in the paper's execution-time split — it
  is why the SP's MPL/PVMe comparison (Figures 11-12) shows the library
  difference inside the "processor busy time" curves.
* ``per_byte_cpu`` — memory-copy time per byte on each side
  (``n_copies / copy_bandwidth``).
* ``wire_startup`` — latency before the first byte reaches the network
  (daemon hop for PVM, protocol handshake), charged to non-overlapped
  communication time.

Values are first-order magnitudes for the era's hardware, tuned only so the
paper's *qualitative* library comparisons hold (PVM on LACE adequate; MPL
~75%/40% faster than PVMe on the SP for NS/Euler; Cray PVM on the T3D with
"a relatively small setup cost").
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LibraryModel:
    """Per-message cost model of one message-passing library."""

    name: str
    cpu_send_overhead: float
    """Fixed sender CPU seconds per message (busy time)."""
    cpu_recv_overhead: float
    """Fixed receiver CPU seconds per message (busy time)."""
    wire_startup: float
    """Latency seconds before the wire transfer begins (non-overlapped)."""
    per_byte_cpu: float
    """CPU copy seconds per byte, charged on each side (busy time)."""
    blocking_send: bool = False
    """Rendezvous sends: the sender stalls until the receive is posted
    (the paper was 'forced to use either blocking send or a constrained
    form of non-blocking send' with its MPL version)."""
    scale_with_cpu: bool = False
    """The library overhead is *software* running on the node CPU: when
    true, the simulated machine rescales all times by the node's speed
    relative to the RS6000/560 the values are referenced to.  (PVM's
    daemon-and-copy path is CPU-bound; the MPL/PVMe values are as measured
    on the SP nodes themselves and the Cray PVM values on the T3D, so those
    stay absolute.)"""

    def send_cpu_time(self, nbytes: int) -> float:
        """Sender busy time for one message."""
        return self.cpu_send_overhead + self.per_byte_cpu * nbytes

    def recv_cpu_time(self, nbytes: int) -> float:
        """Receiver busy time for one message."""
        return self.cpu_recv_overhead + self.per_byte_cpu * nbytes

    def scaled(self, factor: float) -> "LibraryModel":
        """A copy with all software times multiplied by ``factor``."""
        if factor == 1.0:
            return self
        return replace(
            self,
            cpu_send_overhead=self.cpu_send_overhead * factor,
            cpu_recv_overhead=self.cpu_recv_overhead * factor,
            wire_startup=self.wire_startup * factor,
            per_byte_cpu=self.per_byte_cpu * factor,
        )


# -- The libraries of the paper ------------------------------------------------

PVM = LibraryModel(
    # Off-the-shelf PVM 3.2.2 on the LACE cluster: daemon-routed messages,
    # XDR encoding, UDP transport — multi-millisecond software latency per
    # message on a 1995 workstation.  The magnitude is set so that on 16
    # ALLNODE-S processors the non-overlapped communication time is
    # comparable to the busy time for Navier-Stokes (paper Section 7.1) —
    # this same constant produces the speedup flattening beyond ~12
    # processors and the T3D/ALLNODE-S crossover near 8.
    name="PVM",
    # Predominantly CPU-side: the paper's Version-6 result (overlapping
    # communication with computation gains nothing) implies the
    # per-message cost sits in unhideable send/receive software, not in
    # hideable wire latency.
    cpu_send_overhead=2.5e-3,
    cpu_recv_overhead=2.5e-3,
    wire_startup=2.5e-3,
    per_byte_cpu=25e-9,  # two memory copies at ~80 MB/s
    scale_with_cpu=True,  # referenced to the RS6000/560
)

PVME = LibraryModel(
    # PVMe, IBM's customized PVM for the SP.  The paper measures it
    # consistently slower than MPL (~75% for NS, ~40% for Euler), with the
    # difference sitting in processor busy time: heavy per-message software
    # cost dominated by extra copies and context switches.
    name="PVMe",
    cpu_send_overhead=6.0e-3,
    cpu_recv_overhead=6.0e-3,
    wire_startup=0.6e-3,
    per_byte_cpu=90e-9,
)

MPL = LibraryModel(
    # IBM's native MPL on the SP switch; efficient user-space path, but the
    # available version forced blocking (or constrained non-blocking) sends.
    name="MPL",
    cpu_send_overhead=0.55e-3,
    cpu_recv_overhead=0.55e-3,
    wire_startup=0.15e-3,
    per_byte_cpu=18e-9,
    blocking_send=True,
)

CRAY_PVM = LibraryModel(
    # Cray's customized PVM for the T3D: thin shim over the torus hardware,
    # "a relatively small setup cost" (paper Section 7.2).
    name="CrayPVM",
    cpu_send_overhead=60e-6,
    cpu_recv_overhead=60e-6,
    wire_startup=25e-6,
    per_byte_cpu=4e-9,
)

_REGISTRY = {m.name.lower(): m for m in (PVM, PVME, MPL, CRAY_PVM)}


def library_by_name(name: str) -> LibraryModel:
    """Look up a library model by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown library {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
