"""The paper's code-version registry (Sections 5-6).

Versions 1-5 are *single-processor* optimizations; they change the
instruction/memory mix (and hence the cost model's predicted MFLOPS) but
never the arithmetic results.  Versions 6-7 are *communication* variants of
the parallel code built on Version 5:

=====  ==========================================================
V1     Original code: exponentiation calls, 5.5e9 divisions,
       non-stride-1 array sweeps, many COMMON blocks.
V2     Strength reduction — exponentiations replaced by
       multiplications.
V3     Loop interchange — arrays accessed stride-1 wherever
       possible ("Improved cache performance was the key", ~50%
       faster than V2).
V4     Divisions replaced by multiplications where feasible
       (5.5e9 -> 2.0e9 divisions).
V5     Multiple COMMON blocks collapsed into one — better register
       usage.  The production version: all experiments use it.
V6     V5 + overlapped communication/computation: interior fluxes
       computed while waiting for neighbour velocity/temperature
       vectors; extra loop setup and slightly degraded temporal
       locality offset the gain (paper Section 6/7.1).
V7     V5 with flux columns sent one at a time to reduce bursty
       communication (more startups, same volume).
=====  ==========================================================

The op-mix numbers below are per *nominal* floating-point operation of the
application (the paper's Table-1 FLOP counts), so the cost model can map a
version straight to sustained MFLOPS on any CPU model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Version:
    """One code version: instruction/memory mix plus message grouping."""

    number: int
    name: str
    description: str
    # -- instruction mix per nominal flop -------------------------------------
    divisions_per_flop: float
    """Floating divisions per nominal flop (paper: 5.5e9 of 145e9 before
    the rewrite, 2.0e9 after)."""
    pow_calls_per_flop: float
    """Library exponentiation calls per nominal flop (removed by V2)."""
    mem_refs_per_flop: float
    """Array references per nominal flop reaching the load/store units."""
    stride1_fraction: float
    """Fraction of array sweeps that run stride-1 (loop interchange)."""
    loop_overhead_factor: float = 1.0
    """Multiplier on integer/loop overhead (V6 splits loops: > 1)."""
    cache_degradation: float = 1.0
    """Multiplier on the cache miss rate (V6 loses temporal locality)."""
    # -- communication grouping -------------------------------------------------
    overlap_communication: bool = False
    """V6: post sends early and compute interior while waiting."""
    split_flux_columns: bool = False
    """V7: one column per flux message instead of a grouped pair."""


_BASE = dict(
    divisions_per_flop=5.5e9 / 145e9,  # paper Section 6
    pow_calls_per_flop=0.004,
    mem_refs_per_flop=1.45,
    stride1_fraction=0.45,
)

V1 = Version(
    number=1,
    name="V1",
    description="original code",
    **_BASE,
)
V2 = replace(
    V1,
    number=2,
    name="V2",
    description="strength reduction: exponentiation -> multiplication",
    pow_calls_per_flop=0.0,
)
V3 = replace(
    V2,
    number=3,
    name="V3",
    description="loop interchange: stride-1 array access",
    stride1_fraction=0.95,
)
V4 = replace(
    V3,
    number=4,
    name="V4",
    description="division -> multiplication (5.5e9 -> 2.0e9 divisions)",
    divisions_per_flop=2.0e9 / 145e9,
)
V5 = replace(
    V4,
    number=5,
    name="V5",
    description="COMMON blocks collapsed: better register usage",
    mem_refs_per_flop=1.30,
)
V6 = replace(
    V5,
    number=6,
    name="V6",
    description="V5 + overlapped communication and computation",
    loop_overhead_factor=1.04,
    cache_degradation=1.03,
    overlap_communication=True,
)
V7 = replace(
    V5,
    number=7,
    name="V7",
    description="V5 with flux columns sent one at a time (anti-bursty)",
    split_flux_columns=True,
)

VERSIONS: dict[int, Version] = {v.number: v for v in (V1, V2, V3, V4, V5, V6, V7)}


def version_by_number(n: int) -> Version:
    """Look up a version; raises ``KeyError`` with the known set."""
    try:
        return VERSIONS[n]
    except KeyError:
        raise KeyError(f"unknown version {n}; known: {sorted(VERSIONS)}") from None
