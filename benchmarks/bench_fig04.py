"""Reproduction benchmark: Figure 4: Euler execution time on LACE."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig04(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig04"),
        "Figure 4: Euler execution time on LACE",
    )
