"""Pluggable kernel backends for the solver hot path.

The registry maps names to :class:`~.base.KernelBackend` instances:

* ``"baseline"`` — the original allocating numpy kernels (paper Version 1);
* ``"fused"`` — in-place kernels over a preallocated
  :class:`~.base.StepWorkspace`, bitwise-identical to the baseline (paper
  Versions 2-4 transplanted to numpy);
* ``"compiled"`` — the fused kernels JIT-compiled to native loops (Numba
  ``njit`` or a gcc/ctypes C build; paper "V6"), bitwise-identical again,
  with a clean :class:`~.compiled.BackendUnavailable` fallback to the
  fused kernels on hosts with no toolchain.

Selection order: an explicit ``SolverConfig(backend=...)`` /
``repro.api.run(..., backend=...)`` argument wins; otherwise the
``REPRO_BACKEND`` environment variable; otherwise ``"baseline"``.
Third-party backends can be added with :func:`register_backend`.
"""

from __future__ import annotations

import os

from .base import KernelBackend, StepWorkspace
from .baseline import BaselineBackend
from .compiled import BackendUnavailable, CompiledBackend, CompiledWorkspace
from .fused import FusedBackend, fused_axial_flux, fused_radial_flux

__all__ = [
    "KernelBackend",
    "StepWorkspace",
    "BaselineBackend",
    "FusedBackend",
    "CompiledBackend",
    "CompiledWorkspace",
    "BackendUnavailable",
    "fused_axial_flux",
    "fused_radial_flux",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "available_backends",
]

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(name: str, backend: KernelBackend) -> None:
    """Register ``backend`` under ``name`` (replacing any previous entry)."""
    if not isinstance(backend, KernelBackend):
        raise TypeError(
            f"backend must be a KernelBackend instance, got {type(backend).__name__}"
        )
    _REGISTRY[name] = backend


def get_backend(name: str) -> KernelBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve an explicit name, the ``REPRO_BACKEND`` variable, or the default."""
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "baseline"
    return get_backend(name)


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


register_backend("baseline", BaselineBackend())
register_backend("fused", FusedBackend())
# Registration is unconditional; engine resolution (numba, then a C
# toolchain) is lazy and per-host, and an unavailable engine falls back
# to the fused workspace with a warning at solver construction.
register_backend("compiled", CompiledBackend())
