# Convenience targets; everything assumes the in-tree layout (src/).
PY ?= python
export PYTHONPATH := src

.PHONY: check test test-all trace-smoke bench perf-gate bless-baseline speedup

## check: fast test suite + trace-determinism smoke (the pre-commit gate)
check: trace-smoke
	$(PY) -m pytest -q -m "not slow"

## test: full test suite (includes slow tests)
test:
	$(PY) -m pytest -x -q

test-all: test

## trace-smoke: two identical simulated runs must export identical bytes
trace-smoke:
	$(PY) scripts/trace_report.py --selftest

## bench: run the pinned core benchmark matrix + multi-core speedup curve
## (writes BENCH_core.json and appends PerfReport lines to
## benchmarks/output/BENCH_runs.jsonl)
bench:
	$(PY) benchmarks/bench_core.py

## speedup: just the multi-core speedup curve (serial vs 2/4 OS-process
## ranks on the paper's 250x100 grid), printed to stdout
speedup:
	$(PY) -c "import benchmarks.bench_core as b; b.run_speedup()"

## perf-gate: compare fresh bench results against the committed baseline
perf-gate:
	$(PY) scripts/perf_gate.py

## bless-baseline: accept the current bench results as the new baseline
bless-baseline:
	$(PY) scripts/perf_gate.py --update-baseline
