"""High-level facade: run the decomposed jet solver over a virtual cluster.

:class:`ParallelJetSolver` takes the same inputs as the serial solver plus a
processor count and a paper code version, executes the SPMD program for real
(one thread per rank, actual message passing), and returns the gathered
global state together with per-rank communication statistics — the measured
source for the paper's Table 1.

With ``faults=`` (a :class:`~repro.faults.FaultPlan` or preset name) every
rank's communicator is wrapped in a
:class:`~repro.faults.FaultyComm`, injecting the plan's seeded faults and
recovering the recoverable ones; ``checkpoint_every=`` additionally gathers
periodic snapshots so a :class:`~repro.msglib.virtual.RankFailure` (e.g. an
injected crash) restarts from the last checkpoint instead of aborting —
up to ``max_restarts`` times, after which the structured failure (annotated
with ``last_good_step``) propagates to the caller.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..grid import Grid
from ..msglib.api import CommStats
from ..msglib.virtual import RankFailure, VirtualCluster
from ..numerics.solver import SolverConfig
from ..obs import Trace, Tracer, get_flight, get_tracer, use_tracer
from ..physics.state import FlowState
from .checkpoint import CheckpointStore, Snapshot
from .spmd import DistributedSolver


def interior_stats(per_rank_stats: list[CommStats]) -> CommStats:
    """Stats of a middle rank — the paper's 'per processor' numbers.

    Interior ranks have two neighbours; edge ranks communicate less.  With
    fewer than three ranks *every* rank is an edge rank and the paper's
    per-processor figure is ill-defined, so this raises instead of silently
    returning an edge rank's (understated) numbers.
    """
    n = len(per_rank_stats)
    if n < 3:
        raise ValueError(
            f"no interior rank exists for nprocs={n}: with fewer than 3 "
            "ranks every rank touches a physical boundary and communicates "
            "with at most one neighbour, so the paper's per-processor "
            "(two-neighbour) numbers are ill-defined.  Inspect "
            "per_rank_stats directly or run with nprocs >= 3."
        )
    return per_rank_stats[n // 2]


@dataclass
class ParallelRunResult:
    """Outcome of a distributed run."""

    state: FlowState
    """Gathered global state after the run."""
    per_rank_stats: list[CommStats]
    """Communication statistics of each rank."""
    nsteps: int
    t: float
    """Final simulation time."""
    per_rank_wall: list[float] = field(default_factory=list)
    """Wall seconds each rank spent inside ``solver.step``."""
    trace: Trace | None = None
    """Span/counter records when the run was traced (else ``None``)."""
    restarts: int = 0
    """Checkpoint restarts the run needed to complete (0 = clean run)."""
    fault_stats: list | None = None
    """Per-rank :class:`~repro.faults.FaultStats` when faults were active
    (from the final, successful attempt), else ``None``."""

    @property
    def interior_rank_stats(self) -> CommStats:
        """Stats of a middle rank (see :func:`interior_stats`; raises
        ``ValueError`` for ``nprocs < 3`` where no interior rank exists)."""
        return interior_stats(self.per_rank_stats)


class ParallelJetSolver:
    """Distributed counterpart of the serial solvers.

    Parameters
    ----------
    state:
        Initial global :class:`~repro.physics.state.FlowState`.
    config:
        Solver configuration (identical to the serial one).
    nranks:
        Number of processors (axial blocks).
    version:
        Paper code version: 5 (grouped messages), 6 (overlapped), or
        7 (flux columns one at a time).
    decomposition:
        ``"axial"`` (the paper's choice), ``"radial"`` (its Section-8
        future-work variant), or ``"2d"`` (a Cartesian ``px x pr`` grid of
        blocks; pass ``px``/``pr`` with ``px * pr == nranks``).
    timeout:
        Per-receive deadlock timeout in seconds.
    substrate:
        ``"virtual"`` (default — one thread per rank, GIL-serialized, the
        correctness substrate) or ``"process"`` (one OS process per rank
        over shared memory — real multi-core execution; see
        :mod:`repro.msglib.process`).  Results are bitwise-identical
        across substrates.
    faults:
        ``None`` (default), a preset name (``"lossy-ethernet"``, ...), or a
        :class:`~repro.faults.FaultPlan`: wraps every rank's communicator
        in a fault-injecting, self-healing :class:`~repro.faults.FaultyComm`.
    checkpoint_every:
        Steps between gathered snapshots (0 disables checkpointing).  For
        bitwise-exact resume keep it a multiple of
        ``config.dt_recompute_every`` (or fix ``dt``).
    max_restarts:
        Checkpoint restarts allowed after a
        :class:`~repro.msglib.virtual.RankFailure` before it propagates.
    overlap:
        ``True`` forces the overlapped (split-phase) halo exchange,
        ``False`` forces blocking, ``None`` follows the version (6
        overlaps).  Bitwise-identical results either way.
    """

    def __init__(
        self,
        state: FlowState,
        config: SolverConfig | None = None,
        nranks: int = 2,
        version: int = 5,
        decomposition: str = "axial",
        px: int | None = None,
        pr: int | None = None,
        timeout: float = 120.0,
        substrate: str = "virtual",
        faults=None,
        checkpoint_every: int = 0,
        max_restarts: int = 2,
        overlap: bool | None = None,
    ) -> None:
        from ..faults import resolve_fault_plan
        if substrate not in ("virtual", "process"):
            raise ValueError(
                f"substrate must be 'virtual' or 'process', got {substrate!r}"
            )
        if decomposition not in ("axial", "radial", "2d"):
            raise ValueError(
                f"decomposition must be 'axial', 'radial' or '2d', got "
                f"{decomposition!r}"
            )
        if decomposition == "2d":
            if px is None or pr is None or px * pr != nranks:
                raise ValueError(
                    "2d decomposition needs px and pr with px * pr == nranks"
                )
        self.global_grid: Grid = state.grid
        self.q0 = state.q.copy()
        self.config = config or SolverConfig()
        self.nranks = nranks
        self.version = version
        self.decomposition = decomposition
        self.px, self.pr = px, pr
        self.timeout = timeout
        self.substrate = substrate
        self.faults = resolve_fault_plan(faults)
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self.overlap = overlap

    def _make_solver(self, comm, q_global: np.ndarray):
        """Build the per-rank solver from a (possibly restored) global q."""
        grid = self.global_grid
        config = self.config
        version = self.version
        overlap = self.overlap
        if self.decomposition == "radial":
            from .spmd_radial import RadialDistributedSolver

            return RadialDistributedSolver(
                comm, grid, q_global, config, version=version, overlap=overlap
            )
        if self.decomposition == "2d":
            from .spmd2d import Distributed2DSolver

            return Distributed2DSolver(
                comm, grid, q_global, config,
                px=self.px, pr=self.pr, version=version, overlap=overlap,
            )
        return DistributedSolver(
            comm, grid, q_global, config, version=version, overlap=overlap
        )

    def _attempt(
        self,
        steps: int,
        start: Snapshot,
        salt: int,
        store: CheckpointStore | None,
    ) -> list:
        """One cluster execution from snapshot ``start`` (may raise
        :class:`~repro.msglib.virtual.RankFailure`)."""
        from contextlib import nullcontext

        from ..faults import FaultyComm

        plan = self.faults
        checkpoint_every = self.checkpoint_every
        if self.substrate == "process":
            from ..msglib.process import ProcessCluster

            cluster = ProcessCluster(self.nranks, timeout=self.timeout)
            scope = cluster
            if store is not None:
                # The store stays in the parent so snapshots survive any
                # worker's crash; workers ship them through the cluster.
                cluster.snapshot_sink = store.save
            save = cluster.submit_snapshot if store is not None else None
        else:
            cluster = VirtualCluster(self.nranks, timeout=self.timeout)
            scope = nullcontext()
            save = store.save if store is not None else None

        def program(comm):
            fcomm = (
                FaultyComm(comm, plan, salt=salt)
                if plan is not None and plan.enabled
                else comm
            )
            try:
                solver = self._make_solver(fcomm, start.q)
                if start.step:
                    solver.restore(start.step, start.t)
                for _ in range(steps - start.step):
                    solver.step()
                    if (
                        checkpoint_every
                        and solver.nstep % checkpoint_every == 0
                        and solver.nstep < steps
                    ):
                        snap = solver.checkpoint()
                        if snap is not None and save is not None:
                            save(*snap)
                        fl = get_flight()
                        if fl.enabled:
                            fl.record(
                                "checkpoint", rank=comm.rank,
                                step=solver.nstep,
                            )
                gathered = solver.gather_state()
                return (
                    gathered,
                    solver.t,
                    solver.nstep,
                    solver.wall_time,
                    fcomm.fault_stats if fcomm is not comm else None,
                )
            finally:
                if fcomm is not comm:
                    fcomm.drain()

        with scope:
            results = cluster.run(program)
            self._last_stats = (
                list(cluster.last_stats)
                if self.substrate == "process"
                else [c.stats for c in cluster.comms]
            )
        return results

    def run(self, steps: int, tracer: Tracer | None = None) -> ParallelRunResult:
        """Execute ``steps`` time steps across all ranks and gather.

        ``tracer`` optionally records per-rank spans (solver stages, sends,
        receives, halo exchanges) for the duration of the run; it is
        installed as the process-global tracer while the cluster executes.

        With a fault plan active a :class:`~repro.msglib.virtual.RankFailure`
        triggers a restart from the newest checkpoint (fresh cluster,
        ``salt`` = attempt number) up to ``max_restarts`` times; the failure
        propagates — annotated with ``last_good_step`` — once restarts are
        exhausted or no faults were requested.
        """
        store = CheckpointStore(keep=2) if self.checkpoint_every else None
        start = Snapshot(step=0, t=0.0, q=self.q0)
        attempt = 0

        def attempts():
            nonlocal attempt, start
            while True:
                try:
                    return self._attempt(steps, start, attempt, store)
                except RankFailure as failure:
                    latest = store.latest if store is not None else None
                    failure.last_good_step = (
                        latest.step if latest is not None else 0
                    )
                    # Post-mortem: the last recorded events of every rank.
                    # Process clusters attach their ring contents before
                    # raising; virtual ranks share the parent's recorder.
                    fl = get_flight()
                    if not hasattr(failure, "flight") and fl.enabled and (
                        hasattr(fl, "events_by_rank")
                    ):
                        failure.flight = fl.events_by_rank()
                    if self.faults is None or attempt >= self.max_restarts:
                        raise
                    attempt += 1
                    tr = get_tracer()
                    if tr.enabled:
                        tr.instant(
                            "recovery.restart",
                            cat="fault",
                            attempt=attempt,
                            failed_rank=failure.rank,
                            resume_step=failure.last_good_step,
                        )
                    if latest is not None:
                        start = latest

        if tracer is not None:
            with use_tracer(tracer):
                results = attempts()
        else:
            results = attempts()
        state, t, nsteps, _, _ = results[0]
        fault_stats = [r[4] for r in results]
        return ParallelRunResult(
            state=state,
            per_rank_stats=self._last_stats,
            nsteps=nsteps,
            t=t,
            per_rank_wall=[r[3] for r in results],
            trace=tracer.trace if tracer is not None else None,
            restarts=attempt,
            fault_stats=fault_stats if any(
                s is not None for s in fault_stats
            ) else None,
        )


def serial_reference(
    state: FlowState, config: SolverConfig, steps: int
) -> FlowState:
    """Serial run from a copy of ``state``, for equivalence checks.

    This is the low-level helper behind the serial route of
    :func:`repro.api.run` (which is the preferred entry point)."""
    from ..numerics.solver import CompressibleSolver

    solver = CompressibleSolver(
        FlowState(state.grid, state.q.copy(), config.gamma), config
    )
    for _ in range(steps):
        solver.step()
    return solver.state


def run_serial_reference(
    state: FlowState, config: SolverConfig, steps: int
) -> FlowState:
    """Deprecated alias of :func:`serial_reference`.

    .. deprecated:: 1.1
       Use ``repro.api.run(scenario, steps=...)`` (or
       :func:`serial_reference` for raw state/config inputs).
    """
    warnings.warn(
        "run_serial_reference is deprecated; use repro.api.run(scenario, "
        "steps=...) or repro.parallel.runner.serial_reference",
        DeprecationWarning,
        stacklevel=2,
    )
    return serial_reference(state, config, steps)
