"""Experiment requests: paper-artifact regeneration as service jobs.

The figure/table artifacts under ``benchmarks/output/*.txt`` are rendered
text from :mod:`repro.experiments` — deterministic, so they are perfect
cache material.  :class:`ExperimentRequest` wraps one experiment id (plus
keyword overrides, e.g. ``fig01``'s reduced grid) as a submittable,
fingerprintable request, letting ``scripts/run_missing.py`` regenerate
exactly the missing/stale artifacts through the service worker pool.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..obs.report import config_fingerprint

__all__ = ["EXPERIMENT_SCHEMA", "ExperimentRequest"]

#: Experiment-request wire tag (also how the service tells request kinds
#: apart on the queue).
EXPERIMENT_SCHEMA = "repro.experiment-request/1"


@dataclass(frozen=True)
class ExperimentRequest:
    """One paper table/figure regeneration (``table1``, ``fig01``..)."""

    id: str
    kw: Mapping[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        return config_fingerprint(
            schema=EXPERIMENT_SCHEMA,
            id=self.id,
            kw=dict(sorted(dict(self.kw).items())),
        )

    def execute(self) -> str:
        """Render the experiment text (runs the underlying pipeline)."""
        from ..experiments import run_experiment

        return run_experiment(self.id, **dict(self.kw))

    def report_for(self, text: str) -> dict:
        """The small store manifest for a rendered artifact."""
        return {
            "kind": "experiment",
            "id": self.id,
            "kw": dict(self.kw),
            "chars": len(text),
            "sha256": hashlib.sha256(text.encode()).hexdigest(),
        }

    def to_dict(self) -> dict:
        return {
            "schema": EXPERIMENT_SCHEMA,
            "id": self.id,
            "kw": dict(self.kw),
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "ExperimentRequest":
        schema = d.get("schema", EXPERIMENT_SCHEMA)
        if schema != EXPERIMENT_SCHEMA:
            raise ValueError(
                f"unknown experiment-request schema {schema!r} "
                f"(expected {EXPERIMENT_SCHEMA!r})"
            )
        return cls(id=d["id"], kw=dict(d.get("kw") or {}))
