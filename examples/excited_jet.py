#!/usr/bin/env python3
"""Figure 1 reproduction: axial momentum of the excited axisymmetric jet.

By default runs at half the paper's resolution for a quick look; with
``--full`` it runs the paper's exact configuration (250x100 grid, 16,000
time steps) — a few minutes of vectorized numpy.

The inflow can be excited with the analytic shear-layer eigenmode (the
default substitution) or with eigenfunctions computed by the discrete
linear-stability solver (``--stability-mode``), which solves the temporal
eigenproblem of the axisymmetric linearized compressible Euler equations
about the jet base flow.

Usage::

    python examples/excited_jet.py [--full] [--stability-mode]
                                   [--save jet_field.npz]
"""

import argparse

from repro.experiments.runners import run_fig01


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--full", action="store_true",
                    help="paper configuration: 250x100 grid, 16000 steps")
    ap.add_argument("--nx", type=int, default=125)
    ap.add_argument("--nr", type=int, default=50)
    ap.add_argument("--steps", type=int, default=2000)
    ap.add_argument("--save", type=str, default=None,
                    help="save the field to this .npz file")
    ap.add_argument("--stability-mode", action="store_true",
                    help="use the linear-stability eigensolver for the "
                         "inflow eigenfunctions")
    args = ap.parse_args()

    if args.stability_mode:
        # Demonstrate the eigensolver before the run.
        from repro.physics.jet import JetProfile
        from repro.physics.linearized import solve_temporal_mode

        mode = solve_temporal_mode(JetProfile())
        print(
            f"Stability eigenmode: omega = {mode.omega:.4f} "
            f"(growth rate {mode.growth_rate:.4f}, "
            f"phase speed {mode.phase_speed:.3f})"
        )

    print(run_fig01(nx=args.nx, nr=args.nr, steps=args.steps,
                    full=args.full, save_npz=args.save))
    if args.save:
        print(f"\nField saved to {args.save}")


if __name__ == "__main__":
    main()
