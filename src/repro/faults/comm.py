"""``FaultyComm``: fault injection + a reliable transport over any
:class:`~repro.msglib.api.Communicator`.

The decorator has two personalities, selected by the plan:

* **Inert** (``plan`` is ``None`` or has nothing enabled): every call
  delegates straight to the wrapped communicator — one attribute load and
  one branch of overhead, bounded by the benchmark suite at <3% of a
  solver step.
* **Active**: sends travel as sequence-numbered frames
  (:mod:`repro.faults.wire`) through an unreliable wire modelled by the
  :class:`~repro.faults.plan.FaultPlan` — attempts may be dropped,
  truncated, duplicated, held back (reordering) or delayed, and failed
  attempts are retransmitted up to ``plan.max_transmits`` times.  Receives
  become idempotent: duplicates are discarded, reordered frames are
  stashed until their turn, corrupt frames are rejected by the length
  check, and a missing message is re-polled with exponential backoff
  before a structured :class:`MessageTimeout` is raised.

Every injected fault and every recovery action is recorded through the
active :mod:`repro.obs` tracer (``cat="fault"`` instants plus per-rank
counters), so ``scripts/trace_report.py`` can print a fault timeline.
"""

from __future__ import annotations

import time as _time
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..msglib.api import Communicator
from ..msglib.vchannel import DeadlockError
from ..obs import get_metrics, get_tracer
from .plan import FaultPlan
from .wire import pack_frame, truncate_frame, unpack_frame


class FaultError(RuntimeError):
    """Base class of the structured failures the fault layer raises."""


class RankCrashed(FaultError):
    """Raised on a rank the plan scheduled to crash (fail-stop model)."""

    def __init__(self, rank: int, step: int | None) -> None:
        self.rank = rank
        self.step = step
        at = f" at step {step}" if step is not None else ""
        super().__init__(f"rank {rank} crashed{at} (injected fault)")

    def __reduce__(self):
        # BaseException's default reduce replays args=(message,) into the
        # multi-argument constructor; rebuild from the structured fields
        # instead so the exception survives a process boundary.
        return (type(self), (self.rank, self.step))


class MessageTimeout(FaultError):
    """A message never arrived despite retries — peer dead or frame lost."""

    def __init__(
        self,
        receiver: int,
        source: int,
        tag: str,
        waited: float,
        retries: int,
        step: int | None = None,
    ) -> None:
        self.receiver = receiver
        self.source = source
        self.tag = tag
        self.waited = waited
        self.retries = retries
        self.step = step
        at = f" (step {step})" if step is not None else ""
        super().__init__(
            f"rank {receiver}: receive from rank {source} tag {tag!r} timed "
            f"out after {waited:.2f}s and {retries} retries{at} — sender "
            "crashed or message lost beyond retransmission"
        )

    def __reduce__(self):
        return (
            type(self),
            (self.receiver, self.source, self.tag, self.waited,
             self.retries, self.step),
        )


@dataclass
class FaultStats:
    """Per-rank counts of injected faults and recovery actions."""

    injected: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    retransmissions: int = 0
    dups_discarded: int = 0
    corrupt_discarded: int = 0
    recv_retries: int = 0
    lost_messages: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def merged_with(self, other: "FaultStats") -> "FaultStats":
        out = FaultStats()
        for src in (self, other):
            for k, v in src.injected.items():
                out.injected[k] += v
            out.retransmissions += src.retransmissions
            out.dups_discarded += src.dups_discarded
            out.corrupt_discarded += src.corrupt_discarded
            out.recv_retries += src.recv_retries
            out.lost_messages += src.lost_messages
        return out


def _step_of(tag: str) -> int | None:
    """Solver step encoded as the tag's leading ``:``-field, if any."""
    head = tag.split(":", 1)[0]
    return int(head) if head.isdigit() else None


class FaultyComm(Communicator):
    """Fault-injecting, self-healing decorator around a communicator.

    Parameters
    ----------
    inner:
        The real endpoint (a :class:`~repro.msglib.virtual.VirtualComm` or
        :class:`~repro.msglib.mpi.MPIComm`).
    plan:
        The :class:`~repro.faults.plan.FaultPlan`; ``None`` or a plan with
        nothing enabled makes this a transparent pass-through.
    salt:
        Restart-attempt number: decorrelates the fault schedule between
        checkpoint/restart attempts and gates crash injection
        (``plan.crash_attempts``).
    """

    def __init__(
        self, inner: Communicator, plan: FaultPlan | None, salt: int = 0
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.salt = salt
        self.rank = inner.rank
        self.size = inner.size
        self.stats = inner.stats
        self.fault_stats = FaultStats()
        self._enabled = plan is not None and plan.enabled
        self._tx: dict[tuple[int, str], int] = defaultdict(int)
        self._rx: dict[tuple[int, str], dict] = {}
        self._held: list[tuple[int, str, np.ndarray]] = []
        self._step: int = 0
        self._crash_step = plan.crash_step(inner.rank) if plan else None
        self._crashed = False
        self._slow = plan.slow_seconds(inner.rank) if plan else 0.0

    # -- bookkeeping ---------------------------------------------------------
    def _note(self, kind: str, **args) -> None:
        self.fault_stats.injected[kind] += 1
        tr = get_tracer()
        if tr.enabled:
            tr.instant(
                f"fault.{kind}", cat="fault", rank=self.rank,
                step=self._step, **args,
            )
            tr.count("faults_injected", 1, rank=self.rank)
        mx = get_metrics()
        if mx.enabled:
            mx.count(f"fault.{kind}", 1.0, rank=self.rank)

    def _recover(self, kind: str) -> None:
        """Count one recovery action in the metrics registry (the tracer
        instants/counters for these are emitted at the call sites, which
        carry the peer/tag context)."""
        mx = get_metrics()
        if mx.enabled:
            mx.count(f"fault.{kind}", 1.0, rank=self.rank)

    def _enter_op(self, tag: str) -> None:
        """Per-call prologue: track the step, slow down, maybe crash, and
        release any frames held back for reordering."""
        step = _step_of(tag)
        if step is not None and step > self._step:
            self._step = step
        if self._slow > 0.0:
            _time.sleep(self._slow)
        if (
            not self._crashed
            and self._crash_step is not None
            and self.plan is not None
            and self.salt < self.plan.crash_attempts
            and self._step >= self._crash_step
        ):
            self._crashed = True
            self._note("crash")
        if self._crashed:
            raise RankCrashed(self.rank, self._step)
        self._flush_held()

    def _flush_held(self) -> None:
        while self._held:
            dest, tag, frame = self._held.pop(0)
            self.inner.send(dest, tag, frame)

    def drain(self) -> None:
        """Release held (reordered) frames — call when the program is done
        issuing sends so no frame stays captive forever."""
        self._flush_held()

    # -- point to point ------------------------------------------------------
    def send(self, dest: int, tag: str, array: np.ndarray) -> None:
        if not self._enabled:
            self.inner.send(dest, tag, array)
            return
        self._enter_op(tag)
        plan = self.plan
        seq = self._tx[(dest, tag)]
        self._tx[(dest, tag)] = seq + 1
        frame = pack_frame(seq, array)
        delivered = False
        for attempt in range(max(plan.max_transmits, 1)):
            fate = plan.fate(self.rank, dest, tag, seq, attempt, self.salt)
            if attempt > 0:
                self.fault_stats.retransmissions += 1
                self._recover("retransmission")
                tr = get_tracer()
                if tr.enabled:
                    tr.count("retransmissions", 1, rank=self.rank)
            if fate.delay_seconds > 0.0:
                self._note("delay", peer=dest, tag=tag,
                           seconds=round(fate.delay_seconds, 6))
                _time.sleep(fate.delay_seconds)
            if fate.drop:
                self._note("drop", peer=dest, tag=tag, seq=seq)
                continue
            if fate.truncate:
                self._note("truncate", peer=dest, tag=tag, seq=seq)
                self.inner.send(dest, tag, truncate_frame(frame, 0.25))
                continue
            if fate.reorder:
                # Held until the next library call on this endpoint — the
                # following message overtakes it on the wire.
                self._note("reorder", peer=dest, tag=tag, seq=seq)
                self._held.append((dest, tag, frame))
                delivered = True
                break
            self.inner.send(dest, tag, frame)
            delivered = True
            if fate.duplicate:
                self._note("duplicate", peer=dest, tag=tag, seq=seq)
                self.inner.send(dest, tag, frame)
            break
        if not delivered:
            self.fault_stats.lost_messages += 1
            self._note("lost", peer=dest, tag=tag, seq=seq)

    def _stream(self, source: int, tag: str) -> dict:
        stream = self._rx.get((source, tag))
        if stream is None:
            stream = self._rx[(source, tag)] = {"next": 0, "stash": {}}
        return stream

    def recv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> np.ndarray:
        if not self._enabled:
            return self.inner.recv(source, tag, timeout=timeout)
        self._enter_op(tag)
        plan = self.plan
        stream = self._stream(source, tag)
        expected = stream["next"]
        if expected in stream["stash"]:
            stream["next"] = expected + 1
            return stream["stash"].pop(expected)
        poll = plan.recv_timeout if timeout is None else timeout
        retries_left = plan.recv_retries
        waited = 0.0
        tr = get_tracer()
        while True:
            try:
                raw = self.inner.recv(source, tag, timeout=poll)
            except DeadlockError:
                waited += poll
                if retries_left <= 0:
                    self.fault_stats.recv_retries += 1
                    self._recover("recv_retry")
                    raise MessageTimeout(
                        self.rank, source, tag, waited,
                        plan.recv_retries, step=self._step,
                    ) from None
                retries_left -= 1
                poll *= plan.backoff
                self.fault_stats.recv_retries += 1
                self._recover("recv_retry")
                if tr.enabled:
                    tr.instant(
                        "fault.recv_retry", cat="fault", rank=self.rank,
                        peer=source, tag=tag, step=self._step,
                    )
                    tr.count("recv_retries", 1, rank=self.rank)
                continue
            unpacked = unpack_frame(raw)
            if unpacked is None:
                self.fault_stats.corrupt_discarded += 1
                self._recover("corrupt_rx")
                if tr.enabled:
                    tr.instant(
                        "fault.corrupt_rx", cat="fault", rank=self.rank,
                        peer=source, tag=tag, step=self._step,
                    )
                    tr.count("corrupt_discarded", 1, rank=self.rank)
                continue
            seq, payload = unpacked
            if seq < expected:
                self.fault_stats.dups_discarded += 1
                self._recover("duplicate_rx")
                if tr.enabled:
                    tr.instant(
                        "fault.duplicate_rx", cat="fault", rank=self.rank,
                        peer=source, tag=tag, seq=seq, step=self._step,
                    )
                    tr.count("dups_discarded", 1, rank=self.rank)
                continue
            if seq > expected:
                stream["stash"][seq] = payload
                continue
            stream["next"] = expected + 1
            return payload

    def recv_view(self, source: int, tag: str, timeout: float | None = None):
        """Borrow-style receive through the fault layer.

        With injection disabled this passes straight through to the
        inner communicator's ``recv_view`` (zero-copy on the process
        substrate, owned copy everywhere else via the ABC default).
        With injection enabled the payload necessarily crosses the
        framed retransmission path (a raw slot holds a *frame*, not the
        payload), so the view is an owned copy — but the release
        discipline stays uniform for callers either way.
        """
        if not self._enabled:
            return self.inner.recv_view(source, tag, timeout=timeout)
        from ..msglib.api import OwnedView

        return OwnedView(self.recv(source, tag, timeout=timeout))
