"""Ablation: message-passing startup cost on the NOW (paper's Conclusion).

"NOW have the potential to be cost-effective parallel architectures if the
networks are made reasonably fast and message passing libraries are
efficiently implemented to circumvent the traditional overheads" — this
bench sweeps the PVM per-message software cost on LACE/ALLNODE-S and shows
the cluster's 16-processor execution time (and speedup) as the library
approaches the T3D's thin shim.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.machines.platforms import LACE_560
from repro.msglib.libmodel import PVM
from repro.simulate.machine import SimulatedMachine
from repro.simulate.workload import NAVIER_STOKES

from conftest import run_and_print


def _sweep() -> str:
    rows = []
    for factor, label in [
        (1.0, "PVM 3.2.2 as measured"),
        (0.5, "2x leaner library"),
        (0.25, "4x leaner"),
        (0.1, "10x leaner"),
        (0.02, "T3D-shim-class (50x)"),
    ]:
        lib = PVM.scaled(factor)
        lib = replace(lib, name=f"PVM x{factor}", scale_with_cpu=False)
        t1 = SimulatedMachine(LACE_560, 1, library=lib).run(
            NAVIER_STOKES, steps_window=20
        )
        t16 = SimulatedMachine(LACE_560, 16, library=lib).run(
            NAVIER_STOKES, steps_window=20
        )
        rows.append(
            [
                label,
                f"{lib.cpu_send_overhead * 1e3:.2f}",
                f"{t16.execution_time:,.0f}",
                f"{t1.execution_time / t16.execution_time:.1f}x",
            ]
        )
    return format_table(
        ["library", "send overhead (ms)", "NS exec @ p=16 (s)", "speedup"],
        rows,
        title="Library-overhead sweep on LACE/560 + ALLNODE-S:",
    )


def test_startup_ablation(benchmark):
    run_and_print(
        benchmark, _sweep, "Ablation: message-library overhead on the NOW"
    )
