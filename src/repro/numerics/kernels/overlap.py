"""Boundary-strip rate recompute for the overlapped (V6) exchange.

The overlapped MacCormack phase runs the *full* rate kernel while the
active-side flux ghosts are still in flight, substituting the serial
cubic extrapolation (or the local axis mirror) for the missing planes.
The one-sided 2-4 stencil reaches at most two points past the domain
edge, so only the **two** outermost rate columns on the in-flight side
depend on the exchanged ghosts — every interior column of the
provisional pass is already final.  Once the exchange finishes,
:func:`rate_edges` recomputes exactly those two columns.

Bitwise identity with the blocking path holds because the recompute
replays the *identical* IEEE-754 operation chain the rate kernels use —
``7*(Δ₁) - Δ₂``, divide by ``6h``, negate / subtract source, multiply by
``1/r`` — element by element on the strip.  numpy ufuncs and the
compiled engines (all built strict-IEEE, no fastmath/FMA; see the
``bitwise`` flag on :class:`~repro.numerics.kernels.compiled._OpsBase`)
agree per element, which the compiled differential test wall already
proves array-wide, so a strip recomputed here matches what any engine
would have produced for those columns with the real ghosts.
"""

from __future__ import annotations

import numpy as np


def _col(a: np.ndarray, axis: int, idx: int) -> np.ndarray:
    sl = [slice(None)] * a.ndim
    sl[axis] = idx
    return a[tuple(sl)]


def rate_edges(
    flux: np.ndarray,
    ghosts: np.ndarray,
    axis: int,
    h: float,
    forward: bool,
    source: np.ndarray | None,
    inv_weight: np.ndarray | float,
    out: np.ndarray,
) -> np.ndarray:
    """Recompute the two ghost-dependent rate columns into ``out``.

    ``ghosts`` is the outward-ordered ``(2, ...)`` stack the finished
    exchange returned for the active side: the high side for a forward
    difference (columns ``n-2, n-1``), the low side for a backward one
    (columns ``0, 1``).  ``source`` / ``inv_weight`` carry the same
    values the full rate pass used; ``out`` is the provisional rate
    array whose edge columns are overwritten in place.
    """
    n = flux.shape[axis]
    g1, g2 = ghosts[0], ghosts[1]
    if forward:
        # Along-axis window [F[n-2], F[n-1], g1, g2]; column n-2+j uses
        # (f0, f1, f2) = (win[j], win[j+1], win[j+2]).
        win = (_col(flux, axis, n - 2), _col(flux, axis, n - 1), g1, g2)
        cols = (n - 2, n - 1)
    else:
        # Window [g2, g1, F[0], F[1]]; column j uses
        # (f0, fm1, fm2) = (win[2+j], win[1+j], win[j]).
        win = (g2, g1, _col(flux, axis, 0), _col(flux, axis, 1))
        cols = (0, 1)
    h6 = 6.0 * h
    identity_iw = isinstance(inv_weight, float) and inv_weight == 1.0
    if not identity_iw:
        iw_full = np.broadcast_to(np.asarray(inv_weight), flux.shape)
    for j, col in enumerate(cols):
        if forward:
            f0, f1, f2 = win[j], win[j + 1], win[j + 2]
            d = np.subtract(f1, f0)
            np.multiply(d, 7.0, out=d)
            t = np.subtract(f2, f1)
        else:
            f0, fm1, fm2 = win[2 + j], win[1 + j], win[j]
            d = np.subtract(f0, fm1)
            np.multiply(d, 7.0, out=d)
            t = np.subtract(fm1, fm2)
        np.subtract(d, t, out=d)
        np.divide(d, h6, out=d)
        if source is None:
            np.negative(d, out=d)
        else:
            np.subtract(_col(source, axis, col), d, out=d)
        if not identity_iw:
            np.multiply(d, _col(iw_full, axis, col), out=d)
        np.copyto(_col(out, axis, col), d)
    return out
