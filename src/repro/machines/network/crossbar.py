"""Ideal crossbar — contention-free reference network.

Used as the communication fabric stand-in for shared-memory data movement
and as the 'infinitely good network' baseline in ablation benchmarks: every
node pair gets a dedicated path at the stated bandwidth.
"""

from __future__ import annotations

from .base import Network


class CrossbarNetwork(Network):
    """Dedicated full-bandwidth path per ordered node pair."""

    def __init__(
        self,
        nnodes: int,
        bytes_per_s: float = 1e9,
        latency: float = 1e-6,
    ) -> None:
        self.name = "crossbar"
        self.nnodes = nnodes
        self.bytes_per_s = bytes_per_s
        self.latency = latency

    def link_ids(self, src: int, dst: int) -> list[str]:
        return [f"pair:{src}->{dst}"]

    def capacities(self) -> dict[str, int]:
        return {
            f"pair:{s}->{d}": 1
            for s in range(self.nnodes)
            for d in range(self.nnodes)
            if s != d
        }

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.bytes_per_s

    def saturation_bandwidth(self) -> float:
        return self.nnodes * self.bytes_per_s
