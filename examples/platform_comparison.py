#!/usr/bin/env python3
"""Cross-platform study: the paper's Figures 9/10 as an interactive sweep.

Simulates the Navier-Stokes (or Euler) workload on every platform of the
paper — LACE under ALLNODE-F/ALLNODE-S/Ethernet, the IBM SP under MPL and
PVMe, the Cray T3D, and the Cray Y-MP — and prints execution time,
speedup, and efficiency per processor count, plus the qualitative findings
the paper calls out.

Usage::

    python examples/platform_comparison.py [--euler] [--procs 1 2 4 8 16]
"""

import argparse

from repro.analysis.metrics import crossover, speedup
from repro.analysis.report import format_table
from repro.machines.platforms import (
    CRAY_T3D,
    CRAY_YMP,
    IBM_SP,
    IBM_SP_PVME,
    LACE_560,
    LACE_560_ETHERNET,
    LACE_590,
)
from repro.simulate import SharedMemoryMachine, SimulatedMachine
from repro.simulate.workload import EULER, NAVIER_STOKES


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--euler", action="store_true")
    ap.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4, 8, 12, 16])
    args = ap.parse_args()
    app = EULER if args.euler else NAVIER_STOKES
    procs = args.procs

    platforms = [
        LACE_590,
        LACE_560,
        LACE_560_ETHERNET,
        IBM_SP,
        IBM_SP_PVME,
        CRAY_T3D,
    ]
    results = {}
    for plat in platforms:
        results[plat.name] = [
            SimulatedMachine(plat, p).run(app, steps_window=30).execution_time
            for p in procs
        ]
    ymp_procs = [p for p in procs if p <= CRAY_YMP.max_procs]
    results["Cray Y-MP"] = [
        SharedMemoryMachine(CRAY_YMP, p).run(app).execution_time
        for p in ymp_procs
    ]

    rows = []
    for name, times in results.items():
        row = [name] + [f"{t:,.0f}" for t in times]
        row += [""] * (len(procs) - len(times))
        rows.append(row)
    print(
        format_table(
            ["Platform"] + [f"p={p}" for p in procs],
            rows,
            title=f"{app.name} execution time (seconds, full 5000-step run)",
        )
    )

    print(f"\nSpeedups at p={procs[-1]}:")
    for name, times in results.items():
        if len(times) == len(procs):
            print(f"  {name:24s} {speedup(times[0], times[-1]):5.2f}x")

    t3d = results[CRAY_T3D.name]
    a_s = results[LACE_560.name]
    x = crossover(procs, t3d, a_s)
    print(
        f"\nT3D crosses below ALLNODE-S at p={x} "
        "(paper: 'Beyond 8 processors, T3D ... performs better than ALLNODE-S')"
    )
    af, asn = results[LACE_590.name], results[LACE_560.name]
    print(
        f"ALLNODE-F vs ALLNODE-S: {asn[0] / af[0]:.2f}x at p={procs[0]}, "
        f"{asn[-1] / af[-1]:.2f}x at p={procs[-1]} "
        "(paper: 'about 70%-80% faster')"
    )


if __name__ == "__main__":
    main()
