#!/usr/bin/env python3
"""Profile the solver's hot path (the optimization workflow of the era).

The paper's Section 6 is a profiling-driven optimization story (stride-1
access, division removal); this script applies the same discipline to the
reproduction itself, through the measurement facade: a short
paper-resolution run under ``repro.api.run(..., profile=True)`` — which
turns on the metrics registry, runs cProfile, and derives the
per-stage/per-rank performance report this prints.

Usage::

    python scripts/profile_solver.py [steps] [--backend fused] [--nprocs N]
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("steps", nargs="?", type=int, default=30)
    ap.add_argument("--nx", type=int, default=250)
    ap.add_argument("--nr", type=int, default=100)
    ap.add_argument("--backend", default=None, help="baseline or fused")
    ap.add_argument(
        "--nprocs", type=int, default=1,
        help="virtual-cluster ranks (cProfile sees only the calling "
        "thread, so per-function rows cover the serial route fully; "
        "stage metrics cover every rank either way)",
    )
    args = ap.parse_args(argv)

    from repro.api import run
    from repro.obs import render_report

    res = run(
        "jet",
        steps=args.steps,
        nx=args.nx,
        nr=args.nr,
        nprocs=args.nprocs,
        backend=args.backend,
        profile=18,
    )
    print(render_report(res.perf))
    ms = res.perf.ms_per_step
    print(f"\nmean wall time per step: {ms:.1f} ms "
          f"(full 5000-step run ~ {ms * 5:.0f} s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
