"""Interconnect models: routes, capacities, transfer times."""

import pytest

from repro.machines.network import (
    AllnodeNetwork,
    AtmNetwork,
    CrossbarNetwork,
    EthernetNetwork,
    FddiNetwork,
    SPSwitchNetwork,
    Torus3DNetwork,
)


class TestEthernet:
    def test_single_shared_bus(self):
        net = EthernetNetwork(8)
        assert net.link_ids(0, 5) == ["bus"]
        assert net.link_ids(3, 1) == ["bus"]
        assert net.capacities() == {"bus": 1}

    def test_bandwidth(self):
        net = EthernetNetwork(8, bandwidth_bps=10e6, efficiency=1.0,
                              frame_overhead_bytes=0)
        # 1250 bytes at 10 Mbps = 1 ms.
        assert net.transfer_time(1250) == pytest.approx(1e-3)

    def test_frame_overhead_dominates_small_messages(self):
        net = EthernetNetwork(8)
        assert net.transfer_time(1) > 0.5 * net.transfer_time(90)

    def test_saturation_is_medium_rate(self):
        net = EthernetNetwork(16)
        assert net.saturation_bandwidth() == pytest.approx(10e6 * 0.85 / 8)


class TestFddi:
    def test_shared_ring(self):
        net = FddiNetwork(16)
        assert net.link_ids(2, 9) == ["ring"]
        assert net.capacities()["ring"] == 1

    def test_ten_times_ethernet(self):
        eth = EthernetNetwork(8, frame_overhead_bytes=0, efficiency=1.0)
        fddi = FddiNetwork(8, frame_overhead_bytes=0, efficiency=1.0)
        assert eth.transfer_time(10_000) == pytest.approx(
            10 * fddi.transfer_time(10_000)
        )


class TestAtm:
    def test_per_node_links(self):
        net = AtmNetwork(4)
        ids = net.link_ids(1, 3)
        assert set(ids) == {"out:1", "in:3"}
        caps = net.capacities()
        assert caps["out:0"] == 1 and caps["in:3"] == 1
        assert len(caps) == 8

    def test_cell_tax(self):
        net = AtmNetwork(4)
        raw = 1000 * 8 / 155e6
        assert net.transfer_time(1000) == pytest.approx(raw * 53 / 48)

    def test_aggregate_scales_with_nodes(self):
        assert AtmNetwork(8).saturation_bandwidth() == pytest.approx(
            2 * AtmNetwork(4).saturation_bandwidth()
        )


class TestAllnode:
    def test_fast_and_slow_link_rates(self):
        """Paper: 64 Mbps (F) vs 32 Mbps (S) per link."""
        f, s = AllnodeNetwork.fast(16), AllnodeNetwork.slow(16)
        assert f.link_bps == 64e6 and s.link_bps == 32e6
        assert s.transfer_time(4000) == pytest.approx(2 * f.transfer_time(4000))
        assert f.name == "ALLNODE-F" and s.name == "ALLNODE-S"

    def test_route_includes_path_pool(self):
        net = AllnodeNetwork.fast(16)
        ids = net.link_ids(0, 7)
        assert "paths" in ids
        assert "out:0" in ids and "in:7" in ids

    def test_concurrent_path_pool_capacity(self):
        net = AllnodeNetwork(16, link_bps=64e6, concurrent_paths=12)
        assert net.capacities()["paths"] == 12


class TestSPSwitch:
    def test_port_rate(self):
        net = SPSwitchNetwork(16)
        assert net.transfer_time(40_000_000) == pytest.approx(1.0)

    def test_hardware_latency_microseconds(self):
        assert SPSwitchNetwork(16).latency < 1e-4


class TestTorus:
    def test_paper_dimensions(self):
        net = Torus3DNetwork()
        assert net.dims == (8, 4, 2)
        assert net.nnodes == 64

    def test_coords_linear_embedding(self):
        net = Torus3DNetwork()
        assert net.coords(0) == (0, 0, 0)
        assert net.coords(1) == (1, 0, 0)
        assert net.coords(8) == (0, 1, 0)
        assert net.coords(32) == (0, 0, 1)

    def test_neighbour_is_single_hop(self):
        net = Torus3DNetwork()
        assert net.route_length(3, 4) == 1

    def test_wraparound_shortcut(self):
        """7 -> 0 in the x ring is one wrap hop, not seven."""
        net = Torus3DNetwork()
        assert net.route_length(7, 0) == 1

    def test_dimension_order_route(self):
        net = Torus3DNetwork()
        # (1,0,0) -> (3,2,1): 2 x-hops + 2 y-hops + 1 z-hop.
        src = 1
        dst = 3 + 2 * 8 + 1 * 32
        assert net.route_length(src, dst) == 5

    def test_directed_links_disjoint_for_opposite_traffic(self):
        net = Torus3DNetwork()
        fwd = set(net.link_ids(0, 1))
        bwd = set(net.link_ids(1, 0))
        assert fwd.isdisjoint(bwd)

    def test_high_bandwidth_low_latency(self):
        """150 MB/s peak per link, microsecond setup (paper Section 4.3)."""
        net = Torus3DNetwork()
        assert net.transfer_time(150_000_000) == pytest.approx(1.0)
        assert net.uncontended_message_time(0) < 1e-4


class TestCrossbar:
    def test_dedicated_pairs(self):
        net = CrossbarNetwork(4)
        assert net.link_ids(0, 3) == ["pair:0->3"]
        assert len(net.capacities()) == 12

    def test_no_self_pairs(self):
        assert "pair:1->1" not in CrossbarNetwork(4).capacities()


class TestUncontendedTimes:
    def test_message_time_ordering_across_networks(self):
        """For the solver's ~3 KB messages: torus fastest wire, Ethernet
        slowest — the hardware half of the paper's platform ordering."""
        n = 3125
        times = {
            "torus": Torus3DNetwork().uncontended_message_time(n),
            "sp": SPSwitchNetwork(16).uncontended_message_time(n),
            "atm": AtmNetwork(16).uncontended_message_time(n),
            "allnode_f": AllnodeNetwork.fast(16).uncontended_message_time(n),
            "allnode_s": AllnodeNetwork.slow(16).uncontended_message_time(n),
            "ethernet": EthernetNetwork(16).uncontended_message_time(n),
        }
        assert times["torus"] < times["sp"] < times["allnode_s"]
        assert times["allnode_f"] < times["allnode_s"] < times["ethernet"]
