"""Per-rank event programs: the Version 5/6/7 communication shapes.

* **Version 5** (the production code): compute each phase, then exchange
  that phase's grouped messages — sends are buffered (the wire transfer is
  spawned and proceeds concurrently), receives block until arrival.
* **Version 6**: a small edge-compute fraction produces the boundary data
  first, *all* sends are posted up front, and the interior computation of
  every phase proceeds before each receive — communication overlaps
  computation to the extent the network allows.  (Its busy-time penalty —
  extra loop setup and degraded temporal locality — is charged by the cost
  model through the version's op-mix factors.)
* **Version 7**: Version 5 with each grouped flux message split into two
  single-column messages (fewer bytes per send, twice the startups on the
  flux exchanges) — the paper's anti-burstiness experiment.

Libraries with ``blocking_send=True`` (the paper's MPL) perform the wire
transfer inline in the sender, charging the occupancy to non-overlapped
communication time.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..machines.network.base import Network
from ..msglib.libmodel import LibraryModel
from ..parallel.versions import Version
from .engine import Acquire, Delay, Event, Release, Resource, Spawn, Trigger
from .timeline import RankContext
from .workload import Message, Workload

#: Fraction of a step's compute that produces subdomain-edge data first
#: (Version 6 computes this before posting its sends).
EDGE_COMPUTE_FRACTION = 0.08


def _split_for_version(msg: Message, version: Version) -> list[tuple[int, int]]:
    """``(part_index, nbytes)`` pieces of a message under the version's
    grouping policy."""
    if version.split_flux_columns and msg.kind == "flux":
        half = msg.nbytes // 2
        return [(0, half), (1, msg.nbytes - half)]
    return [(0, msg.nbytes)]


def transfer_process(
    network: Network,
    resources: dict[str, Resource],
    src: int,
    dst: int,
    nbytes: int,
    arrival: Event,
    wire_startup: float = 0.0,
    extra_delay: float = 0.0,
) -> Generator:
    """Wire transfer: protocol startup, hold the route, occupy, signal.

    ``extra_delay`` is additional route occupancy injected by a fault plan
    (retransmissions of dropped/truncated frames plus delay jitter) — it is
    charged while the route is held, so lost messages congest the shared
    wire exactly as real retransmissions would."""
    if wire_startup > 0.0:
        yield Delay(wire_startup)
    keys = network.link_ids(src, dst)
    for k in keys:
        yield Acquire(resources[k])
    yield Delay(network.latency + network.transfer_time(nbytes) + extra_delay)
    for k in reversed(keys):
        yield Release(resources[k])
    yield Trigger(arrival)


def build_rank_program(
    ctx: RankContext,
    rank: int,
    nprocs: int,
    workload: Workload,
    version: Version,
    library: LibraryModel,
    network: Network,
    resources: dict[str, Resource],
    event_for: Callable[[tuple], Event],
    steps: int,
    step_compute_seconds: float,
    faults=None,
    fault_note: Callable[[int, int, tuple, float], None] | None = None,
) -> Generator:
    """The SPMD program of one rank as an event-engine generator.

    ``faults`` (a :class:`~repro.faults.plan.FaultPlan`) maps the plan's
    wire-level faults onto deterministic extra occupancy of each transfer
    (see :meth:`~repro.faults.plan.FaultPlan.sim_extra_delay`);
    ``fault_note`` is called once per afflicted transfer so the machine can
    record the injection through the tracer."""
    left = rank - 1 if rank > 0 else None
    right = rank + 1 if rank < nprocs - 1 else None

    def dest_of(msg: Message) -> int | None:
        return left if msg.direction == "L" else right

    def source_of(msg: Message) -> int | None:
        # Symmetric SPMD: my neighbour's mirror-direction send targets me.
        return right if msg.direction == "L" else left

    wire_faulty = faults is not None and faults.wire_faulty

    def send_msg(step: int, ph: int, mi: int, msg: Message) -> Generator:
        dst = dest_of(msg)
        if dst is None:
            return
        for part, nbytes in _split_for_version(msg, version):
            yield from ctx.busy_library(library.send_cpu_time(nbytes))
            arrival = event_for((rank, dst, step, ph, mi, part))
            extra = 0.0
            if wire_faulty:
                base = network.latency + network.transfer_time(nbytes)
                extra = faults.sim_extra_delay(
                    rank, dst, (step, ph, mi, part), base
                )
                if extra > 0.0 and fault_note is not None:
                    fault_note(rank, dst, (step, ph, mi, part), extra)
            if library.blocking_send:
                t0 = ctx.engine.now
                yield from transfer_process(
                    network,
                    resources,
                    rank,
                    dst,
                    nbytes,
                    arrival,
                    wire_startup=library.wire_startup,
                    extra_delay=extra,
                )
                ctx.timeline.comm_wait += ctx.engine.now - t0
            else:
                yield Spawn(
                    transfer_process(
                        network,
                        resources,
                        rank,
                        dst,
                        nbytes,
                        arrival,
                        wire_startup=library.wire_startup,
                        extra_delay=extra,
                    )
                )

    def recv_msg(step: int, ph: int, mi: int, msg: Message) -> Generator:
        src = source_of(msg)
        if src is None:
            return
        for part, nbytes in _split_for_version(msg, version):
            arrival = event_for((src, rank, step, ph, mi, part))
            yield from ctx.wait_comm(arrival)
            yield from ctx.busy_library(library.recv_cpu_time(nbytes))

    phases = workload.phases
    overlapped = version.overlap_communication

    for step in range(steps):
        if overlapped:
            # Produce boundary data, post everything, then compute interior.
            yield from ctx.busy_compute(EDGE_COMPUTE_FRACTION * step_compute_seconds)
            for ph, phase in enumerate(phases):
                for mi, msg in enumerate(phase.messages):
                    yield from send_msg(step, ph, mi, msg)
            remaining = (1.0 - EDGE_COMPUTE_FRACTION) * step_compute_seconds
            for ph, phase in enumerate(phases):
                yield from ctx.busy_compute(phase.compute_fraction * remaining)
                for mi, msg in enumerate(phase.messages):
                    yield from recv_msg(step, ph, mi, msg)
        else:
            for ph, phase in enumerate(phases):
                yield from ctx.busy_compute(
                    phase.compute_fraction * step_compute_seconds
                )
                for mi, msg in enumerate(phase.messages):
                    yield from send_msg(step, ph, mi, msg)
                for mi, msg in enumerate(phase.messages):
                    yield from recv_msg(step, ph, mi, msg)
    ctx.finish()
