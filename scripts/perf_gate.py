"""Benchmark-regression gate over the core matrix.

Compares a fresh ``benchmarks/output/BENCH_core.json`` (written by
``benchmarks/bench_core.py``) against the committed baseline in
``benchmarks/baseline/BENCH_core.json`` and exits non-zero when any
case's step time regressed beyond its tolerance (default 15%).

Cross-machine noise is handled two ways:

* each results file carries ``calibration_ms`` — a fixed numpy workload
  timed at generation — and the gate scales the baseline's step times by
  the calibration ratio before comparing, so a baseline recorded on a
  faster machine doesn't fail every run on a slower one;
* each case carries its own relative tolerance (parallel cases allow
  more: rank threads are at the scheduler's mercy).

Usage::

    python scripts/perf_gate.py                      # compare, exit 0/1
    python scripts/perf_gate.py --update-baseline    # bless current results
    python scripts/perf_gate.py --summary gate.md    # also write a markdown table

Exit codes: 0 = within tolerance, 1 = regression, 2 = missing/invalid input.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CURRENT = os.path.join(REPO, "benchmarks", "output", "BENCH_core.json")
BASELINE = os.path.join(REPO, "benchmarks", "baseline", "BENCH_core.json")
SCHEMA = "repro.bench-core/1"

#: Relative step-time regression allowed when a case doesn't pin its own.
DEFAULT_TOLERANCE = 0.15

#: MFLOPS may drop this much (normalized) before the gate *warns*; MFLOPS
#: never fails the gate on its own — it is derived from the same clock as
#: the step time, so a real regression always shows up there first.
MFLOPS_WARN_DROP = 0.20

#: Multi-core acceptance: with at least this many cores, the 4-rank
#: process-substrate run must beat serial by this factor.  On smaller
#: hosts the speedup curve is still required and reported, but the
#: threshold is informational (one core cannot show parallel speedup).
SPEEDUP_MIN_CORES = 4
SPEEDUP_REQUIRED = 2.0

#: Cross-decomposition parity: a non-axial process-substrate case must
#: stay within this factor of its axial reference at the same rank count.
#: The unified exchange core gives radial and 2-D runs the same fused
#: kernels and preallocated pack buffers as axial, so a larger gap means
#: a decomposition-specific slow path crept back in.  Keys map a case id
#: to its axial reference; cases at rank counts with no axial
#: process-substrate peer (e.g. the 4-rank 2-D case) are reported as
#: notes only.
DECOMP_PARITY_FACTOR = 2.0
DECOMP_PARITY = {"ns-p2-radial-fused": "ns-p2-process-fused"}
DECOMP_NOTES = {"ns-p4-2d-fused": "ns-p2-process-fused"}


def check_decomposition_parity(current: dict) -> tuple[list[str], list[str]]:
    """Gate non-axial process cases against their axial reference."""
    failures: list[str] = []
    notes: list[str] = []
    cases = current.get("cases", {})

    def ratio_of(case_id, ref_id):
        cur, ref = cases.get(case_id), cases.get(ref_id)
        if cur is None or ref is None:
            return None  # compare() already reports missing cases
        return float(cur["ms_per_step"]) / float(ref["ms_per_step"])

    for case_id, ref_id in sorted(DECOMP_PARITY.items()):
        ratio = ratio_of(case_id, ref_id)
        if ratio is None:
            continue
        notes.append(
            f"decomposition parity: {case_id} runs x{ratio:.2f} the "
            f"step time of {ref_id}"
        )
        if ratio > DECOMP_PARITY_FACTOR:
            failures.append(
                f"{case_id}: x{ratio:.2f} the step time of its axial "
                f"reference {ref_id} (allowed x{DECOMP_PARITY_FACTOR:.1f})"
            )
    for case_id, ref_id in sorted(DECOMP_NOTES.items()):
        ratio = ratio_of(case_id, ref_id)
        if ratio is not None:
            notes.append(
                f"decomposition parity (informational, different rank "
                f"count): {case_id} runs x{ratio:.2f} the step time of "
                f"{ref_id}"
            )
    return failures, notes


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r} != expected {SCHEMA!r}"
        )
    return doc


def compare(current: dict, baseline: dict) -> tuple[list[dict], list[str]]:
    """Per-case comparison rows + hard-failure messages.

    The baseline's step times are scaled by the machines' calibration
    ratio before the tolerance test.
    """
    cal_cur = float(current.get("calibration_ms") or 0.0)
    cal_base = float(baseline.get("calibration_ms") or 0.0)
    scale = (cal_cur / cal_base) if cal_cur > 0.0 and cal_base > 0.0 else 1.0
    rows: list[dict] = []
    failures: list[str] = []
    for case_id, base in sorted(baseline["cases"].items()):
        cur = current["cases"].get(case_id)
        if cur is None:
            failures.append(f"{case_id}: missing from current results")
            continue
        if cur.get("fingerprint") != base.get("fingerprint"):
            failures.append(
                f"{case_id}: config fingerprint changed "
                f"({base.get('fingerprint')} -> {cur.get('fingerprint')}); "
                "re-bless the baseline with --update-baseline"
            )
            continue
        tol = float(base.get("tolerance", DEFAULT_TOLERANCE))
        expected = float(base["ms_per_step"]) * scale
        measured = float(cur["ms_per_step"])
        ratio = measured / expected if expected > 0.0 else float("inf")
        ok = ratio <= 1.0 + tol
        warn = ""
        b_mf, c_mf = base.get("mflops"), cur.get("mflops")
        if b_mf and c_mf and c_mf < b_mf / scale * (1.0 - MFLOPS_WARN_DROP):
            warn = f"MFLOPS dropped {b_mf / scale:.1f} -> {c_mf:.1f}"
        rows.append(
            {
                "id": case_id,
                "expected_ms": expected,
                "measured_ms": measured,
                "ratio": ratio,
                "tolerance": tol,
                "mflops": c_mf,
                "ok": ok,
                "warn": warn,
            }
        )
        if not ok:
            failures.append(
                f"{case_id}: {measured:.2f} ms/step vs expected "
                f"{expected:.2f} (x{ratio:.2f}, tolerance +{tol:.0%})"
            )
    for case_id in sorted(set(current["cases"]) - set(baseline["cases"])):
        rows.append(
            {
                "id": case_id,
                "expected_ms": None,
                "measured_ms": float(current["cases"][case_id]["ms_per_step"]),
                "ratio": None,
                "tolerance": None,
                "mflops": current["cases"][case_id].get("mflops"),
                "ok": True,
                "warn": "new case (not in baseline)",
            }
        )
    return rows, failures


def check_speedup(current: dict) -> tuple[list[str], list[str]]:
    """Gate the multi-core speedup curve: (failures, notes).

    The curve must exist (bench_core.py always measures it).  The >= 2x
    at 4 ranks acceptance threshold only binds where the hardware can
    deliver it (``cpu_count >= SPEEDUP_MIN_CORES``); elsewhere the
    measured curve is reported as a note so single-core CI stays honest
    instead of vacuously green.
    """
    sp = current.get("speedup")
    if not sp or not sp.get("rows"):
        return (
            ["speedup: no multi-core speedup curve in current results; "
             "re-run benchmarks/bench_core.py (make bench)"],
            [],
        )
    cores = sp.get("cpu_count") or 0
    curve = ", ".join(
        f"p={r['nprocs']}: x{r['speedup']:.2f}" for r in sp["rows"]
    )
    notes = [
        f"speedup ({sp['grid'][0]}x{sp['grid'][1]}, {sp['steps']} steps, "
        f"{sp['backend']}, {cores} core(s)): {curve}"
    ]
    failures: list[str] = []
    if cores >= SPEEDUP_MIN_CORES:
        by_ranks = {r["nprocs"]: r for r in sp["rows"]}
        four = by_ranks.get(4)
        if four is None:
            failures.append("speedup: no 4-rank row in the speedup curve")
        elif four["speedup"] < SPEEDUP_REQUIRED:
            failures.append(
                f"speedup: x{four['speedup']:.2f} at 4 ranks on {cores} "
                f"cores (required >= x{SPEEDUP_REQUIRED:.1f})"
            )
    else:
        notes.append(
            f"speedup threshold not enforced: {cores} core(s) < "
            f"{SPEEDUP_MIN_CORES} (need parallel hardware to show speedup)"
        )
    return failures, notes


def check_overlap(current: dict) -> tuple[list[str], list[str]]:
    """Gate the blocking-vs-overlap comm comparison: (failures, notes).

    The section must exist (bench_core.py always measures it).  On hosts
    with real parallel hardware (``cpu_count >= SPEEDUP_MIN_CORES``) the
    overlapped exchange must deliver: its non-overlapped communication
    time per step strictly below blocking's, and its step time no worse.
    On smaller hosts the ranks time-share one core, so both numbers are
    reported as notes only.
    """
    ov = current.get("overlap")
    if not ov or "real" not in ov:
        return (
            ["overlap: no blocking-vs-overlap comparison in current "
             "results; re-run benchmarks/bench_core.py (make bench)"],
            [],
        )
    real = ov["real"]
    blocking, overlap = real.get("blocking", {}), real.get("overlap", {})
    b_comm = float(blocking.get("comm_ms_per_step") or 0.0)
    o_comm = float(overlap.get("comm_ms_per_step") or 0.0)
    b_ms = float(blocking.get("ms_per_step") or 0.0)
    o_ms = float(overlap.get("ms_per_step") or 0.0)
    cores = ov.get("cpu_count") or 0
    notes = [
        f"overlap (p={ov.get('nprocs')}, {cores} core(s)): comm "
        f"{b_comm:.2f} -> {o_comm:.2f} ms/step, step "
        f"{b_ms:.2f} -> {o_ms:.2f} ms"
    ]
    des = ov.get("des") or {}
    if des.get("comm_reduction") is not None:
        red = real.get("comm_reduction")
        measured = f", measured {red:+.0%}" if red is not None else ""
        notes.append(
            f"overlap DES check ({des.get('platform')}): predicted comm "
            f"reduction {des['comm_reduction']:+.0%}{measured}"
        )
    failures: list[str] = []
    if cores >= SPEEDUP_MIN_CORES:
        if not (o_comm < b_comm):
            failures.append(
                f"overlap: non-overlapped comm {o_comm:.2f} ms/step is not "
                f"below blocking's {b_comm:.2f} on {cores} cores"
            )
        if o_ms > b_ms * (1.0 + DEFAULT_TOLERANCE):
            failures.append(
                f"overlap: step time {o_ms:.2f} ms regressed past blocking's "
                f"{b_ms:.2f} (+{DEFAULT_TOLERANCE:.0%} allowed)"
            )
    else:
        notes.append(
            f"overlap threshold not enforced: {cores} core(s) < "
            f"{SPEEDUP_MIN_CORES} (ranks time-share the CPU)"
        )
    return failures, notes


def render_text(rows: list[dict], scale_note: str) -> str:
    lines = [f"perf gate ({scale_note})"]
    for r in rows:
        status = "ok  " if r["ok"] else "FAIL"
        exp = f"{r['expected_ms']:.2f}" if r["expected_ms"] is not None else "-"
        ratio = f"x{r['ratio']:.2f}" if r["ratio"] is not None else "-"
        mflops = f"{r['mflops']:.1f}" if r["mflops"] else "-"
        line = (
            f"  [{status}] {r['id']:22s} {r['measured_ms']:8.2f} ms/step "
            f"(expected {exp:>8s}, {ratio:>6s})  MFLOPS={mflops:>8s}"
        )
        if r["warn"]:
            line += f"  ! {r['warn']}"
        lines.append(line)
    return "\n".join(lines)


def render_markdown(rows: list[dict], scale_note: str) -> str:
    lines = [
        f"### Core benchmark gate ({scale_note})",
        "",
        "| case | measured ms/step | expected | ratio | MFLOPS | status |",
        "|---|---|---|---|---|---|",
    ]
    for r in rows:
        exp = f"{r['expected_ms']:.2f}" if r["expected_ms"] is not None else "-"
        ratio = f"{r['ratio']:.2f}" if r["ratio"] is not None else "-"
        mflops = f"{r['mflops']:.1f}" if r["mflops"] else "-"
        status = "✅" if r["ok"] else "❌"
        if r["warn"]:
            status += f" ({r['warn']})"
        lines.append(
            f"| {r['id']} | {r['measured_ms']:.2f} | {exp} | {ratio} "
            f"| {mflops} | {status} |"
        )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", default=CURRENT)
    ap.add_argument("--baseline", default=BASELINE)
    ap.add_argument(
        "--update-baseline", action="store_true",
        help="copy the current results over the committed baseline",
    )
    ap.add_argument(
        "--summary", default=None,
        help="also write a markdown summary table to this path",
    )
    args = ap.parse_args(argv)
    if not os.path.exists(args.current):
        print(
            f"perf_gate: no current results at {args.current}; run "
            "benchmarks/bench_core.py (make bench) first", file=sys.stderr,
        )
        return 2
    try:
        current = load(args.current)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"perf_gate: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0
    if not os.path.exists(args.baseline):
        print(
            f"perf_gate: no baseline at {args.baseline}; bless one with "
            "--update-baseline", file=sys.stderr,
        )
        return 2
    try:
        baseline = load(args.baseline)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"perf_gate: {exc}", file=sys.stderr)
        return 2
    rows, failures = compare(current, baseline)
    speedup_failures, speedup_notes = check_speedup(current)
    failures.extend(speedup_failures)
    parity_failures, parity_notes = check_decomposition_parity(current)
    failures.extend(parity_failures)
    speedup_notes.extend(parity_notes)
    overlap_failures, overlap_notes = check_overlap(current)
    failures.extend(overlap_failures)
    speedup_notes.extend(overlap_notes)
    cal_cur = current.get("calibration_ms") or 0.0
    cal_base = baseline.get("calibration_ms") or 0.0
    scale_note = (
        f"calibration {cal_cur:.2f} ms vs baseline {cal_base:.2f} ms"
        if cal_cur and cal_base
        else "no calibration normalization"
    )
    print(render_text(rows, scale_note))
    for note in speedup_notes:
        print(f"  {note}")
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as fh:
            fh.write(render_markdown(rows, scale_note))
            if speedup_notes:
                fh.write("\n")
                for note in speedup_notes:
                    fh.write(f"- {note}\n")
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("perf gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
