"""Per-run performance reports and the append-only run ledger.

This module closes the measurement loop the paper's Section 6 runs by
hand: every :func:`repro.api.run` invoked with ``metrics=True`` produces a
:class:`PerfReport` — config fingerprint, wall/step statistics, the
per-stage breakdown with derived MFLOPS (flop counts from
:mod:`repro.numerics.opcount`, seconds from the metrics registry), the
per-rank computation-to-communication split, fault/recovery counters and
the full metrics snapshot — and can append it as one JSON line to the run
ledger (``benchmarks/output/BENCH_runs.jsonl`` by convention).

The ledger is what ``scripts/perf_gate.py`` compares against its committed
baseline and what ``repro report`` renders as the paper's Figure-5-style
component tables.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import warnings
from dataclasses import dataclass, field

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NullMetrics
from .stream import imbalance_verdict

__all__ = [
    "LEDGER_SCHEMA",
    "PerfReport",
    "append_ledger",
    "build_perf_report",
    "read_ledger",
    "render_ledger",
    "render_report",
]

#: Ledger line format tag; bump on incompatible shape changes.
LEDGER_SCHEMA = "repro.perf/1"


@dataclass
class PerfReport:
    """One run's performance manifest (JSON-able, one ledger line)."""

    scenario: str
    mode: str
    """``"serial"``, ``"parallel"`` or ``"simulated"``."""
    nprocs: int
    steps: int
    wall_seconds: float
    ms_per_step: float
    schema: str = LEDGER_SCHEMA
    backend: str | None = None
    platform: str | None = None
    substrate: str | None = None
    """Parallel-route substrate (``"virtual"``/``"process"``), else ``None``."""
    version: int | None = None
    grid: tuple[int, int] | None = None
    viscous: bool | None = None
    fingerprint: str = ""
    """Short hash of the run configuration — ledger lines with equal
    fingerprints measured the same workload and are comparable."""
    mflops_total: float | None = None
    comp_comm_ratio: float | None = None
    stages: list[dict] = field(default_factory=list)
    """Per-stage rows: ``{name, seconds, share, mflops}`` (seconds are the
    mean over ranks — the concurrent-elapsed estimate)."""
    per_rank: list[dict] = field(default_factory=list)
    faults: dict = field(default_factory=dict)
    restarts: int = 0
    trace_summary: dict | None = None
    profile_top: list[dict] | None = None
    balance: dict | None = None
    """Straggler/imbalance verdict over ``per_rank``
    (:func:`repro.obs.stream.imbalance_verdict`); ``None`` for runs with
    fewer than two timed ranks."""
    metrics: dict = field(default_factory=dict)
    """Full registry snapshot (:meth:`MetricsRegistry.snapshot`)."""

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "scenario": self.scenario,
            "mode": self.mode,
            "backend": self.backend,
            "platform": self.platform,
            "substrate": self.substrate,
            "nprocs": self.nprocs,
            "version": self.version,
            "steps": self.steps,
            "grid": list(self.grid) if self.grid is not None else None,
            "viscous": self.viscous,
            "fingerprint": self.fingerprint,
            "wall_seconds": self.wall_seconds,
            "ms_per_step": self.ms_per_step,
            "mflops_total": self.mflops_total,
            "comp_comm_ratio": self.comp_comm_ratio,
            "stages": self.stages,
            "per_rank": self.per_rank,
            "faults": self.faults,
            "restarts": self.restarts,
            "trace_summary": self.trace_summary,
            "profile_top": self.profile_top,
            "balance": self.balance,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PerfReport":
        grid = d.get("grid")
        return cls(
            schema=d.get("schema", LEDGER_SCHEMA),
            scenario=d["scenario"],
            mode=d["mode"],
            backend=d.get("backend"),
            platform=d.get("platform"),
            substrate=d.get("substrate"),
            nprocs=int(d["nprocs"]),
            version=d.get("version"),
            steps=int(d["steps"]),
            grid=tuple(grid) if grid is not None else None,
            viscous=d.get("viscous"),
            fingerprint=d.get("fingerprint", ""),
            wall_seconds=float(d["wall_seconds"]),
            ms_per_step=float(d["ms_per_step"]),
            mflops_total=d.get("mflops_total"),
            comp_comm_ratio=d.get("comp_comm_ratio"),
            stages=d.get("stages", []),
            per_rank=d.get("per_rank", []),
            faults=d.get("faults", {}),
            restarts=int(d.get("restarts", 0)),
            trace_summary=d.get("trace_summary"),
            profile_top=d.get("profile_top"),
            balance=d.get("balance"),
            metrics=d.get("metrics", {}),
        )


# -- fingerprinting -----------------------------------------------------------

def config_fingerprint(**config) -> str:
    """Short stable hash of a run configuration (sorted canonical JSON)."""
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


# -- registry readers ---------------------------------------------------------

def _collect(metrics: MetricsRegistry):
    """Split a registry into ``{name: {rank: ...}}`` maps by metric kind."""
    hists: dict[str, dict[int, Histogram]] = {}
    counters: dict[str, dict[int, float]] = {}
    for (name, rank), m in metrics.items():
        if isinstance(m, Histogram):
            hists.setdefault(name, {})[rank] = m
        elif isinstance(m, Counter):
            counters.setdefault(name, {})[rank] = m.value
        elif isinstance(m, Gauge):
            pass  # gauges ride along only in the snapshot
    return hists, counters


def _mean_seconds(per_rank: dict[int, Histogram] | None) -> float | None:
    """Mean per-rank total seconds — the concurrent-elapsed estimate."""
    if not per_rank:
        return None
    return math.fsum(h.sum for h in per_rank.values()) / len(per_rank)


def _mflops(flops: float | None, seconds: float | None) -> float | None:
    if flops is None or seconds is None or seconds <= 0.0:
        return None
    return flops / seconds / 1e6


def _solver_stages(hists, counters, ops) -> tuple[list[dict], float]:
    """Stage rows for real (serial/parallel) runs.

    MFLOPS attribution follows :mod:`repro.numerics.opcount`: the sweep and
    filter stages have their own per-cell counts; ``dt`` + ``boundaries``
    together correspond to the amortized ``misc`` count.
    """
    cell_steps = math.fsum(counters.get("solver.cell_steps", {}).values())
    rows: list[dict] = []

    def add(name: str, seconds: float | None, per_cell: float | None) -> None:
        if seconds is None:
            return
        flops = per_cell * cell_steps if per_cell is not None else None
        rows.append(
            {
                "name": name,
                "seconds": seconds,
                "share": 0.0,
                "mflops": _mflops(flops, seconds),
            }
        )

    add("sweep_x", _mean_seconds(hists.get("stage.sweep_x")),
        ops.x_sweep if ops else None)
    add("sweep_r", _mean_seconds(hists.get("stage.sweep_r")),
        ops.r_sweep if ops else None)
    add("filter", _mean_seconds(hists.get("stage.filter")),
        ops.filter if ops else None)
    dt = _mean_seconds(hists.get("stage.dt")) or 0.0
    bnd = _mean_seconds(hists.get("stage.boundaries")) or 0.0
    if dt + bnd > 0.0:
        add("misc (dt+boundaries)", dt + bnd, ops.misc if ops else None)
    total = math.fsum(r["seconds"] for r in rows)
    for r in rows:
        r["share"] = r["seconds"] / total if total > 0.0 else 0.0
    return rows, cell_steps


def _real_per_rank(hists, counters) -> list[dict]:
    """Per-rank step/communication split for serial and parallel runs."""
    step = hists.get("solver.step_seconds", {})
    send = counters.get("comm.send_seconds", {})
    recv = counters.get("comm.recv_seconds", {})
    ranks = sorted(set(step) | set(send) | set(recv))
    rows = []
    for r in ranks:
        step_s = step[r].sum if r in step else 0.0
        comm_s = send.get(r, 0.0) + recv.get(r, 0.0)
        comp_s = max(step_s - comm_s, 0.0)
        rows.append(
            {
                "rank": r,
                "step_seconds": step_s,
                "comm_seconds": comm_s,
                "comp_seconds": comp_s,
                "comp_comm": (comp_s / comm_s) if comm_s > 0.0 else None,
                "bytes_sent": counters.get("comm.bytes_sent", {}).get(r, 0.0),
                "halo_bytes": counters.get("halo.bytes", {}).get(r, 0.0),
                "halo_seconds": counters.get("halo.seconds", {}).get(r, 0.0),
            }
        )
    return rows


def _sim_per_rank(counters) -> list[dict]:
    """Per-rank timeline split for simulated (DES) runs."""
    comp = counters.get("sim.compute_seconds", {})
    lib = counters.get("sim.library_seconds", {})
    wait = counters.get("sim.wait_seconds", {})
    rows = []
    for r in sorted(set(comp) | set(lib) | set(wait)):
        comp_s = comp.get(r, 0.0)
        comm_s = lib.get(r, 0.0) + wait.get(r, 0.0)
        rows.append(
            {
                "rank": r,
                "comp_seconds": comp_s,
                "comm_seconds": comm_s,
                "comp_comm": (comp_s / comm_s) if comm_s > 0.0 else None,
                "flops": counters.get("sim.flops", {}).get(r, 0.0),
            }
        )
    return rows


def _sim_stages(counters) -> list[dict]:
    """Compute/library/wait rows (the paper's two-component split, with
    the busy side further divided) for simulated runs."""
    rows = []
    total = 0.0
    for label, name in (
        ("compute", "sim.compute_seconds"),
        ("library", "sim.library_seconds"),
        ("comm wait", "sim.wait_seconds"),
    ):
        per = counters.get(name, {})
        if not per:
            continue
        seconds = math.fsum(per.values()) / len(per)
        flops = None
        if label == "compute":
            flops = math.fsum(counters.get("sim.flops", {}).values())
        rows.append(
            {
                "name": label,
                "seconds": seconds,
                "share": 0.0,
                "mflops": _mflops(flops, seconds),
            }
        )
        total += seconds
    for r in rows:
        r["share"] = r["seconds"] / total if total > 0.0 else 0.0
    return rows


def _fault_summary(counters, fault_stats) -> dict:
    """``fault.*`` counters summed over ranks, falling back to (and merged
    with) the per-rank :class:`~repro.faults.FaultStats` when present."""
    out: dict[str, float] = {}
    for name, per in counters.items():
        if name.startswith("fault."):
            out[name[len("fault."):]] = math.fsum(per.values())
    if fault_stats:
        merged = None
        for fs in fault_stats:
            merged = fs if merged is None else merged.merged_with(fs)
        if merged is not None:
            for k, v in merged.injected.items():
                out.setdefault(k, float(v))
            out.setdefault("retransmission", float(merged.retransmissions))
            out.setdefault("recv_retry", float(merged.recv_retries))
            out.setdefault("duplicate_rx", float(merged.dups_discarded))
            out.setdefault("corrupt_rx", float(merged.corrupt_discarded))
            out.setdefault("lost", float(merged.lost_messages))
    return {k: v for k, v in sorted(out.items()) if v}


def _aggregate_ratio(per_rank: list[dict]) -> float | None:
    comp = math.fsum(r.get("comp_seconds", 0.0) for r in per_rank)
    comm = math.fsum(r.get("comm_seconds", 0.0) for r in per_rank)
    return (comp / comm) if comm > 0.0 else None


# -- building -----------------------------------------------------------------

def build_perf_report(
    result,
    metrics: MetricsRegistry | NullMetrics,
    *,
    backend: str | None = None,
    grid: tuple[int, int] | None = None,
    viscous: bool | None = None,
    profile_top: list[dict] | None = None,
    fingerprint: str | None = None,
) -> PerfReport:
    """Derive a :class:`PerfReport` from a run outcome + metrics registry.

    ``result`` is a :class:`repro.api.RunResult`; communication totals
    must already be ingested (``CommStats.ingest_into``) — the facade does
    this before calling here.  Works for all three substrates: real runs
    get opcount-derived per-stage MFLOPS, simulated runs get the DES
    timeline split and the modelled flop count.

    ``fingerprint`` is the *request-derived* cache key
    (:meth:`repro.request.RunRequest.fingerprint`) — the facade always
    passes it.  When absent (standalone callers with only a result in
    hand), a legacy hash over the run's observable configuration is used
    instead.
    """
    if isinstance(metrics, NullMetrics):
        metrics = MetricsRegistry()
    hists, counters = _collect(metrics)
    platform = result.sim.platform if result.sim is not None else None
    substrate = getattr(result, "substrate", None)
    if fingerprint is None:
        fingerprint = config_fingerprint(
            scenario=result.scenario,
            mode=result.mode,
            backend=backend,
            platform=platform,
            substrate=substrate,
            nprocs=result.nprocs,
            version=result.version,
            steps=result.steps,
            grid=list(grid) if grid is not None else None,
            viscous=viscous,
        )
    wall = result.timings.wall_seconds
    ms_per_step = result.timings.ms_per_step
    if result.mode == "simulated":
        stages = _sim_stages(counters)
        per_rank = _sim_per_rank(counters)
        exec_s = result.sim.execution_time
        ms_per_step = 1e3 * exec_s / max(result.steps, 1)
        mflops_total = _mflops(
            math.fsum(counters.get("sim.flops", {}).values()), exec_s
        )
    else:
        ops = None
        if viscous is not None:
            from ..numerics.opcount import euler_ops, navier_stokes_ops

            ops = navier_stokes_ops() if viscous else euler_ops()
        stages, cell_steps = _solver_stages(hists, counters, ops)
        per_rank = _real_per_rank(hists, counters)
        mflops_total = (
            _mflops(ops.per_cell_step * cell_steps, wall)
            if ops is not None and cell_steps > 0.0
            else None
        )
    trace_summary = None
    if result.trace is not None:
        tr = result.trace
        cats: dict[str, int] = {}
        for s in tr.spans:
            cats[s.cat] = cats.get(s.cat, 0) + 1
        trace_summary = {
            "spans": len(tr.spans),
            "events": len(tr.events),
            "counters": len(tr.counters),
            "span_cats": dict(sorted(cats.items())),
        }
    return PerfReport(
        scenario=result.scenario,
        mode=result.mode,
        backend=backend,
        platform=platform,
        substrate=substrate,
        nprocs=result.nprocs,
        version=result.version,
        steps=result.steps,
        grid=grid,
        viscous=viscous,
        fingerprint=fingerprint,
        wall_seconds=wall,
        ms_per_step=ms_per_step,
        mflops_total=mflops_total,
        comp_comm_ratio=_aggregate_ratio(per_rank),
        stages=stages,
        per_rank=per_rank,
        faults=_fault_summary(counters, result.fault_stats),
        restarts=result.restarts,
        trace_summary=trace_summary,
        profile_top=profile_top,
        balance=imbalance_verdict(per_rank),
        metrics=metrics.snapshot(),
    )


# -- ledger -------------------------------------------------------------------

def append_ledger(report: PerfReport, path: str | os.PathLike) -> str:
    """Append ``report`` as one JSON line; returns the path written."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(report.to_dict(), sort_keys=True) + "\n")
    return path


def read_ledger(path: str | os.PathLike) -> list[PerfReport]:
    """Parse every ledger line; unknown schemas raise ``ValueError``.

    Truncated or partially-written lines (a worker killed mid-append
    leaves a half JSON object, typically as the *last* line) are skipped
    with a :class:`UserWarning` naming the line — one mangled line must
    not poison the other hundreds of good ones.  An explicit *unknown
    schema* on an otherwise well-formed line still raises: that is a
    format break, not a torn write.
    """
    reports = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except ValueError:
                warnings.warn(
                    f"{path}:{lineno}: skipping truncated/corrupt ledger "
                    f"line ({line[:40]!r}...)",
                    stacklevel=2,
                )
                continue
            if not isinstance(d, dict):
                warnings.warn(
                    f"{path}:{lineno}: skipping non-object ledger line",
                    stacklevel=2,
                )
                continue
            if d.get("schema") != LEDGER_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: unknown ledger schema "
                    f"{d.get('schema')!r} (expected {LEDGER_SCHEMA!r})"
                )
            try:
                reports.append(PerfReport.from_dict(d))
            except (KeyError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"{path}:{lineno}: skipping partially-written ledger "
                    f"line ({type(exc).__name__}: {exc})",
                    stacklevel=2,
                )
    return reports


# -- rendering ----------------------------------------------------------------

def _fmt(x, pattern: str = "{:.2f}", none: str = "-") -> str:
    return none if x is None else pattern.format(x)


def _table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_ledger(reports: list[PerfReport], title: str = "run ledger") -> str:
    """One-line-per-run summary table of ledger entries."""
    rows = []
    for rp in reports:
        rows.append(
            [
                rp.scenario,
                rp.mode,
                rp.backend or (rp.platform or "-"),
                str(rp.nprocs),
                str(rp.steps),
                _fmt(rp.ms_per_step, "{:.2f}"),
                _fmt(rp.mflops_total, "{:.1f}"),
                _fmt(rp.comp_comm_ratio, "{:.1f}"),
                rp.fingerprint,
            ]
        )
    return _table(
        ["scenario", "mode", "backend", "p", "steps", "ms/step",
         "MFLOPS", "comp:comm", "fingerprint"],
        rows,
        title=title,
    )


def render_report(report: PerfReport) -> str:
    """Full Figure-5-style breakdown of one run."""
    head = (
        f"{report.scenario} [{report.mode}]"
        f" backend={report.backend or report.platform or '-'}"
        f" p={report.nprocs} steps={report.steps}"
    )
    if report.grid:
        head += f" grid={report.grid[0]}x{report.grid[1]}"
    lines = [
        head,
        f"fingerprint={report.fingerprint}"
        f"  wall={report.wall_seconds:.3f}s"
        f"  {report.ms_per_step:.2f} ms/step"
        f"  MFLOPS={_fmt(report.mflops_total, '{:.1f}')}"
        f"  comp:comm={_fmt(report.comp_comm_ratio, '{:.1f}')}",
    ]
    if report.stages:
        rows = [
            [
                s["name"],
                _fmt(s["seconds"], "{:.4f}"),
                _fmt(100.0 * s["share"], "{:.1f}%"),
                _fmt(s.get("mflops"), "{:.1f}"),
            ]
            for s in report.stages
        ]
        lines.append("")
        lines.append(
            _table(["stage", "seconds", "share", "MFLOPS"], rows,
                   title="per-stage breakdown (mean over ranks)")
        )
    if report.per_rank:
        rows = [
            [
                str(r["rank"]),
                _fmt(r.get("comp_seconds"), "{:.4f}"),
                _fmt(r.get("comm_seconds"), "{:.4f}"),
                _fmt(r.get("comp_comm"), "{:.1f}"),
                _fmt(r.get("bytes_sent"), "{:.0f}"),
            ]
            for r in report.per_rank
        ]
        lines.append("")
        lines.append(
            _table(["rank", "comp s", "comm s", "comp:comm", "bytes sent"],
                   rows, title="per-rank split")
        )
    if report.balance:
        b = report.balance
        lines.append("")
        lines.append(
            f"balance: {b['verdict']}"
            f"  max/mean step={b['max_mean_step_ratio']:.2f}"
            f" (slowest rank {b['slowest_rank']})"
            + (
                f"  comm-bound ranks={b['comm_bound_ranks']}"
                if b["comm_bound_ranks"]
                else ""
            )
        )
    if report.faults:
        rows = [[k, f"{v:.0f}"] for k, v in report.faults.items()]
        lines.append("")
        lines.append(_table(["fault/recovery", "count"], rows,
                            title=f"faults (restarts={report.restarts})"))
    if report.profile_top:
        rows = [
            [
                str(p.get("ncalls", "")),
                _fmt(p.get("cumtime"), "{:.4f}"),
                str(p.get("func", "")),
            ]
            for p in report.profile_top
        ]
        lines.append("")
        lines.append(_table(["ncalls", "cumtime", "function"], rows,
                            title="cProfile top functions (cumulative)"))
    return "\n".join(lines)
