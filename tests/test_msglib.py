"""The message-passing substrate: mailboxes, virtual cluster, collectives."""

import numpy as np
import pytest

from repro.msglib.api import CommStats
from repro.msglib.libmodel import CRAY_PVM, MPL, PVM, PVME, library_by_name
from repro.msglib.vchannel import DeadlockError, Mailbox
from repro.msglib.virtual import VirtualCluster


class TestMailbox:
    def test_in_order_delivery(self):
        mb = Mailbox(owner=0, timeout=1.0)
        mb.put(1, "a", np.array([1.0]))
        mb.put(1, "b", np.array([2.0]))
        assert mb.get(1, "a")[0] == 1.0
        assert mb.get(1, "b")[0] == 2.0

    def test_out_of_order_stash(self):
        mb = Mailbox(owner=0, timeout=1.0)
        mb.put(1, "late", np.array([1.0]))
        mb.put(1, "early", np.array([2.0]))
        # Request the second-deposited tag first.
        assert mb.get(1, "early")[0] == 2.0
        assert mb.get(1, "late")[0] == 1.0

    def test_source_selectivity(self):
        mb = Mailbox(owner=0, timeout=1.0)
        mb.put(2, "t", np.array([20.0]))
        mb.put(1, "t", np.array([10.0]))
        assert mb.get(1, "t")[0] == 10.0
        assert mb.get(2, "t")[0] == 20.0

    def test_timeout_raises_deadlock(self):
        mb = Mailbox(owner=0, timeout=0.05)
        with pytest.raises(DeadlockError, match="no message"):
            mb.get(1, "never")

    def test_pending_count(self):
        mb = Mailbox(owner=0, timeout=1.0)
        mb.put(1, "x", np.array([1.0]))
        mb.put(1, "y", np.array([1.0]))
        mb.get(1, "y")  # stashes x
        assert mb.pending() == 1


class TestVirtualCluster:
    def test_point_to_point(self):
        cluster = VirtualCluster(2, timeout=5.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "data", np.arange(5.0))
                return None
            return comm.recv(0, "data")

        results = cluster.run(prog)
        assert np.array_equal(results[1], np.arange(5.0))

    def test_send_copies_payload(self):
        """Buffered semantics: mutating after send must not corrupt."""
        cluster = VirtualCluster(2, timeout=5.0)

        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(3)
                comm.send(1, "t", buf)
                buf[:] = 99.0
                return None
            return comm.recv(0, "t")

        results = cluster.run(prog)
        assert np.array_equal(results[1], np.ones(3))

    def test_invalid_destination(self):
        cluster = VirtualCluster(2, timeout=1.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(0, "self", np.ones(1))
            return True

        with pytest.raises(RuntimeError, match="rank 0 failed"):
            cluster.run(prog)

    def test_exception_propagates_with_rank(self):
        cluster = VirtualCluster(3, timeout=1.0)

        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 2 failed"):
            cluster.run(prog)

    def test_per_rank_args(self):
        cluster = VirtualCluster(3, timeout=5.0)
        results = cluster.run(
            lambda comm, base, extra: base + extra,
            10,
            per_rank_args=[(1,), (2,), (3,)],
        )
        assert results == [11, 12, 13]

    def test_single_rank_runs_inline(self):
        cluster = VirtualCluster(1)
        assert cluster.run(lambda comm: comm.size) == [1]

    @pytest.mark.parametrize("size", [2, 3, 5])
    def test_allreduce_min(self, size):
        cluster = VirtualCluster(size, timeout=5.0)
        results = cluster.run(lambda comm: comm.allreduce_min(float(comm.rank + 3)))
        assert results == [3.0] * size

    def test_barrier_completes(self):
        cluster = VirtualCluster(4, timeout=5.0)
        cluster.run(lambda comm: comm.barrier())

    def test_gather_arrays(self):
        cluster = VirtualCluster(3, timeout=5.0)

        def prog(comm):
            return comm.gather_arrays(np.full(2, float(comm.rank)))

        results = cluster.run(prog)
        assert results[1] is None and results[2] is None
        gathered = results[0]
        assert [g[0] for g in gathered] == [0.0, 1.0, 2.0]

    def test_stats_accounting(self):
        cluster = VirtualCluster(2, timeout=5.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "x", np.zeros(10))  # 80 bytes
            else:
                comm.recv(0, "x")
            return None

        cluster.run(prog)
        s0, s1 = cluster.comms[0].stats, cluster.comms[1].stats
        assert (s0.sends, s0.bytes_sent) == (1, 80)
        assert (s1.recvs, s1.bytes_received) == (1, 80)
        assert s0.startups == 1 and s1.startups == 1
        total = cluster.total_stats()
        assert total.startups == 2


class TestLibraryModels:
    def test_registry(self):
        assert library_by_name("pvm") is PVM
        assert library_by_name("MPL") is MPL
        with pytest.raises(KeyError, match="known"):
            library_by_name("mpi")

    def test_cost_structure(self):
        t_small = PVM.send_cpu_time(100)
        t_big = PVM.send_cpu_time(100_000)
        assert t_big > t_small
        assert t_small > PVM.per_byte_cpu * 100  # startup dominates

    def test_paper_orderings(self):
        """MPL is the lean native library; PVMe the heavy port; Cray PVM
        the thin T3D shim (paper Sections 7.2-7.3)."""
        n = 3000
        assert MPL.send_cpu_time(n) < PVME.send_cpu_time(n)
        assert CRAY_PVM.send_cpu_time(n) < MPL.send_cpu_time(n)
        assert CRAY_PVM.wire_startup < MPL.wire_startup < PVM.wire_startup

    def test_only_mpl_blocks(self):
        assert MPL.blocking_send
        assert not PVM.blocking_send
        assert not PVME.blocking_send

    def test_scaling(self):
        fast = PVM.scaled(0.5)
        assert fast.cpu_send_overhead == pytest.approx(
            PVM.cpu_send_overhead / 2
        )
        assert fast.wire_startup == pytest.approx(PVM.wire_startup / 2)
        assert PVM.scaled(1.0) is PVM

    def test_stats_merge(self):
        a = CommStats(sends=2, recvs=1, bytes_sent=10, bytes_received=5)
        b = CommStats(sends=1, recvs=2, bytes_sent=20, bytes_received=40)
        m = a.merged_with(b)
        assert (m.sends, m.recvs) == (3, 3)
        assert (m.bytes_sent, m.bytes_received) == (30, 45)


class TestNonBlocking:
    def test_isend_completes_immediately(self):
        cluster = VirtualCluster(2, timeout=5.0)

        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(1, "x", np.arange(3.0))
                assert req.test()
                assert req.wait() is None
                return None
            return comm.recv(0, "x")

        results = cluster.run(prog)
        assert np.array_equal(results[1], np.arange(3.0))

    def test_irecv_wait(self):
        cluster = VirtualCluster(2, timeout=5.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "x", np.ones(4))
                return None
            req = comm.irecv(0, "x")
            return req.wait()

        results = cluster.run(prog)
        assert np.array_equal(results[1], np.ones(4))

    def test_irecv_test_polls_without_blocking(self):
        import time

        cluster = VirtualCluster(2, timeout=5.0)

        def prog(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                comm.send(1, "late", np.ones(1))
                return None
            req = comm.irecv(0, "late")
            polls = 0
            while not req.test():
                polls += 1
                time.sleep(0.005)
            return polls, req.wait()

        results = cluster.run(prog)
        polls, payload = results[1]
        assert polls >= 1  # genuinely overlapped with the sender's delay
        assert payload[0] == 1.0

    def test_irecv_accounts_stats_once(self):
        cluster = VirtualCluster(2, timeout=5.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "x", np.zeros(10))
                return None
            req = comm.irecv(0, "x")
            req.wait()
            req.wait()  # idempotent
            return comm.stats.recvs

        results = cluster.run(prog)
        assert results[1] == 1

    def test_try_get_drains_out_of_order(self):
        mb = Mailbox(owner=0, timeout=1.0)
        mb.put(1, "b", np.array([2.0]))
        mb.put(1, "a", np.array([1.0]))
        assert mb.try_get(1, "missing") is None
        assert mb.try_get(1, "a")[0] == 1.0
        assert mb.try_get(1, "b")[0] == 2.0


class TestReceiveResilience:
    """Per-call timeouts, fast tag-mismatch failure, and cluster aborts
    (the ISSUE-3 hot-seam hardening)."""

    def test_per_call_timeout_overrides_default(self):
        import time

        mb = Mailbox(owner=0, timeout=30.0)
        t0 = time.perf_counter()
        with pytest.raises(DeadlockError):
            mb.get(1, "never", timeout=0.05)
        assert time.perf_counter() - t0 < 5.0

    def test_timeout_error_names_the_seam(self):
        """The failure message must carry receiver, sender and tag."""
        mb = Mailbox(owner=3, timeout=0.05)
        with pytest.raises(
            DeadlockError, match=r"rank 3.*from 1.*'halo:left'"
        ):
            mb.get(1, "halo:left")

    def test_mistagged_send_fails_fast_with_context(self):
        """A tag typo must fail within the receive timeout, naming both
        endpoints and the tag the receiver was blocked on — not hang for
        the cluster-default timeout."""
        import time

        cluster = VirtualCluster(2, timeout=60.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, "halo:rigth", np.ones(3))  # the typo
                return None
            return comm.recv(0, "halo:right", timeout=0.1)

        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="rank 1 failed") as exc:
            cluster.run(prog)
        assert time.perf_counter() - t0 < 10.0
        cause = exc.value.__cause__
        assert isinstance(cause, DeadlockError)
        assert "rank 1" in str(cause)
        assert "from 0" in str(cause)
        assert "'halo:right'" in str(cause)

    def test_comm_recv_forwards_timeout(self):
        cluster = VirtualCluster(2, timeout=60.0)

        def prog(comm):
            if comm.rank == 1:
                try:
                    comm.recv(0, "nothing", timeout=0.05)
                except DeadlockError:
                    return "timed-out"
            return "sender"

        assert cluster.run(prog)[1] == "timed-out"

    def test_crashed_rank_aborts_blocked_peers(self):
        """A dying rank must wake receivers immediately (no hang): the
        survivors see ClusterAborted, the failure is structured."""
        import time

        from repro.msglib import RankFailure
        from repro.msglib.vchannel import ClusterAborted

        cluster = VirtualCluster(4, timeout=60.0)

        def prog(comm):
            if comm.rank == 2:
                raise ValueError("injected death")
            # Everyone else blocks on a message rank 2 will never send.
            return comm.recv(2, "never")

        t0 = time.perf_counter()
        with pytest.raises(RankFailure) as exc:
            cluster.run(prog)
        assert time.perf_counter() - t0 < 10.0
        failure = exc.value
        assert failure.rank == 2
        assert isinstance(failure.__cause__, ValueError)
        assert set(failure.ranks) == {0, 1, 2, 3}
        secondary = [e for _, _, e in failure.failures if
                     isinstance(e, ClusterAborted)]
        assert len(secondary) == 3

    def test_abort_reason_propagates(self):
        from repro.msglib.vchannel import ClusterAborted

        mb = Mailbox(owner=0, timeout=5.0)
        mb.abort("rank 7 died")
        with pytest.raises(ClusterAborted, match="rank 7 died"):
            mb.get(1, "anything")


class TestCollectiveTagSafety:
    """Generic collectives must be safe on *any* conforming transport,
    including at-least-once ones that deliver duplicates (ISSUE-5 bugfix:
    constant collective tags let a stale duplicate from collective N
    satisfy collective N+1's receive)."""

    class _DuplicatingComm:
        """At-least-once transport: every send is delivered twice.

        Thin decorator over a VirtualComm — no reliable-framing layer, so
        the duplicate really reaches the peer's mailbox as a second
        envelope under the same (source, tag)."""

        def __init__(self, inner):
            self.inner = inner
            self.rank = inner.rank
            self.size = inner.size
            self.stats = inner.stats
            # Inherit the generic collectives unchanged.
            self.allreduce_min = lambda *a, **kw: type(inner).allreduce_min(
                self, *a, **kw
            )
            self.barrier = lambda *a, **kw: type(inner).barrier(self, *a, **kw)
            self.gather_arrays = lambda *a, **kw: type(inner).gather_arrays(
                self, *a, **kw
            )

        def __getattr__(self, name):
            return getattr(self.inner, name)

        def send(self, dest, tag, array):
            self.inner.send(dest, tag, array)
            self.inner.send(dest, tag, array)  # the duplicate

        def recv(self, source, tag, timeout=None):
            return self.inner.recv(source, tag, timeout=timeout)

    def test_consecutive_allreduces_survive_duplication(self):
        """Each collective must compute its own minimum even when every
        message is delivered twice: with constant tags, collective i+1
        consumes the duplicate of collective i's contribution and returns
        a stale (wrong) value."""
        from repro.msglib.api import Communicator

        rounds = [(3.0, 8.0), (9.0, 4.0), (1.0, 7.0), (6.0, 2.0)]
        cluster = VirtualCluster(2, timeout=10.0)

        def prog(comm):
            dup = self._DuplicatingComm(comm)
            return [
                Communicator.allreduce_min(dup, vals[comm.rank])
                for vals in rounds
            ]

        results = cluster.run(prog)
        expected = [min(vals) for vals in rounds]
        assert results[0] == expected
        assert results[1] == expected

    def test_consecutive_barriers_and_gathers_survive_duplication(self):
        from repro.msglib.api import Communicator

        cluster = VirtualCluster(2, timeout=10.0)

        def prog(comm):
            dup = self._DuplicatingComm(comm)
            out = []
            for i in range(3):
                Communicator.barrier(dup)
                g = Communicator.gather_arrays(
                    dup, np.array([float(comm.rank), float(i)])
                )
                if g is not None:
                    out.append([a.copy() for a in g])
            return out

        results = cluster.run(prog)
        for i, gathered in enumerate(results[0]):
            assert np.array_equal(gathered[0], [0.0, float(i)])
            assert np.array_equal(gathered[1], [1.0, float(i)])


class TestGatherAliasing:
    """ISSUE-5 bugfix: rank 0's own contribution to gather_arrays must be
    a copy — mutating the send buffer after the gather must not corrupt
    the gathered slot (remote slots already arrive as fresh copies)."""

    def test_gather_does_not_alias_rank0_send_buffer(self):
        cluster = VirtualCluster(2, timeout=10.0)

        def prog(comm):
            mine = np.full(4, float(comm.rank + 1))
            g = comm.gather_arrays(mine, tag="g")
            mine[:] = -99.0  # caller reuses its send buffer
            return g

        results = cluster.run(prog)
        gathered = results[0]
        assert np.array_equal(gathered[0], np.full(4, 1.0))
        assert np.array_equal(gathered[1], np.full(4, 2.0))


class TestIrecvTimeout:
    """ISSUE-5 bugfix: irecv must honour recv's timeout= plumbing — a lazy
    irecv against a silent peer fails fast instead of hanging for the
    cluster-default timeout."""

    def test_lazy_irecv_wait_honours_timeout(self):
        import time

        cluster = VirtualCluster(2, timeout=60.0)

        def prog(comm):
            if comm.rank == 0:
                return "sender"
            req = comm.irecv(0, "never", timeout=0.05)
            t0 = time.perf_counter()
            try:
                req.wait()
            except DeadlockError:
                return time.perf_counter() - t0
            return None

        waited = cluster.run(prog)[1]
        assert waited is not None, "irecv.wait() never timed out"
        assert waited < 5.0

    def test_generic_fallback_irecv_wait_honours_timeout(self):
        """The ABC's default _LazyRecv (used by backends without a probing
        mailbox) must forward timeout= to recv."""
        import time

        from repro.msglib.api import Communicator

        cluster = VirtualCluster(2, timeout=60.0)

        def prog(comm):
            if comm.rank == 0:
                return "sender"
            req = Communicator.irecv(comm, 0, "never", timeout=0.05)
            t0 = time.perf_counter()
            try:
                req.wait()
            except DeadlockError:
                return time.perf_counter() - t0
            return None

        waited = cluster.run(prog)[1]
        assert waited is not None, "fallback irecv.wait() never timed out"
        assert waited < 5.0
