"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show all reproducible experiments.
``experiment <id>``
    Regenerate one paper artifact (``table1``, ``table2``, ``fig01`` ..
    ``fig13``) and print it.
``characterize``
    Measure this package's own Table-1 application characteristics with an
    instrumented distributed run.
``simulate --platform NAME --procs P [--euler] [--version V]``
    One simulated-machine run with the execution-time split.
``run <scenario> [--steps S --nprocs P --platform NAME --version V
--trace PATH]``
    The unified facade (``repro.api.run``): serial, distributed, or
    simulated-platform execution of a named scenario, optionally exporting
    a Chrome/Perfetto trace.
``jet [--nx N --nr N --steps S --euler]``
    Run the real solver and print diagnostics plus a momentum contour.
``report [paths ...] [--last N]``
    Render performance ledgers (``BENCH_runs.jsonl`` lines from
    ``run(..., metrics=True)``) or recorded trace files — autodetected
    per path.  Defaults to the standard ledger under
    ``benchmarks/output/``.
``serve [--workers N --socket PATH --store DIR]``
    Start the run service: a worker-pool job queue behind a Unix socket,
    deduplicating identical requests against a persistent result store.
``submit <scenario> [run options] | submit --experiment ID``
    Submit a run (or paper-artifact regeneration) to a running service
    and stream its status; cached fingerprints return instantly.
``jobs [--socket PATH]``
    List the jobs the running service knows about.
``top [--socket PATH]``
    Live service utilization: queue depth, worker occupancy, dedupe hit
    rate, and per-running-job step rates with straggler verdicts.
``tail <job> [--socket PATH --timeout S]``
    Stream a running job's per-step telemetry records (one line per rank
    per step: step, t, dt, ms, comm split) until it completes.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(args) -> int:
    from .experiments import EXPERIMENTS

    print("Reproducible experiments (paper tables and figures):")
    for k in sorted(EXPERIMENTS):
        print(f"  {k}")
    return 0


def _cmd_experiment(args) -> int:
    from .experiments import run_experiment

    print(run_experiment(args.id))
    return 0


def _cmd_characterize(args) -> int:
    from .analysis.tables import table1, table2

    print(table1("paper"))
    print()
    print(table1("measured"))
    print()
    print(table2())
    return 0


def _cmd_simulate(args) -> int:
    from .machines.platforms import platform_by_name, CRAY_YMP
    from .simulate.machine import SimulatedMachine
    from .simulate.sharedmem import SharedMemoryMachine
    from .simulate.workload import EULER, NAVIER_STOKES

    app = EULER if args.euler else NAVIER_STOKES
    plat = platform_by_name(args.platform)
    if plat is CRAY_YMP or plat.cpu is None:
        r = SharedMemoryMachine(plat, args.procs).run(app)
    else:
        r = SimulatedMachine(plat, args.procs, version=args.version).run(app)
    print(r.summary())
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.sweeps import sweep, sweep_table
    from .machines.platforms import platform_by_name
    from .simulate.workload import EULER, NAVIER_STOKES

    platforms = [platform_by_name(n) for n in args.platforms]
    apps = [EULER] if args.euler else [NAVIER_STOKES]
    records = sweep(
        platforms, apps, procs=args.procs, versions=args.versions
    )
    print(sweep_table(records))
    return 0


def _cmd_trace(args) -> int:
    from .analysis.report import render_gantt
    from .machines.platforms import platform_by_name
    from .simulate.machine import SimulatedMachine
    from .simulate.workload import EULER, NAVIER_STOKES

    plat = platform_by_name(args.platform)
    app = EULER if args.euler else NAVIER_STOKES
    r = SimulatedMachine(plat, args.procs, version=args.version).run(
        app, steps_window=4, trace=True
    )
    print(render_gantt(r, title=f"{plat.name}, p={args.procs}, V{args.version}"))
    return 0


def _cmd_run(args) -> int:
    from .api import run

    kw = {}
    if args.nx is not None:
        kw["nx"] = args.nx
    if args.nr is not None:
        kw["nr"] = args.nr
    try:
        res = run(
            args.scenario,
            steps=args.steps,
            nprocs=args.nprocs,
            platform=args.platform,
            version=args.version,
            trace=args.trace,
            decomposition=args.decomposition,
            px=args.px,
            pr=args.pr,
            substrate=args.substrate,
            faults=args.faults,
            fault_seed=args.fault_seed,
            checkpoint_every=args.checkpoint_every,
            metrics=args.metrics,
            ledger=args.ledger or args.metrics,
            **kw,
        )
    except (KeyError, TypeError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    print(res.summary())
    if res.fault_stats is not None:
        injected = sum(s.total_injected for s in res.fault_stats if s)
        recovered = sum(
            s.retransmissions + s.dups_discarded + s.corrupt_discarded
            for s in res.fault_stats if s
        )
        print(
            f"faults: {injected} injected, {recovered} recovery actions, "
            f"{res.restarts} checkpoint restart(s)"
        )
    if res.trace is not None:
        print(
            f"trace: {len(res.trace.spans)} spans, {len(res.trace.events)} "
            f"events over {max(len(res.trace.ranks()), 1)} rank(s)"
        )
    if res.trace_path:
        print(f"chrome trace written to {res.trace_path} "
              "(open at https://ui.perfetto.dev)")
    if res.perf is not None:
        from .obs import render_report

        print()
        print(render_report(res.perf))
    return 0


def _looks_like_ledger(path: str) -> bool:
    """A perf ledger starts with a JSON object carrying our schema tag;
    trace files are either Chrome JSON or typed JSON-lines."""
    import json

    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    return json.loads(line).get("schema", "").startswith(
                        "repro.perf/"
                    )
    except (OSError, ValueError):
        pass
    return False


def _cmd_report(args) -> int:
    from .obs import read_ledger, render_ledger, render_report

    paths = args.paths or ["benchmarks/output/BENCH_runs.jsonl"]
    status = 0
    for path in paths:
        if _looks_like_ledger(path):
            try:
                reports = read_ledger(path)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                status = 2
                continue
            print(render_ledger(reports, title=path))
            for rp in reports[-args.last:] if args.last else []:
                print()
                print(render_report(rp))
        else:
            # Fall back to the trace component-split report.
            try:
                from .analysis.metrics import component_breakdown
                from .analysis.report import format_table
                from .obs import load_trace

                trace = load_trace(path)
                bd = component_breakdown(trace)
            except (OSError, ValueError) as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                status = 2
                continue
            rows = [
                [r, f"{c.computation:.4f}", f"{c.startup:.4f}",
                 f"{c.transfer:.4f}", f"{c.total:.4f}"]
                for r, c in bd.per_rank
            ]
            print(format_table(
                ["rank", "computation s", "startup s", "transfer s",
                 "total s"],
                rows,
                title=f"{path}: {bd.source} components",
            ))
        print()
    return status


def _cmd_jet(args) -> int:
    from .analysis.report import ascii_contour
    from .api import run

    res = run(
        "jet",
        steps=args.steps,
        nx=args.nx,
        nr=args.nr,
        viscous=not args.euler,
    )
    print(
        f"t={res.t:.2f}  physical={res.state.is_physical()}  "
        f"{res.timings.ms_per_step:.1f} ms/step"
    )
    print(ascii_contour(res.state.axial_momentum, width=90, height=18,
                        title="axial momentum rho*u"))
    return 0


def _cmd_serve(args) -> int:
    from .service import ResultStore, serve

    store = ResultStore(args.store) if args.store else None

    def _announce(server):
        root = server.service.store.root
        print(
            f"repro service: {server.service.workers} worker(s), "
            f"store {root}, socket {server.socket_path}",
            flush=True,
        )

    try:
        serve(
            socket_path=args.socket,
            workers=args.workers,
            store=store,
            ledger=not args.no_ledger,
            ready=_announce,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _format_job(job: dict) -> str:
    extra = ""
    if job.get("status") == "cached":
        extra = "  (served from result store)"
    elif job.get("attached_to"):
        extra = f"  (deduplicated onto {job['attached_to']})"
    elif job.get("error"):
        extra = f"  {job['error'].splitlines()[-1]}"
    return (
        f"{job['id']}  {job['status']:<8}  {job['kind']:<10}  "
        f"fp={job['fingerprint']}{extra}"
    )


def _cmd_submit(args) -> int:
    from .request import RunRequest
    from .service import ExperimentRequest, ServiceClient, ServiceUnavailable

    if args.experiment:
        if args.scenario:
            print("error: give a scenario or --experiment, not both",
                  file=sys.stderr)
            return 2
        req = ExperimentRequest(args.experiment)
    elif args.scenario:
        kw = {}
        if args.nx is not None:
            kw["nx"] = args.nx
        if args.nr is not None:
            kw["nr"] = args.nr
        req = RunRequest.from_run_args(
            args.scenario,
            steps=args.steps,
            nprocs=args.nprocs,
            substrate=args.substrate,
            decomposition=args.decomposition,
            px=args.px,
            pr=args.pr,
            version=args.version,
            faults=args.faults,
            fault_seed=args.fault_seed,
            checkpoint_every=args.checkpoint_every,
            **kw,
        )
    else:
        print("error: need a scenario or --experiment ID", file=sys.stderr)
        return 2

    client = ServiceClient(args.socket)
    try:
        job = client.submit(req)
        print(_format_job(job))
        if args.no_wait:
            return 0
        for snap in client.watch(job["id"], timeout=args.timeout):
            if snap["status"] != job["status"]:
                print(_format_job(snap))
            job = snap
        if job["status"] == "failed":
            return 1
        if not args.quiet:
            result = client.result(job["id"])
            print()
            print(result if isinstance(result, str) else result.summary())
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_jobs(args) -> int:
    from .service import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.socket)
    try:
        info = client.ping()
        jobs = client.jobs()
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"service pid {info['pid']}: {info['workers']} worker(s), "
        f"{info['executed']} executed, {info['store_entries']} stored "
        f"result(s) in {info['store_root']}"
    )
    for job in jobs:
        print(_format_job(job))
    if not jobs:
        print("no jobs submitted yet")
    return 0


def _cmd_top(args) -> int:
    from .service import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.socket)
    try:
        top = client.top()
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    busy, workers = top["busy"], top["workers"]
    util = 100.0 * busy / workers if workers else 0.0
    print(
        f"workers {busy}/{workers} busy ({util:.0f}%)  "
        f"queue depth {top['queue_depth']}  "
        f"jobs {top['jobs_total']} ({top['executed']} executed, "
        f"dedupe hit rate {100.0 * top['dedupe_rate']:.0f}%)  "
        f"stream records {top['stream_records']}"
    )
    for row in top["running"]:
        line = (
            f"  {row['id']}  {row.get('scenario') or '?':<12} "
            f"pid={row['worker_pid']}"
        )
        if row.get("step") is not None:
            line += f"  step {row['step']}"
        if row.get("records_per_s") is not None:
            line += f"  {row['records_per_s']:.1f} rec/s"
        balance = row.get("balance")
        if balance:
            line += (
                f"  [{balance['verdict']}: max/mean "
                f"{balance['max_mean_step_ratio']:.2f}, slowest rank "
                f"{balance['slowest_rank']}]"
            )
        print(line)
    if not top["running"]:
        print("  no running jobs")
    return 0


def _cmd_tail(args) -> int:
    from .service import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.socket)
    try:
        for rec in client.tail(args.job, timeout=args.timeout):
            if rec.get("kind") == "cached":
                # Dedupe hit: the job never executed, so there is no
                # per-step telemetry to follow.
                print(
                    f"{args.job}: served from cache "
                    f"(fingerprint {rec.get('fingerprint')}); "
                    "no step records"
                )
                continue
            comm = (
                f"  comm {rec['comm_ms']:.2f} ms"
                if rec.get("comm_ms") is not None
                else ""
            )
            extra = ""
            if rec.get("retries"):
                extra += f"  retries {rec['retries']}"
            if rec.get("lost"):
                extra += f"  lost {rec['lost']}"
            print(
                f"rank {rec.get('rank', 0)}  step {rec.get('step'):>5}  "
                f"t={rec.get('t'):.4f}  dt={rec.get('dt'):.2e}  "
                f"{rec.get('ms'):7.2f} ms{comm}{extra}"
            )
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    p = sub.add_parser("experiment", help="regenerate one paper artifact")
    p.add_argument("id", help="table1, table2, fig01 .. fig13")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("characterize", help="measured Table 1 / Table 2")
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("simulate", help="one simulated platform run")
    p.add_argument("--platform", required=True,
                   help="e.g. 'LACE/560+ALLNODE-S', 'IBM SP', 'Cray T3D'")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--version", type=int, default=5)
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("sweep", help="platform x procs x version grid")
    p.add_argument("--platforms", nargs="+", required=True)
    p.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    p.add_argument("--versions", type=int, nargs="+", default=[5])
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("trace", help="per-rank Gantt of a simulated step")
    p.add_argument("--platform", required=True)
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--version", type=int, default=5)
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "run", help="unified facade: serial / distributed / simulated"
    )
    p.add_argument("scenario",
                   help="jet, jet-euler, advection, acoustic, sod")
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--platform", default=None,
                   help="simulate on a 1995 platform instead of running")
    p.add_argument("--version", type=int, default=7, choices=(5, 6, 7))
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="export a Chrome/Perfetto trace of the run")
    p.add_argument("--decomposition", default="axial",
                   choices=("axial", "radial", "2d"))
    p.add_argument("--px", type=int, default=None,
                   help="axial rank-grid extent for --decomposition 2d "
                        "(px * pr must equal --nprocs)")
    p.add_argument("--pr", type=int, default=None,
                   help="radial rank-grid extent for --decomposition 2d")
    p.add_argument("--nx", type=int, default=None)
    p.add_argument("--nr", type=int, default=None)
    p.add_argument("--faults", default=None, metavar="PRESET",
                   help="inject faults: lossy-ethernet, jittery-now, "
                        "drop-storm, crash-rank1, lossy-crash")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="re-seed the fault plan (reproduces a printed seed)")
    p.add_argument("--substrate", choices=("virtual", "process"),
                   default="virtual",
                   help="distributed execution substrate: 'virtual' (one "
                        "thread per rank, GIL-serialized) or 'process' (one "
                        "OS process per rank over shared memory — real "
                        "multi-core speedup)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="gather a restart snapshot every N steps "
                        "(distributed runs; lets injected crashes recover)")
    p.add_argument("--metrics", action="store_true",
                   help="collect per-stage/per-rank metrics, print the "
                        "performance report, and append it to the run "
                        "ledger")
    p.add_argument("--ledger", metavar="PATH", default=None,
                   help="append the performance report to this JSON-lines "
                        "ledger (implies --metrics semantics for output "
                        "location; default with --metrics: "
                        "benchmarks/output/BENCH_runs.jsonl)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "report", help="render performance ledgers / trace breakdowns"
    )
    p.add_argument("paths", nargs="*",
                   help="ledger (.jsonl) or trace files; default: "
                        "benchmarks/output/BENCH_runs.jsonl")
    p.add_argument("--last", type=int, default=1, metavar="N",
                   help="also print the full per-stage report of the last "
                        "N ledger entries (0 disables)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "serve", help="start the run service (worker pool + result cache)"
    )
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes executing jobs (default 2)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="Unix control socket (default: "
                        "$REPRO_SERVICE_SOCKET or the service store dir)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="result-store directory (default: "
                        "benchmarks/output/service under $REPRO_DATA_DIR "
                        "or the repo)")
    p.add_argument("--no-ledger", action="store_true",
                   help="don't append worker runs to the perf ledger")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a run to the service (dedupes by fingerprint)"
    )
    p.add_argument("scenario", nargs="?", default=None,
                   help="jet, jet-euler, advection, acoustic, sod")
    p.add_argument("--experiment", default=None, metavar="ID",
                   help="submit a paper artifact instead (table1, fig01 ..)")
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--version", type=int, default=7, choices=(5, 6, 7))
    p.add_argument("--decomposition", default="axial",
                   choices=("axial", "radial", "2d"))
    p.add_argument("--px", type=int, default=None,
                   help="axial rank-grid extent for --decomposition 2d")
    p.add_argument("--pr", type=int, default=None,
                   help="radial rank-grid extent for --decomposition 2d")
    p.add_argument("--substrate", choices=("virtual", "process"),
                   default="virtual")
    p.add_argument("--faults", default=None, metavar="PRESET")
    p.add_argument("--fault-seed", type=int, default=None)
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N")
    p.add_argument("--nx", type=int, default=None)
    p.add_argument("--nr", type=int, default=None)
    p.add_argument("--socket", default=None, metavar="PATH")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for completion (default 600)")
    p.add_argument("--no-wait", action="store_true",
                   help="enqueue and return without watching the job")
    p.add_argument("--quiet", action="store_true",
                   help="don't print the result payload when done")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("jobs", help="list jobs on the running service")
    p.add_argument("--socket", default=None, metavar="PATH")
    p.set_defaults(fn=_cmd_jobs)

    p = sub.add_parser(
        "top", help="live service utilization and per-job step rates"
    )
    p.add_argument("--socket", default=None, metavar="PATH")
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser(
        "tail", help="stream a job's per-rank per-step telemetry records"
    )
    p.add_argument("job", help="job id (from submit / jobs)")
    p.add_argument("--socket", default=None, metavar="PATH")
    p.add_argument("--timeout", type=float, default=None,
                   help="stop following after this many seconds")
    p.set_defaults(fn=_cmd_tail)

    p = sub.add_parser("jet", help="run the real solver")
    p.add_argument("--nx", type=int, default=96)
    p.add_argument("--nr", type=int, default=40)
    p.add_argument("--steps", type=int, default=300)
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_jet)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
