#!/usr/bin/env python3
"""Numerical verification report for the 2-4 MacCormack solver.

Runs the three verification problems and prints a compact report:

1. **Order of accuracy** — a smooth entropy wave on a periodic domain,
   refined 24 -> 48 -> 96 points (expect ~4th-order spatial convergence).
2. **Conservation** — periodic advection, drift of the conserved totals
   (expect round-off).
3. **Sod shock tube vs the exact Riemann solution** — wave positions and
   star-region states (expect a few percent, limited by the regularizing
   viscosity).

Usage::

    python examples/verification.py
"""

import numpy as np

from repro import periodic_advection_scenario, shock_tube_scenario
from repro.analysis.report import format_table
from repro.validation.riemann import sod_solution


def order_of_accuracy() -> list[list[str]]:
    errs, ns = [], (24, 48, 96)
    for n in ns:
        sc = periodic_advection_scenario(n=n, mach=0.5, amplitude=1e-3)
        sc.solver.config.dissipation = 0.0
        sc.solver.config.dt = 2.5e-4
        sc.solver.run(100)
        x = sc.grid.xmesh()
        lam = sc.grid.nx * sc.grid.dx
        exact = 1.0 + 1e-3 * np.sin(2 * np.pi * (x - 0.5 * sc.solver.t) / lam)
        errs.append(np.abs(sc.state.rho - exact).max())
    rows = []
    for i, n in enumerate(ns):
        order = "" if i == 0 else f"{np.log2(errs[i - 1] / errs[i]):.2f}"
        rows.append([n, f"{errs[i]:.3e}", order])
    return rows


def conservation() -> float:
    sc = periodic_advection_scenario(n=32)
    t0 = sc.state.conserved_totals(radial_weight=False)
    sc.solver.run(100)
    t1 = sc.state.conserved_totals(radial_weight=False)
    return float(np.abs(t1 - t0).max())


def sod_comparison() -> list[list[str]]:
    sc = shock_tube_scenario(nx=300, nr=8, mu=8e-4)
    while sc.solver.t < 0.12:
        sc.solver.run(50)
    t = sc.solver.t
    x, rho, u = sc.grid.x, sc.state.rho[:, 4], sc.state.u[:, 4]

    thresh = 0.5 * (0.26557 + 0.125)
    interior = x > 0.55
    front = x[interior][np.argmax(rho[interior] < thresh)]
    j = int(np.argmin(np.abs(x - (0.5 + 1.3 * t))))
    return [
        ["shock position", f"{0.5 + 1.7522 * t:.4f}", f"{front:.4f}"],
        ["post-shock density", "0.26557", f"{rho[j]:.4f}"],
        ["star velocity u*", "0.92745", f"{u[j]:.4f}"],
    ]


def main() -> None:
    print(format_table(
        ["grid n", "max error", "observed order"],
        order_of_accuracy(),
        title="1. Spatial order of accuracy (entropy wave, dt fixed):",
    ))
    print(f"\n2. Conservation drift over 100 periodic steps: "
          f"{conservation():.2e}  (round-off)")
    print()
    print(format_table(
        ["quantity", "exact (Riemann)", "computed"],
        sod_comparison(),
        title="3. Sod shock tube at t=0.12 vs the exact solution:",
    ))


if __name__ == "__main__":
    main()
