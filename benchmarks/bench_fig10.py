"""Reproduction benchmark: Figure 10: Euler execution time on all computing platforms."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig10(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig10"),
        "Figure 10: Euler execution time on all computing platforms",
    )
