"""Ablation: heterogeneous LACE nodes (why the paper used uniform halves).

The real LACE mixed RS6000/560 and /590 nodes (and varying memory sizes);
the paper ran each experiment on a *uniform* half of the cluster.  This
bench simulates the alternative — an SPMD run spanning both halves — and
quantifies the imbalance penalty: with a balanced (equal-columns) domain
decomposition, every step waits for the slowest node, so the fast 590s
idle and the mixed cluster barely beats the slow half.
"""

from repro.analysis.metrics import balance_spread
from repro.analysis.report import format_table
from repro.machines.platforms import LACE_560
from repro.simulate.machine import SimulatedMachine
from repro.simulate.workload import NAVIER_STOKES

from conftest import run_and_print

#: 590-class nodes are ~1.7x the 560s (anchored CPU models).
FAST = 27.5 / 16.0


def _study() -> str:
    p = 16
    configs = [
        ("16 x 560 (paper's upper half)", [1.0] * p),
        ("16 x 590-equivalent", [FAST] * p),
        ("8 x 560 + 8 x 590 (mixed)", [1.0] * 8 + [FAST] * 8),
        ("alternating 560/590", [1.0, FAST] * 8),
    ]
    rows = []
    for label, factors in configs:
        r = SimulatedMachine(
            LACE_560, p, node_speed_factors=factors
        ).run(NAVIER_STOKES, steps_window=25)
        rows.append(
            [
                label,
                f"{r.execution_time:,.0f}",
                f"{balance_spread(r.per_rank_busy) * 100:.0f}%",
            ]
        )
    table = format_table(
        ["cluster composition", "NS exec @ p=16 (s)", "busy-time spread"],
        rows,
        title="Heterogeneous-cluster ablation (equal-columns decomposition):",
    )
    return table + (
        "\nThe mixed cluster runs at nearly the slow half's speed — the "
        "fast nodes idle at every halo exchange.  This is why the paper "
        "benchmarks uniform halves, and why its Figure-13 balance holds: "
        "equal work only balances equal nodes."
    )


def test_imbalance_ablation(benchmark):
    run_and_print(
        benchmark, _study, "Ablation: heterogeneous LACE node mix"
    )
