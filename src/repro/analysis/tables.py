"""Table 1 (application characteristics) and Table 2 (ratios) generators.

Both tables come in two modes:

* ``source="paper"`` — the published numbers (what the simulated-machine
  figures consume);
* ``source="measured"`` — characteristics measured from this package: FP
  counts from the kernel operation inventory
  (:mod:`repro.numerics.opcount`) and communication from an instrumented
  real run of the distributed solver at the paper's radial resolution (the
  per-step, per-processor message counts and volumes are independent of
  the axial extent and of the processor count, so a short narrow run
  measures them exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants
from ..numerics.opcount import euler_ops, navier_stokes_ops
from .metrics import flops_per_byte, flops_per_startup
from .report import format_table


@dataclass(frozen=True)
class AppCharacteristics:
    """One row of Table 1."""

    name: str
    total_flops: float
    startups_per_proc: float
    volume_bytes_per_proc: float

    def as_row(self) -> list:
        return [
            self.name,
            f"{self.total_flops / 1e6:,.0f}",
            f"{self.startups_per_proc:,.0f}",
            f"{self.volume_bytes_per_proc / constants.MB:,.0f}",
        ]


PAPER_NS = AppCharacteristics(
    "N-S",
    constants.PAPER_TOTAL_FLOPS_NS,
    constants.PAPER_STARTUPS_NS,
    constants.PAPER_VOLUME_NS_MB * constants.MB,
)
PAPER_EULER = AppCharacteristics(
    "Euler",
    constants.PAPER_TOTAL_FLOPS_EULER,
    constants.PAPER_STARTUPS_EULER,
    constants.PAPER_VOLUME_EULER_MB * constants.MB,
)


def measured_characteristics(
    viscous: bool,
    nx: int = 60,
    nranks: int = 4,
    probe_steps: int = 4,
    steps: int = constants.PAPER_STEPS,
) -> AppCharacteristics:
    """Measure our solver's Table-1 row with a short instrumented run.

    Communication per step per interior processor depends only on the
    radial resolution (messages are full radial columns), so the probe runs
    the real distributed solver at ``nr = 100`` with a short axial domain
    and extrapolates linearly in steps.
    """
    from ..parallel.runner import ParallelJetSolver
    from ..scenarios import jet_scenario

    sc = jet_scenario(nx=nx, nr=constants.PAPER_NR, viscous=viscous)
    result = ParallelJetSolver(
        sc.state, sc.solver.config, nranks=nranks, version=5
    ).run(probe_steps)
    stats = result.interior_rank_stats
    startups_per_step = stats.startups / probe_steps
    volume_per_step = stats.bytes_sent / probe_steps
    ops = navier_stokes_ops() if viscous else euler_ops()
    return AppCharacteristics(
        name="N-S" if viscous else "Euler",
        total_flops=ops.total(steps=steps),
        startups_per_proc=startups_per_step * steps,
        volume_bytes_per_proc=volume_per_step * steps,
    )


def table1(source: str = "paper") -> str:
    """Render Table 1: application characteristics."""
    if source == "paper":
        rows = [PAPER_NS, PAPER_EULER]
        title = "Table 1: Application Characteristics (paper values)"
    elif source == "measured":
        rows = [
            measured_characteristics(viscous=True),
            measured_characteristics(viscous=False),
        ]
        title = "Table 1: Application Characteristics (measured from this package)"
    else:
        raise ValueError(f"unknown source {source!r}")
    return format_table(
        ["Appln", "Total Comp. (FP Ops x1e6)", "Start-ups/proc", "Volume (MB)/proc"],
        [r.as_row() for r in rows],
        title=title,
    )


def table2(
    procs=(1, 2, 4, 8, 16),
    ns: AppCharacteristics = PAPER_NS,
    euler: AppCharacteristics = PAPER_EULER,
) -> str:
    """Render Table 2: computation-communication ratios."""
    rows = []
    for p in procs:
        if p < 2:
            rows.append([p, "inf", "inf", "inf", "inf"])
            continue
        rows.append(
            [
                p,
                f"{flops_per_byte(ns.total_flops, p, ns.volume_bytes_per_proc):.0f}",
                f"{flops_per_byte(euler.total_flops, p, euler.volume_bytes_per_proc):.0f}",
                f"{flops_per_startup(ns.total_flops, p, ns.startups_per_proc) / 1e3:.0f}K",
                f"{flops_per_startup(euler.total_flops, p, euler.startups_per_proc) / 1e3:.0f}K",
            ]
        )
    return format_table(
        [
            "No. of Procs.",
            "FPs/Byte N-S",
            "FPs/Byte Euler",
            "FPs/Start-up N-S",
            "FPs/Start-up Euler",
        ],
        rows,
        title="Table 2: Computation-Communication Ratios",
    )
