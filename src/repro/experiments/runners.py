"""Dispatch table: experiment id -> reproduction function.

Every entry regenerates one table or figure of the paper and returns the
rendered text (the benchmark harness times and prints them; EXPERIMENTS.md
records the paper-vs-measured comparison).

``run_fig01`` is the only experiment that runs the *real* solver — the
excited-jet axial-momentum field.  It defaults to half the paper's
resolution and a short run so it completes in seconds; pass
``full=True`` for the paper's 250x100 grid (16,000 steps took the original
authors many Y-MP hours; our vectorized numpy solver does 250x100 at
roughly 30 ms/step, so the full run is minutes, not hours).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..analysis.figures import (
    fig02_versions,
    fig03_fig04_lace,
    fig05_fig06_components,
    fig07_fig08_comm_versions,
    fig09_fig10_platforms,
    fig11_fig12_libraries,
    fig13_load_balance,
)
from ..analysis.report import ascii_contour
from ..analysis.tables import measured_characteristics, table1, table2
from ..simulate.workload import EULER, NAVIER_STOKES


def run_fig01(
    nx: int = 125,
    nr: int = 50,
    steps: int = 2000,
    full: bool = False,
    save_npz: str | None = None,
    scenario=None,
    nprocs: int = 1,
    trace=None,
) -> str:
    """Figure 1: axial momentum in the excited axisymmetric jet.

    Runs the actual Navier-Stokes solver with the paper's jet parameters
    (Mach 1.5, Re 1.2e6, St = 1/8) via :func:`repro.api.run` and renders
    the rho*u field as an ASCII contour (optionally saving the raw field to
    ``save_npz``).  Pass a :class:`~repro.scenarios.Scenario` to override
    the setup, ``nprocs`` to run distributed, ``trace`` as in the facade.
    """
    from ..api import run
    from ..scenarios import jet_scenario

    if full:
        nx, nr, steps = 250, 100, 16000
    sc = scenario if scenario is not None else jet_scenario(
        nx=nx, nr=nr, viscous=True
    )
    res = run(sc, steps=steps, nprocs=nprocs, trace=trace)
    # Crop to the jet region (r <= 2.5 radii) — the paper's Figure 1 frame.
    j_max = int(np.searchsorted(sc.grid.r, 2.5))
    mom = res.state.axial_momentum[:, : max(j_max, 4)]
    if save_npz:
        np.savez(
            save_npz,
            axial_momentum=mom,
            x=sc.grid.x,
            r=sc.grid.r,
            t=res.t,
            steps=res.steps,
        )
    title = (
        f"Figure 1: X MOMENTUM — excited axisymmetric jet "
        f"(M=1.5, Re=1.2e6, St=1/8; grid {sc.grid.nx}x{sc.grid.nr}, "
        f"{steps} steps, t={res.t:.1f})"
    )
    return ascii_contour(mom, title=title)


def run_table1(source: str = "both") -> str:
    if source == "both":
        return table1("paper") + "\n\n" + table1("measured")
    return table1(source)


def run_table2() -> str:
    return table2()


def characterize() -> dict:
    """Measured Table-1 characteristics of this package's solver
    (machine-readable; used by tests and EXPERIMENTS.md)."""
    ns = measured_characteristics(viscous=True)
    euler = measured_characteristics(viscous=False)
    return {
        "ns": ns,
        "euler": euler,
        "ns_over_euler_flops": ns.total_flops / euler.total_flops,
        "ns_over_euler_volume": ns.volume_bytes_per_proc
        / euler.volume_bytes_per_proc,
    }


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig01": run_fig01,
    "fig02": lambda: fig02_versions().render(),
    "fig03": lambda: fig03_fig04_lace(NAVIER_STOKES).render(),
    "fig04": lambda: fig03_fig04_lace(EULER).render(),
    "fig05": lambda: fig05_fig06_components(NAVIER_STOKES).render(),
    "fig06": lambda: fig05_fig06_components(EULER).render(),
    "fig07": lambda: fig07_fig08_comm_versions(NAVIER_STOKES).render(),
    "fig08": lambda: fig07_fig08_comm_versions(EULER).render(),
    "fig09": lambda: fig09_fig10_platforms(NAVIER_STOKES).render(),
    "fig10": lambda: fig09_fig10_platforms(EULER).render(),
    "fig11": lambda: fig11_fig12_libraries(NAVIER_STOKES).render(),
    "fig12": lambda: fig11_fig12_libraries(EULER).render(),
    "fig13": lambda: fig13_load_balance().render(),
}


def run_experiment(exp_id: str, **kw) -> str:
    """Run one experiment by id (``table1``, ``table2``, ``fig01``..``fig13``).

    Extra keyword arguments are forwarded to the experiment callable
    (``fig01`` accepts ``nx``/``nr``/``steps``/``full``; most others take
    none) — the batch driver uses this to reproduce the exact benchmark
    configurations.
    """
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kw) if kw else fn()
