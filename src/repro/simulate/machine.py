"""The simulated distributed-memory machine: platform + library + engine.

``SimulatedMachine(platform, nprocs).run(app)`` simulates a steady-state
window of time steps of the SPMD program over the platform's network with
its message-library cost model, then scales the per-rank timelines to the
full run length (the program is periodic per step, which the tests verify
against unscaled runs).  The result carries the paper's execution-time
split: processor busy time vs non-overlapped communication time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.platforms import Platform
from ..msglib.libmodel import LibraryModel
from ..parallel.versions import Version, version_by_number
from .costmodel import CostModel
from .engine import Engine, Event, Resource
from .program import build_rank_program
from .timeline import RankContext, RankTimeline
from .workload import Application, Workload


@dataclass
class RunResult:
    """Scaled outcome of a simulated run."""

    platform: str
    app: str
    nprocs: int
    version: int
    steps_window: int
    total_steps: int
    timelines: list[RankTimeline]
    makespan_window: float

    @property
    def scale(self) -> float:
        return self.total_steps / self.steps_window

    @property
    def execution_time(self) -> float:
        """Scaled wall-clock seconds for the full run."""
        return self.makespan_window * self.scale

    @property
    def busy_time(self) -> float:
        """Scaled mean processor-busy time (compute + message software)."""
        n = len(self.timelines)
        return self.scale * sum(t.busy for t in self.timelines) / n

    @property
    def comm_time(self) -> float:
        """Scaled non-overlapped communication time: the additive remainder
        ``execution - busy`` (the paper's two-component split)."""
        return max(self.execution_time - self.busy_time, 0.0)

    @property
    def per_rank_busy(self) -> list[float]:
        """Scaled busy time of each rank (the paper's Figure 13)."""
        return [t.busy * self.scale for t in self.timelines]

    @property
    def per_rank_wait(self) -> list[float]:
        return [t.comm_wait * self.scale for t in self.timelines]

    @property
    def compute_time(self) -> float:
        n = len(self.timelines)
        return self.scale * sum(t.compute for t in self.timelines) / n

    @property
    def library_time(self) -> float:
        n = len(self.timelines)
        return self.scale * sum(t.library for t in self.timelines) / n

    def summary(self) -> str:
        return (
            f"{self.platform:24s} {self.app:13s} p={self.nprocs:2d} "
            f"V{self.version}: exec={self.execution_time:9.1f}s "
            f"busy={self.busy_time:9.1f}s comm={self.comm_time:8.1f}s"
        )


class SimulatedMachine:
    """A distributed-memory platform executing the SPMD workload."""

    def __init__(
        self,
        platform: Platform,
        nprocs: int,
        version: int | Version = 5,
        library: LibraryModel | None = None,
        node_speed_factors: list[float] | None = None,
        faults=None,
    ) -> None:
        """``node_speed_factors`` optionally scales each rank's compute
        speed (1.0 = the platform CPU; 1.7 = a 590-class node in a 560
        cluster), modelling heterogeneous clusters like the real mixed
        LACE — the SPMD program then waits on its slowest member.

        ``faults`` (a :class:`~repro.faults.FaultPlan` or preset name)
        degrades the simulated platform deterministically: the plan's
        wire-level faults become extra route occupancy per transfer
        (retransmissions + jitter) and its ``slow_ranks`` become per-node
        speed factors — the DES counterpart of wrapping the real cluster's
        communicators in a :class:`~repro.faults.FaultyComm`."""
        from ..faults import resolve_fault_plan

        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if platform.cpu is None:
            raise ValueError(
                f"{platform.name} has no scalar CPU model; use "
                "SharedMemoryMachine for the Y-MP"
            )
        if node_speed_factors is not None and len(node_speed_factors) != nprocs:
            raise ValueError("need one speed factor per rank")
        self.faults = resolve_fault_plan(faults)
        if self.faults is not None and self.faults.slow_ranks:
            # A slowdown factor f >= 1 is a speed factor 1/f.
            factors = (
                list(node_speed_factors)
                if node_speed_factors is not None
                else [1.0] * nprocs
            )
            for r, f in self.faults.slow_ranks:
                if 0 <= r < nprocs:
                    factors[r] /= max(float(f), 1.0)
            node_speed_factors = factors
        self.node_speed_factors = node_speed_factors
        self.platform = platform
        self.nprocs = nprocs
        self.version = (
            version_by_number(version) if isinstance(version, int) else version
        )
        library = library or platform.library
        if library.scale_with_cpu and platform.cpu.v5_target_mflops:
            # The library values are referenced to the RS6000/560 (16.0
            # sustained MFLOPS); faster nodes execute the same software
            # path proportionally faster.
            library = library.scaled(16.0 / platform.cpu.v5_target_mflops)
        self.library = library

    def run(
        self,
        app: Application | Workload,
        steps_window: int = 40,
        total_steps: int | None = None,
        trace: bool = False,
        tracer=None,
    ) -> RunResult:
        """Simulate ``steps_window`` steps and scale to the full run.

        ``trace=True`` records per-rank activity segments for the Gantt
        rendering (``repro.analysis.report.render_gantt``).  ``tracer``
        (a :class:`repro.obs.Tracer`) additionally records engine
        schedule/resume events and, after the run, the per-rank activity
        segments as spans — all keyed on the engine's deterministic clock,
        so the export is byte-stable across runs."""
        workload = app if isinstance(app, Workload) else Workload.paper(app)
        application = workload.app
        total = total_steps if total_steps is not None else application.steps
        p = self.nprocs
        if tracer is not None:
            trace = True

        cost = CostModel.of(self.platform.cpu, self.version)
        ws = workload.working_set_bytes(p)
        step_seconds = cost.compute_time(workload.flops_per_step_per_rank(p), ws)

        engine = Engine(tracer=tracer)
        network = self.platform.network(p)
        capacities = network.capacities()
        resources: dict[str, Resource] = {
            k: Resource(capacity=c, name=k) for k, c in capacities.items()
        }
        events: dict[tuple, Event] = {}

        def event_for(key: tuple) -> Event:
            ev = events.get(key)
            if ev is None:
                ev = Event(name=str(key))
                events[key] = ev
            return ev

        contexts = [RankContext(engine, r, trace=trace) for r in range(p)]

        def fault_note(src: int, dst: int, key: tuple, extra: float) -> None:
            if tracer is not None:
                tracer.instant(
                    "fault.sim_delay",
                    cat="fault",
                    rank=src,
                    ts=engine.now,
                    peer=dst,
                    step=key[0],
                    seconds=round(extra, 9),
                )
                tracer.count("faults_injected", 1, rank=src)

        for r in range(p):
            factor = (
                self.node_speed_factors[r]
                if self.node_speed_factors is not None
                else 1.0
            )
            engine.add_process(
                build_rank_program(
                    contexts[r],
                    r,
                    p,
                    workload,
                    self.version,
                    self.library,
                    network,
                    resources,
                    event_for,
                    steps_window,
                    step_seconds / factor,
                    faults=self.faults,
                    fault_note=fault_note,
                ),
                name=f"rank{r}",
            )
        makespan = engine.run()
        if tracer is not None:
            from ..obs import trace_from_timelines

            trace_from_timelines(
                [c.timeline for c in contexts],
                tracer=tracer,
                meta={
                    "platform": self.platform.name,
                    "app": application.name,
                    "nprocs": p,
                    "version": self.version.number,
                    "steps_window": steps_window,
                },
            )
        result = RunResult(
            platform=f"{self.platform.name}",
            app=application.name,
            nprocs=p,
            version=self.version.number,
            steps_window=steps_window,
            total_steps=total,
            timelines=[c.timeline for c in contexts],
            makespan_window=makespan,
        )
        from ..obs import get_metrics

        mx = get_metrics()
        if mx.enabled:
            # Scaled per-rank timeline split plus the modelled flop count,
            # so the performance report can derive MFLOPS and comp:comm for
            # simulated runs exactly as it does for measured ones.
            scale = result.scale
            flops = workload.flops_per_step_per_rank(p) * total
            for tl in result.timelines:
                r = tl.rank
                mx.count("sim.compute_seconds", tl.compute * scale, rank=r)
                mx.count("sim.library_seconds", tl.library * scale, rank=r)
                mx.count("sim.wait_seconds", tl.comm_wait * scale, rank=r)
                mx.count("sim.busy_seconds", tl.busy * scale, rank=r)
                mx.count("sim.flops", flops, rank=r)
                mx.count("sim.steps", float(total), rank=r)
            mx.count("sim.engine_events", float(engine.steps), rank=0)
        return result
