"""Perfect-gas equation of state in the jet nondimensionalization.

With velocity scaled by the centerline sound speed and temperature by the
centerline temperature, the perfect-gas relations read

.. math::

    p = \\rho T / \\gamma, \\qquad
    c = \\sqrt{T}, \\qquad
    E = \\frac{p}{\\gamma - 1} + \\tfrac12 \\rho (u^2 + v^2),

so the centerline reference state is ``rho = T = c = 1`` and
``p = 1/gamma``.  All functions are vectorized over numpy arrays.
"""

from __future__ import annotations

import numpy as np

from .. import constants

GAMMA = constants.GAMMA


def pressure(rho, rho_u, rho_v, E, gamma: float = GAMMA):
    """Static pressure from the conservative variables.

    ``p = (gamma - 1) (E - (rho_u^2 + rho_v^2) / (2 rho))``.
    """
    return (gamma - 1.0) * (E - 0.5 * (rho_u * rho_u + rho_v * rho_v) / rho)


def temperature(rho, p, gamma: float = GAMMA):
    """Static temperature ``T = gamma p / rho`` (so that ``c**2 = T``)."""
    return gamma * p / rho


def sound_speed(rho, p, gamma: float = GAMMA):
    """Speed of sound ``c = sqrt(gamma p / rho)``."""
    return np.sqrt(gamma * p / rho)


def total_energy(rho, u, v, p, gamma: float = GAMMA):
    """Total energy per unit volume from primitives."""
    return p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v)


def internal_energy(rho, p, gamma: float = GAMMA):
    """Specific internal energy ``e = p / ((gamma - 1) rho)``."""
    return p / ((gamma - 1.0) * rho)


def enthalpy(rho, E, p):
    """Specific total enthalpy ``H = (E + p) / rho``."""
    return (E + p) / rho


def viscosity(
    T=None,
    *,
    mach: float = constants.JET_MACH,
    reynolds: float = constants.REYNOLDS,
    exponent: float = 0.0,
):
    """Nondimensional dynamic viscosity.

    The Reynolds number of the paper is based on the jet *diameter* and the
    centerline velocity ``u_c = M_jet`` (in sound-speed units), so the
    nondimensional reference viscosity is ``mu_ref = 2 * M_jet / Re``.

    Parameters
    ----------
    T:
        Optional temperature field for a power-law dependence
        ``mu = mu_ref * T**exponent``.  With the default ``exponent = 0``
        the viscosity is constant, which is the common choice for this
        jet configuration.
    """
    mu_ref = 2.0 * mach / reynolds
    if T is None or exponent == 0.0:
        return mu_ref
    return mu_ref * np.asarray(T) ** exponent


def conductivity(mu, gamma: float = GAMMA, prandtl: float = constants.PRANDTL):
    """Nondimensional thermal conductivity ``k = mu / ((gamma - 1) Pr)``.

    This follows from ``k = cp mu / Pr`` with temperature scaled by ``T_c``
    and velocity by ``c_c`` so that ``cp T_c / c_c^2 = 1 / (gamma - 1)``.
    """
    return mu / ((gamma - 1.0) * prandtl)
