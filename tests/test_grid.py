"""Grid construction, spacing exactness, and subgrid behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.grid import Grid, paper_grid


class TestConstruction:
    def test_defaults_use_paper_domain(self):
        g = Grid(nx=50, nr=20)
        assert g.length_x == constants.DOMAIN_LENGTH_X
        assert g.length_r == constants.DOMAIN_LENGTH_R

    def test_axial_coordinates_start_at_zero(self):
        g = Grid(nx=11, nr=8, length_x=10.0, length_r=4.0)
        assert g.x[0] == 0.0
        assert g.x[-1] == pytest.approx(10.0)
        assert np.allclose(np.diff(g.x), g.dx)

    def test_radial_points_offset_off_axis(self):
        g = Grid(nx=8, nr=10, length_x=1.0, length_r=5.0)
        assert g.r[0] == pytest.approx(0.5 * g.dr)
        assert np.all(g.r > 0)
        assert g.r[-1] == pytest.approx(5.0 - 0.5 * g.dr)

    def test_shape_and_ncells(self):
        g = Grid(nx=7, nr=9)
        assert g.shape == (7, 9)
        assert g.ncells == 63

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError, match="at least 5"):
            Grid(nx=4, nr=10)
        with pytest.raises(ValueError, match="at least 5"):
            Grid(nx=10, nr=3)

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ValueError):
            Grid(nx=8, nr=8, length_x=0.0)
        with pytest.raises(ValueError):
            Grid(nx=8, nr=8, length_r=-1.0)

    def test_paper_grid(self):
        g = paper_grid()
        assert g.shape == (250, 100)
        assert g.length_x == 50.0
        assert g.length_r == 5.0


class TestMeshes:
    def test_rmesh_broadcasts_radial_axis(self):
        g = Grid(nx=6, nr=8)
        rm = g.rmesh()
        assert rm.shape == g.shape
        assert np.array_equal(rm[0], g.r)
        assert np.array_equal(rm[3], g.r)

    def test_xmesh_broadcasts_axial_axis(self):
        g = Grid(nx=6, nr=8)
        xm = g.xmesh()
        assert xm.shape == g.shape
        assert np.array_equal(xm[:, 0], g.x)


class TestSubgrid:
    def test_spacing_is_bit_exact(self):
        g = Grid(nx=60, nr=24)
        for lo, hi in [(0, 15), (15, 30), (45, 60), (7, 19)]:
            sub = g.subgrid(lo, hi)
            assert sub.dx == g.dx  # exact equality, not approx
            assert sub.dr == g.dr

    def test_coordinates_keep_global_position(self):
        g = Grid(nx=40, nr=16)
        sub = g.subgrid(10, 25)
        assert np.array_equal(sub.x, g.x[10:25])
        assert np.array_equal(sub.r, g.r)

    def test_invalid_slab_rejected(self):
        g = Grid(nx=20, nr=8)
        with pytest.raises(ValueError):
            g.subgrid(5, 5)
        with pytest.raises(ValueError):
            g.subgrid(-1, 10)
        with pytest.raises(ValueError):
            g.subgrid(10, 25)

    @given(
        nx=st.integers(20, 120),
        frac=st.fractions(0, 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_slab_preserves_spacing(self, nx, frac):
        g = Grid(nx=nx, nr=8)
        lo = int(float(frac) * (nx - 6))
        sub = g.subgrid(lo, lo + 6)
        assert sub.dx == g.dx
        assert sub.nx == 6
