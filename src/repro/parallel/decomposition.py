"""Block domain decompositions and their halo topologies.

The paper chose, "after some experimentation, to decompose the domain by
blocks along the axial direction only" (Section 5): each processor owns a
contiguous slab of axial columns with full radial extent, so only the
axial sweep needs halo exchange and messages group naturally into long
column vectors.  :class:`RadialDecomposition` implements the radial
blocking the paper leaves to future work (Section 8), and
:class:`CartesianDecomposition` the general ``px x pr`` grid of blocks.

Every decomposition exposes the same interface, consumed by the unified
:class:`~repro.parallel.spmd.BlockDistributedSolver`:

* ``halo_axis`` — orientation of the uvT ghost lines (0 = columns,
  1 = rows, 2 = both, matching ``FluxModel.halo_axis``);
* ``topology(rank)`` — the rank's :class:`HaloTopology` (neighbour map
  plus which array axes exchange halos);
* ``local_block(rank)`` / ``local_grid(global_grid, rank)`` — the slices
  and subgrid of the rank's block;
* ``assemble(parts)`` — reassemble gathered per-rank blocks into the
  global conservative array (the inverse of ``local_block`` over all
  ranks);
* ``top_radial_size()`` — radial extent of the blocks owning the
  far-field boundary, or ``None`` when every rank owns the full radial
  extent (guards the sponge width).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MIN_BLOCK = 5
"""Smallest slab width the 2-4 stencil machinery supports."""


@dataclass(frozen=True)
class HaloTopology:
    """One rank's neighbour map and exchange requirements.

    ``left``/``right`` are the axial (axis-1) neighbours and
    ``lower``/``upper`` the radial (axis-2) neighbours; ``None`` marks a
    physical boundary.  ``exchanges_x``/``exchanges_r`` say whether the
    decomposition splits that array axis at all — they gate which sweep
    ghost callbacks, filter halos and boundary collectives a rank
    installs (a flag can be set with all neighbours ``None``: a 1-rank
    run then degenerates to the serial arithmetic because every exchange
    returns ``None``).
    """

    rank: int
    left: int | None
    right: int | None
    lower: int | None
    upper: int | None
    exchanges_x: bool
    exchanges_r: bool


@dataclass(frozen=True)
class BlockDecomposition1D:
    """Balanced 1-D block partition of ``n`` points into ``nparts`` slabs.

    Slab ``k`` owns ``[bounds(k)[0], bounds(k)[1])``.  The first
    ``n % nparts`` slabs get one extra point, so sizes differ by at most
    one — the (near-perfect) load balance of the paper's Figure 13 follows
    directly from this.
    """

    n: int
    nparts: int

    def __post_init__(self) -> None:
        if self.nparts < 1:
            raise ValueError("nparts must be >= 1")
        if self.n // self.nparts < MIN_BLOCK:
            raise ValueError(
                f"cannot split {self.n} points into {self.nparts} blocks: "
                f"each block needs at least {MIN_BLOCK} points"
            )

    def bounds(self, part: int) -> tuple[int, int]:
        """Half-open global index range owned by ``part``."""
        if not (0 <= part < self.nparts):
            raise IndexError(f"part {part} out of range [0, {self.nparts})")
        base, extra = divmod(self.n, self.nparts)
        lo = part * base + min(part, extra)
        hi = lo + base + (1 if part < extra else 0)
        return lo, hi

    def size(self, part: int) -> int:
        lo, hi = self.bounds(part)
        return hi - lo

    def sizes(self) -> list[int]:
        return [self.size(k) for k in range(self.nparts)]

    def owner(self, index: int) -> int:
        """The part owning global point ``index``."""
        if not (0 <= index < self.n):
            raise IndexError(index)
        base, extra = divmod(self.n, self.nparts)
        # Points below the split carry base+1 each.
        split = extra * (base + 1)
        if index < split:
            return index // (base + 1)
        return extra + (index - split) // base

    def neighbors(self, part: int) -> tuple[int | None, int | None]:
        """``(lower, upper)`` neighbouring parts (``None`` at the ends)."""
        lo = part - 1 if part > 0 else None
        hi = part + 1 if part < self.nparts - 1 else None
        return lo, hi

    def local_slice(self, part: int) -> slice:
        lo, hi = self.bounds(part)
        return slice(lo, hi)


class AxialDecomposition(BlockDecomposition1D):
    """The paper's decomposition: axial slabs with full radial extent."""

    axis = 1  # array axis of (4, nx, nr) states
    halo_axis = 0  # uvT ghost lines are columns

    def __init__(self, nx: int, nparts: int) -> None:
        super().__init__(n=nx, nparts=nparts)

    @property
    def nx(self) -> int:
        return self.n

    def topology(self, rank: int) -> HaloTopology:
        left, right = self.neighbors(rank)
        return HaloTopology(
            rank, left, right, None, None,
            exchanges_x=True, exchanges_r=False,
        )

    def local_block(self, rank: int) -> tuple[slice, slice]:
        return self.local_slice(rank), slice(None)

    def local_grid(self, global_grid, rank: int):
        lo, hi = self.bounds(rank)
        return global_grid.subgrid(lo, hi)

    def assemble(self, parts: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(parts, axis=1)

    def top_radial_size(self) -> int | None:
        return None  # every rank owns the full radial extent


class RadialDecomposition(BlockDecomposition1D):
    """Radial blocking (the paper's Section 8 future-work variant).

    Messages become *row* segments of length ``nx`` per exchange instead of
    columns of length ``nr``; with the paper's 250 x 100 grid this more
    than doubles the per-message volume while the sweep structure forces
    exchanges in the radial operator instead — the extension benchmark
    quantifies the difference.
    """

    axis = 2
    halo_axis = 1  # uvT ghost lines are rows

    def __init__(self, nr: int, nparts: int) -> None:
        super().__init__(n=nr, nparts=nparts)

    @property
    def nr(self) -> int:
        return self.n

    def topology(self, rank: int) -> HaloTopology:
        lower, upper = self.neighbors(rank)
        return HaloTopology(
            rank, None, None, lower, upper,
            exchanges_x=False, exchanges_r=True,
        )

    def local_block(self, rank: int) -> tuple[slice, slice]:
        return slice(None), self.local_slice(rank)

    def local_grid(self, global_grid, rank: int):
        lo, hi = self.bounds(rank)
        return global_grid.radial_subgrid(lo, hi)

    def assemble(self, parts: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(parts, axis=2)

    def top_radial_size(self) -> int | None:
        return self.size(self.nparts - 1)


@dataclass(frozen=True)
class CartesianDecomposition:
    """A ``px x pr`` grid of blocks; ``rank = ix * pr + jr``."""

    nx: int
    nr: int
    px: int
    pr: int

    halo_axis = 2  # uvT ghost lines along both axes

    def __post_init__(self) -> None:
        # Constructing the 1-D decompositions validates the block sizes.
        self.axial  # noqa: B018
        self.radial  # noqa: B018

    @property
    def nparts(self) -> int:
        return self.px * self.pr

    @property
    def axial(self) -> AxialDecomposition:
        return AxialDecomposition(self.nx, self.px)

    @property
    def radial(self) -> RadialDecomposition:
        return RadialDecomposition(self.nr, self.pr)

    def coords(self, rank: int) -> tuple[int, int]:
        """``(ix, jr)`` block coordinates of a rank."""
        if not (0 <= rank < self.nparts):
            raise IndexError(rank)
        return rank // self.pr, rank % self.pr

    def rank_of(self, ix: int, jr: int) -> int:
        return ix * self.pr + jr

    def block(self, rank: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """``((i_lo, i_hi), (j_lo, j_hi))`` global extents of a rank."""
        ix, jr = self.coords(rank)
        return self.axial.bounds(ix), self.radial.bounds(jr)

    def neighbors(self, rank: int):
        """``(left, right, lower, upper)`` neighbouring ranks or ``None``."""
        ix, jr = self.coords(rank)
        left = self.rank_of(ix - 1, jr) if ix > 0 else None
        right = self.rank_of(ix + 1, jr) if ix < self.px - 1 else None
        lower = self.rank_of(ix, jr - 1) if jr > 0 else None
        upper = self.rank_of(ix, jr + 1) if jr < self.pr - 1 else None
        return left, right, lower, upper

    def topology(self, rank: int) -> HaloTopology:
        left, right, lower, upper = self.neighbors(rank)
        return HaloTopology(
            rank, left, right, lower, upper,
            exchanges_x=True, exchanges_r=True,
        )

    def local_block(self, rank: int) -> tuple[slice, slice]:
        (ilo, ihi), (jlo, jhi) = self.block(rank)
        return slice(ilo, ihi), slice(jlo, jhi)

    def local_grid(self, global_grid, rank: int):
        (ilo, ihi), (jlo, jhi) = self.block(rank)
        return global_grid.subgrid(ilo, ihi).radial_subgrid(jlo, jhi)

    def assemble(self, parts: list[np.ndarray]) -> np.ndarray:
        columns = []
        for ix in range(self.px):
            blocks = [parts[self.rank_of(ix, jr)] for jr in range(self.pr)]
            columns.append(np.concatenate(blocks, axis=2))
        return np.concatenate(columns, axis=1)

    def top_radial_size(self) -> int | None:
        return self.radial.size(self.pr - 1)
