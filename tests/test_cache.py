"""Cache simulator and the analytic sweep-miss model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.cache import (
    BAD_STRIDE_MISS,
    CacheSim,
    CacheSpec,
    sweep_miss_rate,
)


def spec(size=1024, line=64, assoc=2, penalty=10.0):
    return CacheSpec(size, line, assoc, penalty)


class TestCacheSpec:
    def test_n_sets(self):
        assert spec(1024, 64, 2).n_sets == 8
        assert spec(8 * 1024, 32, 1).n_sets == 256  # the T3D geometry

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheSpec(1000, 64, 2, 10.0)

    def test_conflict_factor_direct_mapped_worst(self):
        assert spec(assoc=1).conflict_factor() > spec(assoc=4).conflict_factor()


class TestCacheSimHandComputed:
    def test_cold_miss_then_hit(self):
        sim = CacheSim(spec())
        assert sim.access(0) is False
        assert sim.access(0) is True
        assert sim.access(63) is True  # same 64-byte line
        assert sim.access(64) is False  # next line

    def test_direct_mapped_conflict(self):
        """Two addresses mapping to the same set thrash a direct-mapped
        cache but coexist in a 2-way one."""
        s = CacheSpec(512, 64, 1, 10.0)  # 8 sets
        sim = CacheSim(s)
        a, b = 0, 512  # same set (line index differs by n_sets)
        assert sim.access(a) is False
        assert sim.access(b) is False
        assert sim.access(a) is False  # evicted by b
        sim2 = CacheSim(CacheSpec(1024, 64, 2, 10.0))  # 8 sets, 2-way
        assert sim2.access(a) is False
        assert sim2.access(1024) is False  # same set, other way
        assert sim2.access(a) is True  # both resident

    def test_lru_eviction_order(self):
        s = CacheSpec(256, 64, 2, 10.0)  # 2 sets, 2-way
        sim = CacheSim(s)
        x, y, z = 0, 128, 256  # all map to set 0
        sim.access(x)
        sim.access(y)
        sim.access(x)  # x most recent
        sim.access(z)  # evicts y (LRU)
        assert sim.access(x) is True
        assert sim.access(y) is False

    def test_stride1_sweep_miss_rate(self):
        s = CacheSpec(64 * 1024, 128, 4, 10.0)  # the RS6000/560 geometry
        sim = CacheSim(s)
        misses = sim.access_array(0, 1024, 8)
        # One miss per 128-byte line = every 16th element.
        assert misses == 64
        assert sim.miss_rate == pytest.approx(1 / 16)

    def test_flush(self):
        sim = CacheSim(spec())
        sim.access(0)
        sim.flush()
        assert sim.access(0) is False

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            CacheSim(spec()).access(-8)


class TestCacheSimProperties:
    @given(
        addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_counters_consistent(self, addrs):
        sim = CacheSim(spec())
        for a in addrs:
            sim.access(a)
        assert sim.hits + sim.misses == len(addrs)
        assert 0.0 <= sim.miss_rate <= 1.0

    @given(addr=st.integers(0, 1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_immediate_rereference_hits(self, addr):
        sim = CacheSim(spec())
        sim.access(addr)
        assert sim.access(addr) is True

    @given(
        addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_bound(self, addrs):
        """Lines resident never exceed the cache capacity."""
        sim = CacheSim(spec(size=512, line=64, assoc=2))
        for a in addrs:
            sim.access(a)
        resident = sum(len(w) for w in sim._sets)
        assert resident <= 512 // 64


class TestAnalyticModel:
    def _spec560(self):
        return CacheSpec(64 * 1024, 128, 4, 12.0)

    def test_stride1_baseline(self):
        r = sweep_miss_rate(self._spec560(), 1.0, working_set_bytes=64 * 1024)
        assert r == pytest.approx(8 / 128)

    def test_bad_stride_much_worse(self):
        s = self._spec560()
        good = sweep_miss_rate(s, 1.0, 2e6)
        bad = sweep_miss_rate(s, 0.0, 2e6)
        assert bad > 1.5 * good
        from repro.machines.cache import CAPACITY_MAX

        cap = 1.0 + (CAPACITY_MAX - 1.0) * (1.0 - s.size_bytes / 2e6)
        assert bad == pytest.approx(BAD_STRIDE_MISS * cap, rel=1e-9)

    def test_capacity_growth(self):
        s = self._spec560()
        assert sweep_miss_rate(s, 0.95, 4e6) > sweep_miss_rate(s, 0.95, 1e5)

    def test_direct_mapped_penalty(self):
        dm = CacheSpec(8 * 1024, 32, 1, 20.0)
        sa = CacheSpec(8 * 1024, 32, 4, 20.0)
        assert sweep_miss_rate(dm, 0.95, 1e6) > sweep_miss_rate(sa, 0.95, 1e6)

    def test_degradation_factor(self):
        s = self._spec560()
        assert sweep_miss_rate(s, 0.95, 1e6, degradation=1.1) == pytest.approx(
            1.1 * sweep_miss_rate(s, 0.95, 1e6)
        )

    def test_capped_at_one(self):
        s = CacheSpec(1024, 32, 1, 10.0)
        assert sweep_miss_rate(s, 0.0, 1e9) <= 1.0

    @given(
        s1f=st.floats(0.0, 1.0),
        ws=st.floats(1e4, 1e8),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_stride_quality(self, s1f, ws):
        s = self._spec560()
        better = sweep_miss_rate(s, min(s1f + 0.1, 1.0), ws)
        worse = sweep_miss_rate(s, s1f, ws)
        assert better <= worse + 1e-12
