"""Kernel-backend interface and the preallocated step workspace.

A :class:`KernelBackend` decides *how* the solver's hot path evaluates its
kernels (fluxes, stresses, one-sided differences, predictor/corrector
combinations, the fourth-difference filter):

* the ``"baseline"`` backend keeps the original allocating numpy path —
  every flux call and stencil difference returns fresh temporaries;
* the ``"fused"`` backend owns a :class:`StepWorkspace` of persistent
  scratch arrays and evaluates the same arithmetic with in-place
  ``np.<ufunc>(..., out=...)`` kernels, bitwise-identically.

Backends must never change the numbers — only where they are stored and how
much work is repeated.  This mirrors the paper's single-processor Versions
1-5, which took the RS6000/560 from 9.3 to 16.0 MFLOPS without altering the
computed flow field.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..maccormack import SweepScratch


class KernelBackend(ABC):
    """Strategy object selecting the solver's kernel implementation."""

    #: Registry name (``"baseline"``, ``"fused"``, ...).
    name: str = ""

    @abstractmethod
    def step_workspace(self, solver) -> "StepWorkspace | None":
        """Per-solver workspace, or ``None`` for the allocating path.

        Called once from ``CompressibleSolver.__init__`` with the (local)
        state already constructed; distributed solvers therefore get
        slab-shaped buffers automatically.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class StepWorkspace:
    """Every persistent buffer one solver needs for an allocation-free step.

    The workspace is sized once from the (local) state shape ``(nvars, nx,
    nr)`` and threaded through all layers of the hot path:

    * **state rotation** — ``state_a``/``state_b`` receive the sweep outputs
      (the caller ping-pongs between them, see :meth:`rotate_states`);
    * **sweep scratch** — ``sweep_x``/``sweep_r`` feed
      :meth:`~repro.numerics.maccormack.SplitOperator.apply`; they share the
      state-shaped ``q_star``/``rate``/``tmp3`` (sweeps run sequentially)
      and differ only in the ghost-extended ``ext`` buffer;
    * **flux evaluation** — ``F``/``S`` plus the 2-D primitive and stress
      buffers consumed by the fused flux kernels;
    * **boundary strips** — ``q_tail`` holds the trailing five columns the
      characteristic outflow needs (replacing the full-state copy).

    Halo *pack* buffers live on the distributed solver's
    :class:`~repro.parallel.halo.ExchangePlan`, which preallocates them per
    decomposed axis.

    The workspace is also the backend dispatch point for the hot kernels:
    ``FluxModel`` routes its flux evaluation through :meth:`axial_flux` /
    :meth:`radial_flux`, and the MacCormack/filter layers consult
    :attr:`ops`.  The base class delegates to the fused numpy kernels;
    the compiled backend subclasses it
    (:class:`~.compiled.CompiledWorkspace`) and overrides with native
    loops — so baseline and fused stay untouched and every decomposition
    and substrate inherits whichever backend the solver resolved.
    """

    #: Compiled kernel ops, or ``None`` for the fused numpy kernels.  When
    #: set, ``SplitOperator``/``apply_filter`` route their per-element
    #: chains through it (see :mod:`repro.numerics.kernels.compiled`).
    ops = None

    def __init__(
        self, shape: tuple[int, int, int], viscous: bool, mu_field: bool = False
    ) -> None:
        nvars, nx, nr = shape
        self.shape = shape
        # State rotation + shared sweep scratch.
        self.state_a = np.empty(shape)
        self.state_b = np.empty(shape)
        self.q_star = np.empty(shape)
        self.rate = np.empty(shape)
        self.tmp3 = np.empty(shape)
        self.ext_x = np.empty((nvars, nx + 4, nr))
        self.ext_r = np.empty((nvars, nx, nr + 4))
        self.sweep_x = SweepScratch(self.ext_x, self.q_star, self.rate, self.tmp3)
        self.sweep_r = SweepScratch(self.ext_r, self.q_star, self.rate, self.tmp3)
        # Flux evaluation: one shared directional flux vector and the
        # axisymmetric source (rows 0, 1, 3 stay zero forever; only row 2 is
        # rewritten per call).
        self.F = np.empty(shape)
        self.S = np.zeros(shape)
        # Primitives (shared by inviscid assembly and viscous gradients).
        plane = (nx, nr)
        self.inv_rho = np.empty(plane)
        self.u = np.empty(plane)
        self.v = np.empty(plane)
        self.p = np.empty(plane)
        self.t2a = np.empty(plane)
        self.t2b = np.empty(plane)
        self.T = np.empty(plane) if viscous else None
        if viscous:
            self.g_ux = np.empty(plane)  # du/dx
            self.g_ur = np.empty(plane)  # du/dr
            self.g_vx = np.empty(plane)  # dv/dx
            self.g_vr = np.empty(plane)  # dv/dr
            self.g_t = np.empty(plane)  # dT/dx or dT/dr (per direction)
            self.dilat = np.empty(plane)
            self.tau_n = np.empty(plane)  # tau_xx (axial) / tau_rr (radial)
            self.tau_s = np.empty(plane)  # tau_xr
            self.tau_tt = np.empty(plane)
            self.heat = np.empty(plane)
        self.mu = np.empty(plane) if (viscous and mu_field) else None
        # Boundary strip snapshot (trailing <=5 columns).
        self.q_tail = np.empty((nvars, min(5, nx), nr))

    def primitives_into(self, fm, q: np.ndarray) -> None:
        """Primitive fields of ``q`` into the workspace buffers."""
        from ...physics.fluxes import primitives_into

        primitives_into(
            q, fm.gamma, self.inv_rho, self.u, self.v, self.p, self.t2a,
            self.t2b, T=self.T,
        )

    def axial_flux(self, fm, q, uvT_halo=None, primitives_ready=False):
        """Total axial flux into ``ws.F`` (fused numpy kernels)."""
        from .fused import fused_axial_flux

        return fused_axial_flux(
            fm, q, self, uvT_halo=uvT_halo, primitives_ready=primitives_ready
        )

    def radial_flux(self, fm, q, uvT_halo=None, primitives_ready=False):
        """Weighted radial flux + source (fused numpy kernels)."""
        from .fused import fused_radial_flux

        return fused_radial_flux(
            fm, q, self, uvT_halo=uvT_halo, primitives_ready=primitives_ready
        )

    def rate_interior(
        self, sc, flux, lo, hi, axis, h, forward, source, inv_weight
    ) -> np.ndarray:
        """Provisional (interior-final) rate pass for the overlap window.

        The in-flight side's ghosts are ``None`` — the kernels then
        cubic-extrapolate that side exactly like a serial boundary — so
        every column except the two on the in-flight side is already
        final.  Dispatches to the compiled ops when present, else the
        fused in-place numpy chain; bitwise-identical either way.
        """
        if sc.ops is not None:
            return sc.ops.rate(
                flux, lo, hi, axis, h, forward, source, inv_weight,
                out=sc.rate,
            )
        from ..stencils import backward_difference, extend_axis, forward_difference

        ext = extend_axis(flux, axis, low=lo, high=hi, out=sc.ext)
        diff = forward_difference if forward else backward_difference
        d = diff(ext, axis, h, out=sc.rate, tmp=sc.tmp)
        if source is None:
            np.negative(d, out=d)
        else:
            np.subtract(source, d, out=d)
        if not (isinstance(inv_weight, float) and inv_weight == 1.0):
            np.multiply(d, inv_weight, out=d)
        return d

    def rate_edges(
        self, flux, ghosts, axis, h, forward, source, inv_weight, out
    ) -> np.ndarray:
        """Recompute the two ghost-dependent edge columns of ``out``
        once the overlapped exchange has delivered the real ghosts."""
        from .overlap import rate_edges

        return rate_edges(
            flux, ghosts, axis, h, forward, source, inv_weight, out
        )

    def ext_for(self, axis: int) -> np.ndarray:
        """The ghost-extended buffer matching a sweep/filter axis."""
        if axis == 1:
            return self.ext_x
        if axis == 2:
            return self.ext_r
        raise ValueError(f"no extended buffer for axis {axis}")

    def rotate_states(self, q_in: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Output buffers for the step's two sweeps given the input state.

        The first sweep must not write over ``q_in`` (the predictor and
        corrector both read it); the second sweep's output only needs to
        differ from the first's — it may land back on ``q_in``, which is
        dead once the first sweep completes.  In steady state the result
        therefore always lives in ``state_b`` with ``state_a`` as the
        intermediate; the caller's initial array is never written.
        """
        out1 = self.state_a if q_in is not self.state_a else self.state_b
        out2 = self.state_b if out1 is self.state_a else self.state_a
        return out1, out2
