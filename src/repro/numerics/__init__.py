"""Numerical model: the fourth-order Gottlieb-Turkel (2-4) MacCormack scheme.

The scheme (paper Section 3) splits the operator ``L`` in ``L Q = S`` into
one-dimensional sweeps and alternates one-sided predictor/corrector variants:

* ``L1``: forward difference in the predictor, backward in the corrector;
* ``L2``: the symmetric variant (backward predictor, forward corrector);
* time stepping alternates ``Q^{n+1} = L1x L1r Q^n`` and
  ``Q^{n+2} = L2r L2x Q^{n+1}``,

which is fourth-order accurate in space and second-order in time.
"""

from .stencils import (
    backward_difference,
    cubic_ghosts,
    extend_axis,
    forward_difference,
)
from .maccormack import SplitOperator, SweepWorkspace
from .boundary import (
    BoundaryConditions,
    Sponge,
    apply_axis_ghosts,
    characteristic_outflow_rates,
)
from .timestep import stable_dt
from .solver import EulerSolver, NavierStokesSolver, SolverConfig

__all__ = [
    "forward_difference",
    "backward_difference",
    "cubic_ghosts",
    "extend_axis",
    "SplitOperator",
    "SweepWorkspace",
    "BoundaryConditions",
    "Sponge",
    "apply_axis_ghosts",
    "characteristic_outflow_rates",
    "stable_dt",
    "EulerSolver",
    "NavierStokesSolver",
    "SolverConfig",
]
