"""Integration: the paper's qualitative findings, end to end.

Each test asserts one claim from the paper's Results section (Section 7)
against the full simulation pipeline.  These are the shape criteria that
EXPERIMENTS.md records; a failure here means the reproduction has drifted
from the paper, not merely that a number moved.
"""

import pytest

from repro.analysis.metrics import (
    balance_spread,
    crossover,
    minimum_location,
)
from repro.machines.platforms import (
    CRAY_T3D,
    CRAY_YMP,
    IBM_SP,
    IBM_SP_PVME,
    LACE_560,
    LACE_560_ETHERNET,
    LACE_560_FDDI,
    LACE_590,
    LACE_590_ATM,
)
from repro.simulate.machine import SimulatedMachine
from repro.simulate.sharedmem import SharedMemoryMachine
from repro.simulate.workload import EULER, NAVIER_STOKES

PROCS = [1, 2, 4, 6, 8, 10, 12, 14, 16]
WINDOW = 25


def _series(platform, app, version=5, quantity="execution", procs=PROCS):
    out = []
    for p in procs:
        r = SimulatedMachine(platform, p, version=version).run(
            app, steps_window=WINDOW
        )
        out.append(getattr(r, f"{quantity}_time"))
    return out


@pytest.fixture(scope="module")
def ns():
    return {
        "af": _series(LACE_590, NAVIER_STOKES),
        "as": _series(LACE_560, NAVIER_STOKES),
        "eth": _series(LACE_560_ETHERNET, NAVIER_STOKES),
        "sp": _series(IBM_SP, NAVIER_STOKES),
        "t3d": _series(CRAY_T3D, NAVIER_STOKES),
    }


@pytest.fixture(scope="module")
def euler():
    return {
        "af": _series(LACE_590, EULER),
        "as": _series(LACE_560, EULER),
        "eth": _series(LACE_560_ETHERNET, EULER),
        "sp": _series(IBM_SP, EULER),
        "t3d": _series(CRAY_T3D, EULER),
    }


class TestSection71LACE:
    def test_ethernet_peaks_near_eight(self, ns, euler):
        """'Ethernet performance reaches its peak at 8 processors for
        Navier-Stokes and at 10 processors for Euler.'"""
        p_ns, _ = minimum_location(PROCS, ns["eth"])
        p_eu, _ = minimum_location(PROCS, euler["eth"])
        assert 6 <= p_ns <= 10
        assert 6 <= p_eu <= 12

    def test_allnode_keeps_improving_to_16(self, ns):
        """The switched cluster never turns over within 16 processors."""
        series = ns["as"]
        assert all(b < a for a, b in zip(series, series[1:]))

    def test_allnode_f_70_to_80_percent_faster(self, ns, euler):
        """'ALLNODE-F is about 70%-80% faster than ALLNODE-S.'"""
        for data in (ns, euler):
            ratios = [s / f for s, f in zip(data["as"], data["af"])]
            assert 1.5 < min(ratios) and max(ratios) < 2.0

    def test_sublinearity_beyond_twelve(self, ns):
        """'sublinearity effects begin to show ... beyond 12 processors.'"""
        s = ns["as"]
        # Ideal halving 8 -> 16 would give 2.0; flattening gives less.
        gain = s[PROCS.index(8)] / s[PROCS.index(16)]
        assert gain < 1.85

    def test_atm_tracks_allnode_f(self, ns):
        """'The performance of the ATM ... almost identical with
        ALLNODE-F.'"""
        atm = _series(LACE_590_ATM, NAVIER_STOKES, procs=[4, 8, 16])
        af = [ns["af"][PROCS.index(p)] for p in (4, 8, 16)]
        for a, b in zip(atm, af):
            assert a == pytest.approx(b, rel=0.05)

    def test_fddi_tracks_allnode_s(self, ns):
        fddi = _series(LACE_560_FDDI, NAVIER_STOKES, procs=[4, 8, 16])
        asn = [ns["as"][PROCS.index(p)] for p in (4, 8, 16)]
        for a, b in zip(fddi, asn):
            assert a == pytest.approx(b, rel=0.12)

    def test_busy_falls_linearly_comm_grows_relative(self):
        """Figure 5's structure: busy ~ 1/p, non-overlapped comm roughly
        flat, so their ratio rises with p."""
        busy = _series(LACE_560, NAVIER_STOKES, quantity="busy", procs=[2, 16])
        comm = _series(LACE_560, NAVIER_STOKES, quantity="comm", procs=[2, 16])
        assert busy[0] / busy[1] > 5.0
        assert comm[1] / busy[1] > comm[0] / busy[0]


class TestSection71Versions:
    @pytest.mark.parametrize("app", [NAVIER_STOKES, EULER])
    def test_v6_gains_minimal(self, app):
        """'execution time improvement with Versions 6 ... minimal or even
        worse in many experiments.'"""
        for p in (8, 16):
            v5 = SimulatedMachine(LACE_560, p, version=5).run(
                app, steps_window=WINDOW
            )
            v6 = SimulatedMachine(LACE_560, p, version=6).run(
                app, steps_window=WINDOW
            )
            assert v6.execution_time == pytest.approx(
                v5.execution_time, rel=0.12
            )

    def test_v7_worse_on_allnode(self):
        """'The performance [of V7] on ALLNODE-S is appreciably worse than
        Version 5 ... since the number of startups increase.'"""
        v5 = SimulatedMachine(LACE_560, 16, version=5).run(
            NAVIER_STOKES, steps_window=WINDOW
        )
        v7 = SimulatedMachine(LACE_560, 16, version=7).run(
            NAVIER_STOKES, steps_window=WINDOW
        )
        assert v7.execution_time > v5.execution_time

    def test_v7_helps_ethernet_at_saturation(self):
        """'Not surprisingly, Ethernet performs better with Version 7 than
        with Version 5' (burst spreading on the shared medium)."""
        v5 = SimulatedMachine(LACE_560_ETHERNET, 8, version=5).run(
            NAVIER_STOKES, steps_window=WINDOW
        )
        v7 = SimulatedMachine(LACE_560_ETHERNET, 8, version=7).run(
            NAVIER_STOKES, steps_window=WINDOW
        )
        assert v7.execution_time < 1.02 * v5.execution_time


class TestSection72Platforms:
    def test_lace_outperforms_sp(self, ns):
        """'Surprisingly, LACE, even with ALLNODE-S, outperforms SP.'"""
        for a, s in zip(ns["as"], ns["sp"]):
            assert a < s

    def test_t3d_worse_than_allnode_f_everywhere(self, ns):
        for f, t in zip(ns["af"], ns["t3d"]):
            assert f < t

    def test_t3d_crosses_allnode_s_near_eight(self, ns):
        """'worse than ALLNODE-S for less than 8 processors. ... Beyond 8
        processors, T3D ... performs better than ALLNODE-S.'"""
        x = crossover(PROCS, ns["t3d"], ns["as"])
        assert x is not None and 6 <= x <= 12
        # Strictly worse at 2 and 4.
        for p in (2, 4):
            i = PROCS.index(p)
            assert ns["t3d"][i] > ns["as"][i]

    def test_t3d_superior_to_sp(self, ns, euler):
        for data in (ns, euler):
            for t, s in zip(data["t3d"], data["sp"]):
                assert t < s

    def test_t3d_and_sp_speedups_nearly_linear(self, ns):
        """'Both T3D and SP exhibit very good speedup characteristics.'"""
        for key in ("t3d", "sp"):
            s = ns[key]
            speedup16 = s[0] / s[PROCS.index(16)]
            assert speedup16 > 11.0

    def test_ymp_best_overall(self, ns):
        """'Cray Y-MP has by far the best performance.'"""
        ymp8 = SharedMemoryMachine(CRAY_YMP, 8).run(NAVIER_STOKES)
        best_mpp = min(min(v) for v in ns.values())
        assert ymp8.execution_time < 0.5 * best_mpp

    def test_lace590_16_comparable_to_ymp_1(self, ns):
        """'The performance of LACE/590 with 16 processors is comparable to
        the single node performance of the Y-MP.'"""
        ymp1 = SharedMemoryMachine(CRAY_YMP, 1).run(NAVIER_STOKES)
        lace = ns["af"][PROCS.index(16)]
        assert 0.5 < lace / ymp1.execution_time < 1.5


class TestSection73Libraries:
    @pytest.mark.parametrize(
        "app,lo,hi",
        [(NAVIER_STOKES, 1.25, 2.2), (EULER, 1.25, 2.2)],
    )
    def test_mpl_consistently_faster(self, app, lo, hi):
        """'MPL is consistently faster than PVMe' (paper: ~75% NS, ~40%
        Euler; our per-message model lands both gaps in between — see
        EXPERIMENTS.md)."""
        for p in (8, 16):
            mpl = SimulatedMachine(IBM_SP, p).run(app, steps_window=WINDOW)
            pvme = SimulatedMachine(IBM_SP_PVME, p).run(app, steps_window=WINDOW)
            ratio = pvme.execution_time / mpl.execution_time
            assert lo < ratio < hi

    def test_sp_nonoverlapped_comm_negligible(self):
        """'the amount of non-overlapped communication is not only
        negligibly small...' (Figures 11-12)."""
        r = SimulatedMachine(IBM_SP, 16).run(NAVIER_STOKES, steps_window=WINDOW)
        assert r.comm_time < 0.1 * r.busy_time


class TestSection74LoadBalance:
    def test_near_perfect_balance(self):
        """Figure 13: 'we were able to achieve almost perfect load
        balancing' across the 16 SP processors."""
        r = SimulatedMachine(IBM_SP, 16).run(NAVIER_STOKES, steps_window=WINDOW)
        assert balance_spread(r.per_rank_busy) < 0.05
