"""Inviscid fluxes and the axisymmetric source term."""

import numpy as np
import pytest

from repro import constants
from repro.grid import Grid
from repro.physics.fluxes import axisymmetric_source, inviscid_fluxes
from repro.physics.state import FlowState
from repro.physics import eos

from conftest import random_physical_state

GAMMA = constants.GAMMA


def _hand_fluxes(rho, u, v, p):
    """Reference fluxes from the textbook definitions."""
    E = eos.total_energy(rho, u, v, p)
    H = (E + p) / rho
    F = np.array([rho * u, rho * u * u + p, rho * u * v, rho * u * H])
    G = np.array([rho * v, rho * u * v, rho * v * v + p, rho * v * H])
    return F, G


class TestInviscidFluxes:
    @pytest.mark.parametrize(
        "rho,u,v,p",
        [
            (1.0, 1.5, 0.0, 1.0 / GAMMA),  # jet centerline
            (2.0, 0.0, 0.0, 1.0 / GAMMA),  # quiescent freestream
            (0.7, -0.4, 0.9, 2.3),  # arbitrary
        ],
    )
    def test_against_hand_computed(self, rho, u, v, p):
        g = Grid(nx=5, nr=5)
        st = FlowState.from_primitive(g, rho, u, v, p)
        F, G, p_out = inviscid_fluxes(st.q)
        F_ref, G_ref = _hand_fluxes(rho, u, v, p)
        for k in range(4):
            assert F[k][0, 0] == pytest.approx(F_ref[k], rel=1e-12)
            assert G[k][0, 0] == pytest.approx(G_ref[k], rel=1e-12)
        assert p_out[0, 0] == pytest.approx(p, rel=1e-12)

    def test_mass_flux_is_momentum(self, small_grid, rng):
        st = random_physical_state(small_grid, rng)
        F, G, _ = inviscid_fluxes(st.q)
        assert np.array_equal(F[0], st.q[1])
        assert np.array_equal(G[0], st.q[2])

    def test_symmetry_under_uv_swap(self, rng):
        """Swapping (u <-> v) swaps F and G with rows 1<->2 exchanged."""
        g = Grid(nx=5, nr=5)
        rho, u, v, p = 1.1, 0.7, -0.3, 0.9
        a = FlowState.from_primitive(g, rho, u, v, p)
        b = FlowState.from_primitive(g, rho, v, u, p)
        Fa, Ga, _ = inviscid_fluxes(a.q)
        Fb, Gb, _ = inviscid_fluxes(b.q)
        assert Fa[0][0, 0] == pytest.approx(Gb[0][0, 0])
        assert Fa[1][0, 0] == pytest.approx(Gb[2][0, 0])
        assert Fa[2][0, 0] == pytest.approx(Gb[1][0, 0])
        assert Fa[3][0, 0] == pytest.approx(Gb[3][0, 0])

    def test_zero_velocity_fluxes_are_pressure_only(self, small_grid):
        st = FlowState.quiescent(small_grid, rho=1.0)
        F, G, p = inviscid_fluxes(st.q)
        assert np.allclose(F[0], 0) and np.allclose(G[0], 0)
        assert np.allclose(F[1], p) and np.allclose(G[2], p)
        assert np.allclose(F[3], 0) and np.allclose(G[3], 0)


class TestSource:
    def test_source_only_in_radial_momentum(self, small_grid, rng):
        st = random_physical_state(small_grid, rng)
        _, _, p = inviscid_fluxes(st.q)
        S = axisymmetric_source(st.q, p)
        assert np.allclose(S[0], 0)
        assert np.allclose(S[1], 0)
        assert np.allclose(S[3], 0)
        assert np.array_equal(S[2], p)

    def test_viscous_stress_reduces_source(self, small_grid):
        st = FlowState.quiescent(small_grid)
        _, _, p = inviscid_fluxes(st.q)
        tau_tt = 0.1 * np.ones_like(p)
        S = axisymmetric_source(st.q, p, tau_tt)
        assert np.allclose(S[2], p - 0.1)
