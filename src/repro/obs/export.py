"""Trace exporters: JSON-lines and Chrome ``trace_event`` format.

Both serializations are deterministic — keys sorted, compact separators,
records in monotone ``(t0, seq)`` order — so traces recorded against a
deterministic clock (the DES engine's) export byte-identically across
runs.  The Chrome format opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: one process, one thread
row per rank, nested slices for hierarchical spans.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .tracer import EventRecord, SpanRecord, Trace

#: Spans shorter than this many seconds are still exported with a non-zero
#: Chrome ``dur`` so Perfetto renders them as selectable slices.
_MIN_DUR_US = 1e-3


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# JSON-lines
# ---------------------------------------------------------------------------


def to_jsonl(trace: Trace, path: str | None = None) -> str:
    """Serialize a trace as JSON-lines; optionally also write to ``path``.

    Line order: one ``meta`` line, spans by ``(t0, seq)``, events by
    ``(t, seq)``, counters by ``(rank, name)``.
    """
    lines = [_dumps({"type": "meta", **{str(k): v for k, v in trace.meta.items()}})]
    for s in trace.ordered_spans():
        lines.append(
            _dumps(
                {
                    "type": "span",
                    "name": s.name,
                    "cat": s.cat,
                    "rank": s.rank,
                    "t0": s.t0,
                    "t1": s.t1,
                    "seq": s.seq,
                    "parent": s.parent,
                    "args": dict(s.args),
                }
            )
        )
    for e in trace.ordered_events():
        lines.append(
            _dumps(
                {
                    "type": "event",
                    "name": e.name,
                    "cat": e.cat,
                    "rank": e.rank,
                    "t": e.t,
                    "seq": e.seq,
                    "args": dict(e.args),
                }
            )
        )
    for (rank, name) in sorted(trace.counters):
        lines.append(
            _dumps(
                {
                    "type": "counter",
                    "name": name,
                    "rank": rank,
                    "value": trace.counters[(rank, name)],
                }
            )
        )
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def _trace_from_jsonl_lines(lines: Iterable[str]) -> Trace:
    trace = Trace()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.pop("type", None)
        if kind is None:
            raise ValueError(
                "not a trace file: record has no 'type' field (expected "
                "JSON-lines from to_jsonl or Chrome trace JSON)"
            )
        if kind == "meta":
            trace.meta.update(rec)
        elif kind == "span":
            trace.spans.append(
                SpanRecord(
                    name=rec["name"],
                    cat=rec["cat"],
                    rank=rec["rank"],
                    t0=rec["t0"],
                    t1=rec["t1"],
                    seq=rec["seq"],
                    parent=rec.get("parent"),
                    args=tuple(sorted(rec.get("args", {}).items())),
                )
            )
        elif kind == "event":
            trace.events.append(
                EventRecord(
                    name=rec["name"],
                    cat=rec["cat"],
                    rank=rec["rank"],
                    t=rec["t"],
                    seq=rec["seq"],
                    args=tuple(sorted(rec.get("args", {}).items())),
                )
            )
        elif kind == "counter":
            trace.counters[(rec["rank"], rec["name"])] = rec["value"]
        else:
            raise ValueError(f"unknown trace record type {kind!r}")
    return trace


# ---------------------------------------------------------------------------
# Chrome trace_event format (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------


def chrome_trace_events(trace: Trace) -> list[dict]:
    """The ``traceEvents`` array: complete ('X') slices + instant ('i')
    events on one thread per rank, with thread-name metadata."""
    events: list[dict] = []
    for rank in trace.ranks():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    for s in trace.ordered_spans():
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.cat,
                "pid": 0,
                "tid": s.rank,
                "ts": s.t0 * 1e6,
                "dur": max(s.duration * 1e6, _MIN_DUR_US),
                "args": dict(s.args),
            }
        )
    for e in trace.ordered_events():
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": e.name,
                "cat": e.cat,
                "pid": 0,
                "tid": e.rank,
                "ts": e.t * 1e6,
                "args": dict(e.args),
            }
        )
    return events


def chrome_counter_events(trace: Trace) -> list[dict]:
    """Perfetto counter ('C') tracks synthesized from the trace.

    Two cumulative time series per rank, rendered by Perfetto as counter
    tracks alongside the slice rows:

    * ``rank{r}.faults`` — running count of ``cat="fault"`` instants
      (injections and recovery actions), stepping at each event;
    * ``rank{r}.comm_calls`` — running count of ``cat="comm"`` leaf spans
      (send/recv library calls), stepping at each span end.

    These must be appended *after* every X/i record (see
    :func:`chrome_trace_json`): :func:`load_trace` numbers records by
    position, so trailing counter samples leave the span/event sequence
    numbering of a round-tripped trace unchanged.
    """
    events: list[dict] = []
    fault_counts: dict[int, int] = {}
    for e in trace.ordered_events():
        if e.cat != "fault":
            continue
        c = fault_counts.get(e.rank, 0) + 1
        fault_counts[e.rank] = c
        events.append(
            {
                "ph": "C",
                "name": f"rank{e.rank}.faults",
                "pid": 0,
                "tid": e.rank,
                "ts": e.t * 1e6,
                "args": {"faults": c},
            }
        )
    comm_counts: dict[int, int] = {}
    for s in trace.ordered_spans():
        if s.cat != "comm":
            continue
        c = comm_counts.get(s.rank, 0) + 1
        comm_counts[s.rank] = c
        events.append(
            {
                "ph": "C",
                "name": f"rank{s.rank}.comm_calls",
                "pid": 0,
                "tid": s.rank,
                "ts": s.t1 * 1e6,
                "args": {"calls": c},
            }
        )
    return events


def chrome_trace_json(trace: Trace) -> str:
    """Deterministic Chrome-trace JSON document for a whole trace.

    Counter tracks come last in ``traceEvents`` — Perfetto doesn't care
    about record order, but :func:`load_trace` does (positional sequence
    numbers), so the X/i prefix must stay byte-for-byte what it was
    before counter tracks existed.
    """
    counters = {
        f"rank{rank}.{name}": trace.counters[(rank, name)]
        for (rank, name) in sorted(trace.counters)
    }
    doc = {
        "traceEvents": chrome_trace_events(trace) + chrome_counter_events(trace),
        "displayTimeUnit": "ms",
        "otherData": {**{str(k): v for k, v in trace.meta.items()}, **counters},
    }
    return _dumps(doc)


def write_chrome_trace(trace: Trace, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(chrome_trace_json(trace))


def load_trace(path: str) -> Trace:
    """Load a trace file written by either exporter (autodetected)."""
    with open(path) as fh:
        first = fh.readline()
        rest = fh.read()
    text = first + rest
    stripped = first.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text:
        return _trace_from_chrome(json.loads(text))
    return _trace_from_jsonl_lines(text.splitlines())


def _trace_from_chrome(doc: dict) -> Trace:
    trace = Trace()
    other = doc.get("otherData", {})
    for k, v in other.items():
        if k.startswith("rank") and "." in k:
            rank_part, name = k.split(".", 1)
            try:
                rank = int(rank_part[4:])
            except ValueError:
                trace.meta[k] = v
                continue
            trace.counters[(rank, name)] = v
        else:
            trace.meta[k] = v
    seq = 0
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "X":
            t0 = ev["ts"] / 1e6
            trace.spans.append(
                SpanRecord(
                    name=ev["name"],
                    cat=ev.get("cat", ""),
                    rank=ev.get("tid", 0),
                    t0=t0,
                    t1=t0 + ev.get("dur", 0.0) / 1e6,
                    seq=seq,
                    args=tuple(sorted(ev.get("args", {}).items())),
                )
            )
        elif ph == "i":
            trace.events.append(
                EventRecord(
                    name=ev["name"],
                    cat=ev.get("cat", ""),
                    rank=ev.get("tid", 0),
                    t=ev["ts"] / 1e6,
                    seq=seq,
                    args=tuple(sorted(ev.get("args", {}).items())),
                )
            )
        seq += 1
    return trace


# ---------------------------------------------------------------------------
# DES timelines -> trace
# ---------------------------------------------------------------------------


def trace_from_timelines(timelines, tracer=None, meta: dict | None = None) -> Trace:
    """Convert simulated per-rank :class:`~repro.simulate.timeline.RankTimeline`
    segments into spans (``sim.compute`` / ``sim.library`` / ``sim.wait``).

    Timestamps are the engine's deterministic simulated seconds, so the
    resulting trace exports byte-identically across runs.  Pass an existing
    ``tracer`` to append to its trace (e.g. one that also collected engine
    scheduling events); otherwise a fresh :class:`Trace` is returned.
    """
    from .tracer import Tracer

    if tracer is None:
        tracer = Tracer(clock=lambda: 0.0)
    if meta:
        tracer.trace.meta.update(meta)
    for tl in timelines:
        segments = tl.segments or []
        for seg in segments:
            tracer.add_span(
                f"sim.{seg.kind}",
                seg.start,
                seg.end,
                cat=seg.kind,
                rank=tl.rank,
            )
        tracer.count("busy_seconds", tl.busy, rank=tl.rank)
        tracer.count("compute_seconds", tl.compute, rank=tl.rank)
        tracer.count("library_seconds", tl.library, rank=tl.rank)
        tracer.count("wait_seconds", tl.comm_wait, rank=tl.rank)
    return tracer.trace
