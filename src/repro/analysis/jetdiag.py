"""Jet-flow diagnostics: the physics the application exists to compute.

The paper's application computes "time accurate flow fields of a supersonic
axisymmetric jet" whose near field drives the radiated sound (Lighthill's
acoustic analogy, the paper's Section 1).  These diagnostics extract the
quantities that matter for that purpose from a solver run:

* :class:`ProbeRecorder` — time series of primitive variables at fixed
  probe points (e.g. near-field pressure for the acoustic analogy);
* :func:`spectrum` — amplitude spectrum of a probe series with the
  Strouhal-number axis the jet community uses (``St = f D / U_jet``);
* :func:`momentum_thickness` — the shear-layer momentum thickness at each
  axial station (its growth measures the Kelvin-Helmholtz development);
* :func:`centerline_velocity` / :func:`shear_layer_radius` — classic jet
  development measures;
* :func:`vorticity` — azimuthal vorticity ``omega = dv/dx - du/dr`` (the
  rolled-up braid structures visible in Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid import Grid
from ..physics.state import FlowState


# ---------------------------------------------------------------------------
# Probes and spectra
# ---------------------------------------------------------------------------


@dataclass
class ProbeRecorder:
    """Record primitive time series at fixed grid probes.

    Use as a solver monitor::

        rec = ProbeRecorder.at_locations(grid, [(5.0, 1.0), (10.0, 1.0)])
        solver.run(2000, monitor=rec, monitor_every=1)
        St, amp = spectrum(rec.series("p", 0), rec.dt_mean, mach=1.5)
    """

    indices: list[tuple[int, int]]
    times: list[float] = field(default_factory=list)
    _data: dict[str, list[list[float]]] = field(default_factory=dict)

    @classmethod
    def at_locations(
        cls, grid: Grid, points: list[tuple[float, float]]
    ) -> "ProbeRecorder":
        """Probes at the grid points nearest the given ``(x, r)`` pairs."""
        idx = []
        for x, r in points:
            i = int(np.argmin(np.abs(grid.x - x)))
            j = int(np.argmin(np.abs(grid.r - r)))
            idx.append((i, j))
        return cls(indices=idx)

    def __call__(self, solver) -> None:
        """Monitor hook: sample the current state."""
        self.record(solver.state, solver.t)

    def record(self, state: FlowState, t: float) -> None:
        self.times.append(t)
        fields = {
            "rho": state.rho,
            "u": state.u,
            "v": state.v,
            "p": state.p,
        }
        for name, arr in fields.items():
            rows = self._data.setdefault(name, [[] for _ in self.indices])
            for k, (i, j) in enumerate(self.indices):
                rows[k].append(float(arr[i, j]))

    def series(self, name: str, probe: int) -> np.ndarray:
        """The recorded time series of ``name`` at probe index ``probe``."""
        return np.asarray(self._data[name][probe])

    @property
    def dt_mean(self) -> float:
        """Mean sampling interval (the solver's dt is near-constant)."""
        if len(self.times) < 2:
            raise ValueError("need at least two samples")
        return float((self.times[-1] - self.times[0]) / (len(self.times) - 1))

    @property
    def nsamples(self) -> int:
        return len(self.times)


def spectrum(
    series: np.ndarray,
    dt: float,
    mach: float,
    detrend: bool = True,
    window: bool = True,
):
    """One-sided amplitude spectrum on a Strouhal-number axis.

    ``St = f D / U_jet`` with the jet diameter ``D = 2`` (radii units) and
    ``U_jet = mach`` (sound-speed units), so ``St = 2 f / mach``.

    Returns ``(St, amplitude)`` with the zero-frequency bin removed.
    """
    y = np.asarray(series, dtype=np.float64)
    if y.size < 8:
        raise ValueError("series too short for a spectrum")
    if detrend:
        y = y - y.mean()
    if window:
        y = y * np.hanning(y.size)
    amp = np.abs(np.fft.rfft(y)) * 2.0 / y.size
    freq = np.fft.rfftfreq(y.size, d=dt)
    St = 2.0 * freq / mach
    return St[1:], amp[1:]


def dominant_strouhal(series: np.ndarray, dt: float, mach: float) -> float:
    """The Strouhal number of the strongest spectral peak."""
    St, amp = spectrum(series, dt, mach)
    return float(St[int(np.argmax(amp))])


# ---------------------------------------------------------------------------
# Mean-flow development
# ---------------------------------------------------------------------------


def momentum_thickness(state: FlowState, i: int) -> float:
    """Compressible momentum thickness at axial station ``i``:

    ``theta = integral rho u (u_c - u) / (rho_c u_c^2) dr``

    with the local centerline state as reference.  Grows as the shear
    layer spreads downstream.
    """
    r = state.grid.r
    rho = state.rho[i]
    u = state.u[i]
    rho_c, u_c = rho[0], u[0]
    if abs(u_c) < 1e-12:
        raise ValueError(f"station {i} has no jet (centerline u ~ 0)")
    integrand = rho * u * (u_c - u) / (rho_c * u_c**2)
    return float(np.trapezoid(np.clip(integrand, 0.0, None), r))


def centerline_velocity(state: FlowState) -> np.ndarray:
    """Axial velocity along the first radial line (the near-axis row)."""
    return state.u[:, 0].copy()


def shear_layer_radius(state: FlowState, i: int, level: float = 0.5) -> float:
    """Radius where ``u`` falls to ``level`` of the local centerline value."""
    u = state.u[i]
    target = level * u[0]
    below = np.nonzero(u < target)[0]
    if below.size == 0:
        return float(state.grid.r[-1])
    return float(state.grid.r[below[0]])


def vorticity(state: FlowState) -> np.ndarray:
    """Azimuthal vorticity ``dv/dx - du/dr`` on the full grid."""
    g = state.grid
    dv_dx = np.gradient(state.v, g.dx, axis=0, edge_order=2)
    du_dr = np.gradient(state.u, g.dr, axis=1, edge_order=2)
    return dv_dx - du_dr
