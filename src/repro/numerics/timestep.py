"""Stable time-step estimation for the explicit 2-4 MacCormack scheme."""

from __future__ import annotations

import numpy as np

from .. import constants
from ..physics import eos


def stable_dt(
    q: np.ndarray,
    dx: float,
    dr: float,
    cfl: float = 0.5,
    mu: float = 0.0,
    gamma: float = constants.GAMMA,
) -> float:
    """Largest stable ``dt`` by the convective (and optional viscous) limits.

    The convective limit uses the standard multidimensional estimate

    ``dt <= cfl / max( (|u| + c)/dx + (|v| + c)/dr )``

    (the 2-4 scheme's 1-D stability bound is ``lambda <= 2/3``; the default
    ``cfl = 0.5`` leaves margin for the source terms and boundary closures).
    The viscous limit is ``dt <= 0.25 * min(dx, dr)^2 / max(nu)`` with
    kinematic viscosity ``nu = mu / rho`` scaled by the conductivity-driven
    factor ``gamma / Pr`` worst case.

    Works on full-domain or subdomain arrays; the distributed solver
    min-reduces the per-slab results, which is exactly equal to the serial
    value.
    """
    rho = q[0]
    u = q[1] / rho
    v = q[2] / rho
    p = eos.pressure(q[0], q[1], q[2], q[3], gamma)
    c = np.sqrt(gamma * p / rho)
    conv = np.max((np.abs(u) + c) / dx + (np.abs(v) + c) / dr)
    dt = cfl / conv
    if mu:
        nu = np.max(mu / rho) * max(gamma / constants.PRANDTL, 1.0)
        dt_visc = 0.25 * min(dx, dr) ** 2 / nu
        dt = min(dt, dt_visc)
    return float(dt)
