"""The process substrate: real multi-core SPMD execution (ISSUE 5).

Three layers of coverage:

* **msglib unit tests** — :class:`~repro.msglib.ProcessCluster` and
  :class:`~repro.msglib.ProcessCommunicator` honour the same
  :class:`~repro.msglib.Communicator` contract as the virtual cluster:
  tag-matched point-to-point (shared-memory and oversized-inline paths),
  ``(source, tag)`` selectivity, collectives, timeouts
  (:class:`~repro.msglib.DeadlockError`) and the structured failure
  contract (:class:`~repro.msglib.RankFailure` + survivor abort).
* **cross-substrate equivalence** — a distributed run on OS processes is
  bitwise-identical to the same run on the virtual cluster and to the
  serial reference, for Euler and Navier-Stokes, for the fused and
  baseline kernel backends, and through checkpoint/restart recovery.
* **facade composition** — ``api.run(..., substrate="process")`` routes,
  records per-rank metrics/traces from every worker (exact merge on
  join), stamps the substrate into the perf report fingerprint, and
  rejects meaningless combinations.

Worker processes are forked, so every test here is POSIX-only (the
cluster raises a clear error elsewhere); spawn cost keeps the chaos
matrix subset behind ``-m slow``.
"""

from __future__ import annotations

import dataclasses
import pickle
import time

import numpy as np
import pytest

from repro import jet_scenario
from repro.api import run
from repro.faults import FaultPlan, MessageTimeout, RankCrashed
from repro.msglib import (
    ClusterAborted,
    DeadlockError,
    ProcessCluster,
    ProcessCommunicator,
    RankFailure,
    RemoteRankError,
    VirtualCluster,
)
from repro.msglib.process import DEFAULT_SLOT_BYTES, _portable_exception
from repro.parallel.runner import ParallelJetSolver, serial_reference

STEPS = 6

#: Chaos-matrix subset exercised over real processes (the full matrix
#: lives in test_faults.py on the cheap-to-spawn virtual cluster).
CHAOS_KINDS = {
    "duplicate": dict(duplicate=0.25),
    "reorder": dict(reorder=0.2),
    "mixed": dict(drop=0.08, duplicate=0.08, reorder=0.08, truncate=0.05,
                  delay=0.15, max_delay=0.001, max_transmits=4),
}


def _case(viscous: bool):
    sc = jet_scenario(nx=48, nr=16, viscous=viscous)
    config = dataclasses.replace(sc.solver.config, dt_recompute_every=1)
    ref = serial_reference(sc.state, config, steps=STEPS)
    return sc, config, ref


@pytest.fixture(scope="module")
def ns_case():
    return _case(viscous=True)


@pytest.fixture(scope="module")
def euler_case():
    return _case(viscous=False)


# -- msglib unit tests --------------------------------------------------------


class TestProcessCluster:
    def test_ring_exchange(self):
        """Every rank sends right / receives left; payloads intact."""

        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(right, "ring", np.full(8, float(comm.rank)))
            got = comm.recv(left, "ring")
            return float(got[0])

        with ProcessCluster(3, timeout=20) as cluster:
            results = cluster.run(program)
        assert results == [2.0, 0.0, 1.0]

    def test_tag_selectivity_and_stash(self):
        """Receives match on (source, tag) even against arrival order."""

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "first", np.array([1.0]))
                comm.send(1, "second", np.array([2.0]))
                return None
            # Consume in reverse send order: 'first' must wait stashed.
            b = comm.recv(0, "second", timeout=10)
            a = comm.recv(0, "first", timeout=10)
            assert comm.pending() == 0
            return (float(a[0]), float(b[0]))

        with ProcessCluster(2, timeout=20) as cluster:
            results = cluster.run(program)
        assert results[1] == (1.0, 2.0)

    def test_oversized_payload_rides_inline(self):
        """Payloads beyond slot_bytes cross the queue, bit-exact."""
        big = np.arange(DEFAULT_SLOT_BYTES // 8 + 100, dtype=np.float64)

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "big", big)
                return None
            got = comm.recv(0, "big", timeout=20)
            return bool(np.array_equal(got, big))

        with ProcessCluster(2, timeout=20) as cluster:
            results = cluster.run(program)
        assert results[1] is True

    def test_collectives_and_stats(self):
        def program(comm):
            lo = comm.allreduce_min(float(10 - comm.rank))
            comm.barrier()
            parts = comm.gather_arrays(np.array([float(comm.rank)]))
            gathered = (
                [float(p[0]) for p in parts] if comm.rank == 0 else None
            )
            return lo, gathered, comm.stats.sends

        with ProcessCluster(3, timeout=20) as cluster:
            results = cluster.run(program)
            total = cluster.total_stats()
        assert [r[0] for r in results] == [8.0, 8.0, 8.0]
        assert results[0][1] == [0.0, 1.0, 2.0]
        assert all(r[2] > 0 for r in results)
        assert total.sends == total.recvs > 0

    def test_recv_timeout_is_deadlock_error(self):
        def program(comm):
            if comm.rank == 1:
                with pytest.raises(DeadlockError):
                    comm.recv(0, "never", timeout=0.1)
            comm.barrier()
            return comm.rank

        with ProcessCluster(2, timeout=20) as cluster:
            assert cluster.run(program) == [0, 1]

    def test_worker_exception_is_structured(self):
        """A raising rank produces RankFailure; survivors are aborted."""

        def program(comm):
            if comm.rank == 1:
                raise ValueError("injected worker failure")
            # Rank 0 blocks on a message that never comes: the abort
            # broadcast must fail it promptly instead of timing out.
            comm.recv(1, "never")

        with ProcessCluster(2, timeout=60) as cluster:
            with pytest.raises(RankFailure) as exc:
                cluster.run(program)
        failure = exc.value
        assert failure.rank == 1
        assert isinstance(failure.__cause__, ValueError)
        assert any(
            isinstance(e, ClusterAborted) for _, _, e in failure.failures
        ), "the surviving rank should have been aborted"

    def test_run_is_single_shot(self):
        with ProcessCluster(2, timeout=20) as cluster:
            cluster.run(lambda comm: comm.rank)
            with pytest.raises(RuntimeError, match="single-shot"):
                cluster.run(lambda comm: comm.rank)

    def test_backpressure_fills_then_times_out(self):
        """An unconsumed channel applies backpressure, then deadlocks.

        Rank 1 must stay out of every receive: any blocking wait drains
        the control queue into the stash (freeing ring slots), which is
        exactly the backpressure-release path this test must not take.
        """

        def program(comm):
            if comm.rank == 0:
                with pytest.raises(DeadlockError, match="stayed occupied"):
                    for _ in range(100):
                        comm.send(1, "flood", np.zeros(4))
                return True
            time.sleep(1.5)
            return True

        with ProcessCluster(
            2, timeout=0.5, slots_per_channel=2
        ) as cluster:
            assert cluster.run(program) == [True, True]


class TestRecvView:
    """Zero-copy borrow receives on the shared-memory slot ring.

    The contract under test: a slot handed out by ``recv_view`` stays
    borrowed — the sender blocks rather than overwrite it — until the
    exact moment ``release()`` runs; release is mandatory exactly once;
    and payloads that never lived in a slot (inline/oversized) come back
    as owned views with the identical release discipline.
    """

    def test_zero_copy_borrow_and_release(self):
        payload = np.arange(32.0)

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "zc", payload)
                return True
            view = comm.recv_view(0, "zc", timeout=20)
            assert view.zero_copy
            assert not view.array.flags.writeable
            ok = bool(np.array_equal(view.array, payload))
            view.release()
            assert view.released
            with pytest.raises(RuntimeError, match="after release"):
                view.array
            with pytest.raises(RuntimeError, match="called twice"):
                view.release()
            return ok

        with ProcessCluster(2, timeout=20) as cluster:
            assert cluster.run(program)[1] is True

    def test_context_manager_scopes_the_borrow(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(1, "zc", np.full(8, 3.0))
                return True
            with comm.recv_view(0, "zc", timeout=20) as view:
                ok = bool(np.array_equal(view.array, np.full(8, 3.0)))
            assert view.released
            return ok

        with ProcessCluster(2, timeout=20) as cluster:
            assert cluster.run(program)[1] is True

    def test_oversized_payload_gives_owned_view(self):
        """Payloads that rode the queue inline still honour the view API
        — just as owned copies, not borrows."""
        big = np.arange(DEFAULT_SLOT_BYTES // 8 + 50, dtype=np.float64)

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "big", big)
                return True
            view = comm.recv_view(0, "big", timeout=20)
            assert not view.zero_copy
            ok = bool(np.array_equal(view.array, big))
            view.release()
            with pytest.raises(RuntimeError, match="called twice"):
                view.release()
            return ok

        with ProcessCluster(2, timeout=20) as cluster:
            assert cluster.run(program)[1] is True

    def test_borrowed_slot_survives_sender_flood(self):
        """The chaos regression at the heart of the borrow contract: with
        a 2-slot ring, a sender that wraps around to the borrowed slot
        must park on it — not overwrite it — until release, and the
        borrowed bytes stay intact the whole time."""
        msgs = [np.full(16, float(i)) for i in range(6)]

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "m:0", msgs[0])
                comm.recv(1, "go", timeout=30)  # rank 1 holds the borrow
                for i in range(1, 6):
                    # m:2 reuses the borrowed slot -> blocks until release.
                    comm.send(1, f"m:{i}", msgs[i])
                return True
            view = comm.recv_view(0, "m:0", timeout=30)
            assert view.zero_copy
            comm.send(0, "go", np.zeros(1))
            got1 = comm.recv(0, "m:1", timeout=30)
            # The sender is now parked on the borrowed slot: m:2 can't land.
            with pytest.raises(DeadlockError):
                comm.recv(0, "m:2", timeout=0.4)
            assert np.array_equal(view.array, msgs[0])
            view.release()
            rest = [comm.recv(0, f"m:{i}", timeout=30) for i in range(2, 6)]
            return bool(
                np.array_equal(got1, msgs[1])
                and all(
                    np.array_equal(r, msgs[i + 2]) for i, r in enumerate(rest)
                )
            )

        with ProcessCluster(2, timeout=30, slots_per_channel=2) as cluster:
            assert cluster.run(program)[1] is True

    def test_borrow_exhausting_the_ring_raises_structured(self):
        """The overlap-window regression: a receive that can only be
        satisfied by the slot the receiver itself is borrowing is a
        self-inflicted deadlock — the receiver must get a structured
        DeadlockError naming the held slot (not a generic timeout), and
        releasing the borrow must unwedge the parked sender."""

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "a", np.arange(4.0))
                # Parks on the 1-slot ring until rank 1 releases "a".
                comm.send(1, "b", np.ones(4))
                return True
            view = comm.recv_view(0, "a", timeout=20)
            with pytest.raises(DeadlockError, match="recv_view") as exc:
                comm.recv(0, "b", timeout=10)
            assert exc.value.rank == 1
            assert exc.value.source == 0
            assert exc.value.slot == 0
            ok = bool(np.array_equal(view.array, np.arange(4.0)))
            view.release()
            got = comm.recv(0, "b", timeout=20)
            return ok and bool(np.array_equal(got, np.ones(4)))

        with ProcessCluster(
            2, timeout=30, slots_per_channel=1
        ) as cluster:
            assert cluster.run(program)[1] is True

    def test_release_after_abort_is_structured(self):
        """Releasing a borrow after the cluster died raises ClusterAborted
        — the ring is gone and the borrowed bytes must be treated as lost."""

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "zc", np.ones(8))
                time.sleep(1.0)  # no comm ops while rank 1 flags the abort
                return True
            view = comm.recv_view(0, "zc", timeout=20)
            comm.cluster._abort.set()
            with pytest.raises(ClusterAborted, match="after cluster abort"):
                view.release()
            assert view.released  # the view is dead either way
            return True

        with ProcessCluster(2, timeout=20) as cluster:
            assert cluster.run(program)[1] is True

    def test_eager_recv_unaffected_by_view_api(self):
        """Plain recv still owns its payload outright — mutating it never
        touches the ring (the slot was freed at materialization)."""

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "a", np.full(8, 1.0))
                comm.send(1, "b", np.full(8, 2.0))
                return True
            a = comm.recv(0, "a", timeout=20)
            a[:] = -1.0  # owned: writable, detached from the ring
            b = comm.recv(0, "b", timeout=20)
            return bool(np.array_equal(b, np.full(8, 2.0)))

        with ProcessCluster(2, timeout=20) as cluster:
            assert cluster.run(program)[1] is True


class TestExceptionPortability:
    """Structured fault exceptions must survive the process boundary."""

    @pytest.mark.parametrize("exc", [
        RankCrashed(3, 17),
        MessageTimeout(1, 0, "5:halo", 2.5, 4, step=5),
    ])
    def test_fault_errors_pickle_round_trip(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert clone.args == exc.args
        assert vars(clone) == vars(exc)
        assert _portable_exception(exc) is exc

    def test_unpicklable_exception_is_wrapped(self):
        exc = ValueError("boom")
        exc.payload = lambda: None  # closures don't pickle
        exc.step = 9
        wrapped = _portable_exception(exc)
        assert isinstance(wrapped, RemoteRankError)
        assert wrapped.original_type == "ValueError"
        assert wrapped.step == 9
        assert "boom" in str(wrapped)


# -- cross-substrate equivalence ----------------------------------------------


class TestSubstrateEquivalence:
    @pytest.mark.parametrize("case", ["euler_case", "ns_case"])
    def test_process_matches_virtual_and_serial(self, case, request):
        sc, config, ref = request.getfixturevalue(case)
        runs = {}
        for substrate in ("virtual", "process"):
            res = ParallelJetSolver(
                sc.state, config, nranks=2, timeout=60, substrate=substrate,
            ).run(STEPS)
            runs[substrate] = res
        assert np.array_equal(runs["process"].state.q, runs["virtual"].state.q)
        assert np.array_equal(runs["process"].state.q, ref.q)
        # Both substrates speak the same protocol: identical traffic shape.
        assert [s.sends for s in runs["process"].per_rank_stats] == [
            s.sends for s in runs["virtual"].per_rank_stats
        ]

    @pytest.mark.parametrize(
        "nranks,kw",
        [
            (2, dict(decomposition="radial")),
            (4, dict(decomposition="2d", px=2, pr=2)),
        ],
        ids=["radial", "2d"],
    )
    def test_other_decompositions_match_virtual_and_serial(
        self, ns_case, nranks, kw
    ):
        """Full substrate parity: radial and 2-D runs are bitwise-equal
        across OS processes, the virtual cluster and the serial reference,
        with identical per-rank traffic shape."""
        sc, config, ref = ns_case
        runs = {}
        for substrate in ("virtual", "process"):
            runs[substrate] = ParallelJetSolver(
                sc.state, config, nranks=nranks, timeout=60,
                substrate=substrate, **kw,
            ).run(STEPS)
        assert np.array_equal(runs["process"].state.q, runs["virtual"].state.q)
        assert np.array_equal(runs["process"].state.q, ref.q)
        assert [s.sends for s in runs["process"].per_rank_stats] == [
            s.sends for s in runs["virtual"].per_rank_stats
        ]

    @pytest.mark.parametrize(
        "nranks,kw",
        [
            (2, dict(decomposition="radial")),
            (4, dict(decomposition="2d", px=2, pr=2)),
        ],
        ids=["radial", "2d"],
    )
    def test_crash_recovers_on_other_decompositions(
        self, ns_case, chaos_seed, nranks, kw
    ):
        """Worker-process crash on a radial/2-D run: the parent-held
        store resumes from the shipped snapshot, bitwise-exact."""
        sc, config, ref = ns_case
        plan = FaultPlan(seed=chaos_seed, crashes=((1, 4),),
                         recv_timeout=0.2, recv_retries=2)
        res = ParallelJetSolver(
            sc.state, config, nranks=nranks, timeout=60,
            substrate="process", faults=plan, checkpoint_every=2, **kw,
        ).run(STEPS)
        assert res.restarts == 1
        assert np.array_equal(res.state.q, ref.q)

    def test_fused_matches_baseline_on_processes(self, euler_case):
        sc, config, _ = euler_case
        states = {}
        for backend in ("baseline", "fused"):
            cfg = dataclasses.replace(config, backend=backend)
            states[backend] = ParallelJetSolver(
                sc.state, cfg, nranks=2, timeout=60, substrate="process",
            ).run(STEPS).state.q
        assert np.array_equal(states["fused"], states["baseline"])

    def test_crash_recovers_via_checkpoint(self, ns_case, chaos_seed):
        """Injected crash on a worker process: the parent-held store
        restarts the run from the shipped snapshot, bitwise-exact."""
        sc, config, ref = ns_case
        plan = FaultPlan(seed=chaos_seed, crashes=((1, 4),),
                         recv_timeout=0.2, recv_retries=2)
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=60, substrate="process",
            faults=plan, checkpoint_every=2,
        ).run(STEPS)
        assert res.restarts == 1
        assert np.array_equal(res.state.q, ref.q)

    @pytest.mark.slow
    @pytest.mark.parametrize("kind", sorted(CHAOS_KINDS))
    def test_chaos_subset(self, ns_case, kind, chaos_seed):
        """Seeded wire chaos over real processes: recovered bitwise or
        structured failure — same contract as the virtual chaos matrix."""
        sc, config, ref = ns_case
        plan = FaultPlan(
            seed=chaos_seed, name=kind, recv_timeout=0.3, recv_retries=4,
            **CHAOS_KINDS[kind],
        )
        try:
            res = ParallelJetSolver(
                sc.state, config, nranks=2, timeout=60, substrate="process",
                faults=plan, max_restarts=0,
            ).run(STEPS)
        except RankFailure as failure:
            assert failure.ranks
            assert all(0 <= r < 2 for r in failure.ranks)
            return
        assert np.array_equal(res.state.q, ref.q)


# -- facade composition -------------------------------------------------------


class TestApiProcessSubstrate:
    @pytest.fixture(scope="class")
    def process_run(self):
        return run(
            "jet-euler", steps=4, nprocs=2, nx=48, nr=16,
            substrate="process", metrics=True, trace=True,
        )

    def test_routes_and_stamps_substrate(self, process_run):
        res = process_run
        assert res.mode == "parallel"
        assert res.substrate == "process"
        assert res.perf.substrate == "process"

    def test_matches_virtual_route_bitwise(self, process_run):
        ref = run("jet-euler", steps=4, nprocs=2, nx=48, nr=16)
        assert ref.substrate == "virtual"
        assert np.array_equal(process_run.state.q, ref.state.q)

    def test_fingerprint_separates_substrates(self, process_run):
        ref = run("jet-euler", steps=4, nprocs=2, nx=48, nr=16,
                  metrics=True)
        assert ref.perf.substrate == "virtual"
        assert ref.perf.fingerprint != process_run.perf.fingerprint

    def test_observability_covers_every_rank(self, process_run):
        res = process_run
        assert [s.sends for s in res.per_rank_stats] == [13, 14]
        span_ranks = {s.rank for s in res.trace.spans}
        assert {0, 1} <= span_ranks
        snap = res.metrics.snapshot()
        bytes_sent = snap["counters"]["comm.bytes_sent"]
        assert set(bytes_sent) == {"0", "1"}
        # Live per-call histograms must carry both workers' samples too
        # (recorded in the forked processes, merged exactly on join).
        send_calls = snap["histograms"]["comm.send_call_seconds"]
        assert set(send_calls) == {"0", "1"}

    def test_rejects_unknown_substrate(self):
        with pytest.raises(ValueError, match="substrate"):
            run("jet-euler", steps=2, nprocs=2, substrate="mpi-someday")

    def test_rejects_platform_combination(self):
        with pytest.raises(ValueError, match="simulated"):
            run("jet-euler", steps=2, nprocs=4, platform="sp2",
                substrate="process")

    def test_nprocs_one_takes_serial_route(self):
        res = run("jet-euler", steps=2, nprocs=1, nx=48, nr=16,
                  substrate="process")
        assert res.mode == "serial"
        assert res.substrate is None
