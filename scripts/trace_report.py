#!/usr/bin/env python3
"""Component-split report from a recorded trace file (the paper's Figure 5).

Reads a trace produced by ``repro.api.run(..., trace="out.json")`` — either
the Chrome ``trace_event`` JSON or the JSON-lines export — and prints the
per-rank and mean computation / message-startup / data-transfer breakdown
that Figures 5-6 of the paper plot per platform.

Flight-recorder post-mortems (``*.flight.jsonl`` files flushed by
``run(..., flight=...)`` or recovered by the run service after a killed
worker) are autodetected by their ``repro.flight/1`` schema line and
rendered as a per-rank table of each rank's last recorded events.

Usage::

    python scripts/trace_report.py out.json [more.json ...]
    python scripts/trace_report.py results/0af5d.flight.jsonl
    python scripts/trace_report.py --selftest

``--selftest`` records two fresh traces of the same deterministic simulated
run and verifies the exports are byte-identical (the determinism smoke test
wired into ``make check``).
"""

import argparse
import sys


def fault_timeline(trace, limit: int = 40) -> str:
    """Chronological table of injected faults and recovery actions.

    Covers the ``cat="fault"`` instants both substrates record: the
    thread substrate's ``fault.drop`` / ``fault.duplicate`` / ... /
    ``recovery.restart`` events and the DES substrate's
    ``fault.sim_delay`` occupancy injections.  Empty string when the run
    had no fault layer active.
    """
    from repro.analysis.report import format_table

    events = [e for e in trace.ordered_events() if e.cat == "fault"]
    if not events:
        return ""
    rows = []
    for e in events[:limit]:
        args = dict(e.args)
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(args.items()) if k != "step"
        )
        rows.append(
            [f"{e.t:.6f}", e.rank, args.get("step", ""), e.name, detail]
        )
    counts = {}
    for e in events:
        counts[e.name] = counts.get(e.name, 0) + 1
    summary = ", ".join(f"{n} x{c}" for n, c in sorted(counts.items()))
    title = f"fault timeline ({len(events)} events: {summary})"
    table = format_table(
        ["t (s)", "rank", "step", "event", "detail"], rows, title=title
    )
    if len(events) > limit:
        table += f"\n... and {len(events) - limit} more fault events"
    return table


def _is_flight_file(path: str) -> bool:
    """True when the file's first line carries the flight schema tag."""
    import json

    try:
        with open(path, encoding="utf-8") as fh:
            first = fh.readline().strip()
        return bool(first) and json.loads(first).get("schema") == (
            "repro.flight/1"
        )
    except (OSError, ValueError):
        return False


def flight_report(path: str, last: int = 10) -> str:
    """Per-rank table of the flight recorder's last events.

    The recorder keeps only each rank's final ``capacity`` events, so this
    is exactly the "what was every rank doing when it died" view.
    """
    from repro.analysis.report import format_table
    from repro.obs import read_flight_jsonl

    events_by_rank = read_flight_jsonl(path)
    rows = []
    for rank in sorted(events_by_rank):
        events = events_by_rank[rank]
        for e in events[-last:]:
            detail = ", ".join(
                f"{k}={v}"
                for k, v in sorted(e.items())
                if k not in ("kind", "rank", "t")
            )
            rows.append([rank, f"{e.get('t', 0.0):.6f}", e.get("kind"), detail])
    total = sum(len(v) for v in events_by_rank.values())
    title = (
        f"{path}: flight recorder, {len(events_by_rank)} rank(s), "
        f"{total} surviving events (last {last} per rank shown)"
    )
    return format_table(["rank", "t (epoch s)", "event", "detail"], rows,
                        title=title)


def report(path: str) -> str:
    from repro.analysis.metrics import component_breakdown
    from repro.analysis.report import format_table
    from repro.obs import load_trace

    if _is_flight_file(path):
        return flight_report(path)
    trace = load_trace(path)
    bd = component_breakdown(trace)
    rows = []
    for rank, c in bd.per_rank:
        rows.append(
            [
                rank,
                f"{c.computation:.4f}",
                f"{c.startup:.4f}",
                f"{c.transfer:.4f}",
                f"{c.total:.4f}",
            ]
        )
    fc, fs, ft = bd.fractions()
    rows.append(
        [
            "mean",
            f"{bd.computation:.4f}",
            f"{bd.startup:.4f}",
            f"{bd.transfer:.4f}",
            f"{bd.total:.4f}",
        ]
    )
    meta = trace.meta or {}
    where = meta.get("platform", f"{len(bd.per_rank)} rank(s)")
    title = (
        f"{path}: {bd.source} components, {where} — "
        f"computation {100 * fc:.1f}%, startup {100 * fs:.1f}%, "
        f"transfer {100 * ft:.1f}% (paper Fig. 5)"
    )
    table = format_table(
        ["rank", "computation s", "startup s", "transfer s", "total s"],
        rows,
        title=title,
    )
    faults = fault_timeline(trace)
    if faults:
        table += "\n\n" + faults
    return table


def selftest() -> int:
    import tempfile, os

    from repro import run
    from repro.obs import chrome_trace_json, to_jsonl

    def one() -> tuple[str, str]:
        res = run(
            "jet", platform="Cray T3D", nprocs=4, version=5,
            steps_window=4, trace=True,
        )
        return to_jsonl(res.trace), chrome_trace_json(res.trace)

    a, b = one(), one()
    if a != b:
        print("FAIL: two identical simulated runs exported different bytes")
        return 1
    with tempfile.TemporaryDirectory() as d:
        p = os.path.join(d, "t.json")
        res = run(
            "jet", platform="Cray T3D", nprocs=4, version=5,
            steps_window=4, trace=p,
        )
        print(report(p))
    print("OK: trace exports byte-identical across runs")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", help="trace files (chrome or jsonl)")
    ap.add_argument("--selftest", action="store_true",
                    help="trace determinism smoke test")
    args = ap.parse_args(argv)
    if args.selftest:
        return selftest()
    if not args.paths:
        ap.error("give at least one trace file (or --selftest)")
    for p in args.paths:
        print(report(p))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
