"""Reproduction benchmark: Figure 6: Components of execution time (Euler; LACE)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig06(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig06"),
        "Figure 6: Components of execution time (Euler; LACE)",
    )
