"""Parallel-performance metrics used throughout the evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def speedup(t1: float, tp: float) -> float:
    """Classic speedup ``T(1) / T(p)``."""
    if tp <= 0:
        raise ValueError("parallel time must be positive")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Parallel efficiency ``speedup / p``."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return speedup(t1, tp) / p


def flops_per_byte(total_flops: float, nprocs: int, volume_bytes: float) -> float:
    """Table 2's FPs/Byte: per-processor flops over per-processor volume.

    The per-processor communication volume of the axial decomposition is
    independent of the processor count (each interior processor exchanges
    fixed-width boundary columns), so this halves with each doubling of
    ``nprocs`` — exactly the paper's column.
    """
    if nprocs < 2:
        return float("inf")
    return (total_flops / nprocs) / volume_bytes


def flops_per_startup(total_flops: float, nprocs: int, startups: float) -> float:
    """Table 2's FPs/Start-up."""
    if nprocs < 2:
        return float("inf")
    return (total_flops / nprocs) / startups


def minimum_location(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """``(x, y)`` of the minimum of a sampled curve (e.g. the Ethernet
    execution-time minimum near 8 processors)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length, non-empty")
    k = min(range(len(ys)), key=lambda i: ys[i])
    return xs[k], ys[k]


def balance_spread(values: Sequence[float]) -> float:
    """Relative spread ``(max - min) / mean`` — Figure 13's load balance."""
    if not values:
        raise ValueError("empty sequence")
    m = sum(values) / len(values)
    if m == 0:
        return 0.0
    return (max(values) - min(values)) / m


@dataclass(frozen=True)
class RankComponents:
    """One rank's share of the paper's three execution-time components."""

    computation: float
    startup: float
    transfer: float

    @property
    def communication(self) -> float:
        return self.startup + self.transfer

    @property
    def total(self) -> float:
        return self.computation + self.startup + self.transfer


@dataclass(frozen=True)
class ComponentBreakdown:
    """The paper's computation / startup / data-transfer split (Figs 5-6),
    recomputed from a recorded :class:`repro.obs.Trace`."""

    per_rank: tuple[tuple[int, RankComponents], ...]
    source: str
    """``"simulated"`` (DES timeline spans) or ``"measured"`` (wall-clock
    spans of a real run)."""

    def rank(self, r: int) -> RankComponents:
        for rank, comp in self.per_rank:
            if rank == r:
                return comp
        raise KeyError(f"rank {r} not in trace")

    @property
    def computation(self) -> float:
        """Mean per-rank computation seconds."""
        return sum(c.computation for _, c in self.per_rank) / len(self.per_rank)

    @property
    def startup(self) -> float:
        """Mean per-rank message-startup (send-side software) seconds."""
        return sum(c.startup for _, c in self.per_rank) / len(self.per_rank)

    @property
    def transfer(self) -> float:
        """Mean per-rank data-transfer (receive/wait) seconds."""
        return sum(c.transfer for _, c in self.per_rank) / len(self.per_rank)

    @property
    def communication(self) -> float:
        return self.startup + self.transfer

    @property
    def total(self) -> float:
        return self.computation + self.communication

    def fractions(self) -> tuple[float, float, float]:
        """``(computation, startup, transfer)`` as fractions of the total."""
        t = self.total
        if t <= 0:
            return (0.0, 0.0, 0.0)
        return (self.computation / t, self.startup / t, self.transfer / t)


#: Span category of leaf message operations in real runs.  Collectives
#: (``cat="collective"``) are deliberately excluded: they nest these leaf
#: send/recv spans and counting both would double-book the time.
_COMM_CAT = "comm"


class MissingMeasurementError(ValueError):
    """A breakdown was requested from inputs that don't carry one.

    Names exactly which input is missing or empty (``missing``) and how to
    record it (``hint``) — the structured replacement for the bare
    ``KeyError``/``ValueError`` a caller used to have to decipher.
    """

    def __init__(self, missing: str, hint: str) -> None:
        self.missing = missing
        self.hint = hint
        super().__init__(f"{missing}; {hint}")


def _snapshot_of(metrics) -> dict:
    """Accept a live :class:`~repro.obs.MetricsRegistry` or the JSON-able
    snapshot dict the run ledger stores."""
    if isinstance(metrics, dict):
        return metrics
    snap = getattr(metrics, "snapshot", None)
    if callable(snap):
        return snap()
    raise TypeError(
        "metrics must be a MetricsRegistry or its snapshot() dict, "
        f"got {type(metrics).__name__}"
    )


def _breakdown_from_metrics(metrics) -> ComponentBreakdown:
    """The component split from a metrics snapshot (no trace needed)."""
    snap = _snapshot_of(metrics)
    counters = snap.get("counters", {})
    hists = snap.get("histograms", {})

    def per_rank_values(group: dict, name: str) -> dict[int, float]:
        cells = group.get(name, {})
        key = "sum" if group is hists else "value"
        return {int(r): float(d[key]) for r, d in cells.items()}

    if "sim.compute_seconds" in counters:
        comp = per_rank_values(counters, "sim.compute_seconds")
        lib = per_rank_values(counters, "sim.library_seconds")
        wait = per_rank_values(counters, "sim.wait_seconds")
        per_rank = tuple(
            (
                r,
                RankComponents(
                    computation=comp.get(r, 0.0),
                    startup=lib.get(r, 0.0),
                    transfer=wait.get(r, 0.0),
                ),
            )
            for r in sorted(comp)
        )
        return ComponentBreakdown(per_rank=per_rank, source="simulated")
    step = per_rank_values(hists, "solver.step_seconds")
    if not step:
        raise MissingMeasurementError(
            "metrics snapshot holds neither sim.* counters nor a "
            "solver.step_seconds histogram",
            "record one with repro.api.run(..., metrics=True)",
        )
    send = per_rank_values(counters, "comm.send_seconds")
    recv = per_rank_values(counters, "comm.recv_seconds")
    per_rank = tuple(
        (
            r,
            RankComponents(
                computation=max(
                    step[r] - send.get(r, 0.0) - recv.get(r, 0.0), 0.0
                ),
                startup=send.get(r, 0.0),
                transfer=recv.get(r, 0.0),
            ),
        )
        for r in sorted(step)
    )
    return ComponentBreakdown(per_rank=per_rank, source="measured")


def component_breakdown(trace=None, *, metrics=None) -> ComponentBreakdown:
    """Recompute the paper's component split from a trace or, when no
    trace was recorded, from a metrics snapshot
    (``run(..., metrics=True)`` — either the live registry or the
    ``metrics`` dict stored in a run-ledger line).

    For traces, works on both kinds this package produces:

    * **simulated-platform traces** (``sim.compute`` / ``sim.library`` /
      ``sim.wait`` spans on the DES clock): the components are read off
      directly — computation, startup (message software), transfer
      (blocked on wire/late messages);
    * **real-run traces** (wall-clock spans from the virtual cluster or a
      serial run): computation is ``solver.step`` time net of message
      passing, startup is send-side time (``comm.send`` — the buffered
      deposit, i.e. per-message software cost), transfer is receive-side
      time (``comm.recv`` / ``comm.wait`` — dominated by waiting for data
      to arrive, including the sends/receives inside collectives).

    Accepts a :class:`repro.obs.Trace` (or anything ``load_trace``
    returns).  Raises :class:`MissingMeasurementError` (a ``ValueError``)
    when neither input carries a usable measurement.
    """
    if trace is None:
        if metrics is None:
            raise MissingMeasurementError(
                "neither a trace nor a metrics snapshot was provided",
                "record one with repro.api.run(..., trace=True) or "
                "run(..., metrics=True)",
            )
        return _breakdown_from_metrics(metrics)
    is_sim = any(s.name.startswith("sim.") for s in trace.spans)
    per_rank: list[tuple[int, RankComponents]] = []
    if is_sim:
        for r in trace.ranks():
            per_rank.append(
                (
                    r,
                    RankComponents(
                        computation=trace.total("sim.compute", rank=r),
                        startup=trace.total("sim.library", rank=r),
                        transfer=trace.total("sim.wait", rank=r),
                    ),
                )
            )
    else:
        for r in trace.ranks():
            step = trace.total("solver.step", rank=r)
            if step <= 0:
                continue
            startup = transfer = 0.0
            for s in trace.spans:
                if s.rank != r or s.cat != _COMM_CAT:
                    continue
                if s.name == "comm.send":
                    startup += s.duration
                else:  # comm.recv / comm.wait
                    transfer += s.duration
            per_rank.append(
                (
                    r,
                    RankComponents(
                        computation=max(step - startup - transfer, 0.0),
                        startup=startup,
                        transfer=transfer,
                    ),
                )
            )
    if not per_rank:
        if metrics is not None:
            return _breakdown_from_metrics(metrics)
        raise MissingMeasurementError(
            "trace holds no sim.* or solver.step spans",
            "record one with repro.api.run(..., trace=True)",
        )
    return ComponentBreakdown(
        per_rank=tuple(per_rank), source="simulated" if is_sim else "measured"
    )


def crossover(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """Smallest x where curve A drops to or below curve B (None if never).

    Used for the T3D / ALLNODE-S crossover near 8 processors.
    """
    for x, a, b in zip(xs, ys_a, ys_b):
        if a <= b:
            return x
    return None
