"""The Cray Y-MP execution model: loop-level shared-memory parallelism.

"The parallelization on the Cray Y-MP was done differently (it was much
easier also) since it is a shared memory architecture: we did some hand
optimization to convert some loops to parallel loops, used the DOALL
directive, and partitioned the domain along the orthogonal direction of the
sweep to keep the vector lengths large" (paper Section 5).

Model: per-step vectorized compute divides by the processor count (the
orthogonal partitioning keeps vector lengths intact), each parallel region
pays a fork/join synchronization that grows mildly with processor count,
and a constant I/O term is added because "the execution time shown is the
connect time in single user mode (this includes the I/O time also which we
were not able to separate from the computation time)" (Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.platforms import CRAY_YMP, Platform
from ..parallel.versions import Version, version_by_number
from .timeline import RankTimeline
from .machine import RunResult
from .workload import Application

#: DOALL parallel regions per time step (two sweeps, predictor+corrector).
REGIONS_PER_STEP = 4

#: Fork/join base cost and per-processor increment, seconds.
SYNC_BASE = 15e-6
SYNC_PER_PROC = 4e-6

#: Unseparable I/O component of the measured connect time, seconds.
IO_TIME = 25.0


@dataclass
class SharedMemoryMachine:
    """The Y-MP as a loop-parallel vector multiprocessor."""

    platform: Platform = None  # type: ignore[assignment]
    nprocs: int = 1

    def __post_init__(self) -> None:
        if self.platform is None:
            self.platform = CRAY_YMP
        if self.platform.vector_cpu is None:
            raise ValueError(f"{self.platform.name} has no vector CPU model")
        if not (1 <= self.nprocs <= self.platform.max_procs):
            raise ValueError(
                f"nprocs must be in [1, {self.platform.max_procs}]"
            )

    def run(
        self,
        app: Application,
        version: int | Version = 5,
        vector_length: float = 100.0,
        total_steps: int | None = None,
    ) -> RunResult:
        """Execution-time estimate in the same RunResult shape as the DES."""
        if isinstance(version, int):
            version = version_by_number(version)
        steps = total_steps if total_steps is not None else app.steps
        vcpu = self.platform.vector_cpu
        compute = vcpu.time_for_flops(
            app.total_flops / self.nprocs, vector_length, version
        )
        sync = steps * REGIONS_PER_STEP * (SYNC_BASE + SYNC_PER_PROC * self.nprocs)
        total = compute + sync + IO_TIME

        timelines = []
        for r in range(self.nprocs):
            t = RankTimeline(rank=r)
            t.busy = compute + IO_TIME / self.nprocs
            t.compute = compute
            t.comm_wait = sync
            t.finished_at = total
            timelines.append(t)
        return RunResult(
            platform=self.platform.name,
            app=app.name,
            nprocs=self.nprocs,
            version=version.number,
            steps_window=steps,  # no window scaling for the analytic model
            total_steps=steps,
            timelines=timelines,
            makespan_window=total,
        )
