"""One-sided 2-4 differences and cubic ghost extrapolation.

The Gottlieb-Turkel predictor/corrector uses the third-order one-sided
approximations

.. math::

    (F_x)_i^+ = \\frac{7 (F_{i+1} - F_i) - (F_{i+2} - F_{i+1})}{6 \\Delta x},
    \\qquad
    (F_x)_i^- = \\frac{7 (F_i - F_{i-1}) - (F_{i-1} - F_{i-2})}{6 \\Delta x},

Each one-sided difference alone is first-order — Taylor expansion gives
``D+- = f' +- (h/3) f'' + O(h^3)`` — but the antisymmetric leading errors
cancel in the predictor/corrector average, so their average is exact through
cubics and the alternated composite scheme is fourth-order accurate in space
(Gottlieb & Turkel's "two-four" scheme).  Near boundaries the stencil
reaches outside the domain; following the paper, fluxes are extrapolated to
two artificial points with a *cubic* (four-point Lagrange) extrapolation.

All functions operate on arrays of shape ``(nvars, nx, nr)`` (or any shape)
along a chosen axis and are fully vectorized.
"""

from __future__ import annotations

import numpy as np

#: Cubic (4-point Lagrange) extrapolation weights to the first and second
#: points beyond the boundary: f(-1) and f(-2) from f(0..3).
_CUBIC_W1 = np.array([4.0, -6.0, 4.0, -1.0])
_CUBIC_W2 = np.array([10.0, -20.0, 15.0, -4.0])


def _take(a: np.ndarray, idx, axis: int) -> np.ndarray:
    sl = [slice(None)] * a.ndim
    sl[axis] = idx
    return a[tuple(sl)]


def cubic_ghosts(F: np.ndarray, axis: int, side: str) -> tuple[np.ndarray, np.ndarray]:
    """Two ghost values beyond a boundary by cubic extrapolation.

    Parameters
    ----------
    F:
        Field to extrapolate.
    axis:
        Axis along which to extrapolate.
    side:
        ``"low"`` extrapolates below index 0; ``"high"`` beyond the last
        index.

    Returns
    -------
    (g1, g2):
        The nearest and next ghost slices (``F[-1], F[-2]`` for ``"low"``;
        ``F[n], F[n+1]`` for ``"high"``), with the axis removed.
    """
    if F.shape[axis] < 4:
        raise ValueError("cubic extrapolation needs at least 4 points")
    if side == "low":
        pts = [_take(F, k, axis) for k in range(4)]
    elif side == "high":
        n = F.shape[axis]
        pts = [_take(F, n - 1 - k, axis) for k in range(4)]
    else:
        raise ValueError(f"side must be 'low' or 'high', got {side!r}")
    g1 = sum(w * p for w, p in zip(_CUBIC_W1, pts))
    g2 = sum(w * p for w, p in zip(_CUBIC_W2, pts))
    return g1, g2


def extend_axis(
    F: np.ndarray,
    axis: int,
    low: np.ndarray | None = None,
    high: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pad ``F`` with two ghost planes on each side along ``axis``.

    ``low``/``high`` supply explicit ghost planes of shape
    ``(2,) + F.shape-without-axis`` ordered *outward* (nearest ghost first);
    when ``None``, cubic extrapolation generates them.  The distributed
    solver passes neighbour halo data here, which is what makes the parallel
    arithmetic bitwise-identical to the serial solver.

    ``out`` optionally supplies the extended array (shape ``F`` with
    ``axis`` grown by 4) so steady-state callers avoid the allocation.
    """
    n = F.shape[axis]
    shape = list(F.shape)
    shape[axis] = n + 4
    if out is None:
        out = np.empty(shape, dtype=F.dtype)
    elif out.shape != tuple(shape):
        raise ValueError(f"extend_axis out shape {out.shape} != {tuple(shape)}")
    sl = [slice(None)] * F.ndim
    sl[axis] = slice(2, 2 + n)
    out[tuple(sl)] = F

    if low is None:
        g1, g2 = cubic_ghosts(F, axis, "low")
    else:
        g1, g2 = low[0], low[1]
    sl[axis] = 1
    out[tuple(sl)] = g1
    sl[axis] = 0
    out[tuple(sl)] = g2

    if high is None:
        g1, g2 = cubic_ghosts(F, axis, "high")
    else:
        g1, g2 = high[0], high[1]
    sl[axis] = 2 + n
    out[tuple(sl)] = g1
    sl[axis] = 3 + n
    out[tuple(sl)] = g2
    return out


def forward_difference(
    F_ext: np.ndarray,
    axis: int,
    h: float,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """One-sided forward 2-4 difference on a ghost-extended array.

    ``F_ext`` must carry two ghost planes on each side (from
    :func:`extend_axis`); the result has the original (unextended) extent.
    ``out``/``tmp`` optionally supply result and scratch buffers of the
    unextended shape; the in-place evaluation is bitwise-identical to the
    allocating expression.
    """
    n = F_ext.shape[axis] - 4

    def s(lo_off: int) -> np.ndarray:
        sl = [slice(None)] * F_ext.ndim
        sl[axis] = slice(2 + lo_off, 2 + lo_off + n)
        return F_ext[tuple(sl)]

    f0, f1, f2 = s(0), s(1), s(2)
    if out is None:
        return (7.0 * (f1 - f0) - (f2 - f1)) / (6.0 * h)
    np.subtract(f1, f0, out=out)
    np.multiply(out, 7.0, out=out)
    np.subtract(f2, f1, out=tmp)
    np.subtract(out, tmp, out=out)
    np.divide(out, 6.0 * h, out=out)
    return out


def backward_difference(
    F_ext: np.ndarray,
    axis: int,
    h: float,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """One-sided backward 2-4 difference on a ghost-extended array."""
    n = F_ext.shape[axis] - 4

    def s(lo_off: int) -> np.ndarray:
        sl = [slice(None)] * F_ext.ndim
        sl[axis] = slice(2 + lo_off, 2 + lo_off + n)
        return F_ext[tuple(sl)]

    f0, fm1, fm2 = s(0), s(-1), s(-2)
    if out is None:
        return (7.0 * (f0 - fm1) - (fm1 - fm2)) / (6.0 * h)
    np.subtract(f0, fm1, out=out)
    np.multiply(out, 7.0, out=out)
    np.subtract(fm1, fm2, out=tmp)
    np.subtract(out, tmp, out=out)
    np.divide(out, 6.0 * h, out=out)
    return out
