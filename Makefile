# Convenience targets; everything assumes the in-tree layout (src/).
PY ?= python
export PYTHONPATH := src

.PHONY: check test test-all trace-smoke

## check: fast test suite + trace-determinism smoke (the pre-commit gate)
check: trace-smoke
	$(PY) -m pytest -q -m "not slow"

## test: full test suite (includes slow tests)
test:
	$(PY) -m pytest -x -q

test-all: test

## trace-smoke: two identical simulated runs must export identical bytes
trace-smoke:
	$(PY) scripts/trace_report.py --selftest
