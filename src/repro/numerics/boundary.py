"""Boundary treatments: axis symmetry, characteristic outflow, inflow, sponge.

Four boundaries close the jet domain:

* **Inflow** (``x = 0``): Dirichlet — the excited jet profile of
  :class:`repro.physics.jet.InflowExcitation` evaluated at the new time.
* **Outflow** (``x = L``): the characteristic treatment of Hayder & Turkel
  quoted in the paper.  The time derivatives produced by the interior
  (one-sided) Navier-Stokes residual are converted to the primitive rates
  ``(rho_t, u_t, v_t, p_t)``; at *subsonic* points the incoming acoustic
  characteristic is replaced by ``p_t - rho c u_t = 0`` while the outgoing
  combinations ``R2 = p_t + rho c u_t``, ``R3 = p_t - c^2 rho_t`` and
  ``R4 = v_t`` keep their Navier-Stokes values; at *supersonic* points all
  rates come from the interior scheme.
* **Axis** (``r = 0``): symmetry of the axisymmetric mode — the radial flux
  ``r G`` is reflected with component signs ``(+, +, -, +)`` (even
  quantities times the odd radius, except the radial-momentum flux which is
  even times odd).
* **Far field** (``r = R``): cubic flux extrapolation plus an optional thin
  sponge relaxing the outermost lines toward the quiescent ambient state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import constants
from ..physics import eos

#: Reflection signs of the r-weighted radial flux (r G) across the axis.
AXIS_FLUX_SIGNS = np.array([1.0, 1.0, -1.0, 1.0])

#: Reflection signs of the conservative state (rho, rho u, rho v, E) across
#: the axis (radial momentum is odd).
AXIS_STATE_SIGNS = np.array([1.0, 1.0, -1.0, 1.0])


def apply_axis_ghosts(rG: np.ndarray) -> np.ndarray:
    """Low-side (axis) ghost planes for the r-weighted radial flux.

    On the half-offset radial grid the mirror of ghost ``j = -1`` is
    ``j = 0`` and of ``j = -2`` is ``j = 1``.  Returns shape
    ``(2, 4, nx)`` ordered outward (nearest ghost first).
    """
    signs = AXIS_FLUX_SIGNS[:, None]
    return np.stack([signs * rG[:, :, 0], signs * rG[:, :, 1]])


def primitive_rates(q: np.ndarray, q_t: np.ndarray, gamma: float = constants.GAMMA):
    """Convert conservative time derivatives to primitive rates.

    Implements the paper's relations (with ``m = rho u``, ``n = rho v``)::

        u_t = m_t / rho - u rho_t / rho
        v_t = n_t / rho - v rho_t / rho
        p_t = (gamma - 1)(E_t + (u^2 + v^2)/2 rho_t - u m_t - v n_t)

    Returns ``(rho_t, u_t, v_t, p_t)``.
    """
    rho, m, n = q[0], q[1], q[2]
    u = m / rho
    v = n / rho
    rho_t, m_t, n_t, E_t = q_t[0], q_t[1], q_t[2], q_t[3]
    u_t = (m_t - u * rho_t) / rho
    v_t = (n_t - v * rho_t) / rho
    p_t = (gamma - 1.0) * (
        E_t + 0.5 * (u * u + v * v) * rho_t - u * m_t - v * n_t
    )
    return rho_t, u_t, v_t, p_t


def conservative_rates(
    q: np.ndarray,
    rho_t: np.ndarray,
    u_t: np.ndarray,
    v_t: np.ndarray,
    p_t: np.ndarray,
    gamma: float = constants.GAMMA,
) -> np.ndarray:
    """Inverse of :func:`primitive_rates`."""
    rho = q[0]
    u = q[1] / rho
    v = q[2] / rho
    q_t = np.empty_like(q)
    q_t[0] = rho_t
    q_t[1] = u * rho_t + rho * u_t
    q_t[2] = v * rho_t + rho * v_t
    q_t[3] = (
        p_t / (gamma - 1.0)
        + 0.5 * (u * u + v * v) * rho_t
        + rho * (u * u_t + v * v_t)
    )
    return q_t


def characteristic_outflow_rates(
    q_col: np.ndarray,
    q_t_interior: np.ndarray,
    gamma: float = constants.GAMMA,
) -> np.ndarray:
    """Characteristic-filtered conservative rates at the outflow column.

    Parameters
    ----------
    q_col:
        Conservative state on the boundary column, shape ``(4, nr)``.
    q_t_interior:
        Conservative time derivatives at the boundary column evaluated from
        the interior (one-sided) scheme, shape ``(4, nr)``.

    Returns
    -------
    Conservative rates with the incoming characteristic zeroed wherever the
    axial flow is subsonic; supersonic points pass the interior rates
    through unchanged.
    """
    rho = q_col[0]
    u = q_col[1] / rho
    p = eos.pressure(q_col[0], q_col[1], q_col[2], q_col[3], gamma)
    c = np.sqrt(gamma * p / rho)

    rho_t, u_t, v_t, p_t = primitive_rates(q_col, q_t_interior, gamma)
    R2 = p_t + rho * c * u_t
    R3 = p_t - c * c * rho_t
    R4 = v_t

    # Subsonic filter: p_t - rho c u_t = 0 together with the outgoing R's.
    p_t_f = 0.5 * R2
    u_t_f = 0.5 * R2 / (rho * c)
    rho_t_f = (p_t_f - R3) / (c * c)
    v_t_f = R4

    subsonic = u < c
    p_t = np.where(subsonic, p_t_f, p_t)
    u_t = np.where(subsonic, u_t_f, u_t)
    rho_t = np.where(subsonic, rho_t_f, rho_t)
    v_t = np.where(subsonic, v_t_f, v_t)
    return conservative_rates(q_col, rho_t, u_t, v_t, p_t, gamma)


@dataclass
class Sponge:
    """Thin far-field sponge relaxing toward the ambient state.

    Applies ``q <- q + sigma(j) (q_ambient - q)`` on the outermost
    ``width`` radial lines, with ``sigma`` ramping quadratically from 0 to
    ``strength``.  Disabled entirely with ``width = 0``.
    """

    width: int = 4
    strength: float = 0.1

    def apply(self, q: np.ndarray, q_ambient_col: np.ndarray) -> None:
        """In-place relaxation; ``q_ambient_col`` has shape ``(4, nr)``."""
        if self.width <= 0:
            return
        nr = q.shape[2]
        w = min(self.width, nr)
        ramp = (np.arange(1, w + 1) / w) ** 2 * self.strength
        target = q_ambient_col[:, None, nr - w :]
        q[:, :, nr - w :] += ramp[None, None, :] * (target - q[:, :, nr - w :])


@dataclass
class BoundaryConditions:
    """Bundle of boundary settings for the jet solvers.

    Attributes
    ----------
    inflow:
        :class:`repro.physics.jet.InflowExcitation` or ``None`` (no Dirichlet
        inflow; used by test configurations such as periodic advection).
    characteristic_outflow:
        Enable the Hayder-Turkel treatment at the last axial column.
    sponge:
        Far-field sponge (or ``None``).
    """

    inflow: object | None = None
    characteristic_outflow: bool = True
    sponge: Sponge | None = field(default_factory=Sponge)

    def inflow_column(self, r: np.ndarray, t: float, gamma: float) -> np.ndarray:
        """Conservative inflow column at time ``t``, shape ``(4, nr)``."""
        rho, u, v, p = self.inflow.primitives(r, t)
        col = np.empty((4, r.size))
        col[0] = rho
        col[1] = rho * u
        col[2] = rho * v
        col[3] = eos.total_energy(rho, u, v, p, gamma)
        return col
