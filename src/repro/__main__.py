"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show all reproducible experiments.
``experiment <id>``
    Regenerate one paper artifact (``table1``, ``table2``, ``fig01`` ..
    ``fig13``) and print it.
``characterize``
    Measure this package's own Table-1 application characteristics with an
    instrumented distributed run.
``simulate --platform NAME --procs P [--euler] [--version V]``
    One simulated-machine run with the execution-time split.
``jet [--nx N --nr N --steps S --euler]``
    Run the real solver and print diagnostics plus a momentum contour.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(args) -> int:
    from .experiments import EXPERIMENTS

    print("Reproducible experiments (paper tables and figures):")
    for k in sorted(EXPERIMENTS):
        print(f"  {k}")
    return 0


def _cmd_experiment(args) -> int:
    from .experiments import run_experiment

    print(run_experiment(args.id))
    return 0


def _cmd_characterize(args) -> int:
    from .analysis.tables import table1, table2

    print(table1("paper"))
    print()
    print(table1("measured"))
    print()
    print(table2())
    return 0


def _cmd_simulate(args) -> int:
    from .machines.platforms import platform_by_name, CRAY_YMP
    from .simulate.machine import SimulatedMachine
    from .simulate.sharedmem import SharedMemoryMachine
    from .simulate.workload import EULER, NAVIER_STOKES

    app = EULER if args.euler else NAVIER_STOKES
    plat = platform_by_name(args.platform)
    if plat is CRAY_YMP or plat.cpu is None:
        r = SharedMemoryMachine(plat, args.procs).run(app)
    else:
        r = SimulatedMachine(plat, args.procs, version=args.version).run(app)
    print(r.summary())
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.sweeps import sweep, sweep_table
    from .machines.platforms import platform_by_name
    from .simulate.workload import EULER, NAVIER_STOKES

    platforms = [platform_by_name(n) for n in args.platforms]
    apps = [EULER] if args.euler else [NAVIER_STOKES]
    records = sweep(
        platforms, apps, procs=args.procs, versions=args.versions
    )
    print(sweep_table(records))
    return 0


def _cmd_trace(args) -> int:
    from .analysis.report import render_gantt
    from .machines.platforms import platform_by_name
    from .simulate.machine import SimulatedMachine
    from .simulate.workload import EULER, NAVIER_STOKES

    plat = platform_by_name(args.platform)
    app = EULER if args.euler else NAVIER_STOKES
    r = SimulatedMachine(plat, args.procs, version=args.version).run(
        app, steps_window=4, trace=True
    )
    print(render_gantt(r, title=f"{plat.name}, p={args.procs}, V{args.version}"))
    return 0


def _cmd_jet(args) -> int:
    from .analysis.report import ascii_contour
    from .scenarios import jet_scenario

    sc = jet_scenario(nx=args.nx, nr=args.nr, viscous=not args.euler)
    sc.solver.run(args.steps)
    print(
        f"t={sc.solver.t:.2f}  physical={sc.state.is_physical()}  "
        f"{1e3 * sc.solver.wall_time / max(sc.solver.nstep, 1):.1f} ms/step"
    )
    print(ascii_contour(sc.state.axial_momentum, width=90, height=18,
                        title="axial momentum rho*u"))
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    p = sub.add_parser("experiment", help="regenerate one paper artifact")
    p.add_argument("id", help="table1, table2, fig01 .. fig13")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("characterize", help="measured Table 1 / Table 2")
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("simulate", help="one simulated platform run")
    p.add_argument("--platform", required=True,
                   help="e.g. 'LACE/560+ALLNODE-S', 'IBM SP', 'Cray T3D'")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--version", type=int, default=5)
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("sweep", help="platform x procs x version grid")
    p.add_argument("--platforms", nargs="+", required=True)
    p.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    p.add_argument("--versions", type=int, nargs="+", default=[5])
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("trace", help="per-rank Gantt of a simulated step")
    p.add_argument("--platform", required=True)
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--version", type=int, default=5)
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("jet", help="run the real solver")
    p.add_argument("--nx", type=int, default=96)
    p.add_argument("--nr", type=int, default=40)
    p.add_argument("--steps", type=int, default=300)
    p.add_argument("--euler", action="store_true")
    p.set_defaults(fn=_cmd_jet)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
