"""ATM switch (155 Mbps OC-3, LACE lower half).

Point-to-point links into a switch: each node's injection/ejection link is
private, but — as the paper notes — ATM "with their faster links do not
permit multiple physical paths in the network", so a node pair is limited
to its single 155 Mbps path (with the 48/53 cell-payload tax).  The paper
measured ATM "almost identical" to ALLNODE-F.
"""

from __future__ import annotations

from .base import Network, per_node_links


class AtmNetwork(Network):
    """Single-path switched point-to-point links."""

    def __init__(
        self,
        nnodes: int,
        bandwidth_bps: float = 155e6,
        latency: float = 0.25e-3,
    ) -> None:
        self.name = "ATM"
        self.nnodes = nnodes
        self.bandwidth_bps = bandwidth_bps
        #: AAL5 over 53-byte cells with 48-byte payloads.
        self.efficiency = 48.0 / 53.0
        self.latency = latency

    def link_ids(self, src: int, dst: int) -> list[str]:
        return sorted(per_node_links(src, dst))

    def capacities(self) -> dict[str, int]:
        caps: dict[str, int] = {}
        for n in range(self.nnodes):
            caps[f"in:{n}"] = 1
            caps[f"out:{n}"] = 1
        return caps

    def transfer_time(self, nbytes: int) -> float:
        return nbytes * 8.0 / (self.bandwidth_bps * self.efficiency)

    def saturation_bandwidth(self) -> float:
        # Every node can inject concurrently.
        return self.nnodes * self.bandwidth_bps * self.efficiency / 8.0
