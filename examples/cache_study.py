#!/usr/bin/env python3
"""Cache-design ablation: why the T3D underperformed its peak rating.

The paper: "The T3D's CPU has a peak rating which is 2.3X and 3X the rating
of the 590 and 560 models ... We attribute the T3D's poor performance to
the small direct-mapped cache of 8KB size."

This example quantifies that claim two ways:

1. With the exact cache simulator: a stride-1 vs column-order sweep of a
   solver-shaped array through each platform's cache geometry.
2. With the CPU timing model: sustained MFLOPS of a hypothetical T3D node
   whose cache is grown/made associative, versus the real 8KB
   direct-mapped one.

Usage::

    python examples/cache_study.py
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.machines.cache import CacheSim, CacheSpec
from repro.machines.platforms import (
    CPU_ALPHA_21064,
    CPU_RS6000_560,
    CPU_RS6000_590,
    CPU_RS6000_370,
)


def sweep(sim: CacheSim, nx: int, nr: int, stride1: bool) -> float:
    """Miss rate of sweeping an (nx, nr) double array once."""
    sim.reset_counters()
    sim.flush()
    row_bytes = nr * 8
    if stride1:
        for i in range(nx * nr):
            sim.access(i * 8)
    else:  # column-major traversal of a row-major array: stride = row_bytes
        for j in range(nr):
            for i in range(nx):
                sim.access(i * row_bytes + j * 8)
    return sim.miss_rate


def main() -> None:
    # A solver-shaped array big enough (188 KB) to exceed every cache under
    # study, so capacity and conflict behaviour are visible.
    nx, nr = 300, 80
    cpus = [CPU_RS6000_560, CPU_RS6000_590, CPU_RS6000_370, CPU_ALPHA_21064]

    rows = []
    for cpu in cpus:
        sim = CacheSim(cpu.cache)
        m1 = sweep(sim, nx, nr, stride1=True)
        m2 = sweep(sim, nx, nr, stride1=False)
        rows.append(
            [
                cpu.name,
                f"{cpu.cache.size_bytes // 1024}KB/{cpu.cache.associativity}-way",
                f"{m1:.3f}",
                f"{m2:.3f}",
                f"{cpu.sustained_mflops(1):.1f}",
                f"{cpu.sustained_mflops(5):.1f}",
                f"{cpu.peak_mflops:.0f}",
            ]
        )
    print(
        format_table(
            ["CPU", "cache", "miss(stride-1)", "miss(column)", "V1 MFLOPS",
             "V5 MFLOPS", "peak"],
            rows,
            title="Exact cache-sweep miss rates and modeled sustained rates:",
        )
    )

    print("\nT3D cache ablation (hypothetical nodes, V5 code):")
    base = CPU_ALPHA_21064
    variants = [
        ("8KB direct-mapped (real T3D)", base.cache),
        ("8KB 4-way", replace(base.cache, associativity=4)),
        ("64KB direct-mapped",
         replace(base.cache, size_bytes=64 * 1024)),
        ("64KB 4-way (560-class cache)",
         replace(base.cache, size_bytes=64 * 1024, associativity=4)),
    ]
    rows = []
    for label, cache in variants:
        # Drop the anchor: show the purely mechanistic prediction so the
        # cache change is the only variable.
        cpu = replace(base, cache=cache, v5_target_mflops=None)
        rows.append([label, f"{cpu.sustained_mflops(5):.1f}"])
    print(format_table(["node variant", "V5 MFLOPS (mechanistic)"], rows))
    print(
        "\nThe 150 MHz Alpha recovers most of its peak-rating advantage once "
        "given a workstation-class cache — the paper's conclusion exactly."
    )


if __name__ == "__main__":
    main()
