"""Experiment harness: one entry point per paper table/figure."""

from .runners import (
    EXPERIMENTS,
    run_experiment,
    run_fig01,
    characterize,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_fig01", "characterize"]
