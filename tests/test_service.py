"""Run service: worker pool, fingerprint dedupe, persistent result store,
crash handling, and the Unix-socket front end."""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import api
from repro.request import RunRequest
from repro.service import (
    ExperimentRequest,
    JobFailed,
    ResultStore,
    RunService,
    ServiceClient,
    ServiceUnavailable,
    serve,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="run service needs the fork start method",
)

SOD = dict(steps=40)


def make_service(tmp_path, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("ledger", False)
    return RunService(store=ResultStore(tmp_path / "store"), **kw)


def sod_request(**overrides):
    kw = {**SOD, **overrides}
    return RunRequest.from_run_args("sod", **kw)


class TestDedupe:
    def test_identical_submits_execute_once(self, tmp_path):
        req = sod_request()
        with make_service(tmp_path) as svc:
            j1 = svc.submit(req)
            j2 = svc.submit(req.to_dict())  # same fingerprint, wire form
            a = svc.wait(j1.id, timeout=120)
            b = svc.wait(j2.id, timeout=120)
            assert a.status == "done" and b.status == "done"
            assert j2.attached_to == j1.id
            assert svc.executed == 1
            r1, r2 = svc.result(j1.id), svc.result(j2.id)
        assert np.array_equal(r1.state.rho, r2.state.rho)

    def test_service_result_bitwise_matches_direct_run(self, tmp_path):
        req = sod_request()
        with make_service(tmp_path) as svc:
            job = svc.submit(req)
            svc.wait(job.id, timeout=120)
            via_service = svc.result(job.id)
        direct = api.run("sod", **SOD)
        assert np.array_equal(via_service.state.rho, direct.state.rho)
        assert np.array_equal(via_service.state.u, direct.state.u)
        assert via_service.t == direct.t

    def test_decomposition_is_route_irrelevant(self, tmp_path):
        """An axial-cached result is served to radial and 2-D requests.

        The unified exchange core makes every decomposition bitwise-equal,
        so ``RunRequest.fingerprint()`` nulls ``decomposition``/``px``/``pr``
        and the service dedupes across them."""
        kw = dict(steps=6, nx=48, nr=24, nprocs=2)
        axial = RunRequest.from_run_args("jet", **kw)
        radial = RunRequest.from_run_args("jet", decomposition="radial", **kw)
        two_d = RunRequest.from_run_args(
            "jet", decomposition="2d", px=2, pr=1, **kw
        )
        assert radial.fingerprint() == axial.fingerprint()
        assert two_d.fingerprint() == axial.fingerprint()
        with make_service(tmp_path) as svc:
            j1 = svc.submit(axial)
            j2 = svc.submit(radial)
            j3 = svc.submit(two_d)
            svc.wait(j1.id, timeout=120)
            svc.wait(j2.id, timeout=120)
            svc.wait(j3.id, timeout=120)
            assert j2.attached_to == j1.id
            assert j3.attached_to == j1.id
            assert svc.executed == 1
            r1, r2 = svc.result(j1.id), svc.result(j3.id)
        assert np.array_equal(r1.state.q, r2.state.q)

    def test_distinct_fingerprints_both_execute(self, tmp_path):
        with make_service(tmp_path) as svc:
            j1 = svc.submit(sod_request())
            j2 = svc.submit(sod_request(steps=41))
            svc.wait(j1.id, timeout=120)
            svc.wait(j2.id, timeout=120)
            assert svc.executed == 2


class TestPersistentStore:
    def test_cache_hit_after_restart(self, tmp_path):
        req = sod_request()
        with make_service(tmp_path) as svc:
            job = svc.submit(req)
            svc.wait(job.id, timeout=120)
            first = svc.result(job.id)
            assert svc.executed == 1
        # Fresh service, same store: served without re-execution.
        with make_service(tmp_path) as svc2:
            job = svc2.submit(req)
            assert job.status == "cached"
            again = svc2.result(job.id)
            assert svc2.executed == 0
        assert np.array_equal(first.state.rho, again.state.rho)

    def test_tail_of_cached_job_returns_immediately(self, tmp_path):
        """``tail`` on a cache-resolved job must not wait the grace window.

        Cached jobs never executed in this service, so no step stream will
        ever appear; tail yields a single served-from-cache marker at once
        instead of blocking until the tail grace deadline expires."""
        req = sod_request()
        with make_service(tmp_path) as svc:
            job = svc.submit(req)
            svc.wait(job.id, timeout=120)
        with make_service(tmp_path) as svc2:
            job = svc2.submit(req)
            assert job.status == "cached"
            t0 = time.monotonic()
            records = list(svc2.tail(job.id, timeout=30))
            elapsed = time.monotonic() - t0
        assert elapsed < 0.25  # well under the 0.5 s tail grace
        assert len(records) == 1
        marker = records[0]
        assert marker["kind"] == "cached"
        assert marker["job"] == job.id
        assert marker["fingerprint"] == req.fingerprint()

    def test_store_entry_carries_request_and_report(self, tmp_path):
        req = sod_request()
        with make_service(tmp_path) as svc:
            job = svc.submit(req)
            svc.wait(job.id, timeout=120)
            entry = svc.store.get(req.fingerprint())
        assert entry is not None
        assert entry.kind == "run"
        assert RunRequest.from_dict(entry.request).fingerprint() == \
            req.fingerprint()
        assert entry.report["fingerprint"] == req.fingerprint()

    def test_index_survives_reload(self, tmp_path):
        with make_service(tmp_path) as svc:
            job = svc.submit(sod_request())
            svc.wait(job.id, timeout=120)
        store = ResultStore(tmp_path / "store")
        assert len(store) == 1
        fp = sod_request().fingerprint()
        assert fp in store
        assert store.load_result(fp).steps == SOD["steps"]

    def test_experiment_jobs_cache_rendered_text(self, tmp_path):
        req = ExperimentRequest("table2")
        with make_service(tmp_path, workers=1) as svc:
            job = svc.submit(req)
            svc.wait(job.id, timeout=120)
            text = svc.result(job.id)
            assert "Table 2" in text
            assert svc.submit(req).status == "cached"


class TestFailures:
    def test_bad_request_fails_structurally(self, tmp_path):
        with make_service(tmp_path, workers=1) as svc:
            job = svc.submit(RunRequest.from_run_args("no-such-scenario",
                                                      steps=5))
            done = svc.wait(job.id, timeout=120)
            assert done.status == "failed"
            assert "no-such-scenario" in done.error
            with pytest.raises(JobFailed):
                svc.result(job.id)

    def test_worker_crash_fails_job_and_pool_recovers(self, tmp_path):
        with make_service(tmp_path, workers=1) as svc:
            job = svc.submit(sod_request(steps=100000))
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                snap = svc.job(job.id)
                if snap.status == "running" and snap.worker_pid:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("job never started running")
            os.kill(snap.worker_pid, signal.SIGKILL)
            done = svc.wait(job.id, timeout=120)
            assert done.status == "failed"
            assert "worker process died" in done.error
            # The pool respawned: new work still completes.
            j2 = svc.submit(sod_request())
            assert svc.wait(j2.id, timeout=120).status == "done"
            assert svc.result(j2.id).steps == SOD["steps"]


class TestSocketFrontEnd:
    @pytest.fixture
    def endpoint(self, tmp_path):
        sock = str(tmp_path / "svc.sock")
        ready = threading.Event()
        t = threading.Thread(
            target=serve,
            kwargs=dict(socket_path=sock, workers=1,
                        store=ResultStore(tmp_path / "store"),
                        ledger=False, ready=lambda _srv: ready.set()),
        )
        t.start()
        assert ready.wait(30), "server never came up"
        yield sock
        client = ServiceClient(sock)
        try:
            client.shutdown()
        except (ServiceUnavailable, RuntimeError):
            pass
        t.join(30)
        assert not t.is_alive()

    def test_submit_watch_result(self, endpoint):
        client = ServiceClient(endpoint, timeout=120)
        job = client.submit(sod_request())
        states = [s["status"] for s in client.watch(job["id"], timeout=120)]
        assert states[-1] == "done"
        res = client.result(job["id"])
        direct = api.run("sod", **SOD)
        assert np.array_equal(res.state.rho, direct.state.rho)
        # Second submit: served from the store, no execution.
        assert client.submit(sod_request())["status"] == "cached"
        assert client.ping()["executed"] == 1
        assert len(client.jobs()) == 2

    def test_unavailable_raises_with_hint(self, tmp_path):
        client = ServiceClient(tmp_path / "nobody-home.sock")
        with pytest.raises(ServiceUnavailable, match="repro serve"):
            client.ping()
