"""Exact Riemann solver + quantitative Sod validation of the 2-4 scheme."""

import numpy as np
import pytest

from repro import shock_tube_scenario
from repro.validation.riemann import RiemannState, exact_riemann, sod_solution

GAMMA = 1.4


class TestExactSolver:
    def test_trivial_riemann_problem(self):
        """Identical states: the solution is that state everywhere."""
        s = RiemannState(1.0, 0.3, 0.7)
        rho, u, p = exact_riemann(s, s, np.linspace(-1, 1, 11))
        assert np.allclose(rho, 1.0)
        assert np.allclose(u, 0.3)
        assert np.allclose(p, 0.7)

    def test_sod_star_region_textbook_values(self):
        """Toro's Table 4.2, Test 1: p* = 0.30313, u* = 0.92745."""
        rho, u, p = sod_solution(np.array([0.5 + 0.9271e-6]), t=1e-6)
        assert p[0] == pytest.approx(0.30313, rel=1e-3)
        assert u[0] == pytest.approx(0.92745, rel=1e-3)

    def test_sod_density_plateaus(self):
        """rho* left of the contact 0.42632; right 0.26557 (Toro)."""
        x = np.array([0.6, 0.8])  # between contact and shock at t=0.2
        rho, u, p = sod_solution(x, t=0.2)
        # x/t = 0.5 and 1.5: contact at u* = 0.927, shock at ~1.752.
        assert rho[0] == pytest.approx(0.42632, rel=1e-3)
        assert rho[1] == pytest.approx(0.26557, rel=1e-3)

    def test_shock_speed(self):
        """Sod right-shock speed 1.7522 (Toro)."""
        eps = 1e-4
        rho_m, _, _ = sod_solution(np.array([0.5 + (1.7522 - eps) * 0.2]), 0.2)
        rho_p, _, _ = sod_solution(np.array([0.5 + (1.7522 + eps) * 0.2]), 0.2)
        assert rho_m[0] == pytest.approx(0.26557, rel=1e-3)
        assert rho_p[0] == pytest.approx(0.125, rel=1e-6)

    def test_rarefaction_is_smooth_and_monotone(self):
        x = np.linspace(0.2, 0.45, 60)
        rho, u, p = sod_solution(x, t=0.2)
        assert np.all(np.diff(rho) <= 1e-12)
        assert np.all(np.diff(u) >= -1e-12)

    def test_symmetric_expansion(self):
        """Two streams separating: u* = 0 by symmetry."""
        l = RiemannState(1.0, -0.5, 1.0)
        r = RiemannState(1.0, 0.5, 1.0)
        rho, u, p = exact_riemann(l, r, np.array([0.0]))
        assert u[0] == pytest.approx(0.0, abs=1e-10)

    def test_vacuum_rejected(self):
        l = RiemannState(1.0, -20.0, 1.0)
        r = RiemannState(1.0, 20.0, 1.0)
        with pytest.raises(ValueError, match="vacuum"):
            exact_riemann(l, r, np.array([0.0]))

    def test_time_validation(self):
        with pytest.raises(ValueError):
            sod_solution(np.array([0.5]), t=0.0)


class TestSolverAgainstExact:
    """Quantitative validation of the 2-4 MacCormack solver on Sod's tube.

    Note on scaling: the solver's nondimensionalization carries velocities
    in units where ``c = sqrt(T)``; initializing with the classic Sod
    states directly makes its sound speed ``sqrt(gamma p / rho)`` — the
    same as the textbook's — so times and speeds agree without conversion.
    """

    @pytest.fixture(scope="class")
    def run(self):
        sc = shock_tube_scenario(nx=300, nr=8, mu=8e-4)
        while sc.solver.t < 0.12:  # long enough to separate all three waves
            sc.solver.run(50)
        return sc

    def test_shock_position(self, run):
        t = run.solver.t
        rho = run.state.rho[:, 4]
        x = run.grid.x
        # Measured shock front: where density first falls below the
        # midpoint between post-shock plateau (0.2656) and ambient (0.125).
        thresh = 0.5 * (0.26557 + 0.125)
        interior = x > 0.55
        front = x[interior][np.argmax(rho[interior] < thresh)]
        exact_front = 0.5 + 1.7522 * t
        assert front == pytest.approx(exact_front, abs=0.03)

    def test_contact_plateau_density(self, run):
        t = run.solver.t
        # Sample midway between contact (0.9275 t) and shock (1.7522 t).
        x_probe = 0.5 + 1.3 * t
        j = int(np.argmin(np.abs(run.grid.x - x_probe)))
        assert run.state.rho[j, 4] == pytest.approx(0.26557, rel=0.05)

    def test_star_velocity(self, run):
        t = run.solver.t
        x_probe = 0.5 + 1.3 * t
        j = int(np.argmin(np.abs(run.grid.x - x_probe)))
        assert run.state.u[j, 4] == pytest.approx(0.92745, rel=0.05)

    def test_rarefaction_profile(self, run):
        """Pointwise comparison inside the expansion fan."""
        t = run.solver.t
        x = run.grid.x
        mask = (x > 0.5 - 1.0 * t) & (x < 0.5 - 0.2 * t)
        rho_exact, u_exact, _ = sod_solution(x[mask], t)
        # The fan's head/tail corners are smeared by the regularizing
        # viscosity; interior agreement is a few percent.
        assert np.abs(run.state.rho[mask, 4] - rho_exact).max() < 0.05
        assert np.abs(run.state.u[mask, 4] - u_exact).max() < 0.09
