"""Flight recorder: a bounded ring of the last N events per rank.

When a rank dies — worker SIGKILLed, process crash, hung collective — the
spans and metrics it was accumulating die with it.  The flight recorder
keeps only the *last* ``capacity`` structured events per rank (sends and
recvs with tags, slot-semaphore waits, collective entries, checkpoint
marks) in a fixed-size ring, cheap enough to leave on for whole runs, and
written so a *parent* process can recover the ring after the writer is
killed:

* :class:`FlightRecorder` — in-memory per-rank rings behind the
  process-global :func:`get_flight` seam (null-object pattern, like the
  tracer/metrics/stream seams).  Virtual-cluster ranks are threads
  sharing one recorder.
* :class:`FlightRing` — a file-backed mmap ring with one single-writer
  region per rank.  The process substrate gives each forked rank a
  :class:`FlightRingWriter` over the shared file; because the file lives
  on disk (page cache, ``MAP_SHARED``), any process that knows the path
  can :meth:`FlightRing.open` it and read the last events of every rank —
  including after the writers were SIGKILLed mid-write (torn slots are
  detected and skipped, never propagated).

Post-mortems are flushed as JSON lines (``results/<fp>.flight.jsonl`` in
the service store) via :func:`write_flight_jsonl` /
:func:`read_flight_jsonl` under the ``repro.flight/1`` schema.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import time
from collections import deque
from contextlib import contextmanager

#: Version tag on flushed flight files.
FLIGHT_SCHEMA = "repro.flight/1"

#: Default ring depth per rank.
DEFAULT_CAPACITY = 64
#: Default byte budget per ring slot (one JSON-encoded event).
DEFAULT_SLOT_BYTES = 256


class NullFlightRecorder:
    """Inert recorder: the zero-overhead global default."""

    enabled = False

    __slots__ = ()

    def record(self, kind, rank=0, **fields) -> None:
        return None


class FlightRecorder:
    """In-memory per-rank rings of the last ``capacity`` events.

    ``ring_path`` does not change this recorder's own behaviour — it names
    the file a :class:`~repro.msglib.process.ProcessCluster` should back
    its rank writers with, so the events survive a SIGKILL (the cluster
    reads ``get_flight().ring_path``; ``None`` means a throwaway temp
    file).
    """

    enabled = True

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, ring_path: str | None = None
    ) -> None:
        self.capacity = capacity
        self.ring_path = ring_path
        self._events: dict[int, deque] = {}
        self._lock = threading.Lock()
        self._clock = time.time

    def record(self, kind: str, rank: int = 0, **fields) -> None:
        event = {"kind": kind, "rank": rank, "t": self._clock()}
        if fields:
            event.update(fields)
        with self._lock:
            ring = self._events.get(rank)
            if ring is None:
                ring = self._events[rank] = deque(maxlen=self.capacity)
            ring.append(event)

    def ingest(self, rank: int, events: list[dict]) -> None:
        """Fold events recovered from another process's ring into ours."""
        with self._lock:
            ring = self._events.get(rank)
            if ring is None:
                ring = self._events[rank] = deque(maxlen=self.capacity)
            ring.extend(events)

    def events(self, rank: int) -> list[dict]:
        with self._lock:
            return list(self._events.get(rank, ()))

    def events_by_rank(self) -> dict[int, list[dict]]:
        with self._lock:
            return {r: list(d) for r, d in sorted(self._events.items())}


# -- crash-survivable file ring ----------------------------------------------

_MAGIC = b"RFR1"
_HEADER = struct.Struct("<4sIII")  # magic, nranks, capacity, slot_bytes
_COUNTER = struct.Struct("<Q")  # per-rank monotone write count
_SLOT_LEN = struct.Struct("<I")  # payload length prefix per slot


class FlightRingWriter:
    """Single-writer view of one rank's region of a :class:`FlightRing`.

    Satisfies the recorder protocol (``enabled`` / ``record``), so a
    forked rank process installs one via ``set_flight`` and every hot-path
    hook writes straight into the shared file.  A slot is written payload
    first, length second, counter last — a reader that races (or outlives)
    the writer sees either the previous complete event or a torn slot that
    fails to parse, never a half-event accepted as truth.
    """

    enabled = True

    __slots__ = ("_ring", "_rank", "_count", "_clock")

    def __init__(self, ring: "FlightRing", rank: int) -> None:
        self._ring = ring
        self._rank = rank
        self._count = ring._read_counter(rank)
        self._clock = time.time

    def record(self, kind: str, rank: int | None = None, **fields) -> None:
        event = {"kind": kind, "rank": self._rank, "t": self._clock()}
        if fields:
            event.update(fields)
        payload = json.dumps(event, separators=(",", ":")).encode()
        self._ring._write_slot(self._rank, self._count, payload)
        self._count += 1


class FlightRing:
    """File-backed mmap ring: ``header | per-rank (counter + slots)``.

    Layout (all little-endian)::

        [4s magic][I nranks][I capacity][I slot_bytes]
        rank 0: [Q write_count][capacity x (I length + payload)]
        rank 1: ...

    One writer per rank region (no cross-rank locking); readers in any
    process open the same file and tolerate torn slots.
    """

    def __init__(self, path: str, fileobj, mm: mmap.mmap, nranks: int,
                 capacity: int, slot_bytes: int) -> None:
        self.path = path
        self._file = fileobj
        self._mm = mm
        self.nranks = nranks
        self.capacity = capacity
        self.slot_bytes = slot_bytes

    # -- construction ---------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        nranks: int,
        capacity: int = DEFAULT_CAPACITY,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> "FlightRing":
        """Create (or truncate) the ring file for ``nranks`` writers."""
        size = _HEADER.size + nranks * cls._rank_region(capacity, slot_bytes)
        fh = open(path, "w+b")
        try:
            fh.truncate(size)
            fh.write(_HEADER.pack(_MAGIC, nranks, capacity, slot_bytes))
            fh.flush()
            mm = mmap.mmap(fh.fileno(), size)
        except BaseException:
            fh.close()
            raise
        return cls(path, fh, mm, nranks, capacity, slot_bytes)

    @classmethod
    def open(cls, path: str) -> "FlightRing":
        """Map an existing ring file (reader side; e.g. post-mortem)."""
        fh = open(path, "r+b")
        try:
            header = fh.read(_HEADER.size)
            magic, nranks, capacity, slot_bytes = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise ValueError(f"{path}: not a flight-ring file")
            size = _HEADER.size + nranks * cls._rank_region(capacity, slot_bytes)
            mm = mmap.mmap(fh.fileno(), size)
        except BaseException:
            fh.close()
            raise
        return cls(path, fh, mm, nranks, capacity, slot_bytes)

    @staticmethod
    def _rank_region(capacity: int, slot_bytes: int) -> int:
        return _COUNTER.size + capacity * (_SLOT_LEN.size + slot_bytes)

    # -- geometry -------------------------------------------------------------
    def _rank_offset(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} outside ring (nranks={self.nranks})")
        return _HEADER.size + rank * self._rank_region(
            self.capacity, self.slot_bytes
        )

    def _slot_offset(self, rank: int, index: int) -> int:
        return (
            self._rank_offset(rank)
            + _COUNTER.size
            + (index % self.capacity) * (_SLOT_LEN.size + self.slot_bytes)
        )

    # -- writer side ----------------------------------------------------------
    def writer(self, rank: int) -> FlightRingWriter:
        return FlightRingWriter(self, rank)

    def _read_counter(self, rank: int) -> int:
        off = self._rank_offset(rank)
        return _COUNTER.unpack_from(self._mm, off)[0]

    def _write_slot(self, rank: int, index: int, payload: bytes) -> None:
        payload = payload[: self.slot_bytes]
        off = self._slot_offset(rank, index)
        self._mm[off + _SLOT_LEN.size : off + _SLOT_LEN.size + len(payload)] = (
            payload
        )
        _SLOT_LEN.pack_into(self._mm, off, len(payload))
        _COUNTER.pack_into(self._mm, self._rank_offset(rank), index + 1)

    # -- reader side ----------------------------------------------------------
    def read(self, rank: int) -> list[dict]:
        """The rank's surviving events, oldest first; torn slots skipped."""
        count = self._read_counter(rank)
        if count == 0:
            return []
        events = []
        for index in range(max(0, count - self.capacity), count):
            off = self._slot_offset(rank, index)
            (length,) = _SLOT_LEN.unpack_from(self._mm, off)
            if not 0 < length <= self.slot_bytes:
                continue
            raw = self._mm[off + _SLOT_LEN.size : off + _SLOT_LEN.size + length]
            try:
                event = json.loads(raw.decode())
            except (ValueError, UnicodeDecodeError):
                continue  # torn write from a killed rank
            if isinstance(event, dict):
                events.append(event)
        return events

    def read_all(self) -> dict[int, list[dict]]:
        return {rank: self.read(rank) for rank in range(self.nranks)}

    def close(self) -> None:
        try:
            self._mm.close()
        finally:
            self._file.close()

    def unlink(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


# -- post-mortem files --------------------------------------------------------

def write_flight_jsonl(events_by_rank: dict[int, list[dict]], path) -> None:
    """Flush recorder contents as JSON lines: one meta line, then events."""
    ranks = sorted(events_by_rank)
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "schema": FLIGHT_SCHEMA,
                    "ranks": ranks,
                    "events": sum(len(events_by_rank[r]) for r in ranks),
                },
                sort_keys=True,
            )
            + "\n"
        )
        for rank in ranks:
            for event in events_by_rank[rank]:
                fh.write(json.dumps(event, sort_keys=True) + "\n")


def read_flight_jsonl(path) -> dict[int, list[dict]]:
    """Load a flushed flight file back into ``rank -> events``."""
    events: dict[int, list[dict]] = {}
    with open(path) as fh:
        header = json.loads(fh.readline())
        if header.get("schema") != FLIGHT_SCHEMA:
            raise ValueError(
                f"{path}: unknown flight schema {header.get('schema')!r}"
            )
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            events.setdefault(int(event.get("rank", 0)), []).append(event)
    return events


#: Process-wide active recorder; hot paths read it via :func:`get_flight`.
_NULL = NullFlightRecorder()
_active = _NULL


def get_flight():
    """The active flight recorder (null by default)."""
    return _active


def set_flight(recorder):
    """Install ``recorder`` globally (``None`` restores the null one)."""
    global _active
    _active = recorder if recorder is not None else _NULL
    return _active


@contextmanager
def use_flight(recorder):
    """Scoped :func:`set_flight`: restores the previous recorder on exit."""
    global _active
    previous = _active
    _active = recorder if recorder is not None else _NULL
    try:
        yield _active
    finally:
        _active = previous
