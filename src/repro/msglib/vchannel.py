"""In-process mailboxes with tagged, source-matched delivery.

Each rank owns one :class:`Mailbox`.  Senders deposit ``(source, tag,
payload)`` envelopes (never blocking — PVM-style buffered semantics);
receivers block on the mailbox until an envelope matching their
``(source, tag)`` arrives.  Out-of-order arrivals are stashed so message
selectivity works exactly like PVM's ``pvm_recv(tid, tag)``.

Two failure channels exist:

* a receive that outlives its (per-call or cluster-default) timeout raises
  :class:`DeadlockError` naming receiver, sender and tag — a mis-tagged
  send therefore fails fast instead of hanging the suite;
* :meth:`Mailbox.abort` poisons the mailbox: any current or future blocked
  receive raises :class:`ClusterAborted`.  The virtual cluster aborts all
  mailboxes the moment any rank dies, turning a would-be hang into a
  prompt, structured failure.
"""

from __future__ import annotations

import queue
import threading
import time as _time
from collections import defaultdict, deque

import numpy as np


class DeadlockError(RuntimeError):
    """Raised when a receive waits longer than its timeout."""


class ClusterAborted(RuntimeError):
    """Raised in ranks blocked on a mailbox after another rank failed."""


#: Source value of the internal wake-up envelope deposited by ``abort``.
_ABORT_SRC = None


class Mailbox:
    """Tagged mailbox for one receiving rank."""

    def __init__(self, owner: int, timeout: float = 60.0) -> None:
        self.owner = owner
        self.timeout = timeout
        self._incoming: queue.Queue = queue.Queue()
        self._stash: dict[tuple[int, str], deque] = defaultdict(deque)
        self._lock = threading.Lock()
        self._aborted: str | None = None

    def put(self, source: int, tag: str, payload: np.ndarray) -> None:
        """Deposit an envelope (called from the sender's thread)."""
        self._incoming.put((source, tag, payload))

    def abort(self, reason: str) -> None:
        """Poison the mailbox: blocked and future receives raise
        :class:`ClusterAborted` with ``reason``."""
        self._aborted = reason
        # Wake a blocked owner promptly with a sentinel envelope.
        self._incoming.put((_ABORT_SRC, "", None))

    def _raise_aborted(self, source: int, tag: str) -> None:
        raise ClusterAborted(
            f"rank {self.owner}: cluster aborted while waiting for message "
            f"from {source} tag {tag!r}: {self._aborted}"
        )

    def try_get(self, source: int, tag: str):
        """Non-blocking probe: the matching payload, or ``None``.

        Drains any queued envelopes into the stash first, so a message
        that has already arrived is found regardless of arrival order.
        """
        key = (source, tag)
        with self._lock:
            while True:
                try:
                    src, t, payload = self._incoming.get_nowait()
                except queue.Empty:
                    break
                if src is _ABORT_SRC:
                    continue
                self._stash[(src, t)].append(payload)
            if self._stash[key]:
                return self._stash[key].popleft()
        if self._aborted is not None:
            self._raise_aborted(source, tag)
        return None

    def get(
        self, source: int, tag: str, timeout: float | None = None
    ) -> np.ndarray:
        """Block until the envelope matching ``(source, tag)`` arrives.

        ``timeout`` overrides the mailbox default for this call only; the
        deadline covers the whole call (unmatched arrivals do not reset
        it).
        """
        limit = self.timeout if timeout is None else timeout
        key = (source, tag)
        with self._lock:
            if self._stash[key]:
                return self._stash[key].popleft()
        deadline = _time.monotonic() + limit
        while True:
            if self._aborted is not None:
                self._raise_aborted(source, tag)
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"rank {self.owner}: no message from {source} tag {tag!r} "
                    f"within {limit}s (likely deadlock, tag mismatch, or a "
                    "lost message)"
                )
            try:
                src, t, payload = self._incoming.get(timeout=remaining)
            except queue.Empty:
                raise DeadlockError(
                    f"rank {self.owner}: no message from {source} tag {tag!r} "
                    f"within {limit}s (likely deadlock, tag mismatch, or a "
                    "lost message)"
                ) from None
            if src is _ABORT_SRC:
                continue  # the loop re-checks the aborted flag
            if (src, t) == key:
                return payload
            with self._lock:
                self._stash[(src, t)].append(payload)

    def pending(self) -> int:
        """Number of stashed (unconsumed) envelopes — should be 0 at exit."""
        with self._lock:
            return sum(len(d) for d in self._stash.values()) + self._incoming.qsize()
