"""Loop-form kernels for the compiled backend (Numba ``njit``-compilable).

These transcribe the same per-element operation order as the C translation
unit in ``_cc.py`` (which in turn transcribes the fused backend's numpy
ufunc chains), written as plain nested loops so that

* Numba can ``njit`` them unchanged (the ``"numba"`` engine), and
* they run as-is under CPython (the ``"python"`` engine) — far too slow
  for production grids but exactly right for differential tests on tiny
  grids where no compiler toolchain exists.

Optional operands are passed as (array, flag) pairs rather than ``None``
so every call site presents Numba with one stable type signature.
Keep this file dependency-free beyond numpy: it is imported eagerly by the
backend registry even when neither engine is ever used.
"""

from __future__ import annotations


def prim_loop(q, gamma, inv_rho, u, v, p, T, with_T):
    nx, nr = inv_rho.shape
    gm1 = gamma - 1.0
    for i in range(nx):
        for j in range(nr):
            ir = 1.0 / q[0, i, j]
            ui = q[1, i, j] * ir
            vi = q[2, i, j] * ir
            ta = q[1, i, j] * ui
            tb = q[2, i, j] * vi
            ta = ta + tb
            ta = ta * 0.5
            ta = q[3, i, j] - ta
            pi = ta * gm1
            inv_rho[i, j] = ir
            u[i, j] = ui
            v[i, j] = vi
            p[i, j] = pi
            if with_T:
                tt = pi * gamma
                T[i, j] = tt * ir


def ax_inv_loop(q, u, v, p, F):
    nx, nr = u.shape
    for i in range(nx):
        for j in range(nr):
            F[0, i, j] = q[1, i, j]
            f1 = q[1, i, j] * u[i, j]
            f1 = f1 + p[i, j]
            F[1, i, j] = f1
            F[2, i, j] = q[1, i, j] * v[i, j]
            ep = q[3, i, j] + p[i, j]
            F[3, i, j] = u[i, j] * ep


def rad_inv_loop(q, u, v, p, G):
    nx, nr = u.shape
    for i in range(nx):
        for j in range(nr):
            G[0, i, j] = q[2, i, j]
            G[1, i, j] = q[2, i, j] * u[i, j]
            g2 = q[2, i, j] * v[i, j]
            g2 = g2 + p[i, j]
            G[2, i, j] = g2
            ep = q[3, i, j] + p[i, j]
            G[3, i, j] = v[i, j] * ep


def visc_loop(
    F, tau_tt, u, v, T, r, mu_a, mu_s, has_mu_a, k_a, negk_s, has_k_a,
    dx, dr, radial,
):
    nx, nr = u.shape
    two_thirds = 2.0 / 3.0
    h2x = 2.0 * dx
    a0x = -1.5 / dx
    b0x = 2.0 / dx
    c0x = -0.5 / dx
    a1x = 0.5 / dx
    b1x = -2.0 / dx
    c1x = 1.5 / dx
    h2r = 2.0 * dr
    a0r = -1.5 / dr
    b0r = 2.0 / dr
    c0r = -0.5 / dr
    a1r = 0.5 / dr
    b1r = -2.0 / dr
    c1r = 1.5 / dr

    def gx(f, i, j):
        if i == 0:
            return (a0x * f[0, j] + b0x * f[1, j]) + c0x * f[2, j]
        if i == nx - 1:
            return (
                a1x * f[nx - 3, j] + b1x * f[nx - 2, j]
            ) + c1x * f[nx - 1, j]
        return (f[i + 1, j] - f[i - 1, j]) / h2x

    def gr(f, i, j):
        if j == 0:
            return (a0r * f[i, 0] + b0r * f[i, 1]) + c0r * f[i, 2]
        if j == nr - 1:
            return (
                a1r * f[i, nr - 3] + b1r * f[i, nr - 2]
            ) + c1r * f[i, nr - 1]
        return (f[i, j + 1] - f[i, j - 1]) / h2r

    for i in range(nx):
        for j in range(nr):
            g_ux = gx(u, i, j)
            g_ur = gr(u, i, j)
            g_vx = gx(v, i, j)
            g_vr = gr(v, i, j)
            g_t = gr(T, i, j) if radial else gx(T, i, j)
            mu = mu_a[i, j] if has_mu_a else mu_s
            vr = v[i, j] / r[j]
            dil = g_ux + g_vr
            dil = dil + vr
            dil = dil * two_thirds
            tn = (g_vr if radial else g_ux) * 2.0
            tn = tn - dil
            tn = tn * mu
            ts = g_ur + g_vx
            ts = ts * mu
            if has_k_a:
                heat = g_t * k_a[i, j]
                heat = -heat
            else:
                heat = g_t * negk_s
            if radial:
                ta = u[i, j] * ts
                tb = v[i, j] * tn
            else:
                ta = u[i, j] * tn
                tb = v[i, j] * ts
            ta = ta + tb
            ta = ta - heat
            if radial:
                ttt = vr * 2.0
                ttt = ttt - dil
                ttt = ttt * mu
                tau_tt[i, j] = ttt
                F[2, i, j] = F[2, i, j] - tn
                F[1, i, j] = F[1, i, j] - ts
            else:
                F[1, i, j] = F[1, i, j] - tn
                F[2, i, j] = F[2, i, j] - ts
            F[3, i, j] = F[3, i, j] - ta


def rad_finish_loop(G, S2, p, tau_tt, r, viscous):
    nv, nx, nr = G.shape
    for vv in range(nv):
        for i in range(nx):
            for j in range(nr):
                G[vv, i, j] = G[vv, i, j] * r[j]
    for i in range(nx):
        for j in range(nr):
            if viscous:
                S2[i, j] = p[i, j] - tau_tt[i, j]
            else:
                S2[i, j] = p[i, j]


def rate_loop(f, gh, has_gh, S, has_S, iw, has_iw, out, axis, h, forward):
    # Fused ghost extension + one-sided 2-4 difference + source/weight;
    # ``gh`` is the (2, 4, plane) ghost-plane array for the one boundary
    # the stencil reaches past (high for forward, low for backward), or a
    # dummy with has_gh False for the serial cubic extrapolation.
    nv, nx, nr = out.shape
    h6 = 6.0 * h

    def c1(p0, p1, p2, p3):
        # Transcribes stencils.cubic_ghosts: Python's sum() starts from
        # int 0, so the leading 0.0 + t is kept for signed-zero fidelity.
        t = 4.0 * p0
        g = 0.0 + t
        t = -6.0 * p1
        g = g + t
        t = 4.0 * p2
        g = g + t
        t = -1.0 * p3
        g = g + t
        return g

    def c2(p0, p1, p2, p3):
        t = 10.0 * p0
        g = 0.0 + t
        t = -20.0 * p1
        g = g + t
        t = 15.0 * p2
        g = g + t
        t = -4.0 * p3
        g = g + t
        return g

    def pt(vv, i, j, off):
        # f(center + off) along the sweep axis, ghosts past the boundary.
        m = nx if axis == 1 else nr
        c = i if axis == 1 else j
        k = c + off
        if 0 <= k < m:
            if axis == 1:
                return f[vv, k, j]
            return f[vv, i, k]
        p = j if axis == 1 else i
        g = (-k - 1) if k < 0 else (k - m)
        if has_gh:
            return gh[g, vv, p]
        if axis == 1:
            if k < 0:
                p0, p1, p2, p3 = f[vv, 0, j], f[vv, 1, j], f[vv, 2, j], f[vv, 3, j]
            else:
                p0, p1, p2, p3 = (
                    f[vv, nx - 1, j], f[vv, nx - 2, j],
                    f[vv, nx - 3, j], f[vv, nx - 4, j],
                )
        else:
            if k < 0:
                p0, p1, p2, p3 = f[vv, i, 0], f[vv, i, 1], f[vv, i, 2], f[vv, i, 3]
            else:
                p0, p1, p2, p3 = (
                    f[vv, i, nr - 1], f[vv, i, nr - 2],
                    f[vv, i, nr - 3], f[vv, i, nr - 4],
                )
        if g == 0:
            return c1(p0, p1, p2, p3)
        return c2(p0, p1, p2, p3)

    for vv in range(nv):
        for i in range(nx):
            for j in range(nr):
                if forward:
                    f0 = f[vv, i, j]
                    f1 = pt(vv, i, j, 1)
                    f2 = pt(vv, i, j, 2)
                    t = f1 - f0
                    t = t * 7.0
                    t2 = f2 - f1
                    d = t - t2
                else:
                    f0 = f[vv, i, j]
                    f1 = pt(vv, i, j, -1)
                    f2 = pt(vv, i, j, -2)
                    t = f0 - f1
                    t = t * 7.0
                    t2 = f1 - f2
                    d = t - t2
                d = d / h6
                if has_S:
                    rr = S[vv, i, j] - d
                else:
                    rr = -d
                if has_iw:
                    rr = rr * iw[j]
                out[vv, i, j] = rr


def predict_loop(q, rate, dt, qs):
    nv, nx, nr = qs.shape
    for vv in range(nv):
        for i in range(nx):
            for j in range(nr):
                rr = rate[vv, i, j] * dt
                rate[vv, i, j] = rr
                qs[vv, i, j] = q[vv, i, j] + rr


def correct_loop(q, qs, rate, dt, out):
    nv, nx, nr = out.shape
    for vv in range(nv):
        for i in range(nx):
            for j in range(nr):
                o = q[vv, i, j] + qs[vv, i, j]
                rr = rate[vv, i, j] * dt
                rate[vv, i, j] = rr
                o = o + rr
                out[vv, i, j] = o * 0.5


def filter_loop(q, lo, has_lo, hi, has_hi, d4s, eps, axis):
    # In-place fourth-difference filter with the ghost extension folded
    # in; each variable runs two passes over the scratch plane ``d4s`` so
    # the stencil always reads the unmutated plane (matching the
    # extended-copy evaluation order of apply_filter).
    nv, nx, nr = q.shape

    def c1(p0, p1, p2, p3):
        t = 4.0 * p0
        g = 0.0 + t
        t = -6.0 * p1
        g = g + t
        t = 4.0 * p2
        g = g + t
        t = -1.0 * p3
        g = g + t
        return g

    def c2(p0, p1, p2, p3):
        t = 10.0 * p0
        g = 0.0 + t
        t = -20.0 * p1
        g = g + t
        t = 15.0 * p2
        g = g + t
        t = -4.0 * p3
        g = g + t
        return g

    def pt(vv, i, j, off):
        m = nx if axis == 1 else nr
        c = i if axis == 1 else j
        k = c + off
        if 0 <= k < m:
            if axis == 1:
                return q[vv, k, j]
            return q[vv, i, k]
        p = j if axis == 1 else i
        g = (-k - 1) if k < 0 else (k - m)
        if k < 0:
            if has_lo:
                return lo[g, vv, p]
        else:
            if has_hi:
                return hi[g, vv, p]
        if axis == 1:
            if k < 0:
                p0, p1, p2, p3 = q[vv, 0, j], q[vv, 1, j], q[vv, 2, j], q[vv, 3, j]
            else:
                p0, p1, p2, p3 = (
                    q[vv, nx - 1, j], q[vv, nx - 2, j],
                    q[vv, nx - 3, j], q[vv, nx - 4, j],
                )
        else:
            if k < 0:
                p0, p1, p2, p3 = q[vv, i, 0], q[vv, i, 1], q[vv, i, 2], q[vv, i, 3]
            else:
                p0, p1, p2, p3 = (
                    q[vv, i, nr - 1], q[vv, i, nr - 2],
                    q[vv, i, nr - 3], q[vv, i, nr - 4],
                )
        if g == 0:
            return c1(p0, p1, p2, p3)
        return c2(p0, p1, p2, p3)

    for vv in range(nv):
        for i in range(nx):
            for j in range(nr):
                d4 = pt(vv, i, j, -1) * 4.0
                d4 = pt(vv, i, j, -2) - d4
                t = q[vv, i, j] * 6.0
                d4 = d4 + t
                t = pt(vv, i, j, 1) * 4.0
                d4 = d4 - t
                d4 = d4 + pt(vv, i, j, 2)
                d4 = d4 * eps
                d4s[i, j] = d4
        for i in range(nx):
            for j in range(nr):
                q[vv, i, j] = q[vv, i, j] - d4s[i, j]


#: Kernel table the engines wrap (name -> loop function).
KERNELS = {
    "prim": prim_loop,
    "ax_inv": ax_inv_loop,
    "rad_inv": rad_inv_loop,
    "visc": visc_loop,
    "rad_finish": rad_finish_loop,
    "rate": rate_loop,
    "predict": predict_loop,
    "correct": correct_loop,
    "filter": filter_loop,
}
