"""Plain-text rendering helpers."""

import numpy as np
import pytest

from repro.analysis.report import ascii_contour, format_table, render_series


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.0]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_number_formatting(self):
        out = format_table(["v"], [[145000.0]])
        assert "145,000" in out or "1.45e+05" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestRenderSeries:
    def test_contains_labels_and_bounds(self):
        out = render_series(
            [1, 2, 4, 8],
            {"fast": [100, 50, 25, 12], "slow": [200, 110, 60, 35]},
            title="Scaling",
        )
        assert "Scaling" in out
        assert "o = fast" in out
        assert "x = slow" in out
        assert "Number of Processors: 1 .. 8" in out

    def test_marks_plotted(self):
        out = render_series([1, 10], {"s": [10, 1]})
        assert out.count("o") >= 2 + 1  # two data points + legend

    def test_zero_values_skipped_in_log_mode(self):
        out = render_series([1, 2], {"s": [10, 0]})
        assert "(no data)" not in out

    def test_linear_mode(self):
        out = render_series([1, 2, 3], {"s": [1, 2, 3]}, loglog=False)
        assert "log-log" not in out

    def test_no_data(self):
        assert render_series([1], {"s": [0]}) == "(no data)"


class TestAsciiContour:
    def test_dimensions(self):
        f = np.zeros((50, 30))
        out = ascii_contour(f, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 11  # header + 10 rows
        assert all(len(l) == 40 for l in lines[1:])

    def test_levels_map_to_range(self):
        f = np.zeros((20, 20))
        f[10:, :] = 1.0
        out = ascii_contour(f, width=20, height=8, levels=" #")
        body = out.splitlines()[1:]
        # Left half blank, right half filled.
        assert body[0][2] == " "
        assert body[0][-2] == "#"

    def test_constant_field(self):
        out = ascii_contour(np.ones((10, 10)), width=10, height=4)
        assert "range [1, 1]" in out

    def test_title(self):
        out = ascii_contour(np.ones((10, 10)), title="X MOMENTUM")
        assert out.splitlines()[0] == "X MOMENTUM"


class TestRenderGantt:
    def _traced(self, trace=True):
        from repro.machines.platforms import LACE_560
        from repro.simulate.machine import SimulatedMachine
        from repro.simulate.workload import NAVIER_STOKES

        return SimulatedMachine(LACE_560, 4).run(
            NAVIER_STOKES, steps_window=3, trace=trace
        )

    def test_renders_one_row_per_rank(self):
        from repro.analysis.report import render_gantt

        out = render_gantt(self._traced(), title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert sum(1 for l in lines if l.startswith("rank")) == 4
        body = "\n".join(lines[2:])
        assert "#" in body  # compute segments visible

    def test_requires_trace(self):
        from repro.analysis.report import render_gantt

        with pytest.raises(ValueError, match="trace=True"):
            render_gantt(self._traced(trace=False))

    def test_segment_accounting_matches_totals(self):
        r = self._traced()
        t = r.timelines[1]
        by_kind = {}
        for seg in t.segments:
            by_kind[seg.kind] = by_kind.get(seg.kind, 0.0) + seg.duration
        assert by_kind.get("compute", 0) == pytest.approx(t.compute, rel=1e-9)
        assert by_kind.get("library", 0) == pytest.approx(t.library, rel=1e-9)
        assert by_kind.get("wait", 0) == pytest.approx(
            t.comm_wait, rel=1e-6, abs=1e-12
        )
