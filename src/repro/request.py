"""Typed, serializable run requests — the facade's wire-ready API.

:func:`repro.api.run` grew to 20+ loose keyword arguments; a run *service*
cannot ship loose kwargs over a wire, and a result *cache* needs one
canonical identity per workload.  This module factors the sprawl into
dataclasses:

* :class:`ExecutionConfig` — where and how the run executes (nprocs,
  platform, substrate, decomposition, code version, kernel backend);
* :class:`ResilienceConfig` — fault injection and checkpoint/restart;
* :class:`ObservabilityConfig` — tracing, metrics, profiling, ledger
  (never part of the workload identity);
* :class:`RunRequest` — scenario + steps + the three configs, with
  ``to_dict``/``from_dict`` round-tripping and :meth:`RunRequest.fingerprint`
  as the **single source of the cache key** used by the run service's
  result store and stamped into every :class:`~repro.obs.PerfReport`.

``run(scenario, **kw)`` remains a thin shim that builds a
:class:`RunRequest` (see :func:`repro.api.run`); the typed entry point is
:func:`repro.api.run_request`.

Identity vs. observability
--------------------------
The fingerprint covers everything that selects *what work runs*: the
scenario and its constructor overrides, the step count, the execution
route, and the resilience plan.  It deliberately excludes observability
(tracing a run does not change its result), the wall-clock ``timeout``
guard, and fields irrelevant to the selected route (a serial run's
fingerprint does not change with ``decomposition=``).  Two requests with
equal fingerprints execute the same workload and may share one cached
:class:`~repro.api.RunResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from .obs.report import config_fingerprint

__all__ = [
    "REQUEST_SCHEMA",
    "ExecutionConfig",
    "ObservabilityConfig",
    "ResilienceConfig",
    "RunRequest",
]

#: Request wire-format tag; bump on incompatible shape changes.
REQUEST_SCHEMA = "repro.request/1"


@dataclass(frozen=True)
class ExecutionConfig:
    """Where and how a run executes (the routing half of ``run(...)``)."""

    nprocs: int = 1
    platform: str | None = None
    """Platform name selecting the simulated (DES) route, else ``None``."""
    substrate: str = "virtual"
    """Distributed substrate: ``"virtual"`` (threads) or ``"process"``."""
    decomposition: str = "axial"
    px: int | None = None
    pr: int | None = None
    version: int = 7
    """Paper code version (5 grouped / 6 overlapped / 7 de-burstified)."""
    backend: str | None = None
    """Kernel backend override (``"baseline"``/``"fused"``), ``None`` keeps
    the scenario's configured backend."""
    steps_window: int = 30
    """DES steps actually executed before scaling (simulated route)."""
    timeout: float = 120.0
    """Wall-clock guard for distributed runs — never part of the
    fingerprint (a slower timeout is the same workload)."""
    overlap: bool = False
    """Force the overlapped (split-phase) halo exchange on distributed
    runs regardless of code version; ``False`` keeps the version's
    default (V6+ overlaps, V5 blocks).  Never part of the fingerprint:
    overlapped runs are bitwise-identical to blocking ones (enforced by
    the tier-1 differential suite), so the result cache soundly dedupes
    across the two modes."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault injection and checkpoint/restart configuration."""

    faults: Any = None
    """``None``, a preset name, or a :class:`~repro.faults.FaultPlan`."""
    fault_seed: int | None = None
    checkpoint_every: int = 0
    max_restarts: int = 2


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing/metrics/profiling/ledger — orthogonal to the workload.

    In-process callers may pass live objects (a
    :class:`~repro.obs.Tracer`, a :class:`~repro.obs.MetricsRegistry`);
    :meth:`to_dict` normalizes them to ``True`` so the request stays
    wire-serializable without them.
    """

    trace: Any = None
    """Falsy, ``True``, a Tracer, or a Chrome-trace export path."""
    metrics: Any = None
    """Falsy, ``True``, or a MetricsRegistry to record into."""
    profile: Any = False
    """``True`` / top-N int for cProfile coverage (implies metrics)."""
    ledger: Any = None
    """Falsy, ``True`` (anchored default ledger) or an explicit path."""
    stream: Any = None
    """Falsy, ``True`` (buffered), or a live step-stream publisher."""
    flight: Any = None
    """Falsy, ``True``, a capacity int, a flush path, or a live
    :class:`~repro.obs.FlightRecorder`."""

    def to_dict(self) -> dict:
        return {
            "trace": _plain_flag(self.trace),
            "metrics": _plain_flag(self.metrics),
            "profile": self.profile if isinstance(self.profile, int) else bool(self.profile),
            "ledger": _plain_flag(self.ledger),
            "stream": _plain_flag(self.stream),
            "flight": _plain_flag(self.flight),
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "ObservabilityConfig":
        return cls(
            trace=d.get("trace"),
            metrics=d.get("metrics"),
            profile=d.get("profile", False),
            ledger=d.get("ledger"),
            stream=d.get("stream"),
            flight=d.get("flight"),
        )


def _plain_flag(value: Any) -> Any:
    """Coerce a live observability object to its wire form."""
    if value is None or isinstance(value, (bool, str, int, float)):
        return value
    try:
        import os

        return os.fspath(value)
    except TypeError:
        return True


#: Backends whose results are bitwise-interchangeable (locked down by the
#: tier-1 differential suite); they share one cache identity.  ``"compiled"``
#: is deliberately absent — see :meth:`RunRequest.identity`.
_EQUIVALENT_BACKENDS = (None, "baseline", "fused")


def _backend_identity(backend: str | None) -> str | None:
    """Collapse bitwise-equivalent backends onto one identity value."""
    return None if backend in _EQUIVALENT_BACKENDS else backend


def _faults_identity(faults: Any) -> Any:
    """A JSON-able identity for the ``faults`` field (name or plan dict)."""
    if faults is None or isinstance(faults, str):
        return faults
    from .faults import FaultPlan

    if isinstance(faults, FaultPlan):
        return dataclasses.asdict(faults)
    raise TypeError(
        f"faults must be None, a preset name, or a FaultPlan; got "
        f"{type(faults).__name__}"
    )


def _faults_from_wire(value: Any) -> Any:
    if value is None or isinstance(value, str):
        return value
    from .faults import FaultPlan

    d = dict(value)
    for key in ("slow_ranks", "crashes"):
        if key in d:
            d[key] = tuple(tuple(pair) for pair in d[key])
    return FaultPlan(**d)


@dataclass(frozen=True)
class RunRequest:
    """One complete, serializable description of a facade run.

    ``scenario`` is a registered name (``"jet"``, ``"advection"``, ...)
    and ``scenario_kw`` its constructor overrides.  Requests built from a
    live :class:`~repro.scenarios.Scenario` object (via
    :meth:`from_run_args`) carry it in ``scenario_obj``; they execute and
    fingerprint fine in-process but refuse :meth:`to_dict` (an ad-hoc
    scenario cannot cross a wire).
    """

    scenario: str
    steps: int | None = None
    scenario_kw: Mapping[str, Any] = field(default_factory=dict)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    scenario_obj: Any = field(default=None, compare=False, repr=False)
    """In-process only: a pre-built Scenario overriding name resolution."""
    platform_obj: Any = field(default=None, compare=False, repr=False)
    """In-process only: a live Platform object (ad-hoc machine models)."""

    # -- construction --------------------------------------------------------

    @classmethod
    def from_run_args(
        cls,
        scenario,
        *,
        steps: int | None = None,
        nprocs: int = 1,
        platform=None,
        version: int = 7,
        trace=None,
        backend: str | None = None,
        decomposition: str = "axial",
        px: int | None = None,
        pr: int | None = None,
        timeout: float = 120.0,
        substrate: str = "virtual",
        steps_window: int = 30,
        overlap: bool = False,
        faults=None,
        fault_seed: int | None = None,
        checkpoint_every: int = 0,
        max_restarts: int = 2,
        metrics=None,
        profile=False,
        ledger=None,
        stream=None,
        flight=None,
        **scenario_kw,
    ) -> "RunRequest":
        """Build a request from :func:`repro.api.run`'s keyword surface.

        The parameter names and defaults are exactly the legacy ``run``
        signature — this is the shim's one-line body.
        """
        scenario_obj = None
        from .scenarios import Scenario

        if isinstance(scenario, Scenario):
            if scenario_kw:
                raise TypeError(
                    "scenario keyword arguments "
                    f"{sorted(scenario_kw)} are only valid when the scenario "
                    "is given by name; pass them to the scenario constructor "
                    "instead"
                )
            scenario_obj = scenario
            scenario = scenario.name or "scenario"
        platform_obj = None
        if platform is not None and not isinstance(platform, str):
            platform_obj = platform
            platform = getattr(platform, "name", str(platform))
        return cls(
            scenario=scenario,
            steps=steps,
            scenario_kw=dict(scenario_kw),
            execution=ExecutionConfig(
                nprocs=nprocs,
                platform=platform,
                substrate=substrate,
                decomposition=decomposition,
                px=px,
                pr=pr,
                version=version,
                backend=backend,
                steps_window=steps_window,
                timeout=timeout,
                overlap=overlap,
            ),
            resilience=ResilienceConfig(
                faults=faults,
                fault_seed=fault_seed,
                checkpoint_every=checkpoint_every,
                max_restarts=max_restarts,
            ),
            observability=ObservabilityConfig(
                trace=trace, metrics=metrics, profile=profile, ledger=ledger,
                stream=stream, flight=flight,
            ),
            scenario_obj=scenario_obj,
            platform_obj=platform_obj,
        )

    # -- routing helpers -----------------------------------------------------

    @property
    def mode(self) -> str:
        """``"serial"``, ``"parallel"`` or ``"simulated"`` (derived)."""
        if self.execution.platform is not None:
            return "simulated"
        return "serial" if self.execution.nprocs == 1 else "parallel"

    def resolve_scenario(self):
        """The live :class:`~repro.scenarios.Scenario` this request runs."""
        if self.scenario_obj is not None:
            return self.scenario_obj
        from .scenarios import scenario_by_name

        return scenario_by_name(self.scenario, **dict(self.scenario_kw))

    def resolve_platform(self):
        """The live Platform for the simulated route (or ``None``)."""
        if self.platform_obj is not None:
            return self.platform_obj
        if self.execution.platform is None:
            return None
        from .machines.platforms import platform_by_name

        return platform_by_name(self.execution.platform)

    # -- identity ------------------------------------------------------------

    def identity(self) -> dict:
        """The normalized workload identity behind :meth:`fingerprint`.

        Route-irrelevant fields are nulled out so e.g. a serial run's
        identity does not vary with ``decomposition=`` or ``faults=``;
        observability and ``timeout`` never appear.  ``decomposition`` (and
        ``px``/``pr``) is nulled even on the parallel route: all three
        decompositions produce bitwise-identical states (verified by the
        test suite), so the result cache soundly dedupes across them.
        ``substrate`` stays in the parallel identity because per-rank
        statistics and wall-clock observables differ across substrates.
        ``backend`` is normalized the same way: ``None``/``"baseline"``/
        ``"fused"`` collapse to one identity (bitwise-equal by the tier-1
        differential suite), while ``"compiled"`` stays distinct — its
        bitwise guarantee is per-platform (engines may pin a ULP bound
        instead) and it may fall back to ``"fused"`` where no engine is
        available, so its results are not universally interchangeable.
        """
        ex, rz = self.execution, self.resilience
        mode = self.mode
        parallel = mode == "parallel"
        simulated = mode == "simulated"
        ident: dict[str, Any] = {
            "schema": REQUEST_SCHEMA,
            "scenario": self.scenario,
            "scenario_kw": dict(sorted(dict(self.scenario_kw).items())),
            "steps": self.steps,
            "mode": mode,
            "nprocs": ex.nprocs,
            "platform": ex.platform,
            "substrate": ex.substrate if parallel else None,
            "decomposition": None,  # route-irrelevant: results are bitwise-equal
            "px": None,
            "pr": None,
            "version": ex.version if (parallel or simulated) else None,
            "backend": _backend_identity(ex.backend) if not simulated else None,
            "steps_window": ex.steps_window if simulated else None,
            "faults": _faults_identity(rz.faults) if mode != "serial" else None,
            "fault_seed": rz.fault_seed if mode != "serial" else None,
            "checkpoint_every": rz.checkpoint_every if parallel else 0,
            "max_restarts": rz.max_restarts if parallel else None,
        }
        if self.scenario_obj is not None:
            # Ad-hoc scenarios: the name alone may not pin the setup.
            sc = self.scenario_obj
            ident["adhoc_grid"] = [sc.grid.nx, sc.grid.nr]
            ident["adhoc_viscous"] = sc.solver.config.viscous
        return ident

    def fingerprint(self) -> str:
        """Short stable hash of :meth:`identity` — the cache key.

        A pure function of the request: equal across processes, machines
        and sessions for equal configurations.
        """
        return config_fingerprint(**self.identity())

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Wire form (plain JSON-able dict); round-trips via
        :meth:`from_dict`.  Raises ``ValueError`` for requests carrying
        live scenario/platform objects."""
        if self.scenario_obj is not None:
            raise ValueError(
                "a RunRequest built from a live Scenario object is not "
                "serializable; build it from a registered scenario name"
            )
        if self.platform_obj is not None:
            raise ValueError(
                "a RunRequest carrying a live Platform object is not "
                "serializable; use a registered platform name"
            )
        ex, rz = self.execution, self.resilience
        return {
            "schema": REQUEST_SCHEMA,
            "scenario": self.scenario,
            "steps": self.steps,
            "scenario_kw": dict(self.scenario_kw),
            "execution": {
                "nprocs": ex.nprocs,
                "platform": ex.platform,
                "substrate": ex.substrate,
                "decomposition": ex.decomposition,
                "px": ex.px,
                "pr": ex.pr,
                "version": ex.version,
                "backend": ex.backend,
                "steps_window": ex.steps_window,
                "timeout": ex.timeout,
                "overlap": ex.overlap,
            },
            "resilience": {
                "faults": _faults_identity(rz.faults),
                "fault_seed": rz.fault_seed,
                "checkpoint_every": rz.checkpoint_every,
                "max_restarts": rz.max_restarts,
            },
            "observability": self.observability.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "RunRequest":
        schema = d.get("schema", REQUEST_SCHEMA)
        if schema != REQUEST_SCHEMA:
            raise ValueError(
                f"unknown request schema {schema!r} "
                f"(expected {REQUEST_SCHEMA!r})"
            )
        ex = dict(d.get("execution") or {})
        rz = dict(d.get("resilience") or {})
        if "faults" in rz:
            rz["faults"] = _faults_from_wire(rz["faults"])
        known_ex = {f.name for f in dataclasses.fields(ExecutionConfig)}
        known_rz = {f.name for f in dataclasses.fields(ResilienceConfig)}
        return cls(
            scenario=d["scenario"],
            steps=d.get("steps"),
            scenario_kw=dict(d.get("scenario_kw") or {}),
            execution=ExecutionConfig(
                **{k: v for k, v in ex.items() if k in known_ex}
            ),
            resilience=ResilienceConfig(
                **{k: v for k, v in rz.items() if k in known_rz}
            ),
            observability=ObservabilityConfig.from_dict(
                d.get("observability") or {}
            ),
        )

    def replace(self, **changes) -> "RunRequest":
        """A copy with top-level fields replaced (dataclass semantics)."""
        return dataclasses.replace(self, **changes)
