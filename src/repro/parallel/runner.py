"""High-level facade: run the decomposed jet solver over a virtual cluster.

:class:`ParallelJetSolver` takes the same inputs as the serial solver plus a
processor count and a paper code version, executes the SPMD program for real
(one thread per rank, actual message passing), and returns the gathered
global state together with per-rank communication statistics — the measured
source for the paper's Table 1.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..grid import Grid
from ..msglib.api import CommStats
from ..msglib.virtual import VirtualCluster
from ..numerics.solver import SolverConfig
from ..obs import Trace, Tracer, use_tracer
from ..physics.state import FlowState
from .spmd import DistributedSolver


def interior_stats(per_rank_stats: list[CommStats]) -> CommStats:
    """Stats of a middle rank — the paper's 'per processor' numbers.

    Interior ranks have two neighbours; edge ranks communicate less.  With
    fewer than three ranks *every* rank is an edge rank and the paper's
    per-processor figure is ill-defined, so this raises instead of silently
    returning an edge rank's (understated) numbers.
    """
    n = len(per_rank_stats)
    if n < 3:
        raise ValueError(
            f"no interior rank exists for nprocs={n}: with fewer than 3 "
            "ranks every rank touches a physical boundary and communicates "
            "with at most one neighbour, so the paper's per-processor "
            "(two-neighbour) numbers are ill-defined.  Inspect "
            "per_rank_stats directly or run with nprocs >= 3."
        )
    return per_rank_stats[n // 2]


@dataclass
class ParallelRunResult:
    """Outcome of a distributed run."""

    state: FlowState
    """Gathered global state after the run."""
    per_rank_stats: list[CommStats]
    """Communication statistics of each rank."""
    nsteps: int
    t: float
    """Final simulation time."""
    per_rank_wall: list[float] = field(default_factory=list)
    """Wall seconds each rank spent inside ``solver.step``."""
    trace: Trace | None = None
    """Span/counter records when the run was traced (else ``None``)."""

    @property
    def interior_rank_stats(self) -> CommStats:
        """Stats of a middle rank (see :func:`interior_stats`; raises
        ``ValueError`` for ``nprocs < 3`` where no interior rank exists)."""
        return interior_stats(self.per_rank_stats)


class ParallelJetSolver:
    """Distributed counterpart of the serial solvers.

    Parameters
    ----------
    state:
        Initial global :class:`~repro.physics.state.FlowState`.
    config:
        Solver configuration (identical to the serial one).
    nranks:
        Number of processors (axial blocks).
    version:
        Paper code version: 5 (grouped messages), 6 (overlapped), or
        7 (flux columns one at a time).
    decomposition:
        ``"axial"`` (the paper's choice), ``"radial"`` (its Section-8
        future-work variant), or ``"2d"`` (a Cartesian ``px x pr`` grid of
        blocks; pass ``px``/``pr`` with ``px * pr == nranks``).
    timeout:
        Per-receive deadlock timeout in seconds.
    """

    def __init__(
        self,
        state: FlowState,
        config: SolverConfig | None = None,
        nranks: int = 2,
        version: int = 5,
        decomposition: str = "axial",
        px: int | None = None,
        pr: int | None = None,
        timeout: float = 120.0,
    ) -> None:
        if decomposition not in ("axial", "radial", "2d"):
            raise ValueError(
                f"decomposition must be 'axial', 'radial' or '2d', got "
                f"{decomposition!r}"
            )
        if decomposition == "2d":
            if px is None or pr is None or px * pr != nranks:
                raise ValueError(
                    "2d decomposition needs px and pr with px * pr == nranks"
                )
        self.global_grid: Grid = state.grid
        self.q0 = state.q.copy()
        self.config = config or SolverConfig()
        self.nranks = nranks
        self.version = version
        self.decomposition = decomposition
        self.px, self.pr = px, pr
        self.timeout = timeout

    def run(self, steps: int, tracer: Tracer | None = None) -> ParallelRunResult:
        """Execute ``steps`` time steps across all ranks and gather.

        ``tracer`` optionally records per-rank spans (solver stages, sends,
        receives, halo exchanges) for the duration of the run; it is
        installed as the process-global tracer while the cluster executes.
        """
        cluster = VirtualCluster(self.nranks, timeout=self.timeout)
        grid = self.global_grid
        q0 = self.q0
        config = self.config
        version = self.version
        if self.decomposition == "radial":
            from .spmd_radial import RadialDistributedSolver as solver_cls

            make = lambda comm: solver_cls(comm, grid, q0, config, version=version)
        elif self.decomposition == "2d":
            from .spmd2d import Distributed2DSolver

            px, pr = self.px, self.pr
            make = lambda comm: Distributed2DSolver(
                comm, grid, q0, config, px=px, pr=pr, version=version
            )
        else:
            make = lambda comm: DistributedSolver(
                comm, grid, q0, config, version=version
            )

        def program(comm):
            solver = make(comm)
            for _ in range(steps):
                solver.step()
            gathered = solver.gather_state()
            return gathered, solver.t, solver.nstep, solver.wall_time

        if tracer is not None:
            with use_tracer(tracer):
                results = cluster.run(program)
        else:
            results = cluster.run(program)
        state, t, nsteps, _ = results[0]
        return ParallelRunResult(
            state=state,
            per_rank_stats=[c.stats for c in cluster.comms],
            nsteps=nsteps,
            t=t,
            per_rank_wall=[r[3] for r in results],
            trace=tracer.trace if tracer is not None else None,
        )


def serial_reference(
    state: FlowState, config: SolverConfig, steps: int
) -> FlowState:
    """Serial run from a copy of ``state``, for equivalence checks.

    This is the low-level helper behind the serial route of
    :func:`repro.api.run` (which is the preferred entry point)."""
    from ..numerics.solver import CompressibleSolver

    solver = CompressibleSolver(
        FlowState(state.grid, state.q.copy(), config.gamma), config
    )
    for _ in range(steps):
        solver.step()
    return solver.state


def run_serial_reference(
    state: FlowState, config: SolverConfig, steps: int
) -> FlowState:
    """Deprecated alias of :func:`serial_reference`.

    .. deprecated:: 1.1
       Use ``repro.api.run(scenario, steps=...)`` (or
       :func:`serial_reference` for raw state/config inputs).
    """
    warnings.warn(
        "run_serial_reference is deprecated; use repro.api.run(scenario, "
        "steps=...) or repro.parallel.runner.serial_reference",
        DeprecationWarning,
        stacklevel=2,
    )
    return serial_reference(state, config, steps)
