"""Cross-check: the paper's Table-1 workload vs this package's measured one.

The figure reproductions feed the simulated machines the paper's own
application characteristics.  This bench re-runs the LACE scaling study
with the workload *measured from our instrumented distributed solver*
(more messages, more volume — see EXPERIMENTS.md) and shows that the
qualitative shapes survive: Ethernet still saturates near 8 processors and
the switched cluster keeps scaling.
"""

from repro.analysis.metrics import minimum_location
from repro.analysis.report import format_table
from repro.analysis.tables import measured_characteristics
from repro.machines.platforms import LACE_560, LACE_560_ETHERNET
from repro.simulate.machine import SimulatedMachine
from repro.simulate.workload import NAVIER_STOKES, Application, Workload

from conftest import run_and_print

PROCS = [1, 2, 4, 6, 8, 10, 12, 16]


def _measured_workload() -> Workload:
    m = measured_characteristics(viscous=True, nx=40, probe_steps=3)
    app = Application(
        name="Navier-Stokes",
        total_flops=m.total_flops,
        startups_per_proc=m.startups_per_proc,
        volume_bytes_per_proc=m.volume_bytes_per_proc,
    )
    return Workload.measured(
        app,
        sends_per_step=m.startups_per_proc / 2 / app.steps,
        bytes_per_step=m.volume_bytes_per_proc / app.steps,
    )


def _study() -> str:
    paper_w = Workload.paper(NAVIER_STOKES)
    meas_w = _measured_workload()
    rows = []
    mins = {}
    for label, w in [("paper workload", paper_w), ("measured workload", meas_w)]:
        eth = [
            SimulatedMachine(LACE_560_ETHERNET, p).run(w, steps_window=20).execution_time
            for p in PROCS
        ]
        sw = [
            SimulatedMachine(LACE_560, p).run(w, steps_window=20).execution_time
            for p in PROCS
        ]
        p_min, _ = minimum_location(PROCS, eth)
        mins[label] = p_min
        rows.append([label, "Ethernet"] + [f"{t:,.0f}" for t in eth])
        rows.append([label, "ALLNODE-S"] + [f"{t:,.0f}" for t in sw])
    table = format_table(
        ["workload", "network"] + [f"p={p}" for p in PROCS],
        rows,
        title="LACE scaling under both workload characterizations (NS):",
    )
    return table + (
        f"\nEthernet minimum: p={mins['paper workload']} (paper workload) vs "
        f"p={mins['measured workload']} (measured workload).  Both exhibit "
        "the saturation phenomenon while the switch keeps scaling; the "
        "heavier measured communication (lower FPs/Byte — see Table 1 in "
        "EXPERIMENTS.md) moves the minimum earlier, exactly as the paper's "
        "Section-7.1 bandwidth argument predicts."
    )


def test_workload_comparison(benchmark):
    run_and_print(
        benchmark, _study, "Cross-check: paper vs measured workload"
    )
