"""In-process mailboxes with tagged, source-matched delivery.

Each rank owns one :class:`Mailbox`.  Senders deposit ``(source, tag,
payload)`` envelopes (never blocking — PVM-style buffered semantics);
receivers block on the mailbox until an envelope matching their
``(source, tag)`` arrives.  Out-of-order arrivals are stashed so message
selectivity works exactly like PVM's ``pvm_recv(tid, tag)``.
"""

from __future__ import annotations

import queue
import threading
from collections import defaultdict, deque

import numpy as np


class DeadlockError(RuntimeError):
    """Raised when a receive waits longer than the cluster timeout."""


class Mailbox:
    """Tagged mailbox for one receiving rank."""

    def __init__(self, owner: int, timeout: float = 60.0) -> None:
        self.owner = owner
        self.timeout = timeout
        self._incoming: queue.Queue = queue.Queue()
        self._stash: dict[tuple[int, str], deque] = defaultdict(deque)
        self._lock = threading.Lock()

    def put(self, source: int, tag: str, payload: np.ndarray) -> None:
        """Deposit an envelope (called from the sender's thread)."""
        self._incoming.put((source, tag, payload))

    def try_get(self, source: int, tag: str):
        """Non-blocking probe: the matching payload, or ``None``.

        Drains any queued envelopes into the stash first, so a message
        that has already arrived is found regardless of arrival order.
        """
        key = (source, tag)
        with self._lock:
            while True:
                try:
                    src, t, payload = self._incoming.get_nowait()
                except queue.Empty:
                    break
                self._stash[(src, t)].append(payload)
            if self._stash[key]:
                return self._stash[key].popleft()
        return None

    def get(self, source: int, tag: str) -> np.ndarray:
        """Block until the envelope matching ``(source, tag)`` arrives."""
        key = (source, tag)
        with self._lock:
            if self._stash[key]:
                return self._stash[key].popleft()
        while True:
            try:
                src, t, payload = self._incoming.get(timeout=self.timeout)
            except queue.Empty:
                raise DeadlockError(
                    f"rank {self.owner}: no message from {source} tag {tag!r} "
                    f"within {self.timeout}s (likely deadlock or tag mismatch)"
                ) from None
            if (src, t) == key:
                return payload
            with self._lock:
                self._stash[(src, t)].append(payload)

    def pending(self) -> int:
        """Number of stashed (unconsumed) envelopes — should be 0 at exit."""
        with self._lock:
            return sum(len(d) for d in self._stash.values()) + self._incoming.qsize()
