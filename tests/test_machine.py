"""The simulated distributed machine: limits, scaling, contention."""

import pytest

from repro.machines.platforms import (
    CRAY_T3D,
    CRAY_YMP,
    IBM_SP,
    IBM_SP_PVME,
    LACE_560,
    LACE_560_ETHERNET,
)
from repro.msglib.libmodel import MPL, PVM
from repro.simulate.costmodel import CostModel
from repro.simulate.machine import SimulatedMachine
from repro.simulate.sharedmem import IO_TIME, SharedMemoryMachine
from repro.simulate.workload import EULER, NAVIER_STOKES, Workload


class TestSingleProcessor:
    def test_equals_pure_compute(self):
        """One processor: no communication, time = flops / sustained rate."""
        m = SimulatedMachine(LACE_560, 1)
        r = m.run(NAVIER_STOKES, steps_window=10)
        w = Workload.paper(NAVIER_STOKES)
        cost = CostModel.of(LACE_560.cpu, 5)
        expected = cost.compute_time(
            NAVIER_STOKES.total_flops, w.working_set_bytes(1)
        )
        assert r.execution_time == pytest.approx(expected, rel=1e-6)
        assert r.comm_time == pytest.approx(0.0, abs=1e-6)

    def test_paper_single_processor_time(self):
        """145 GFLOP at 16 MFLOPS ~ 9062 s (paper Figure 2's V5 level)."""
        r = SimulatedMachine(LACE_560, 1).run(NAVIER_STOKES, steps_window=5)
        assert r.execution_time == pytest.approx(9062.5, rel=0.01)


class TestWindowScaling:
    def test_window_invariance(self):
        """Scaled results are window-independent (the program is periodic)."""
        a = SimulatedMachine(LACE_560, 8).run(NAVIER_STOKES, steps_window=10)
        b = SimulatedMachine(LACE_560, 8).run(NAVIER_STOKES, steps_window=40)
        assert a.execution_time == pytest.approx(b.execution_time, rel=0.02)
        assert a.busy_time == pytest.approx(b.busy_time, rel=0.02)

    def test_scale_property(self):
        r = SimulatedMachine(LACE_560, 2).run(NAVIER_STOKES, steps_window=25)
        assert r.scale == pytest.approx(5000 / 25)
        assert r.execution_time == pytest.approx(r.makespan_window * r.scale)


class TestAccountingSplit:
    def test_busy_plus_comm_is_execution(self):
        r = SimulatedMachine(LACE_560, 8).run(NAVIER_STOKES, steps_window=20)
        assert r.busy_time + r.comm_time == pytest.approx(
            r.execution_time, rel=1e-9
        )

    def test_busy_contains_compute_and_library(self):
        r = SimulatedMachine(LACE_560, 8).run(NAVIER_STOKES, steps_window=20)
        assert r.busy_time == pytest.approx(
            r.compute_time + r.library_time, rel=1e-9
        )
        assert r.library_time > 0

    def test_per_rank_vectors(self):
        r = SimulatedMachine(LACE_560, 4).run(NAVIER_STOKES, steps_window=10)
        assert len(r.per_rank_busy) == 4
        assert len(r.per_rank_wait) == 4


class TestContention:
    def test_ethernet_saturates(self):
        """Execution time on the shared bus rises again at high p."""
        times = {
            p: SimulatedMachine(LACE_560_ETHERNET, p)
            .run(NAVIER_STOKES, steps_window=20)
            .execution_time
            for p in (2, 8, 16)
        }
        assert times[8] < times[2]
        assert times[16] > times[8]

    def test_switched_network_keeps_scaling(self):
        times = {
            p: SimulatedMachine(CRAY_T3D, p)
            .run(NAVIER_STOKES, steps_window=20)
            .execution_time
            for p in (2, 8, 16)
        }
        assert times[16] < times[8] < times[2]
        # Near-linear: 8 -> 16 gains at least 1.8x.
        assert times[8] / times[16] > 1.8

    def test_blocking_send_charges_wait(self):
        """MPL's blocking sends put wire time in comm, not nothing."""
        r = SimulatedMachine(IBM_SP, 8).run(NAVIER_STOKES, steps_window=20)
        assert sum(t.comm_wait for t in r.timelines) > 0


class TestLibraries:
    def test_pvme_slower_than_mpl(self):
        for app in (NAVIER_STOKES, EULER):
            mpl = SimulatedMachine(IBM_SP, 16).run(app, steps_window=20)
            pvme = SimulatedMachine(IBM_SP_PVME, 16).run(app, steps_window=20)
            assert pvme.execution_time > 1.2 * mpl.execution_time
            # The gap lives in busy time (paper Figures 11-12).
            assert pvme.busy_time > 1.2 * mpl.busy_time

    def test_library_override(self):
        base = SimulatedMachine(IBM_SP, 4)
        assert base.library.name == "MPL"
        over = SimulatedMachine(IBM_SP, 4, library=PVM)
        assert over.library.name == "PVM"

    def test_pvm_scaled_by_node_speed(self):
        """Faster nodes run the PVM software path proportionally faster."""
        from repro.machines.platforms import LACE_590

        slow = SimulatedMachine(LACE_560, 2).library
        fast = SimulatedMachine(LACE_590, 2).library
        assert fast.cpu_send_overhead < slow.cpu_send_overhead
        ratio = slow.cpu_send_overhead / fast.cpu_send_overhead
        assert ratio == pytest.approx(27.5 / 16.0, rel=1e-6)


class TestVersions:
    def test_v7_more_startup_cost_on_switch(self):
        v5 = SimulatedMachine(LACE_560, 8, version=5).run(
            NAVIER_STOKES, steps_window=20
        )
        v7 = SimulatedMachine(LACE_560, 8, version=7).run(
            NAVIER_STOKES, steps_window=20
        )
        assert v7.library_time > v5.library_time

    def test_v6_hides_some_wait_but_pays_busy(self):
        v5 = SimulatedMachine(LACE_560, 8, version=5).run(
            NAVIER_STOKES, steps_window=20
        )
        v6 = SimulatedMachine(LACE_560, 8, version=6).run(
            NAVIER_STOKES, steps_window=20
        )
        assert v6.compute_time > v5.compute_time  # loop/cache penalty
        # Overall within ~10% either way (the paper's 'minimal' effect).
        assert v6.execution_time == pytest.approx(
            v5.execution_time, rel=0.10
        )


class TestValidation:
    def test_rejects_vector_platform(self):
        with pytest.raises(ValueError, match="no scalar CPU"):
            SimulatedMachine(CRAY_YMP, 4)

    def test_rejects_bad_proc_count(self):
        with pytest.raises(ValueError):
            SimulatedMachine(LACE_560, 0)


class TestSharedMemoryYMP:
    def test_scaling_to_eight(self):
        times = [
            SharedMemoryMachine(CRAY_YMP, p).run(NAVIER_STOKES).execution_time
            for p in (1, 2, 4, 8)
        ]
        assert times[0] > times[1] > times[2] > times[3]
        # Good but sub-ideal scaling (I/O constant): 1->8 gains 5-8x.
        assert 5.0 < times[0] / times[3] < 8.0

    def test_io_floor(self):
        r = SharedMemoryMachine(CRAY_YMP, 8).run(EULER)
        assert r.execution_time > IO_TIME

    def test_vastly_faster_than_workstations(self):
        """The paper: 'A traditional vector multiprocessor still
        outperforms multiprocessors of modest to medium size.'"""
        ymp1 = SharedMemoryMachine(CRAY_YMP, 1).run(NAVIER_STOKES)
        lace16 = SimulatedMachine(LACE_560, 16).run(
            NAVIER_STOKES, steps_window=20
        )
        assert ymp1.execution_time < lace16.execution_time

    def test_rejects_too_many_procs(self):
        with pytest.raises(ValueError):
            SharedMemoryMachine(CRAY_YMP, 9)


class TestHeterogeneousNodes:
    def test_mixed_cluster_runs_at_slow_node_speed(self):
        """Balanced decomposition + unequal nodes: every step waits for
        the slow half, so mixed ~= all-slow (the LACE ablation)."""
        from repro.machines.platforms import LACE_560 as plat

        uniform = SimulatedMachine(plat, 8).run(NAVIER_STOKES, steps_window=15)
        mixed = SimulatedMachine(
            plat, 8, node_speed_factors=[1.0] * 4 + [1.7] * 4
        ).run(NAVIER_STOKES, steps_window=15)
        assert mixed.execution_time == pytest.approx(
            uniform.execution_time, rel=0.05
        )

    def test_uniformly_faster_nodes_speed_up(self):
        from repro.machines.platforms import LACE_560 as plat

        base = SimulatedMachine(plat, 4).run(NAVIER_STOKES, steps_window=15)
        fast = SimulatedMachine(
            plat, 4, node_speed_factors=[2.0] * 4
        ).run(NAVIER_STOKES, steps_window=15)
        assert fast.execution_time < 0.6 * base.execution_time

    def test_factor_count_validated(self):
        from repro.machines.platforms import LACE_560 as plat

        with pytest.raises(ValueError, match="one speed factor per rank"):
            SimulatedMachine(plat, 4, node_speed_factors=[1.0, 1.0])

    def test_fast_nodes_idle_in_wait(self):
        from repro.machines.platforms import LACE_560 as plat

        r = SimulatedMachine(
            plat, 8, node_speed_factors=[1.0] * 4 + [2.0] * 4
        ).run(NAVIER_STOKES, steps_window=15)
        slow_wait = sum(t.comm_wait for t in r.timelines[:4])
        fast_wait = sum(t.comm_wait for t in r.timelines[4:])
        assert fast_wait > 2 * slow_wait
