"""PerfReport derivation, the run ledger, and the regression gate.

The acceptance bar from the issue: ``run(..., metrics=True)`` yields
per-stage MFLOPS and a computation:communication ratio on *both*
execution substrates (virtual cluster and DES), the ledger round-trips,
and the gate fails on an injected 2x slowdown but passes the baseline.
"""

import copy
import importlib.util
import json
import os

import pytest

from repro.api import run
from repro.obs import (
    PerfReport,
    append_ledger,
    read_ledger,
    render_ledger,
    render_report,
)
from repro.obs.report import LEDGER_SCHEMA, config_fingerprint


# ---------------------------------------------------------------------------
# run(..., metrics=True) across substrates
# ---------------------------------------------------------------------------


def _stage_names(perf):
    return [s["name"] for s in perf.stages]


def test_serial_run_yields_stage_mflops():
    res = run("jet", steps=3, nx=32, nr=16, metrics=True)
    p = res.perf
    assert isinstance(p, PerfReport)
    assert p.mode == "serial" and p.nprocs == 1 and p.steps == 3
    assert p.grid == (32, 16) and p.viscous is True
    assert {"sweep_x", "sweep_r", "filter"} <= set(_stage_names(p))
    assert p.mflops_total and p.mflops_total > 0
    for s in p.stages:
        assert s["seconds"] >= 0 and 0 <= s["share"] <= 1
    assert abs(sum(s["share"] for s in p.stages) - 1.0) < 1e-9
    # serial runs communicate nothing: no ratio, but a metrics snapshot
    assert p.comp_comm_ratio is None
    assert p.metrics["counters"]["solver.steps"]["0"]["value"] == 3.0
    # metrics=True alone must not touch any ledger
    assert res.metrics is not None


def test_parallel_run_yields_comp_comm_ratio():
    res = run("jet", steps=4, nx=48, nr=24, nprocs=2, metrics=True)
    p = res.perf
    assert p.mode == "parallel" and p.nprocs == 2
    assert p.comp_comm_ratio is not None and p.comp_comm_ratio > 0
    assert len(p.per_rank) == 2
    for row in p.per_rank:
        assert row["comm_seconds"] > 0
        assert row["bytes_sent"] > 0
    assert p.mflops_total and p.mflops_total > 0


def test_simulated_run_yields_perf_report():
    res = run(
        "jet", platform="Cray T3D", nprocs=4, version=5,
        steps_window=4, metrics=True,
    )
    p = res.perf
    assert p.mode == "simulated" and p.platform == "Cray T3D"
    assert p.comp_comm_ratio is not None and p.comp_comm_ratio > 1
    assert p.mflops_total and p.mflops_total > 0
    names = _stage_names(p)
    assert "compute" in names
    assert len(p.per_rank) == 4


def test_metrics_off_run_has_no_perf_report():
    res = run("jet", steps=2, nx=32, nr=16)
    assert res.perf is None and res.metrics is None


def test_faulted_run_counts_recoveries_in_report():
    res = run(
        "jet", steps=6, nx=32, nr=16, nprocs=2,
        faults="lossy-ethernet", fault_seed=11, metrics=True,
    )
    faults = res.perf.faults
    assert faults, "faulted run produced an empty fault summary"
    assert all(v > 0 for v in faults.values())


# ---------------------------------------------------------------------------
# Ledger round-trip
# ---------------------------------------------------------------------------


def test_ledger_roundtrip(tmp_path):
    res = run("jet", steps=2, nx=32, nr=16, metrics=True)
    path = tmp_path / "runs.jsonl"
    append_ledger(res.perf, path)
    append_ledger(res.perf, path)
    back = read_ledger(path)
    assert len(back) == 2
    assert back[0].to_dict() == res.perf.to_dict()
    text = render_ledger(back)
    assert "jet-ns" in text and "ms/step" in text
    full = render_report(back[0])
    assert "sweep_x" in full and "MFLOPS" in full


def test_run_ledger_kwarg_appends(tmp_path):
    path = tmp_path / "led.jsonl"
    run("jet", steps=2, nx=32, nr=16, metrics=True, ledger=path)
    run("jet", steps=2, nx=32, nr=16, ledger=path)  # ledger implies metrics
    assert len(read_ledger(path)) == 2


def test_ledger_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"schema": "repro.perf/999"}) + "\n")
    with pytest.raises(ValueError, match="repro.perf/999"):
        read_ledger(path)


def test_config_fingerprint_is_stable_and_order_free():
    a = config_fingerprint(nx=64, nr=32, steps=20)
    b = config_fingerprint(steps=20, nr=32, nx=64)
    assert a == b and len(a) == 12
    assert config_fingerprint(nx=65, nr=32, steps=20) != a


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------


def _load_perf_gate():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = importlib.util.spec_from_file_location(
        "perf_gate", os.path.join(root, "scripts", "perf_gate.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _bench_doc():
    return {
        "schema": "repro.bench-core/1",
        "calibration_ms": 20.0,
        "repeats": 3,
        "cases": {
            "ns-serial-fused": {
                "ms_per_step": 2.0,
                "mflops": 500.0,
                "comp_comm_ratio": None,
                "fingerprint": "abc123def456",
                "tolerance": 0.15,
                "config": {"scenario": "jet", "nprocs": 1},
            },
        },
    }


def test_perf_gate_passes_identical_results():
    gate = _load_perf_gate()
    doc = _bench_doc()
    rows, failures = gate.compare(doc, copy.deepcopy(doc))
    assert failures == []
    assert all(r["ok"] for r in rows)


def test_perf_gate_fails_on_2x_slowdown():
    gate = _load_perf_gate()
    base = _bench_doc()
    cur = copy.deepcopy(base)
    cur["cases"]["ns-serial-fused"]["ms_per_step"] *= 2.0
    rows, failures = gate.compare(cur, base)
    assert failures
    assert any("x2.00" in f for f in failures)


def test_perf_gate_normalizes_by_calibration():
    """A uniformly 2x-slower machine (calibration and case both doubled)
    is not a regression."""
    gate = _load_perf_gate()
    base = _bench_doc()
    cur = copy.deepcopy(base)
    cur["calibration_ms"] *= 2.0
    cur["cases"]["ns-serial-fused"]["ms_per_step"] *= 2.0
    rows, failures = gate.compare(cur, base)
    assert failures == []


def test_perf_gate_fails_on_fingerprint_change():
    gate = _load_perf_gate()
    base = _bench_doc()
    cur = copy.deepcopy(base)
    cur["cases"]["ns-serial-fused"]["fingerprint"] = "fff000fff000"
    rows, failures = gate.compare(cur, base)
    assert failures and any("fingerprint" in f for f in failures)


def test_perf_gate_fails_on_missing_case():
    gate = _load_perf_gate()
    base = _bench_doc()
    cur = copy.deepcopy(base)
    cur["cases"] = {}
    rows, failures = gate.compare(cur, base)
    assert failures and any("missing" in f.lower() for f in failures)


def test_committed_baseline_matches_schema():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "benchmarks", "baseline", "BENCH_core.json")
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "repro.bench-core/1"
    assert doc["calibration_ms"] > 0
    assert len(doc["cases"]) == 10
    # Every decomposition is benchmarked on the process substrate, the
    # compiled ("V6") rung is pinned alongside baseline/fused, and the
    # overlapped exchange has its blocking twin to compare against.
    assert {"ns-p2-process-fused", "ns-p2-radial-fused",
            "ns-p4-2d-fused", "ns-serial-compiled",
            "ns-p2-overlap-fused"} <= set(doc["cases"])
    for case in doc["cases"].values():
        assert case["ms_per_step"] > 0
        assert len(case["fingerprint"]) == 12
        assert 0 < case["tolerance"] < 1
    sp = doc["speedup"]
    assert sp["grid"] == [250, 100]
    assert sp["cpu_count"] >= 1
    assert [r["nprocs"] for r in sp["rows"]] == [1, 2, 4]
    assert sp["rows"][0]["speedup"] == 1.0
    assert all(r["ms_per_step"] > 0 for r in sp["rows"])
