"""Two-dimensional (axial x radial) block decomposition — beyond the paper.

The paper's Section 8 proposes exploring "other problem decompositions";
this module implements the general case: a Cartesian grid of ranks, each
owning an axial-radial block.  Both sweeps now exchange halos — columns
with the axial neighbours, rows with the radial ones.  Because every
stencil in the solver is dimension-split (the one-sided flux differences,
the viscous gradients via separate extended passes, and the
fourth-difference filter), **no corner ghosts are needed**, and the result
remains bitwise-identical to the serial solver.

Boundary ownership: inflow = first axial column of ranks; characteristic
outflow = last axial column (a collective among that column's radial
neighbours); axis = bottom radial row; far field/sponge = top radial row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid import Grid
from ..msglib.api import Communicator
from ..numerics.boundary import (
    AXIS_STATE_SIGNS,
    apply_axis_ghosts,
    characteristic_outflow_rates,
)
from ..numerics.maccormack import PREDICTOR, SplitOperator, SweepWorkspace
from ..numerics.solver import CompressibleSolver, SolverConfig
from ..numerics.timestep import stable_dt
from ..physics.state import FlowState
from .decomposition import AxialDecomposition, RadialDecomposition
from .halo import (
    ExchangePolicy,
    exchange_flux_high,
    exchange_flux_low,
    exchange_state_halo_high,
    exchange_state_halo_low,
    exchange_uvT,
)
from .versions import Version, version_by_number


@dataclass(frozen=True)
class CartesianDecomposition:
    """A ``px x pr`` grid of blocks; ``rank = ix * pr + jr``."""

    nx: int
    nr: int
    px: int
    pr: int

    def __post_init__(self) -> None:
        # Constructing the 1-D decompositions validates the block sizes.
        self.axial  # noqa: B018
        self.radial  # noqa: B018

    @property
    def nparts(self) -> int:
        return self.px * self.pr

    @property
    def axial(self) -> AxialDecomposition:
        return AxialDecomposition(self.nx, self.px)

    @property
    def radial(self) -> RadialDecomposition:
        return RadialDecomposition(self.nr, self.pr)

    def coords(self, rank: int) -> tuple[int, int]:
        """``(ix, jr)`` block coordinates of a rank."""
        if not (0 <= rank < self.nparts):
            raise IndexError(rank)
        return rank // self.pr, rank % self.pr

    def rank_of(self, ix: int, jr: int) -> int:
        return ix * self.pr + jr

    def block(self, rank: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """``((i_lo, i_hi), (j_lo, j_hi))`` global extents of a rank."""
        ix, jr = self.coords(rank)
        return self.axial.bounds(ix), self.radial.bounds(jr)

    def neighbors(self, rank: int):
        """``(left, right, lower, upper)`` neighbouring ranks or ``None``."""
        ix, jr = self.coords(rank)
        left = self.rank_of(ix - 1, jr) if ix > 0 else None
        right = self.rank_of(ix + 1, jr) if ix < self.px - 1 else None
        lower = self.rank_of(ix, jr - 1) if jr > 0 else None
        upper = self.rank_of(ix, jr + 1) if jr < self.pr - 1 else None
        return left, right, lower, upper


class Distributed2DSolver(CompressibleSolver):
    """Per-rank solver over a 2-D Cartesian block decomposition."""

    #: The fused kernel workspace is not wired through the 2-D halo
    #: plumbing yet; the fused backend degrades to the allocating path here.
    _supports_fused_kernels = False

    def __init__(
        self,
        comm: Communicator,
        global_grid: Grid,
        q_global: np.ndarray,
        config: SolverConfig,
        px: int,
        pr: int,
        version: int | Version = 5,
    ) -> None:
        if px * pr != comm.size:
            raise ValueError(
                f"px * pr = {px * pr} does not match {comm.size} ranks"
            )
        self.comm = comm
        self.decomp = CartesianDecomposition(
            global_grid.nx, global_grid.nr, px, pr
        )
        (self.ilo, self.ihi), (self.jlo, self.jhi) = self.decomp.block(comm.rank)
        self.left, self.right, self.lower, self.upper = self.decomp.neighbors(
            comm.rank
        )
        if isinstance(version, int):
            version = version_by_number(version)
        self.version = version
        self.policy = ExchangePolicy.from_version(version)
        self.global_grid = global_grid
        local_grid = global_grid.subgrid(self.ilo, self.ihi).radial_subgrid(
            self.jlo, self.jhi
        )
        local_state = FlowState(
            local_grid,
            q_global[:, self.ilo : self.ihi, self.jlo : self.jhi].copy(),
            config.gamma,
        )
        bc = config.boundary
        if bc is not None and bc.sponge is not None:
            if bc.sponge.width > self.decomp.radial.size(pr - 1):
                raise ValueError(
                    "sponge width exceeds the top radial blocks"
                )
        super().__init__(local_state, config)
        self._trace_rank = comm.rank
        from ..obs import get_tracer

        get_tracer().bind_rank(comm.rank)
        self.fm.halo_axis = 2  # uvT halos along both axes

    # -- tags --------------------------------------------------------------------
    def _tag(self, op: str, phase: str = "") -> str:
        return f"{self.nstep}:{op}:{phase}"

    def _active_high(self, variant: int, phase: str) -> bool:
        return (variant == 1) == (phase == PREDICTOR)

    # -- halo plumbing ------------------------------------------------------------
    def _uvT_halo(self, q: np.ndarray, tag: str, include_x: bool = True):
        """Both-axis velocity/temperature ghosts as the 2-D halo dict."""
        if not self.fm.mu:
            return None
        u, v, T = self.fm.primitives(q)
        halo_x = None
        if include_x and (self.left is not None or self.right is not None):
            halo_x = exchange_uvT(
                self.comm, f"{tag}:hx", u, v, T, self.left, self.right, axis=0
            )
        halo_r = None
        if self.lower is not None or self.upper is not None:
            halo_r = exchange_uvT(
                self.comm, f"{tag}:hr", u, v, T, self.lower, self.upper, axis=1
            )
        if halo_x is None and halo_r is None:
            return None
        return {"x": halo_x, "r": halo_r}

    def _x_workspace(self, variant: int) -> SweepWorkspace:  # type: ignore[override]
        solver = self

        def flux(q, phase):
            halo = solver._uvT_halo(q, solver._tag("x", phase))
            return solver.fm.axial_flux(q, uvT_halo=halo), None

        def high_ghosts(F, phase):
            if solver._active_high(variant, phase):
                return exchange_flux_high(
                    solver.comm,
                    solver._tag("x", phase),
                    F,
                    solver.left,
                    solver.right,
                    solver.policy,
                    axis=1,
                )
            return None

        def low_ghosts(F, phase):
            if not solver._active_high(variant, phase):
                return exchange_flux_low(
                    solver.comm,
                    solver._tag("x", phase),
                    F,
                    solver.left,
                    solver.right,
                    solver.policy,
                    axis=1,
                )
            return None

        return SweepWorkspace(
            flux=flux, low_ghosts=low_ghosts, high_ghosts=high_ghosts
        )

    def _radial_ghost_callbacks(self, variant: int, tag_op: str):
        solver = self

        def low_ghosts(rG, phase):
            if not solver._active_high(variant, phase):
                ghosts = exchange_flux_low(
                    solver.comm,
                    solver._tag(tag_op, phase),
                    rG,
                    solver.lower,
                    solver.upper,
                    solver.policy,
                    axis=2,
                )
                if ghosts is None:
                    return apply_axis_ghosts(rG)
                return ghosts
            if solver.lower is None:
                return apply_axis_ghosts(rG)
            return None

        def high_ghosts(rG, phase):
            if solver._active_high(variant, phase):
                return exchange_flux_high(
                    solver.comm,
                    solver._tag(tag_op, phase),
                    rG,
                    solver.lower,
                    solver.upper,
                    solver.policy,
                    axis=2,
                )
            return None

        return low_ghosts, high_ghosts

    def _r_workspace(self, variant: int | None = None) -> SweepWorkspace:  # type: ignore[override]
        if variant is None:
            return super()._r_workspace_serial()
        solver = self

        def flux(q, phase):
            halo = solver._uvT_halo(q, solver._tag("r", phase))
            return solver.fm.radial_flux(q, uvT_halo=halo)

        low, high = self._radial_ghost_callbacks(variant, "r")
        return SweepWorkspace(
            flux=flux,
            low_ghosts=low,
            high_ghosts=high,
            inv_weight=self._inv_weight,
        )

    def _operators(self, variant: int):  # type: ignore[override]
        Lx = SplitOperator(
            axis=1,
            h=self.grid.dx,
            variant=variant,
            workspace=self._x_workspace(variant),
        )
        Lr = SplitOperator(
            axis=2,
            h=self.grid.dr,
            variant=variant,
            workspace=self._r_workspace(variant),
        )
        return Lx, Lr

    # -- time step --------------------------------------------------------------
    def current_dt(self) -> float:  # type: ignore[override]
        cfg = self.config
        if cfg.dt is not None:
            return cfg.dt
        if (
            self._dt_cached is None
            or self.nstep % max(cfg.dt_recompute_every, 1) == 0
        ):
            local = stable_dt(
                self.state.q,
                self.grid.dx,
                self.grid.dr,
                cfl=cfg.cfl,
                mu=self.fm.mu,
                gamma=cfg.gamma,
            )
            self._dt_cached = self.comm.allreduce_min(local, tag=self._tag("dt"))
        return self._dt_cached

    # -- filter halos -------------------------------------------------------------
    def _state_ghosts(self, q: np.ndarray, axis: int, side: str):  # type: ignore[override]
        tag = self._tag("filter")
        if axis == 1:
            if side == "low":
                return exchange_state_halo_low(
                    self.comm, f"{tag}:x", q, self.left, self.right, axis=1
                )
            return exchange_state_halo_high(
                self.comm, f"{tag}:x", q, self.left, self.right, axis=1
            )
        if side == "low":
            ghosts = exchange_state_halo_low(
                self.comm, f"{tag}:r", q, self.lower, self.upper, axis=2
            )
            if ghosts is None and self.config.axisymmetric:
                signs = AXIS_STATE_SIGNS[:, None]
                return np.stack([signs * q[:, :, 0], signs * q[:, :, 1]])
            return ghosts
        return exchange_state_halo_high(
            self.comm, f"{tag}:r", q, self.lower, self.upper, axis=2
        )

    # -- characteristic outflow (collective over the last axial column) ------------
    def _outflow_rates(self, q: np.ndarray, variant: int) -> np.ndarray:  # type: ignore[override]
        window = np.ascontiguousarray(q[:, -5:, :])
        tag = self._tag("ofw")
        # The serial helper uses one-sided x-gradients on the window (no
        # x-halo); only the radial ghosts are real neighbour data.
        halo = self._uvT_halo(window, f"{tag}:uvx", include_x=False)
        F = self.fm.axial_flux(window, uvT_halo=halo)
        h = self.grid.dx
        dF = (7.0 * (F[:, -1] - F[:, -2]) - (F[:, -2] - F[:, -3])) / (6.0 * h)

        solver = self

        def wflux(qw, phase):
            whalo = solver._uvT_halo(
                qw, f"{tag}:uvr:{phase}", include_x=False
            )
            return solver.fm.radial_flux(qw, uvT_halo=whalo)

        low, high = self._radial_ghost_callbacks(variant, "ofwr")
        ws = SweepWorkspace(
            flux=wflux,
            low_ghosts=low,
            high_ghosts=high,
            inv_weight=self._inv_weight,
        )
        Lr = SplitOperator(axis=2, h=self.grid.dr, variant=variant, workspace=ws)
        radial_rate = Lr._rate(window, PREDICTOR)[:, -1, :]
        return -dF + radial_rate

    # -- boundaries ------------------------------------------------------------------
    def _apply_boundaries(self, q_before: np.ndarray, dt: float, variant: int):  # type: ignore[override]
        bc = self.config.boundary
        if bc is None:
            return
        q = self.state.q
        if bc.characteristic_outflow and self.right is None:
            q_t = self._outflow_rates(q_before, variant)
            rates = characteristic_outflow_rates(
                q_before[:, -1, :], q_t, self.config.gamma
            )
            q[:, -1, :] = q_before[:, -1, :] + dt * rates
        if bc.inflow is not None and self.left is None:
            q[:, 0, :] = bc.inflow_column(self.grid.r, self.t, self.config.gamma)
        if (
            bc.sponge is not None
            and self._sponge_col is not None
            and self.upper is None
        ):
            bc.sponge.apply(q, self._sponge_col)

    # -- gathering -------------------------------------------------------------------
    def gather_state(self) -> FlowState | None:
        """Assemble the global state on rank 0 (``None`` elsewhere)."""
        parts = self.comm.gather_arrays(self.state.q, tag=f"{self.nstep}:gather")
        if parts is None:
            return None
        columns = []
        for ix in range(self.decomp.px):
            blocks = [
                parts[self.decomp.rank_of(ix, jr)]
                for jr in range(self.decomp.pr)
            ]
            columns.append(np.concatenate(blocks, axis=2))
        q_full = np.concatenate(columns, axis=1)
        return FlowState(self.global_grid, q_full, self.config.gamma)
