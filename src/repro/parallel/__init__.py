"""The paper's core contribution: parallelization of the jet solver.

* :mod:`repro.parallel.decomposition` — block domain decompositions.  The
  paper decomposes "by blocks along the axial direction only" (Section 5);
  the radial variant it defers to future work (Section 8) is also provided.
* :mod:`repro.parallel.versions` — the optimization-version registry
  (V1..V5 single-processor optimizations, V6 overlapped communication,
  V7 de-burstified communication).
* :mod:`repro.parallel.halo` — grouped halo-exchange plans implementing the
  paper's communication structure: velocity/temperature columns for the
  viscous stresses, predictor/corrector flux columns for the one-sided
  stencils, plus the filter's state halo.
* :mod:`repro.parallel.spmd` — the per-rank distributed solver (bitwise
  identical to the serial solver for every processor count and version).
* :mod:`repro.parallel.runner` — high-level facade over the virtual cluster.
"""

from .decomposition import AxialDecomposition, RadialDecomposition
from .versions import VERSIONS, Version, version_by_number
from .halo import ExchangePolicy
from .runner import ParallelJetSolver, ParallelRunResult

__all__ = [
    "AxialDecomposition",
    "RadialDecomposition",
    "Version",
    "VERSIONS",
    "version_by_number",
    "ExchangePolicy",
    "ParallelJetSolver",
    "ParallelRunResult",
]
