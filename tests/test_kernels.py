"""The kernel-backend registry and the fused/baseline bitwise contract.

The fused backend re-runs the paper's single-processor optimisation ladder
(Versions 2-4) on the numpy hot path; like the paper's, it must change
performance only, never results.  Bitwise equality — not tolerance — is the
acceptance bar, serial and distributed.
"""

import numpy as np
import pytest

from repro import jet_scenario
from repro.api import run
from repro.numerics.kernels import (
    BACKEND_ENV_VAR,
    BaselineBackend,
    FusedBackend,
    KernelBackend,
    StepWorkspace,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.numerics.stencils import (
    backward_difference,
    extend_axis,
    forward_difference,
)
from repro.physics.viscous import gradient_axis


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "baseline" in available_backends()
        assert "fused" in available_backends()

    def test_get_backend(self):
        assert isinstance(get_backend("baseline"), BaselineBackend)
        assert isinstance(get_backend("fused"), FusedBackend)

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="baseline"):
            get_backend("vectorized-fortran")

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend("bogus", object())

    def test_register_custom_backend(self):
        class Custom(KernelBackend):
            name = "custom-test"

            def step_workspace(self, solver):
                return None

        register_backend("custom-test", Custom())
        try:
            assert get_backend("custom-test").name == "custom-test"
        finally:
            import repro.numerics.kernels as K

            del K._REGISTRY["custom-test"]

    def test_resolve_default_is_baseline(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "baseline"

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fused")
        assert resolve_backend(None).name == "fused"

    def test_explicit_name_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fused")
        assert resolve_backend("baseline").name == "baseline"

    def test_config_selects_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        sc = jet_scenario(nx=16, nr=12)
        sc.solver.config.backend = "fused"
        solver = type(sc.solver)(sc.state, sc.solver.config)
        assert solver.backend.name == "fused"
        assert isinstance(solver._ws, StepWorkspace)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fused")
        sc = jet_scenario(nx=16, nr=12)
        solver = type(sc.solver)(sc.state, sc.solver.config)
        assert solver.backend.name == "fused"


class TestKernelPrimitives:
    """The in-place kernels must be bitwise equal to the allocating forms."""

    def test_gradient_axis_matches_numpy(self):
        rng = np.random.default_rng(7)
        f = rng.standard_normal((17, 11))
        for axis, h in ((0, 0.037), (1, 1.4)):
            ref = np.gradient(f, h, axis=axis, edge_order=2)
            out = np.empty_like(f)
            got = gradient_axis(f, h, axis, out=out)
            assert got is out
            assert np.array_equal(got, ref)

    def test_gradient_axis_matches_two_axis_call(self):
        """Per-axis gradients equal the corresponding outputs of the
        two-spacing call used by ``field_gradients``."""
        rng = np.random.default_rng(11)
        f = rng.standard_normal((9, 13))
        gx_ref, gr_ref = np.gradient(f, 0.25, 0.5, edge_order=2)
        assert np.array_equal(gradient_axis(f, 0.25, 0), gx_ref)
        assert np.array_equal(gradient_axis(f, 0.5, 1), gr_ref)

    def test_gradient_axis_needs_three_points(self):
        with pytest.raises(ValueError):
            gradient_axis(np.zeros((2, 4)), 1.0, 0, out=np.zeros((2, 4)))

    def test_one_sided_differences_out_matches_allocating(self):
        rng = np.random.default_rng(3)
        F = rng.standard_normal((4, 12, 8))
        for axis in (1, 2):
            ext = extend_axis(F, axis)
            out = np.empty_like(F)
            tmp = np.empty_like(F)
            for diff in (forward_difference, backward_difference):
                ref = diff(ext, axis, 0.1)
                got = diff(ext, axis, 0.1, out=out, tmp=tmp)
                assert got is out
                assert np.array_equal(got, ref)

    def test_extend_axis_out_matches_allocating(self):
        rng = np.random.default_rng(5)
        F = rng.standard_normal((4, 10, 6))
        ref = extend_axis(F, 1)
        out = np.empty((4, 14, 6))
        got = extend_axis(F, 1, out=out)
        assert got is out
        assert np.array_equal(got, ref)

    def test_extend_axis_out_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            extend_axis(np.zeros((4, 10, 6)), 1, out=np.zeros((4, 10, 6)))


@pytest.mark.parametrize("viscous", [True, False], ids=["navier-stokes", "euler"])
class TestBitwiseEquivalence:
    """The tentpole contract: fused == baseline, bit for bit."""

    def test_serial(self, viscous):
        name = "jet" if viscous else "jet-euler"
        base = run(name, steps=10, nx=48, nr=24, backend="baseline")
        fused = run(name, steps=10, nx=48, nr=24, backend="fused")
        assert np.array_equal(fused.state.q, base.state.q)

    def test_nprocs4(self, viscous):
        name = "jet" if viscous else "jet-euler"
        base = run(name, steps=8, nx=48, nr=24, backend="baseline")
        fused = run(name, steps=8, nprocs=4, nx=48, nr=24, backend="fused")
        assert np.array_equal(fused.state.q, base.state.q)

    @pytest.mark.parametrize(
        "decomp,kw",
        [
            ("axial", dict(nprocs=2)),
            ("radial", dict(nprocs=2)),
            ("2d", dict(nprocs=4, px=2, pr=2)),
        ],
        ids=["axial", "radial", "2d"],
    )
    def test_every_decomposition(self, viscous, decomp, kw):
        """The unified exchange core gives every decomposition the fused
        workspace; each must match the allocating baseline bit for bit."""
        name = "jet" if viscous else "jet-euler"
        base = run(
            name, steps=6, nx=48, nr=24,
            backend="baseline", decomposition=decomp, **kw,
        )
        fused = run(
            name, steps=6, nx=48, nr=24,
            backend="fused", decomposition=decomp, **kw,
        )
        assert np.array_equal(fused.state.q, base.state.q)


class TestWorkspaceMechanics:
    def test_state_ping_pong(self):
        """After the first step the state lives in a workspace buffer and
        alternates between the two — no per-step state allocation."""
        sc = jet_scenario(nx=32, nr=16, viscous=False)
        sc.solver.config.backend = "fused"
        solver = type(sc.solver)(sc.state, sc.solver.config)
        ws = solver._ws
        solver.step()
        # Steady state: sweeps land in state_b with state_a the
        # intermediate; the caller's initial array is never written.
        assert solver.state.q is ws.state_b
        for _ in range(3):
            solver.step()
            assert solver.state.q is ws.state_b

    def test_operators_constructed_once(self):
        sc = jet_scenario(nx=32, nr=16, viscous=False)
        solver = type(sc.solver)(sc.state, sc.solver.config)
        solver.run(4)
        l1 = solver._ops_cache[1]
        l2 = solver._ops_cache[2]
        solver.run(4)
        assert solver._ops_cache[1] is l1
        assert solver._ops_cache[2] is l2

    def test_filter_indices_cached(self):
        sc = jet_scenario(nx=32, nr=16, viscous=False)
        solver = type(sc.solver)(sc.state, sc.solver.config)
        solver.step()
        ix = {ax: solver._filter_ix[ax] for ax in (1, 2)}
        solver.step()
        assert solver._filter_ix[1] is ix[1]
        assert solver._filter_ix[2] is ix[2]

    def test_fused_workspace_on_every_decomposition(self):
        """Every decomposition gets a real fused workspace — no silent
        degradation to the allocating path (the pre-unification radial
        and 2-D solvers dropped ``_ws`` to ``None``)."""
        from repro.msglib.virtual import VirtualCluster
        from repro.parallel.spmd import DistributedSolver
        from repro.parallel.spmd2d import Distributed2DSolver
        from repro.parallel.spmd_radial import RadialDistributedSolver

        sc = jet_scenario(nx=36, nr=24)
        config = sc.solver.config
        config.backend = "fused"
        grid, q = sc.state.grid, sc.state.q

        def has_workspace(make, nranks):
            cluster = VirtualCluster(nranks, timeout=60)
            return cluster.run(
                lambda comm: isinstance(make(comm)._ws, StepWorkspace)
            )

        assert all(
            has_workspace(lambda c: DistributedSolver(c, grid, q, config), 2)
        )
        assert all(
            has_workspace(
                lambda c: RadialDistributedSolver(c, grid, q, config), 2
            )
        )
        assert all(
            has_workspace(
                lambda c: Distributed2DSolver(c, grid, q, config, px=2, pr=2),
                4,
            )
        )
