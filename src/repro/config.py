"""Filesystem anchoring for run artifacts: one data directory per install.

Historically ``repro.api.DEFAULT_LEDGER`` was the *relative* path
``benchmarks/output/BENCH_runs.jsonl``: every process appended to a ledger
under its own current working directory, so service workers, CLI runs from
other directories, and the benchmark harness each grew private, diverging
ledgers.  This module gives every artifact writer one anchored root:

* ``REPRO_DATA_DIR`` (environment) wins when set — point the service, the
  CLI and the batch driver at any shared location;
* otherwise the repository's ``benchmarks/output/`` directory, found by
  walking up from this file to the checkout root (``pyproject.toml``) —
  the in-tree layout every script and CI job already uses;
* otherwise (installed package, no env var) ``benchmarks/output`` under
  the current working directory — the historical behaviour, now only the
  last resort.

Resolution happens at *call* time, never import time, so tests and tools
can redirect everything with ``monkeypatch.setenv("REPRO_DATA_DIR", ...)``.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "DATA_DIR_ENV",
    "data_dir",
    "default_ledger_path",
    "default_service_dir",
    "repo_root",
]

#: Environment variable overriding the artifact root.
DATA_DIR_ENV = "REPRO_DATA_DIR"

#: Files marking the checkout root when walking up from the package.
_ROOT_MARKERS = ("pyproject.toml", ".git")


def repo_root() -> Path | None:
    """The source checkout containing this package, or ``None``.

    Walks up from the installed package directory looking for a marker
    file; an installed wheel under ``site-packages`` finds none.
    """
    here = Path(__file__).resolve()
    for parent in here.parents:
        if any((parent / marker).exists() for marker in _ROOT_MARKERS):
            return parent
    return None


def data_dir() -> Path:
    """The anchored artifact root (not created until something writes)."""
    env = os.environ.get(DATA_DIR_ENV)
    if env:
        return Path(env)
    root = repo_root()
    if root is not None:
        return root / "benchmarks" / "output"
    return Path.cwd() / "benchmarks" / "output"


def default_ledger_path() -> Path:
    """Where ``run(..., ledger=True)`` appends PerfReport JSON lines."""
    return data_dir() / "BENCH_runs.jsonl"


def default_service_dir() -> Path:
    """The run service's result store + control socket directory."""
    return data_dir() / "service"
