#!/usr/bin/env python3
"""Run the distributed jet solver for real and verify it against serial.

Demonstrates the paper's parallelization (Section 5): axial block
decomposition with grouped halo messages, executed over the in-process
virtual cluster with real message passing — both runs going through the
``repro.api.run`` facade.  Verifies that the distributed result is
*bitwise identical* to the serial solver, then reports the measured
per-processor communication characteristics — the package's "measured
Table 1".

Usage::

    python examples/parallel_solver.py [--nranks 4] [--version 5|6|7]
                                       [--steps 50] [--trace par.trace.json]
"""

import argparse

import numpy as np

from repro import jet_scenario, run
from repro.analysis.report import format_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nranks", type=int, default=4)
    ap.add_argument("--version", type=int, default=5, choices=(5, 6, 7))
    ap.add_argument("--steps", type=int, default=50)
    ap.add_argument("--nx", type=int, default=80)
    ap.add_argument("--nr", type=int, default=40)
    ap.add_argument(
        "--trace",
        metavar="PATH",
        help="export a per-rank Chrome trace (open in ui.perfetto.dev)",
    )
    args = ap.parse_args()

    sc = jet_scenario(nx=args.nx, nr=args.nr, viscous=True)

    print(f"Serial reference: {args.nx}x{args.nr}, {args.steps} steps ...")
    ref = run(sc, steps=args.steps)

    print(
        f"Distributed run: {args.nranks} ranks, Version {args.version} "
        f"({'grouped' if args.version == 5 else 'overlapped' if args.version == 6 else 'one column at a time'}) ..."
    )
    res = run(
        sc,
        steps=args.steps,
        nprocs=args.nranks,
        version=args.version,
        trace=args.trace,
    )

    identical = np.array_equal(res.state.q, ref.state.q)
    print(f"\nBitwise identical to serial: {identical}")
    if not identical:
        raise SystemExit("FAILED: parallel result differs from serial")

    rows = []
    for r, st in enumerate(res.per_rank_stats):
        rows.append(
            [
                r,
                st.sends,
                st.recvs,
                f"{st.bytes_sent / 1024:.1f}",
                f"{st.sends / args.steps:.1f}",
            ]
        )
    print()
    print(
        format_table(
            ["rank", "sends", "recvs", "KB sent", "sends/step"],
            rows,
            title="Measured communication (interior ranks exchange with both "
            "neighbours; edge ranks with one):",
        )
    )
    if args.nranks >= 3:
        mid = res.interior_rank_stats
        print(
            f"\nInterior-rank per-step: {mid.sends / args.steps:.1f} sends, "
            f"{mid.bytes_sent / args.steps / 1024:.2f} KB  "
            f"(paper's Table 1, at nr=100 and 5000 steps: 8 sends/step, 25 KB/step)"
        )
    else:
        print(
            "\n(no interior rank with fewer than 3 ranks — the paper's "
            "per-processor numbers need two-neighbour ranks)"
        )
    if res.trace_path:
        print(
            f"Trace: {res.trace_path} ({len(res.trace.spans)} spans over "
            f"{len(res.trace.ranks())} ranks) — load it at "
            "https://ui.perfetto.dev"
        )


if __name__ == "__main__":
    main()
