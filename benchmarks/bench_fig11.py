"""Reproduction benchmark: Figure 11: MPL vs PVMe (Navier-Stokes; IBM SP)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig11(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig11"),
        "Figure 11: MPL vs PVMe (Navier-Stokes; IBM SP)",
    )
