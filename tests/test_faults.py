"""Chaos suite: seeded fault injection over the virtual cluster.

The invariant under test is the fault layer's contract (ISSUE 3): under
any seeded :class:`~repro.faults.FaultPlan` a distributed run either

* **completes bitwise-equal** to the fault-free baseline (every injected
  wire fault recovered by the sequence-numbered transport), or
* **raises a structured** :class:`~repro.msglib.RankFailure` naming the
  failed ranks and steps —

but never hangs and never silently corrupts the numerics.  Every fault
decision is a pure hash of the seed, so any failure reproduces from the
seed the ``chaos_seed`` fixture prints (``pytest --chaos-seed=<n>``).

This module intentionally does not import ``hypothesis`` — the CI chaos
job runs it in a minimal environment (see
``tests/test_property_invariants.py`` for the property-based half).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import jet_scenario
from repro.faults import (
    PRESETS,
    FaultPlan,
    FaultyComm,
    MessageTimeout,
    RankCrashed,
    fault_plan_by_name,
    resolve_fault_plan,
)
from repro.faults.wire import HEADER_BYTES, pack_frame, truncate_frame, unpack_frame
from repro.msglib import RankFailure
from repro.obs import Tracer
from repro.parallel.runner import ParallelJetSolver, serial_reference

STEPS = 6

#: One plan per fault mechanism, each exercised alone so a regression in
#: any single recovery path has an unambiguous test name.
FAULT_KINDS = {
    "drop": dict(drop=0.15, max_transmits=4),
    "duplicate": dict(duplicate=0.25),
    "reorder": dict(reorder=0.2),
    "delay": dict(delay=0.4, max_delay=0.001),
    "truncate": dict(truncate=0.12, max_transmits=4),
    "mixed": dict(drop=0.08, duplicate=0.08, reorder=0.08, truncate=0.05,
                  delay=0.15, max_delay=0.001, max_transmits=4),
}


def _case(viscous: bool):
    sc = jet_scenario(nx=48, nr=16, viscous=viscous)
    config = dataclasses.replace(sc.solver.config, dt_recompute_every=1)
    ref = serial_reference(sc.state, config, steps=STEPS)
    return sc, config, ref


@pytest.fixture(scope="module")
def ns_case():
    return _case(viscous=True)


@pytest.fixture(scope="module")
def euler_case():
    return _case(viscous=False)


def _plan(kind: str, seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed, name=kind, recv_timeout=0.3, recv_retries=4,
        **FAULT_KINDS[kind],
    )


class TestChaosMatrix:
    """drop/dup/reorder/delay/truncate x Euler/NS x nprocs in {2, 4}."""

    @pytest.mark.parametrize("nprocs", [2, 4])
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_navier_stokes(self, ns_case, kind, nprocs, chaos_seed):
        self._run(ns_case, kind, nprocs, chaos_seed)

    @pytest.mark.parametrize("nprocs", [2, 4])
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    def test_euler(self, euler_case, kind, nprocs, chaos_seed):
        self._run(euler_case, kind, nprocs, chaos_seed)

    @staticmethod
    def _run(case, kind, nprocs, seed, **kw):
        sc, config, ref = case
        plan = _plan(kind, seed)
        solver = ParallelJetSolver(
            sc.state, config, nranks=nprocs, timeout=30, faults=plan,
            max_restarts=0, **kw,
        )
        try:
            res = solver.run(STEPS)
        except RankFailure as failure:
            # The structured-failure arm: the exception names the ranks,
            # steps and last good state — never a hang, never a bare error.
            assert failure.ranks
            assert all(0 <= r < nprocs for r in failure.ranks)
            assert failure.last_good_step == 0
            assert isinstance(
                failure.__cause__, (MessageTimeout, RankCrashed, RuntimeError)
            )
            return
        assert np.array_equal(res.state.q, ref.q), (
            f"faulted run diverged from baseline (kind={kind}, "
            f"nprocs={nprocs}, seed={seed})"
        )
        stats = [s for s in res.fault_stats if s is not None]
        assert stats, "fault plan active but no fault stats collected"

    @pytest.mark.parametrize(
        "kind", ["drop", "truncate", "mixed"]
    )
    @pytest.mark.parametrize(
        "nprocs,kw",
        [
            (2, dict(decomposition="radial")),
            (4, dict(decomposition="2d", px=2, pr=2)),
        ],
        ids=["radial", "2d"],
    )
    def test_other_decompositions(self, ns_case, kind, nprocs, kw, chaos_seed):
        """The fault contract is decomposition-agnostic: the unified
        exchange core gives radial and 2-D runs the identical
        recover-or-structured-failure guarantee."""
        self._run(ns_case, kind, nprocs, chaos_seed, **kw)

    def test_matrix_is_not_vacuous(self, ns_case, chaos_seed):
        """At least one fault actually fires per mechanism at these rates."""
        sc, config, ref = ns_case
        for kind in FAULT_KINDS:
            res = None
            try:
                res = ParallelJetSolver(
                    sc.state, config, nranks=4, timeout=30,
                    faults=_plan(kind, chaos_seed), max_restarts=0,
                ).run(STEPS)
            except RankFailure:
                continue  # faults fired hard enough to kill the run
            total = sum(
                s.total_injected for s in res.fault_stats if s is not None
            )
            assert total > 0, f"plan {kind!r} injected nothing"


class TestReproducibility:
    def test_same_seed_same_faults(self, ns_case, chaos_seed):
        """Two runs under one seed inject the identical fault schedule."""
        sc, config, _ = ns_case

        def injected():
            res = ParallelJetSolver(
                sc.state, config, nranks=4, timeout=30,
                faults=_plan("mixed", chaos_seed), max_restarts=0,
            ).run(STEPS)
            return [
                dict(s.injected) if s is not None else None
                for s in res.fault_stats
            ]

        assert injected() == injected()

    def test_different_seed_different_faults(self, ns_case):
        sc, config, _ = ns_case

        def counts(seed):
            try:
                res = ParallelJetSolver(
                    sc.state, config, nranks=4, timeout=30,
                    faults=_plan("mixed", seed), max_restarts=0,
                ).run(STEPS)
            except RankFailure as failure:
                # A killed run is a legal outcome; its failure signature
                # still distinguishes the schedule.
                return [(r, s) for r, s, _ in failure.failures]
            return [
                dict(s.injected) if s is not None else None
                for s in res.fault_stats
            ]

        assert counts(1) != counts(2)

    def test_fate_is_pure(self):
        plan = fault_plan_by_name("lossy-ethernet", seed=42)
        a = [plan.fate(0, 1, "3:x:pred", s, 0) for s in range(50)]
        b = [plan.fate(0, 1, "3:x:pred", s, 0) for s in range(50)]
        assert a == b
        assert any(f.drop or f.duplicate or f.reorder or f.delay_seconds
                   for f in a)


class TestCrashAndRestart:
    def test_crash_without_checkpoint_is_structured(self, ns_case, chaos_seed):
        sc, config, _ = ns_case
        plan = FaultPlan(seed=chaos_seed, crashes=((1, 3),),
                         recv_timeout=0.2, recv_retries=2)
        with pytest.raises(RankFailure) as exc:
            ParallelJetSolver(
                sc.state, config, nranks=4, timeout=30, faults=plan,
                max_restarts=0,
            ).run(STEPS)
        failure = exc.value
        assert failure.rank == 1
        assert failure.step == 3
        assert failure.last_good_step == 0
        assert "rank 1 failed" in str(failure)

    def test_crash_recovers_via_checkpoint(self, ns_case, chaos_seed):
        """An injected crash resumes from the checkpoint, bitwise-exact."""
        sc, config, ref = ns_case
        plan = FaultPlan(seed=chaos_seed, crashes=((2, 4),),
                         recv_timeout=0.2, recv_retries=2)
        res = ParallelJetSolver(
            sc.state, config, nranks=4, timeout=30, faults=plan,
            checkpoint_every=2,
        ).run(STEPS)
        assert res.restarts == 1
        assert np.array_equal(res.state.q, ref.q)

    @pytest.mark.parametrize(
        "nranks,kw",
        [
            (2, dict(decomposition="radial")),
            (4, dict(decomposition="2d", px=2, pr=2)),
        ],
        ids=["radial", "2d"],
    )
    def test_crash_recovers_on_other_decompositions(
        self, ns_case, chaos_seed, nranks, kw
    ):
        """checkpoint()/restore() are wired through every decomposition:
        an injected crash resumes bitwise-exact on radial and 2-D runs."""
        sc, config, ref = ns_case
        plan = FaultPlan(seed=chaos_seed, crashes=((1, 4),),
                         recv_timeout=0.2, recv_retries=2)
        res = ParallelJetSolver(
            sc.state, config, nranks=nranks, timeout=30, faults=plan,
            checkpoint_every=2, **kw,
        ).run(STEPS)
        assert res.restarts == 1
        assert np.array_equal(res.state.q, ref.q)

    def test_lossy_crash_preset_recovers(self, ns_case, chaos_seed):
        """The acceptance scenario: lossy wire + crash, retry + resume."""
        sc, config, ref = ns_case
        plan = fault_plan_by_name("lossy-crash", seed=chaos_seed)
        res = ParallelJetSolver(
            sc.state, config, nranks=4, timeout=30, faults=plan,
            checkpoint_every=2, max_restarts=3,
        ).run(STEPS)
        assert res.restarts >= 1
        assert np.array_equal(res.state.q, ref.q)


class TestFaultFree:
    def test_inert_plan_is_bitwise_clean(self, ns_case):
        """A plan with nothing enabled must not perturb the numerics."""
        sc, config, ref = ns_case
        res = ParallelJetSolver(
            sc.state, config, nranks=4, timeout=30, faults=FaultPlan(),
        ).run(STEPS)
        assert np.array_equal(res.state.q, ref.q)
        assert res.restarts == 0

    def test_transport_envelope_is_transparent(self, ns_case):
        """always_wrap frames every message yet changes no results."""
        sc, config, ref = ns_case
        res = ParallelJetSolver(
            sc.state, config, nranks=4, timeout=30,
            faults=FaultPlan(always_wrap=True),
        ).run(STEPS)
        assert np.array_equal(res.state.q, ref.q)


class TestTracing:
    def test_fault_events_recorded(self, ns_case, chaos_seed):
        sc, config, _ = ns_case
        tracer = Tracer(name="chaos")
        try:
            ParallelJetSolver(
                sc.state, config, nranks=4, timeout=30,
                faults=_plan("mixed", chaos_seed), max_restarts=0,
            ).run(STEPS, tracer=tracer)
        except RankFailure:
            pass
        events = tracer.trace.events_named("fault.")
        assert events
        assert all(e.cat == "fault" for e in events)
        ranks_with_counts = [
            r for r in range(4)
            if tracer.trace.counter(r, "faults_injected") > 0
        ]
        assert ranks_with_counts

    def test_restart_recorded(self, ns_case, chaos_seed):
        sc, config, _ = ns_case
        tracer = Tracer(name="restart")
        plan = FaultPlan(seed=chaos_seed, crashes=((1, 3),),
                         recv_timeout=0.2, recv_retries=2)
        ParallelJetSolver(
            sc.state, config, nranks=4, timeout=30, faults=plan,
            checkpoint_every=2,
        ).run(STEPS, tracer=tracer)
        restarts = tracer.trace.events_named("recovery.restart")
        assert len(restarts) == 1
        args = dict(restarts[0].args)
        assert args["failed_rank"] == 1


class TestSimulatedSubstrate:
    def test_des_faults_deterministic_and_costly(self):
        from repro.machines.platforms import platform_by_name
        from repro.simulate.machine import SimulatedMachine
        from repro.simulate.workload import NAVIER_STOKES

        plat = platform_by_name("lace/560+ethernet")
        clean = SimulatedMachine(plat, 8).run(NAVIER_STOKES, steps_window=8)
        lossy = lambda: SimulatedMachine(
            plat, 8, faults="lossy-ethernet"
        ).run(NAVIER_STOKES, steps_window=8)
        a, b = lossy(), lossy()
        assert a.execution_time == b.execution_time
        assert a.execution_time > clean.execution_time

    def test_des_slow_ranks_map_to_node_factors(self):
        from repro.machines.platforms import platform_by_name
        from repro.simulate.machine import SimulatedMachine

        plat = platform_by_name("lace/560+ethernet")
        m = SimulatedMachine(plat, 4, faults="jittery-now")
        assert m.node_speed_factors == [1.0, 1.0 / 2.5, 1.0, 1.0]

    def test_des_fault_events_traced(self):
        from repro.machines.platforms import platform_by_name
        from repro.simulate.machine import SimulatedMachine
        from repro.simulate.workload import NAVIER_STOKES

        plat = platform_by_name("lace/560+ethernet")
        tracer = Tracer(name="sim-chaos")
        SimulatedMachine(plat, 4, faults="lossy-ethernet").run(
            NAVIER_STOKES, steps_window=6, tracer=tracer
        )
        assert tracer.trace.events_named("fault.sim_delay")


class TestWireFraming:
    def test_round_trip(self, rng):
        payload = rng.random((4, 3, 7))
        seq, out = unpack_frame(pack_frame(9, payload))
        assert seq == 9
        assert np.array_equal(out, payload)
        assert out.dtype == payload.dtype

    def test_round_trip_preserves_shape_and_dtype(self, rng):
        for arr in (
            np.arange(5, dtype=np.int64),
            rng.random((2, 2)).astype(np.float32),
            np.array(3.5),
        ):
            seq, out = unpack_frame(pack_frame(0, arr))
            assert out.shape == arr.shape and out.dtype == arr.dtype
            assert np.array_equal(out, arr)

    def test_truncated_frame_rejected(self, rng):
        frame = pack_frame(1, rng.random(32))
        assert unpack_frame(truncate_frame(frame, 0.25)) is None
        assert unpack_frame(frame[: HEADER_BYTES - 1]) is None
        assert unpack_frame(np.zeros(4, dtype=np.uint8)) is None


class TestPlanApi:
    def test_presets_resolve(self):
        for name in PRESETS:
            plan = resolve_fault_plan(name, seed=7)
            assert plan.enabled and plan.seed == 7

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="lossy-ethernet"):
            fault_plan_by_name("nope")

    def test_bad_type(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            resolve_fault_plan(3.14)

    def test_api_run_rejects_serial_faults(self):
        from repro.api import run

        with pytest.raises(ValueError, match="nprocs > 1"):
            run("jet", steps=1, nx=32, nr=12, faults="lossy-ethernet")

    def test_describe_names_the_seed(self):
        text = fault_plan_by_name("drop-storm", seed=99).describe()
        assert "seed=99" in text and "drop" in text


class TestFaultyCommPassthrough:
    def test_disabled_plan_delegates(self, monkeypatch):
        """With no plan the decorator adds a branch, not a transport."""

        class Probe:
            rank, size = 0, 2
            stats = None

            def send(self, dest, tag, array):
                self.sent = (dest, tag, array)

            def recv(self, source, tag, timeout=None):
                return np.ones(3)

        probe = Probe()
        fc = FaultyComm(probe, None)
        payload = np.arange(3.0)
        fc.send(1, "t", payload)
        assert probe.sent[2] is payload  # no framing, no copy
        assert np.array_equal(fc.recv(1, "t"), np.ones(3))
        assert fc.fault_stats.total_injected == 0


class TestReceiveResilience:
    """irecv must ride recv's fault-aware timeout plumbing: a lazy irecv
    against a crashed/silent peer raises a structured MessageTimeout
    instead of hanging (ISSUE-5 bugfix)."""

    def test_lazy_irecv_times_out_with_structure(self, chaos_seed):
        import time

        from repro.msglib import VirtualCluster

        plan = FaultPlan(
            seed=chaos_seed, name="irecv-timeout", recv_timeout=0.05,
            recv_retries=2, always_wrap=True,
        )
        cluster = VirtualCluster(2, timeout=60.0)

        def prog(comm):
            fcomm = FaultyComm(comm, plan)
            try:
                if comm.rank == 1:
                    req = fcomm.irecv(0, "never", timeout=0.05)
                    t0 = time.perf_counter()
                    try:
                        req.wait()
                    except MessageTimeout as exc:
                        assert exc.receiver == 1
                        assert exc.source == 0
                        assert exc.tag == "never"
                        return time.perf_counter() - t0
                    return None
                return "sender"
            finally:
                fcomm.drain()

        waited = cluster.run(prog)[1]
        assert waited is not None, "irecv.wait() never raised MessageTimeout"
        assert waited < 10.0


class TestCollectiveChaos:
    """Consecutive same-tag collectives under duplication + reordering
    must stay exact: the per-communicator sequence suffix keeps a
    retransmitted reply from collective N out of collective N+1's receive
    (ISSUE-5 foregrounded bugfix)."""

    ROUNDS = [(3.0, 8.0), (9.0, 4.0), (1.0, 7.0), (6.0, 2.0), (5.0, 5.5)]

    def _collect(self, seed: int) -> list:
        from repro.msglib import VirtualCluster

        plan = FaultPlan(
            seed=seed, name="collective-chaos", duplicate=0.4, reorder=0.4,
            recv_timeout=0.3, recv_retries=4,
        )
        cluster = VirtualCluster(2, timeout=30.0)
        rounds = self.ROUNDS

        def prog(comm):
            fcomm = FaultyComm(comm, plan)
            try:
                out = []
                for vals in rounds:
                    fcomm.barrier()
                    out.append(fcomm.allreduce_min(vals[comm.rank]))
                    fcomm.barrier()
                g = fcomm.gather_arrays(np.array([float(comm.rank)]))
                if g is not None:
                    out.append([float(a[0]) for a in g])
                return out
            finally:
                fcomm.drain()

        return cluster.run(prog)

    def test_consecutive_collectives_bitwise_exact(self, chaos_seed):
        results = self._collect(chaos_seed)
        expected = [min(vals) for vals in self.ROUNDS]
        assert results[0][:-1] == expected
        assert results[1] == expected
        assert results[0][-1] == [0.0, 1.0]

    def test_collective_chaos_reproducible(self, chaos_seed):
        assert self._collect(chaos_seed) == self._collect(chaos_seed)


class TestRecvViewThroughFaults:
    """``recv_view`` composed with the fault layer (the V6 borrow API)."""

    def test_disabled_plan_passes_borrow_through(self):
        """With injection off the decorator must not tax the zero-copy
        path: the inner slot-ring borrow comes back untouched."""
        from repro.msglib import ProcessCluster

        def program(comm):
            fc = FaultyComm(comm, None)
            if comm.rank == 0:
                fc.send(1, "zc", np.arange(8.0))
                return True
            with fc.recv_view(0, "zc", timeout=20) as view:
                assert view.zero_copy
                return bool(np.array_equal(view.array, np.arange(8.0)))

        with ProcessCluster(2, timeout=20) as cluster:
            assert cluster.run(program)[1] is True

    def test_enabled_plan_gives_owned_view(self, chaos_seed):
        """Under injection the payload crosses the framed retransmission
        transport, so the view is an owned copy — with the exact same
        release discipline as a slot borrow."""
        from repro.msglib import VirtualCluster

        plan = FaultPlan(seed=chaos_seed, name="view-owned", drop=0.15,
                         max_transmits=4, recv_timeout=0.3, recv_retries=4)

        def program(comm):
            fc = FaultyComm(comm, plan)
            try:
                if comm.rank == 0:
                    fc.send(1, "zc", np.arange(6.0))
                    return True
                view = fc.recv_view(0, "zc", timeout=5)
                assert not view.zero_copy
                ok = bool(np.array_equal(view.array, np.arange(6.0)))
                view.release()
                with pytest.raises(RuntimeError, match="called twice"):
                    view.release()
                return ok
            finally:
                fc.drain()

        assert VirtualCluster(2, timeout=30).run(program)[1] is True


class TestCompiledBackendChaos:
    """The compiled ("V6") backend behind the chaos wall: preset fault
    storms on the real process substrate — where halo receives ride the
    zero-copy ``recv_view`` path — still recover to the bitwise serial
    answer (or fall back to fused, which must too)."""

    def test_lossy_ethernet_process_compiled(self, ns_case, chaos_seed):
        sc, config, ref = ns_case
        config = dataclasses.replace(config, backend="compiled")
        plan = fault_plan_by_name("lossy-ethernet", seed=chaos_seed)
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=60, substrate="process",
            faults=plan,
        ).run(STEPS)
        assert np.array_equal(res.state.q, ref.q)

    def test_crash_rank1_process_compiled(self, ns_case, chaos_seed):
        """A mid-run worker crash: resume from checkpoint, bitwise-exact."""
        sc, config, ref = ns_case
        config = dataclasses.replace(config, backend="compiled")
        plan = fault_plan_by_name("crash-rank1", seed=chaos_seed)
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=60, substrate="process",
            faults=plan, checkpoint_every=2, max_restarts=3,
        ).run(STEPS)
        assert res.restarts >= 1
        assert np.array_equal(res.state.q, ref.q)
