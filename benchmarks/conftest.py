"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper: the
benchmark body *is* the experiment, so ``pytest benchmarks/
--benchmark-only`` both times the reproduction pipeline and prints the
rows/series the paper reports (pass ``-s`` to stream them live).  Every
rendered artifact is also written to ``benchmarks/output/<name>.txt`` so
the regenerated tables and figures survive pytest's output capture.
"""

import os
import re

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def run_and_print(benchmark, fn, header: str):
    """Benchmark ``fn`` once, print and persist its rendered output."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    text = f"{'=' * 78}\n{header}\n{'=' * 78}\n{result}\n"
    print("\n" + text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", header.lower()).strip("_")[:60]
    with open(os.path.join(OUTPUT_DIR, f"{slug}.txt"), "w") as fh:
        fh.write(text)
    return result


@pytest.fixture
def reproduce(benchmark):
    def _run(fn, header):
        return run_and_print(benchmark, fn, header)

    return _run
