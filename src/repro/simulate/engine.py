"""A small deterministic discrete-event engine.

Processes are plain Python generators that yield *commands*:

* ``Delay(dt)`` — resume after ``dt`` simulated seconds;
* ``Acquire(resource)`` — block until one unit of the resource is granted
  (FIFO);
* ``Release(resource)`` — return one unit (never blocks);
* ``Wait(event)`` — block until the event triggers (resumes immediately if
  it already has);
* ``Trigger(event)`` — fire an event, waking all waiters;
* ``Spawn(generator)`` — start a child process at the current time.

Determinism: ties in time are broken by a monotone sequence number, so runs
are exactly reproducible — a property the regression tests rely on.
Helper generators compose with ``yield from``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Generator


class Event:
    """One-shot broadcast event."""

    __slots__ = ("triggered", "trigger_time", "_waiters", "name")

    def __init__(self, name: str = "") -> None:
        self.triggered = False
        self.trigger_time: float | None = None
        self._waiters: list["_Proc"] = []
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, triggered={self.triggered})"


class Resource:
    """FIFO resource with integer capacity."""

    __slots__ = ("capacity", "in_use", "_queue", "name", "busy_time", "_busy_since")

    def __init__(self, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque["_Proc"] = deque()
        self.name = name
        # Utilization accounting (any-unit-busy time).
        self.busy_time = 0.0
        self._busy_since: float | None = None

    def _note_busy(self, now: float) -> None:
        if self.in_use > 0 and self._busy_since is None:
            self._busy_since = now
        elif self.in_use == 0 and self._busy_since is not None:
            self.busy_time += now - self._busy_since
            self._busy_since = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name!r}, {self.in_use}/{self.capacity})"


@dataclass(frozen=True)
class Delay:
    dt: float


@dataclass(frozen=True)
class Acquire:
    resource: Resource


@dataclass(frozen=True)
class Release:
    resource: Resource


@dataclass(frozen=True)
class Wait:
    event: Event


@dataclass(frozen=True)
class Trigger:
    event: Event


@dataclass(frozen=True)
class Spawn:
    generator: Generator


class _Proc:
    __slots__ = ("gen", "name", "done")

    def __init__(self, gen: Generator, name: str) -> None:
        self.gen = gen
        self.name = name
        self.done = False


class Engine:
    """The event loop.

    ``tracer`` optionally records every process schedule/resume as an
    instant event keyed on the engine's deterministic clock (``self.now``),
    so traced simulations export byte-identically across runs.  The default
    ``None`` keeps the hot loop untouched.
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, _Proc]] = []
        self._seq = 0
        self.processes: list[_Proc] = []
        self.steps = 0
        self.tracer = tracer

    # -- public API -------------------------------------------------------------
    def add_process(self, gen: Generator, name: str = "proc") -> None:
        """Register a process to start at time 0 (or at spawn time)."""
        proc = _Proc(gen, name)
        self.processes.append(proc)
        self._schedule(0.0, proc)

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Run until all processes finish (or ``until``); returns end time."""
        while self._heap:
            t, _, proc = heapq.heappop(self._heap)
            if until is not None and t > until:
                self.now = until
                return self.now
            self.now = t
            self._step(proc)
            self.steps += 1
            if self.steps > max_events:
                raise RuntimeError("event budget exceeded (runaway simulation?)")
        unfinished = [p.name for p in self.processes if not p.done]
        if unfinished:
            raise RuntimeError(
                f"simulation stalled with blocked processes: {unfinished[:8]} "
                "(resource or event deadlock)"
            )
        return self.now

    # -- internals ---------------------------------------------------------------
    def _schedule(self, delay: float, proc: _Proc) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, proc))
        if self.tracer is not None:
            self.tracer.instant(
                "proc.schedule",
                cat="engine",
                ts=self.now,
                proc=proc.name,
                at=self.now + delay,
            )

    def _step(self, proc: _Proc) -> None:
        """Advance one process until it blocks or finishes."""
        if self.tracer is not None:
            self.tracer.instant(
                "proc.resume", cat="engine", ts=self.now, proc=proc.name
            )
        while True:
            try:
                cmd = next(proc.gen)
            except StopIteration:
                proc.done = True
                return
            if isinstance(cmd, Delay):
                if cmd.dt < 0:
                    raise ValueError(f"negative delay {cmd.dt} in {proc.name}")
                self._schedule(cmd.dt, proc)
                return
            if isinstance(cmd, Acquire):
                res = cmd.resource
                if res.in_use < res.capacity and not res._queue:
                    res.in_use += 1
                    res._note_busy(self.now)
                    continue
                res._queue.append(proc)
                return
            if isinstance(cmd, Release):
                res = cmd.resource
                if res.in_use <= 0:
                    raise RuntimeError(f"release of idle resource {res.name!r}")
                res.in_use -= 1
                res._note_busy(self.now)
                if res._queue and res.in_use < res.capacity:
                    waiter = res._queue.popleft()
                    res.in_use += 1
                    res._note_busy(self.now)
                    self._schedule(0.0, waiter)
                continue
            if isinstance(cmd, Wait):
                ev = cmd.event
                if ev.triggered:
                    continue
                ev._waiters.append(proc)
                return
            if isinstance(cmd, Trigger):
                ev = cmd.event
                if not ev.triggered:
                    ev.triggered = True
                    ev.trigger_time = self.now
                    for waiter in ev._waiters:
                        self._schedule(0.0, waiter)
                    ev._waiters.clear()
                continue
            if isinstance(cmd, Spawn):
                child = _Proc(cmd.generator, f"{proc.name}.child")
                self.processes.append(child)
                self._schedule(0.0, child)
                continue
            raise TypeError(f"unknown simulation command {cmd!r} from {proc.name}")
