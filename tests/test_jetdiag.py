"""Jet diagnostics: probes, spectra, mean-flow development."""

import numpy as np
import pytest

from repro import jet_scenario
from repro.analysis.jetdiag import (
    ProbeRecorder,
    centerline_velocity,
    dominant_strouhal,
    momentum_thickness,
    shear_layer_radius,
    spectrum,
    vorticity,
)
from repro.grid import Grid
from repro.physics.jet import JetProfile
from repro.physics.state import FlowState
from repro.scenarios import jet_initial_state


@pytest.fixture(scope="module")
def excited_run():
    """A moderately long excited-jet run shared by the spectral tests."""
    sc = jet_scenario(nx=80, nr=32, viscous=True)
    rec = ProbeRecorder.at_locations(sc.grid, [(8.0, 1.0)])
    sc.solver.run(900, monitor=rec, monitor_every=1)
    return sc, rec


class TestProbes:
    def test_probe_snapping(self):
        g = Grid(nx=50, nr=20)
        rec = ProbeRecorder.at_locations(g, [(10.0, 1.0)])
        i, j = rec.indices[0]
        assert abs(g.x[i] - 10.0) <= g.dx / 2
        assert abs(g.r[j] - 1.0) <= g.dr / 2

    def test_recording(self, excited_run):
        _, rec = excited_run
        assert rec.nsamples == 900
        p = rec.series("p", 0)
        assert p.shape == (900,)
        assert np.all(np.isfinite(p))

    def test_dt_mean_positive(self, excited_run):
        _, rec = excited_run
        assert rec.dt_mean > 0

    def test_needs_samples_for_dt(self):
        rec = ProbeRecorder(indices=[(0, 0)])
        with pytest.raises(ValueError):
            _ = rec.dt_mean


class TestSpectrum:
    def test_pure_tone_recovered(self):
        """A synthetic tone at St = 0.2 dominates the spectrum."""
        mach, dt = 1.5, 0.05
        f = 0.2 * mach / 2.0
        t = np.arange(2048) * dt
        y = 0.3 + 1e-3 * np.sin(2 * np.pi * f * t)
        st = dominant_strouhal(y, dt, mach)
        assert st == pytest.approx(0.2, rel=0.05)

    def test_amplitude_calibration(self):
        dt = 0.01
        t = np.arange(4096) * dt
        y = 2.5e-4 * np.sin(2 * np.pi * 3.0 * t)
        St, amp = spectrum(y, dt, mach=1.5, window=False)
        assert amp.max() == pytest.approx(2.5e-4, rel=0.05)

    def test_short_series_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            spectrum(np.ones(4), 0.1, 1.5)

    def test_excited_jet_responds_at_forcing_strouhal(self, excited_run):
        """The near-field pressure oscillates at the excitation Strouhal
        number (within the record's bin resolution) — the time-accurate
        behaviour the paper's application exists to capture."""
        _, rec = excited_run
        skip = 200  # discard the startup transient
        st = dominant_strouhal(rec.series("p", 0)[skip:], rec.dt_mean, 1.5)
        n = rec.nsamples - skip
        bin_width = 2.0 / (n * rec.dt_mean) / 1.5
        assert abs(st - 0.125) <= 1.5 * bin_width


class TestMeanFlow:
    def test_initial_momentum_thickness_near_theta(self):
        """The tanh profile's momentum thickness ~ the theta parameter
        (compressibility shifts it moderately)."""
        g = Grid(nx=20, nr=200)
        state = jet_initial_state(g, JetProfile(theta=0.1))
        th = momentum_thickness(state, 0)
        assert 0.05 < th < 0.25

    def test_thickness_grows_downstream(self, excited_run):
        sc, _ = excited_run
        up = momentum_thickness(sc.state, 8)
        down = momentum_thickness(sc.state, 60)
        assert down > up

    def test_centerline_velocity_near_mach_at_inflow(self, excited_run):
        sc, _ = excited_run
        u0 = centerline_velocity(sc.state)
        assert u0[0] == pytest.approx(1.5, rel=0.02)

    def test_shear_layer_radius_near_one_at_inflow(self, excited_run):
        sc, _ = excited_run
        assert shear_layer_radius(sc.state, 0) == pytest.approx(1.0, abs=0.25)

    def test_no_jet_station_rejected(self):
        g = Grid(nx=10, nr=10)
        state = FlowState.quiescent(g)
        with pytest.raises(ValueError, match="no jet"):
            momentum_thickness(state, 0)


class TestVorticity:
    def test_concentrated_in_shear_layer(self, excited_run):
        sc, _ = excited_run
        w = np.abs(vorticity(sc.state))
        j_peak = np.unravel_index(np.argmax(w), w.shape)[1]
        assert sc.grid.r[j_peak] < 2.0

    def test_zero_for_uniform_flow(self):
        g = Grid(nx=12, nr=12)
        state = FlowState.from_primitive(g, 1.0, 0.8, 0.0, 1 / 1.4)
        assert np.allclose(vorticity(state), 0.0, atol=1e-13)

    def test_solid_body_rotation_sign(self):
        """v = x (pure dv/dx > 0) gives positive azimuthal vorticity."""
        g = Grid(nx=12, nr=12, length_x=1.0, length_r=1.0)
        state = FlowState.from_primitive(
            g, 1.0, 0.0, g.xmesh().copy(), 1 / 1.4
        )
        w = vorticity(state)
        assert np.all(w[2:-2, 2:-2] > 0)
