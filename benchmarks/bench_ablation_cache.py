"""Ablation: the paper's cache-design claim, swept.

"We believe that the reason for relatively poor performance of the T3D, in
spite of a fast processor, is the small, direct-mapped cache" (Section 8).
This bench grows/associates the T3D node cache and re-simulates the
platform comparison, quantifying how much of the gap the cache explains.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.machines.platforms import CPU_ALPHA_21064, CRAY_T3D, LACE_560
from repro.simulate.machine import SimulatedMachine
from repro.simulate.workload import NAVIER_STOKES

from conftest import run_and_print


def _sweep() -> str:
    variants = [
        ("8KB direct-mapped (real T3D)", CPU_ALPHA_21064.cache),
        ("8KB 4-way", replace(CPU_ALPHA_21064.cache, associativity=4)),
        ("32KB direct-mapped",
         replace(CPU_ALPHA_21064.cache, size_bytes=32 * 1024)),
        ("64KB 4-way (560-class)",
         replace(CPU_ALPHA_21064.cache, size_bytes=64 * 1024, associativity=4)),
        ("256KB 4-way (590-class)",
         replace(CPU_ALPHA_21064.cache, size_bytes=256 * 1024, associativity=4)),
    ]
    rows = []
    for label, cache in variants:
        cpu = replace(CPU_ALPHA_21064, cache=cache, v5_target_mflops=None)
        plat = replace(CRAY_T3D, cpu=cpu, name=f"T3D[{label}]")
        r16 = SimulatedMachine(plat, 16).run(NAVIER_STOKES, steps_window=25)
        rows.append(
            [label, f"{cpu.sustained_mflops(5):.1f}",
             f"{r16.execution_time:,.0f}"]
        )
    base = SimulatedMachine(LACE_560, 16).run(NAVIER_STOKES, steps_window=25)
    rows.append(
        ["(LACE/560 + ALLNODE-S reference)", "16.0",
         f"{base.execution_time:,.0f}"]
    )
    return format_table(
        ["T3D node cache variant", "node MFLOPS (mechanistic)",
         "NS exec @ p=16 (s)"],
        rows,
        title="Cache ablation on the T3D node (unanchored CPU model):",
    )


def test_cache_ablation(benchmark):
    run_and_print(benchmark, _sweep, "Ablation: T3D cache size/associativity")
