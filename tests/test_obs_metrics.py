"""Metrics registry: typed metrics, rank binding, exact deterministic merge.

The merge property tests are the load-bearing ones: the registry promises
that merging per-rank registries is associative and order-independent
*bitwise* — floats included — because merged metrics carry the multiset of
their atomic contributions and collapse it with an exactly-rounded sum.
Plain pairwise float addition would fail these properties in the last ulp;
hypothesis hunts for exactly those cases.
"""

from __future__ import annotations

import functools
import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    STEP_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    merge,
    set_metrics,
    use_metrics,
)

# Adversarial float magnitudes: merging values spanning many decades is
# where naive summation loses associativity.
_values = st.floats(
    min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
)
_value_lists = st.lists(_values, min_size=0, max_size=6)


def _counter_of(parts) -> Counter:
    c = Counter()
    for x in parts:
        c.inc(x)
    return c


def _histogram_of(parts) -> Histogram:
    h = Histogram()
    for x in parts:
        h.observe(x)
    return h


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_value_lists, min_size=3, max_size=3))
    def test_counter_merge_is_associative_bitwise(self, groups):
        a, b, c = (_counter_of(g) for g in groups)
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(b.merged_with(c))
        assert left.value == right.value  # bitwise, not approx
        assert left.updates == right.updates

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_value_lists, min_size=3, max_size=3))
    def test_histogram_merge_is_associative_bitwise(self, groups):
        a, b, c = (_histogram_of(g) for g in groups)
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(b.merged_with(c))
        assert left.sum == right.sum
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.min == right.min and left.max == right.max

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_value_lists, min_size=2, max_size=5), st.data())
    def test_registry_merge_is_rank_permutation_independent(self, per_rank, data):
        regs = []
        for r, obs in enumerate(per_rank):
            m = MetricsRegistry()
            for x in obs:
                m.count("halo.seconds", x, rank=r)
                m.observe("solver.step_seconds", x, rank=r)
                m.gauge("comm.max_message_bytes", x, rank=r)
            regs.append(m)
        base = merge(regs).snapshot()
        perm = data.draw(st.permutations(regs))
        assert merge(perm).snapshot() == base
        # snapshots are JSON-stable, so compare serialized bytes too
        assert json.dumps(merge(perm).snapshot(), sort_keys=True) == json.dumps(
            base, sort_keys=True
        )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_value_lists, min_size=4, max_size=4))
    def test_registry_merge_tree_shape_does_not_matter(self, per_rank):
        """Fold-left, fold-right and balanced pairwise trees agree bitwise
        — the DES ranks and virtual-cluster threads may merge in any
        order."""
        regs = []
        for r, obs in enumerate(per_rank):
            m = MetricsRegistry()
            for x in obs:
                m.count("c", x, rank=r)
                m.observe("h", x, rank=r)
            regs.append(m)
        a, b, c, d = regs
        fold_left = functools.reduce(lambda x, y: x.merged_with(y), regs)
        fold_right = a.merged_with(b.merged_with(c.merged_with(d)))
        balanced = a.merged_with(b).merged_with(c.merged_with(d))
        assert fold_left.snapshot() == fold_right.snapshot() == balanced.snapshot()

    def test_gauge_merge_is_max_and_nan_transparent(self):
        assert Gauge(2.0, 1).merged_with(Gauge(5.0, 1)).value == 5.0
        assert Gauge(5.0, 1).merged_with(Gauge(2.0, 1)).value == 5.0
        assert Gauge(float("nan")).merged_with(Gauge(3.0, 1)).value == 3.0
        assert math.isnan(Gauge(float("nan")).merged_with(Gauge(float("nan"))).value)

    def test_histogram_bound_mismatch_refuses_to_merge(self):
        with pytest.raises(ValueError, match="bucket bounds"):
            Histogram().merged_with(Histogram(bounds=(1.0, 2.0)))


class TestRegistrySemantics:
    def test_step_time_buckets_are_sorted_and_span_the_range(self):
        assert list(STEP_TIME_BUCKETS) == sorted(STEP_TIME_BUCKETS)
        assert STEP_TIME_BUCKETS[0] == pytest.approx(1e-7)
        assert STEP_TIME_BUCKETS[-1] == pytest.approx(1e3)

    def test_histogram_bucket_assignment(self):
        h = Histogram(bounds=(1.0, 10.0))
        for x in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(x)
        assert h.counts == [1, 2, 2]  # [<1, [1,10), >=10]
        assert h.count == 5 and h.min == 0.5 and h.max == 11.0

    def test_name_keeps_one_type(self):
        m = MetricsRegistry()
        m.count("x", 1.0, rank=0)
        with pytest.raises(TypeError, match="Counter"):
            m.observe("x", 1.0, rank=0)

    def test_timer_records_into_histogram(self):
        m = MetricsRegistry()
        with m.timer("t", rank=2):
            pass
        h = m.get("t", rank=2)
        assert h.count == 1 and h.sum >= 0.0

    def test_bind_rank_is_per_thread(self):
        m = MetricsRegistry()
        m.bind_rank(3)
        m.count("c")
        seen = []

        def other():
            m.bind_rank(7)
            m.count("c")
            seen.append(True)

        th = threading.Thread(target=other)
        th.start()
        th.join()
        assert seen
        assert m.value("c", rank=3) == 1.0
        assert m.value("c", rank=7) == 1.0
        assert m.ranks() == [3, 7]

    def test_global_default_is_null_and_use_metrics_restores(self):
        assert isinstance(get_metrics(), NullMetrics)
        assert not get_metrics().enabled
        # the null registry swallows everything without state
        get_metrics().count("x")
        get_metrics().observe("y", 1.0)
        with get_metrics().timer("z"):
            pass
        assert get_metrics().snapshot() == {}
        m = MetricsRegistry()
        with use_metrics(m):
            assert get_metrics() is m
            get_metrics().count("inside")
        assert isinstance(get_metrics(), NullMetrics)
        assert m.value("inside", rank=0) == 1.0
        prev = set_metrics(m)
        assert prev is m and get_metrics() is m
        set_metrics(None)
        assert isinstance(get_metrics(), NullMetrics)

    def test_snapshot_shape_is_json_stable(self):
        m = MetricsRegistry()
        m.count("c", 2.5, rank=1)
        m.observe("h", 0.02, rank=0)
        m.gauge("g", 9.0, rank=0)
        snap = m.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "bucket_bounds"}
        assert snap["counters"]["c"]["1"]["value"] == 2.5
        assert snap["histograms"]["h"]["0"]["count"] == 1
        assert snap["gauges"]["g"]["0"]["value"] == 9.0
        json.dumps(snap)  # must serialize

    def test_total_updates_counts_every_recording(self):
        m = MetricsRegistry()
        m.count("a", rank=0)
        m.count("a", rank=0)
        m.observe("b", 0.1, rank=1)
        m.gauge("g", 1.0, rank=0)
        assert m.total_updates == 4
