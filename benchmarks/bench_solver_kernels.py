"""Raw solver throughput: wall time per time step of this implementation.

Not a paper artifact — this measures the *reproduction's own* kernels
(vectorized numpy) so regressions in the numerics are caught, and gives the
basis for the "full Figure 1 run takes minutes, not Y-MP hours" claim in
the README.

``test_backend_ladder`` compares the kernel backends (the Python analogue
of the paper's single-processor Versions 1-5 ladder) on the paper's
250x100 grid and records the per-backend step times in
``benchmarks/output/BENCH_kernels.json``.
"""

import json
import os
import time

import pytest

from repro import jet_scenario
from repro.numerics.kernels import available_backends, get_backend

from conftest import OUTPUT_DIR


def _solver_for(backend: str, viscous: bool = True, nx: int = 250, nr: int = 100):
    sc = jet_scenario(nx=nx, nr=nr, viscous=viscous)
    sc.solver.config.backend = backend
    return type(sc.solver)(sc.state, sc.solver.config)


@pytest.mark.parametrize("viscous", [True, False], ids=["navier-stokes", "euler"])
def test_step_throughput(benchmark, viscous):
    sc = jet_scenario(nx=125, nr=50, viscous=viscous)
    sc.solver.run(2)  # warm the pipeline (dt cache, allocations)

    benchmark(sc.solver.step)


def test_paper_grid_step(benchmark):
    """One step at the paper's full 250x100 resolution."""
    sc = jet_scenario(nx=250, nr=100, viscous=True)
    sc.solver.run(2)
    benchmark(sc.solver.step)


def test_backend_ladder():
    """Per-backend step time at 250x100, written to BENCH_kernels.json.

    The fused backend must deliver at least the 1.5x speedup the ISSUE-2
    acceptance criterion demands (measured: ~2x) — the same shape of gain
    the paper's Versions 2-4 restructuring bought on the RS6000/560
    (9.3 -> 13.7 MFLOPS before compiler flags).  The compiled ("V6")
    backend stacks the paper's Version 5-6 compiler rung on top: where an
    engine is available it must run at least 2x faster than fused
    (measured: ~2.3x via the C engine on this container); where no engine
    exists the rung is skipped and recorded as unavailable rather than
    silently benchmarking the fused fallback.
    """
    steps, repeats = 25, 3
    compiled_ok = get_backend("compiled").available()
    results = {}
    for backend in available_backends():
        if backend == "compiled":
            if not compiled_ok:
                results[backend] = {"available": False}
                continue
            results[backend] = {
                "engine": get_backend("compiled").ops().engine
            }
        solver = _solver_for(backend)
        solver.run(4)  # warm dt cache, caches, workspace (and any JIT)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solver.run(steps)
            best = min(best, (time.perf_counter() - t0) / steps)
        results.setdefault(backend, {})["ms_per_step"] = 1e3 * best
    speedup = (
        results["baseline"]["ms_per_step"] / results["fused"]["ms_per_step"]
    )
    payload = {
        "grid": {"nx": 250, "nr": 100},
        "viscous": True,
        "steps_timed": steps,
        "backends": results,
        "fused_speedup_vs_baseline": round(speedup, 3),
    }
    if compiled_ok:
        compiled_speedup = (
            results["fused"]["ms_per_step"]
            / results["compiled"]["ms_per_step"]
        )
        payload["compiled_speedup_vs_fused"] = round(compiled_speedup, 3)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, "BENCH_kernels.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nbackend ladder (250x100 viscous): {json.dumps(payload, indent=2)}")
    assert speedup >= 1.5, (
        f"fused backend speedup {speedup:.2f}x below the 1.5x acceptance bar "
        f"({results})"
    )
    if compiled_ok:
        assert compiled_speedup >= 2.0, (
            f"compiled backend speedup {compiled_speedup:.2f}x vs fused is "
            f"below the 2x acceptance bar ({results})"
        )


def test_nulltracer_overhead():
    """The disabled (default) tracer must cost < 3% of a solver step.

    Counts how many tracer operations one instrumented step actually
    performs (from a recorded trace), times that many no-op span
    enter/exits against the median real step time, and bounds the ratio.
    Measuring the null operations directly — rather than differencing two
    noisy step timings — keeps the assertion stable on loaded machines.
    """
    import time

    from repro.obs import NullTracer, Tracer, get_tracer, use_tracer

    sc = jet_scenario(nx=64, nr=32, viscous=True)
    sc.solver.run(2)

    tracer = Tracer()
    with use_tracer(tracer):
        sc.solver.step()
    ops_per_step = len(tracer.trace.spans) + len(tracer.trace.events)

    # Median real step time (disabled tracer — the default path).
    assert isinstance(get_tracer(), NullTracer)
    samples = []
    for _ in range(9):
        t0 = time.perf_counter()
        sc.solver.step()
        samples.append(time.perf_counter() - t0)
    step_seconds = sorted(samples)[len(samples) // 2]

    null = NullTracer()
    reps = 200 * max(ops_per_step, 1)
    t0 = time.perf_counter()
    for _ in range(reps):
        with null.span("x", rank=0):
            pass
    per_op = (time.perf_counter() - t0) / reps

    overhead = ops_per_step * per_op
    assert overhead < 0.03 * step_seconds, (
        f"null-tracer overhead {1e6 * overhead:.1f}us/step "
        f"({ops_per_step} ops) exceeds 3% of the "
        f"{1e3 * step_seconds:.2f}ms step"
    )


def test_nullmetrics_overhead():
    """The disabled (default) metrics registry must cost < 1% of a step.

    Same direct-measurement strategy as ``test_nulltracer_overhead``: count
    the metric recordings one instrumented step performs (via the real
    registry's update counter), time that many no-op recordings on the
    null registry, and bound the ratio.  The off bound is tighter than the
    tracer's (1% vs 3%) because the null path is a plain method call plus
    an ``.enabled`` test — no context manager.
    """
    import time

    from repro.obs import MetricsRegistry, NullMetrics, get_metrics, use_metrics

    sc = jet_scenario(nx=64, nr=32, viscous=True)
    sc.solver.run(2)

    reg = MetricsRegistry()
    with use_metrics(reg):
        sc.solver.step()
    ops_per_step = reg.total_updates

    assert isinstance(get_metrics(), NullMetrics)
    samples = []
    for _ in range(9):
        t0 = time.perf_counter()
        sc.solver.step()
        samples.append(time.perf_counter() - t0)
    step_seconds = sorted(samples)[len(samples) // 2]

    null = NullMetrics()
    reps = 500 * max(ops_per_step, 1)
    t0 = time.perf_counter()
    for _ in range(reps):
        if null.enabled:  # the hot-seam pattern: branch, then (skipped) record
            null.observe("x", 1.0)
    per_op = (time.perf_counter() - t0) / reps

    overhead = ops_per_step * per_op
    assert overhead < 0.01 * step_seconds, (
        f"null-metrics overhead {1e6 * overhead:.1f}us/step "
        f"({ops_per_step} ops) exceeds 1% of the "
        f"{1e3 * step_seconds:.2f}ms step"
    )


def test_metrics_on_overhead():
    """An *enabled* registry must cost < 3% of a step (``metrics=True``
    is meant to stay on for whole production runs).

    Times the real recording mix one step performs — histogram observes
    and counter incs in their measured proportion — against the median
    uninstrumented step time.
    """
    import time

    from repro.obs import Counter, Histogram, MetricsRegistry, use_metrics

    sc = jet_scenario(nx=64, nr=32, viscous=True)
    sc.solver.run(2)

    reg = MetricsRegistry()
    with use_metrics(reg):
        sc.solver.step()
    observes = sum(
        m.updates for _, m in reg.items() if isinstance(m, Histogram)
    )
    counts = sum(m.updates for _, m in reg.items() if isinstance(m, Counter))

    samples = []
    for _ in range(9):
        t0 = time.perf_counter()
        sc.solver.step()
        samples.append(time.perf_counter() - t0)
    step_seconds = sorted(samples)[len(samples) // 2]

    live = MetricsRegistry()
    live.bind_rank(0)
    reps = 300
    t0 = time.perf_counter()
    for _ in range(reps):
        for _ in range(observes):
            live.observe("h", 0.001)
        for _ in range(counts):
            live.count("c", 1.0)
    per_step_cost = (time.perf_counter() - t0) / reps

    assert per_step_cost < 0.03 * step_seconds, (
        f"metrics-on overhead {1e6 * per_step_cost:.1f}us/step "
        f"({observes} observes + {counts} counts) exceeds 3% of the "
        f"{1e3 * step_seconds:.2f}ms step"
    )


def test_stream_overhead():
    """Step streaming must cost < 3% of a step on, < 1% off.

    The hot seam publishes one compact record per solver step per rank
    (``get_stream()`` + ``.enabled`` branch + record build + publish).
    Same direct-measurement strategy as ``test_nulltracer_overhead``:
    time the enabled path (record construction plus a buffered publish)
    and the disabled path (global read plus branch) in isolation against
    the median real step time, so the bound stays stable on loaded
    machines.
    """
    import time

    from repro.obs import (
        BufferStepStream,
        NullStepStream,
        get_stream,
        use_stream,
    )

    sc = jet_scenario(nx=64, nr=32, viscous=True)
    sc.solver.run(2)
    solver = sc.solver

    # Median real step time with streaming off (the default path).
    assert isinstance(get_stream(), NullStepStream)
    samples = []
    for _ in range(9):
        t0 = time.perf_counter()
        solver.step()
        samples.append(time.perf_counter() - t0)
    step_seconds = sorted(samples)[len(samples) // 2]

    # Enabled: one full record-build + publish per step.
    buffer = BufferStepStream(capacity=256)
    reps = 2000
    with use_stream(buffer):
        t0 = time.perf_counter()
        for _ in range(reps):
            stream = get_stream()
            if stream.enabled:
                stream.publish(
                    solver._step_stream_record(1e-4, step_seconds)
                )
        per_publish = (time.perf_counter() - t0) / reps
    assert buffer.published == reps
    assert per_publish < 0.03 * step_seconds, (
        f"streaming-on overhead {1e6 * per_publish:.1f}us/step exceeds "
        f"3% of the {1e3 * step_seconds:.2f}ms step"
    )

    # Disabled: the hot seam is one global read plus a branch.
    reps = 100_000
    t0 = time.perf_counter()
    for _ in range(reps):
        stream = get_stream()
        if stream.enabled:  # never taken: the null stream is installed
            stream.publish({})
    per_off = (time.perf_counter() - t0) / reps
    assert per_off < 0.01 * step_seconds, (
        f"streaming-off overhead {1e9 * per_off:.1f}ns/step exceeds "
        f"1% of the {1e3 * step_seconds:.2f}ms step"
    )


def test_faultycomm_passthrough_overhead():
    """A FaultyComm with injection disabled must cost < 3% of a step.

    Same direct-measurement strategy as ``test_nulltracer_overhead``: count
    the communicator calls one distributed step makes per rank, time the
    inert decorator's per-call cost over a no-op inner communicator, and
    bound ``calls x per_call`` against the median real step time — stable
    on loaded machines because the decorator cost is measured in isolation.
    """
    import time

    import numpy as np

    from repro import jet_scenario
    from repro.faults import FaultyComm
    from repro.parallel.runner import ParallelJetSolver

    sc = jet_scenario(nx=120, nr=50, viscous=True)

    # Calls per step per rank, from the real run's own statistics.
    res = ParallelJetSolver(sc.state, sc.solver.config, nranks=4).run(5)
    stats = res.interior_rank_stats
    calls_per_step = (stats.sends + stats.recvs) / 5

    # Median per-rank step time of the same run.
    step_seconds = sorted(res.per_rank_wall)[2] / 5

    class _NoopComm:
        rank, size = 1, 4
        stats = None
        _payload = np.empty((4, 2, 50))

        def send(self, dest, tag, array):
            return None

        def recv(self, source, tag, timeout=None):
            return self._payload

    inert = FaultyComm(_NoopComm(), None)
    payload = np.empty((4, 2, 50))
    reps = 20_000
    t0 = time.perf_counter()
    for _ in range(reps // 2):
        inert.send(2, "t", payload)
        inert.recv(2, "t")
    per_call = (time.perf_counter() - t0) / reps

    overhead = calls_per_step * per_call
    assert overhead < 0.03 * step_seconds, (
        f"inert FaultyComm overhead {1e6 * overhead:.1f}us/step "
        f"({calls_per_step:.0f} calls) exceeds 3% of the "
        f"{1e3 * step_seconds:.2f}ms step"
    )


def test_distributed_step_4ranks(benchmark):
    """One distributed step (4 ranks, real message passing) — measures the
    virtual-cluster overhead relative to the serial step."""
    from repro.parallel.runner import ParallelJetSolver

    sc = jet_scenario(nx=120, nr=50, viscous=True)

    def run_block():
        ParallelJetSolver(sc.state, sc.solver.config, nranks=4).run(5)

    benchmark.pedantic(run_block, rounds=3, iterations=1)
