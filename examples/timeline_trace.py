#!/usr/bin/env python3
"""Inside one simulated time step: per-rank Gantt traces.

Renders what each processor does during the SPMD step on two contrasting
configurations — the saturated Ethernet cluster (long waits on the shared
bus) and the ALLNODE switch (steady compute with small library gaps).
This is the microscopic view behind the paper's busy/non-overlapped-
communication split (Figures 5-6).

Usage::

    python examples/timeline_trace.py [--procs 8] [--version 5]
"""

import argparse

from repro.analysis.report import render_gantt
from repro.machines.platforms import LACE_560, LACE_560_ETHERNET
from repro.simulate.machine import SimulatedMachine
from repro.simulate.workload import NAVIER_STOKES


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--procs", type=int, default=8)
    ap.add_argument("--version", type=int, default=5, choices=(5, 6, 7))
    args = ap.parse_args()

    for plat in (LACE_560_ETHERNET, LACE_560):
        r = SimulatedMachine(plat, args.procs, version=args.version).run(
            NAVIER_STOKES, steps_window=4, trace=True
        )
        print(
            render_gantt(
                r,
                title=f"{plat.name}, p={args.procs}, V{args.version} "
                f"(exec {r.execution_time:,.0f}s scaled; "
                f"busy {r.busy_time:,.0f}s, comm {r.comm_time:,.0f}s)",
            )
        )
        print()


if __name__ == "__main__":
    main()
