"""Typed metric registry: counters, gauges, histograms, timers.

The tracer (:mod:`repro.obs.tracer`) records *every* span — precise but
heavy for long runs.  This module is the continuous-measurement
counterpart: fixed-size aggregates (a counter is one float, a histogram a
handful of buckets) that can stay on for a whole production run and feed
the per-run performance ledger (:mod:`repro.obs.report`).

Design constraints (mirroring the tracer's):

* **Cheap when off.**  The process default is a :class:`NullMetrics`
  whose every method is a no-op; instrumented hot seams read the active
  registry once (:func:`get_metrics`) and branch on ``.enabled``.
* **Per-rank.**  Every metric is keyed ``(name, rank)``; rank threads of
  the virtual cluster bind their default rank once
  (:meth:`MetricsRegistry.bind_rank`), exactly like the tracer, so each
  ``(name, rank)`` cell has a single writer and needs no hot-path lock.
* **Deterministic merge.**  :func:`merge` (and ``merged_with`` on every
  metric type) is associative and order-independent *exactly*, floats
  included: merged metrics keep the multiset of their atomic float
  contributions and collapse it with ``math.fsum`` over the sorted parts,
  so any merge tree and any rank permutation produce bit-identical
  snapshots.  Histogram bucket counts are integers and merge exactly by
  construction; gauges merge by maximum.

Histograms default to :data:`STEP_TIME_BUCKETS` — fixed log-spaced
boundaries (three per decade, 100 ns .. 1000 s) sized for solver-step and
message-call times, so histograms from different runs and machines always
share bucket edges and merge without resampling.
"""

from __future__ import annotations

import math
import threading
import time as _time
from bisect import bisect_right
from contextlib import contextmanager

__all__ = [
    "STEP_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "get_metrics",
    "merge",
    "set_metrics",
    "use_metrics",
]

#: Fixed log-spaced bucket boundaries (seconds): 3 per decade, 1e-7..1e3.
#: Shared by every histogram by default so cross-run merges are exact.
STEP_TIME_BUCKETS: tuple[float, ...] = tuple(
    float(f"{10.0 ** (e / 3.0):.6e}") for e in range(-21, 10)
)


def _fsum_parts(parts: tuple[float, ...]) -> float:
    """Exactly-rounded sum of a canonical (sorted) parts multiset."""
    return math.fsum(parts)


class Counter:
    """Monotone accumulator (counts, bytes, seconds).

    ``value`` is accumulated in program order by its single writing rank;
    merged counters additionally carry the multiset of atomic
    contributions (``_parts``) so further merging stays exact and
    order-independent.
    """

    kind = "counter"
    __slots__ = ("value", "updates", "_parts")

    def __init__(self, value: float = 0.0, updates: int = 0) -> None:
        self.value = value
        self.updates = updates
        self._parts: tuple[float, ...] | None = None

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        self.updates += 1
        self._parts = None  # a mutated metric is atomic again

    def parts(self) -> tuple[float, ...]:
        return self._parts if self._parts is not None else (self.value,)

    def merged_with(self, other: "Counter") -> "Counter":
        out = Counter(updates=self.updates + other.updates)
        out._parts = tuple(sorted(self.parts() + other.parts()))
        out.value = _fsum_parts(out._parts)
        return out

    def to_dict(self) -> dict:
        return {"value": self.value, "updates": self.updates}


class Gauge:
    """Last-observed value.

    Merging two gauges keeps the *maximum* — the only aggregate of
    "latest value" that is associative and order-independent across
    ranks; per-rank keying means the common case never merges at all.
    """

    kind = "gauge"
    __slots__ = ("value", "updates")

    def __init__(self, value: float = float("nan"), updates: int = 0) -> None:
        self.value = value
        self.updates = updates

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def merged_with(self, other: "Gauge") -> "Gauge":
        if math.isnan(self.value):
            v = other.value
        elif math.isnan(other.value):
            v = self.value
        else:
            v = max(self.value, other.value)
        return Gauge(v, self.updates + other.updates)

    def to_dict(self) -> dict:
        return {"value": self.value, "updates": self.updates}


class Histogram:
    """Fixed-bucket histogram with exact-merge sum/min/max.

    Buckets are defined by ``bounds`` (sorted upper-open boundaries);
    observation ``x`` lands in the bucket ``i`` with
    ``bounds[i-1] <= x < bounds[i]`` (``counts`` has ``len(bounds) + 1``
    cells, the last catching overflow).  All histograms sharing bounds —
    the default :data:`STEP_TIME_BUCKETS` — merge exactly.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count", "min", "max", "_parts")

    def __init__(self, bounds: tuple[float, ...] = STEP_TIME_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._parts: tuple[float, ...] | None = None

    @property
    def updates(self) -> int:
        return self.count

    def observe(self, x: float) -> None:
        self.counts[bisect_right(self.bounds, x)] += 1
        self.sum += x
        self.count += 1
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        self._parts = None

    def parts(self) -> tuple[float, ...]:
        return self._parts if self._parts is not None else (self.sum,)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def merged_with(self, other: "Histogram") -> "Histogram":
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} boundaries)"
            )
        out = Histogram(self.bounds)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        out._parts = tuple(sorted(self.parts() + other.parts()))
        out.sum = _fsum_parts(out._parts)
        return out

    def to_dict(self) -> dict:
        return {
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            # Sparse bucket encoding keeps ledger lines small.
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
        }


class _Timer:
    """Context manager observing elapsed wall seconds into a histogram."""

    __slots__ = ("hist", "t0")

    def __init__(self, hist: Histogram) -> None:
        self.hist = hist

    def __enter__(self) -> "_Timer":
        self.t0 = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.hist.observe(_time.perf_counter() - self.t0)


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullMetrics:
    """Inert registry: every operation is a no-op.  The global default."""

    enabled = False
    __slots__ = ()

    def count(self, name, value=1.0, rank=None) -> None:
        return None

    def observe(self, name, value, rank=None) -> None:
        return None

    def gauge(self, name, value, rank=None) -> None:
        return None

    def timer(self, name, rank=None):
        return _NULL_TIMER

    def bind_rank(self, rank) -> None:
        return None

    def snapshot(self) -> dict:
        return {}


class MetricsRegistry:
    """Collects per-rank typed metrics; see the module docstring.

    The hot-path methods (:meth:`count`, :meth:`observe`, :meth:`gauge`)
    create metrics on demand; a name must keep one type — reusing a
    counter name as a histogram raises ``TypeError`` at the call site
    rather than silently corrupting the ledger.
    """

    enabled = True

    def __init__(self, name: str = "") -> None:
        self.meta: dict[str, object] = {"name": name} if name else {}
        self._data: dict[tuple[str, int], object] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- pickling (process-substrate obs shipping) -----------------------------
    def __getstate__(self) -> dict:
        """Pickle the recorded data only: the lock and the thread-local
        rank binding are process-private and rebuilt on load."""
        return {"meta": self.meta, "data": self._data}

    def __setstate__(self, state: dict) -> None:
        self.meta = state["meta"]
        self._data = state["data"]
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- per-thread default rank (mirrors Tracer.bind_rank) -------------------
    def bind_rank(self, rank: int) -> None:
        self._tls.rank = rank

    def _rank(self, rank: int | None) -> int:
        if rank is not None:
            return rank
        return getattr(self._tls, "rank", 0)

    # -- metric lookup ---------------------------------------------------------
    def _metric(self, cls, name: str, rank: int | None, *args):
        key = (name, self._rank(rank))
        m = self._data.get(key)
        if m is None:
            with self._lock:
                m = self._data.get(key)
                if m is None:
                    m = self._data[key] = cls(*args)
        if type(m) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}"
            )
        return m

    # -- recording -------------------------------------------------------------
    def count(self, name: str, value: float = 1.0, rank: int | None = None) -> None:
        self._metric(Counter, name, rank).inc(value)

    def observe(self, name: str, value: float, rank: int | None = None) -> None:
        self._metric(Histogram, name, rank).observe(value)

    def gauge(self, name: str, value: float, rank: int | None = None) -> None:
        self._metric(Gauge, name, rank).set(value)

    def timer(self, name: str, rank: int | None = None) -> _Timer:
        return _Timer(self._metric(Histogram, name, rank))

    # -- reading ---------------------------------------------------------------
    def get(self, name: str, rank: int = 0):
        """The metric object at ``(name, rank)`` or ``None``."""
        return self._data.get((name, rank))

    def value(self, name: str, rank: int = 0, default: float = 0.0) -> float:
        """Counter/gauge value or histogram sum at ``(name, rank)``."""
        m = self._data.get((name, rank))
        if m is None:
            return default
        return m.sum if isinstance(m, Histogram) else m.value

    def ranks(self) -> list[int]:
        return sorted({r for _, r in self._data})

    def names(self, prefix: str = "") -> list[str]:
        return sorted({n for n, _ in self._data if n.startswith(prefix)})

    def items(self):
        """``((name, rank), metric)`` pairs in deterministic order."""
        return sorted(self._data.items())

    @property
    def total_updates(self) -> int:
        """Number of recording operations performed (overhead accounting)."""
        return sum(m.updates for m in self._data.values())

    # -- merge -----------------------------------------------------------------
    def merged_with(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Pairwise merge; see :func:`merge` for the n-ary form.  Exact:
        merged metrics keep their contribution multisets, so any merge
        tree over the same registries yields bit-identical snapshots."""
        out = MetricsRegistry()
        out.meta = {**other.meta, **self.meta}
        for key in set(self._data) | set(other._data):
            a, b = self._data.get(key), other._data.get(key)
            if a is None:
                out._data[key] = b
            elif b is None:
                out._data[key] = a
            else:
                out._data[key] = a.merged_with(b)
        return out

    def ingest(self, other: "MetricsRegistry") -> None:
        """Merge ``other``'s metrics into this registry *in place*, with
        the same exactness guarantee as :meth:`merged_with` (contribution
        multisets, sorted ``fsum``).  This is how the process substrate
        folds each worker's locally-recorded registry into the parent's
        active one on join — any ingest order yields identical bits."""
        with self._lock:
            for key, m in other._data.items():
                mine = self._data.get(key)
                self._data[key] = m if mine is None else mine.merged_with(m)
            self.meta = {**other.meta, **self.meta}

    # -- serialization ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able nested dict: ``{kind: {name: {rank: payload}}}``.

        Deterministic: keys sorted, histogram buckets sparse.  This is
        the shape the run ledger stores and
        :func:`repro.analysis.metrics.component_breakdown` accepts.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, rank), m in self.items():
            group = out[m.kind + "s"]
            group.setdefault(name, {})[str(rank)] = m.to_dict()
        out["bucket_bounds"] = "step-time-log3"  # STEP_TIME_BUCKETS tag
        return out


def merge(registries) -> MetricsRegistry:
    """Merge any iterable of registries, order-independently and exactly.

    Equivalent to folding :meth:`MetricsRegistry.merged_with` in any
    order — the contribution-multiset representation makes every fold
    tree produce the same bits.
    """
    regs = list(registries)
    if not regs:
        return MetricsRegistry()
    out = regs[0]
    for r in regs[1:]:
        out = out.merged_with(r)
    return out


#: Process-wide active registry; hot seams read it via :func:`get_metrics`.
_NULL = NullMetrics()
_active: MetricsRegistry | NullMetrics = _NULL


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The active registry (a :class:`NullMetrics` unless one is installed)."""
    return _active


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | NullMetrics:
    """Install ``registry`` globally (``None`` restores the null registry)."""
    global _active
    _active = registry if registry is not None else _NULL
    return _active


@contextmanager
def use_metrics(registry: MetricsRegistry | None):
    """Scoped :func:`set_metrics`: restores the previous registry on exit."""
    global _active
    previous = _active
    _active = registry if registry is not None else _NULL
    try:
        yield _active
    finally:
        _active = previous
