"""Grouped halo-exchange operations (paper Section 5).

The paper reduces communication startups by *grouping*: "first, all the
velocity and temperature values along a boundary are calculated and then
packaged into a single send.  We use a similar scheme for the flux values."
The helpers here implement exactly those grouped messages for the
distributed solver:

* ``exchange_uvT`` — one packed ``(u, v, T)`` edge column to each
  neighbour, for the viscous stress gradients (Navier-Stokes only);
* ``exchange_flux_high`` / ``exchange_flux_low`` — the two flux columns
  feeding the one-sided predictor/corrector stencils, grouped into a single
  send (Version 5/6) or sent one column at a time (Version 7);
* ``exchange_state_halo_low/high`` — two conservative-state columns for the
  fourth-difference filter.

All sends are buffered (deposit-and-return), so the send-then-receive
ordering used throughout is deadlock-free for any processor count.

Every function returns ghost planes in the orientation
:func:`repro.numerics.stencils.extend_axis` expects — ordered *outward*,
nearest ghost first — or ``None`` at physical boundaries (which selects the
serial cubic extrapolation, keeping parallel and serial arithmetic
identical).
"""

from __future__ import annotations

import functools
import time as _time
from dataclasses import dataclass

import numpy as np

from ..obs import get_metrics, get_tracer
from .versions import Version


def _traced(kind: str):
    """Wrap an exchange helper in a ``halo.<kind>`` span, accumulate the
    per-rank ``halo_seconds`` tracer counter, and — when a metrics
    registry is active — record the exchange's wall time, byte volume
    (from the communicator's own stats delta, so retransmitted frames are
    counted as sent) and call count.  Zero-cost beyond two branches when
    neither tracer nor metrics are installed."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(comm, tag, *args, **kwargs):
            tr = get_tracer()
            mx = get_metrics()
            if not tr.enabled and not mx.enabled:
                return fn(comm, tag, *args, **kwargs)
            stats = getattr(comm, "stats", None)
            b0 = (
                stats.bytes_sent + stats.bytes_received
                if mx.enabled and stats is not None
                else 0
            )
            t0 = _time.perf_counter()
            if tr.enabled:
                with tr.span(
                    f"halo.{kind}", cat="halo", rank=comm.rank, tag=tag
                ):
                    out = fn(comm, tag, *args, **kwargs)
            else:
                out = fn(comm, tag, *args, **kwargs)
            seconds = _time.perf_counter() - t0
            if tr.enabled:
                tr.count("halo_seconds", seconds, rank=comm.rank)
            if mx.enabled:
                mx.observe(f"halo.{kind}_seconds", seconds, rank=comm.rank)
                mx.count("halo.seconds", seconds, rank=comm.rank)
                mx.count("halo.exchanges", 1.0, rank=comm.rank)
                if stats is not None:
                    mx.count(
                        "halo.bytes",
                        float(stats.bytes_sent + stats.bytes_received - b0),
                        rank=comm.rank,
                    )
            return out

        return wrapper

    return deco


@dataclass(frozen=True)
class ExchangePolicy:
    """Message-grouping policy derived from a code version."""

    overlap: bool = False
    split_flux_columns: bool = False

    @classmethod
    def from_version(cls, version: Version) -> "ExchangePolicy":
        return cls(
            overlap=version.overlap_communication,
            split_flux_columns=version.split_flux_columns,
        )


@_traced("uvT")
def exchange_uvT(
    comm,
    tag: str,
    u: np.ndarray,
    v: np.ndarray,
    T: np.ndarray,
    left: int | None,
    right: int | None,
    axis: int = 0,
    buf: np.ndarray | None = None,
):
    """Exchange one packed ``(u, v, T)`` ghost line with each neighbour.

    ``axis = 0`` exchanges edge *columns* (axial decomposition); ``axis =
    1`` exchanges edge *rows* (radial decomposition).  Returns
    ``(halo_lo, halo_hi)`` — each a ``(3, n_perp)`` array or ``None`` at a
    physical boundary — for
    :func:`repro.physics.viscous.field_gradients`.

    ``buf`` optionally supplies a ``(3, n_perp)`` packing buffer (fused
    kernel backend).  It is reused for both directions because sends are
    buffered: the payload is copied before ``send`` returns.
    """

    def edge(f, k):
        return f[k] if axis == 0 else np.ascontiguousarray(f[:, k])

    def pack(k):
        if buf is None:
            return np.stack([edge(u, k), edge(v, k), edge(T, k)])
        buf[0] = edge(u, k)
        buf[1] = edge(v, k)
        buf[2] = edge(T, k)
        return buf

    if left is not None:
        comm.send(left, f"{tag}:uvT:toleft", pack(0))
    if right is not None:
        comm.send(right, f"{tag}:uvT:toright", pack(-1))
    halo_lo = comm.recv(left, f"{tag}:uvT:toright") if left is not None else None
    halo_hi = comm.recv(right, f"{tag}:uvT:toleft") if right is not None else None
    return halo_lo, halo_hi


def _pair(F: np.ndarray, axis: int, sl: slice, buf: np.ndarray | None = None) -> np.ndarray:
    """Two edge lines of a ``(4, nx, nr)`` flux array along ``axis`` as a
    ``(4, 2, n_perp)`` pair, optionally packed into ``buf``."""
    if axis == 1:
        src = F[:, sl, :]
    else:
        src = F[:, :, sl].transpose(0, 2, 1)
    if buf is not None:
        np.copyto(buf, src)
        return buf
    return np.ascontiguousarray(src)


def _send_flux_columns(
    comm, dest: int, tag: str, cols: np.ndarray, split: bool
) -> None:
    """Send a ``(4, 2, n_perp)`` flux-line pair, grouped or one at a time."""
    if split:
        comm.send(dest, f"{tag}:c0", np.ascontiguousarray(cols[:, 0]))
        comm.send(dest, f"{tag}:c1", np.ascontiguousarray(cols[:, 1]))
    else:
        comm.send(dest, tag, np.ascontiguousarray(cols))


def _recv_pair_stacked(comm, source: int, tag: str, reverse: bool) -> np.ndarray:
    """Receive a ``(4, 2, n_perp)`` line pair and return it as a
    ``(2, 4, n_perp)`` outward-ordered ghost stack.

    ``recv_view`` is part of the :class:`~repro.msglib.api.Communicator`
    contract: zero-copy on the shared-memory substrate (the stack copies
    straight out of the ring slot, released immediately after — one copy
    instead of two), an owned read-only view everywhere else, so no
    substrate guard is needed here.
    """
    with comm.recv_view(source, tag) as view:
        cols = view.array
        if reverse:
            return np.stack([cols[:, 1], cols[:, 0]])
        return np.stack([cols[:, 0], cols[:, 1]])


def _recv_flux_stacked(
    comm, source: int, tag: str, split: bool, reverse: bool
) -> np.ndarray:
    """Receive a flux-line pair as an outward-ordered ``(2, 4, n_perp)``
    ghost stack (grouped single message, or per-column for Version 7)."""
    if split:
        c0 = comm.recv(source, f"{tag}:c0")
        c1 = comm.recv(source, f"{tag}:c1")
        if reverse:
            return np.stack([c1, c0])
        return np.stack([c0, c1])
    return _recv_pair_stacked(comm, source, tag, reverse)


@_traced("flux_high")
def exchange_flux_high(
    comm,
    tag: str,
    F: np.ndarray,
    left: int | None,
    right: int | None,
    policy: ExchangePolicy,
    axis: int = 1,
    buf: np.ndarray | None = None,
):
    """Flux ghosts for a *forward* one-sided difference.

    Every rank ships its two lowest columns leftward; the ghosts beyond a
    rank's high edge are therefore its right neighbour's first two columns.
    Returns ``(2, 4, nr)`` ordered outward, or ``None`` at the outflow end.
    ``buf`` optionally supplies a ``(4, 2, n_perp)`` packing buffer.
    """
    t = f"{tag}:fxh"
    if left is not None:
        _send_flux_columns(
            comm, left, t, _pair(F, axis, slice(0, 2), buf), policy.split_flux_columns
        )
    if right is None:
        return None
    return _recv_flux_stacked(
        comm, right, t, policy.split_flux_columns, reverse=False
    )


@_traced("flux_low")
def exchange_flux_low(
    comm,
    tag: str,
    F: np.ndarray,
    left: int | None,
    right: int | None,
    policy: ExchangePolicy,
    axis: int = 1,
    buf: np.ndarray | None = None,
):
    """Flux ghosts for a *backward* one-sided difference.

    Every rank ships its two highest columns rightward; the ghosts below a
    rank's low edge are its left neighbour's last two columns.  Returns
    ``(2, 4, nr)`` ordered outward (nearest ghost = neighbour's last
    column), or ``None`` at the inflow end.
    ``buf`` optionally supplies a ``(4, 2, n_perp)`` packing buffer.
    """
    t = f"{tag}:fxl"
    if right is not None:
        _send_flux_columns(
            comm, right, t, _pair(F, axis, slice(-2, None), buf),
            policy.split_flux_columns,
        )
    if left is None:
        return None
    return _recv_flux_stacked(
        comm, left, t, policy.split_flux_columns, reverse=True
    )


class PendingGhosts:
    """An in-flight flux-ghost exchange (the split-phase V6 protocol).

    Created by :func:`post_flux_exchange` *after* the send legs have been
    deposited and the receive has been posted; the caller runs its
    interior compute while the message crosses, then calls
    :meth:`finish` exactly once to wait, unpack and get back the same
    outward-ordered ``(2, 4, n_perp)`` ghost stack the blocking exchange
    returns.  ``finish`` returns ``None`` when nothing was in flight (a
    physical boundary on the receive side) — the provisional ghosts used
    during the overlap window were already final.

    ``side`` names which ghost side (``"low"``/``"high"``) the exchange
    feeds, so the edge-strip recompute knows which columns to redo.

    Borrow lifetime: on the process substrate the grouped (non-split)
    receive borrows a ring slot zero-copy from ``test()``-completion
    until ``finish`` unpacks it.  ``finish`` releases the slot before
    returning, so a plan that posts at most one exchange per peer per
    phase can never exhaust the ring; holding ``finish`` off across
    *further* receives from the same peer risks the borrow deadlock
    :class:`~repro.msglib.vchannel.DeadlockError` documents.
    """

    __slots__ = ("comm", "tag", "side", "_reqs", "_split", "_reverse",
                 "_done")

    def __init__(self, comm, tag, side, reqs, split, reverse) -> None:
        self.comm = comm
        self.tag = tag
        self.side = side
        self._reqs = reqs
        self._split = split
        self._reverse = reverse
        self._done = False

    @property
    def in_flight(self) -> bool:
        return self._reqs is not None and not self._done

    def finish(self):
        """Wait for the posted receive; the ghost stack, or ``None``."""
        if self._done:
            raise RuntimeError("PendingGhosts.finish() called twice")
        self._done = True
        if self._reqs is None:
            return None
        return _finish_flux(
            self.comm, self.tag, self._reqs, self._split, self._reverse
        )


@_traced("post")
def post_flux_exchange(
    comm,
    tag: str,
    F: np.ndarray,
    left: int | None,
    right: int | None,
    policy: ExchangePolicy,
    *,
    high: bool,
    axis: int = 1,
    buf: np.ndarray | None = None,
) -> PendingGhosts:
    """Split-phase counterpart of :func:`exchange_flux_high` / ``_low``.

    Deposits the same send legs (same wire tags, same message
    granularity — grouped pair or per-column — so the on-wire traffic is
    indistinguishable from the blocking exchange) and *posts* the
    receive instead of blocking on it: per-column messages via ``irecv``,
    grouped pairs via ``irecv_view`` so the process substrate borrows the
    ring slot zero-copy across the overlap window.
    """
    split = policy.split_flux_columns
    if high:
        t = f"{tag}:fxh"
        send_to, recv_from = left, right
        sl = slice(0, 2)
        reverse = False
    else:
        t = f"{tag}:fxl"
        send_to, recv_from = right, left
        sl = slice(-2, None)
        reverse = True
    if send_to is not None:
        _send_flux_columns(comm, send_to, t, _pair(F, axis, sl, buf), split)
    side = "high" if high else "low"
    if recv_from is None:
        return PendingGhosts(comm, t, side, None, split, reverse)
    if split:
        reqs = (
            comm.irecv(recv_from, f"{t}:c0"),
            comm.irecv(recv_from, f"{t}:c1"),
        )
    else:
        reqs = (comm.irecv_view(recv_from, t),)
    # Opportunistic probe: when phase skew means the neighbour's message
    # already landed, complete the receive now — on the process substrate
    # the grouped pair's ring slot is then borrowed zero-copy across the
    # whole interior compute and only unpacked at finish().
    for r in reqs:
        r.test()
    return PendingGhosts(comm, t, side, reqs, split, reverse)


@_traced("finish")
def _finish_flux(comm, tag, reqs, split: bool, reverse: bool) -> np.ndarray:
    """Wait + unpack for :meth:`PendingGhosts.finish` (traced so halo
    metrics cover the non-overlapped remainder of the exchange)."""
    if split:
        c0 = reqs[0].wait()
        c1 = reqs[1].wait()
        if reverse:
            return np.stack([c1, c0])
        return np.stack([c0, c1])
    with reqs[0].wait() as view:
        cols = view.array
        if reverse:
            return np.stack([cols[:, 1], cols[:, 0]])
        return np.stack([cols[:, 0], cols[:, 1]])


@_traced("state_low")
def exchange_state_halo_low(
    comm,
    tag: str,
    q: np.ndarray,
    left: int | None,
    right: int | None,
    axis: int = 1,
    buf: np.ndarray | None = None,
):
    """Two state lines flowing toward higher ranks (filter low ghosts)."""
    t = f"{tag}:qlo"
    if right is not None:
        comm.send(right, t, _pair(q, axis, slice(-2, None), buf))
    if left is None:
        return None
    return _recv_pair_stacked(comm, left, t, reverse=True)


class ExchangePlan:
    """Decomposition-agnostic exchange core for one rank.

    Owns the rank's :class:`~repro.parallel.decomposition.HaloTopology`,
    the message-grouping :class:`ExchangePolicy`, and preallocated pack
    buffers for every halo kind on every decomposed axis — so both the
    baseline and the fused kernel paths exchange without per-call pack
    allocations, for any decomposition.  The buffers are safe to reuse
    across directions and steps because ``Communicator.send`` copies its
    payload before returning.

    The ``*_x`` methods exchange with the axial (``left``/``right``)
    neighbours, the ``*_r`` methods with the radial (``lower``/``upper``)
    ones; each returns ``None`` ghosts at physical boundaries exactly like
    the module-level helpers it delegates to (tracing and metrics
    therefore instrument plan exchanges identically).  Exchanges on
    arrays whose perpendicular extent differs from the state's — e.g. the
    5-column characteristic-outflow window — automatically fall back to
    allocating packs.
    """

    def __init__(self, comm, topology, policy: ExchangePolicy, shape) -> None:
        nvars, nx, nr = shape
        self.comm = comm
        self.topo = topology
        self.policy = policy
        self.left, self.right = topology.left, topology.right
        self.lower, self.upper = topology.lower, topology.upper
        self._uvT_x = np.empty((3, nr)) if topology.exchanges_x else None
        self._pair_x = np.empty((nvars, 2, nr)) if topology.exchanges_x else None
        self._uvT_r = np.empty((3, nx)) if topology.exchanges_r else None
        self._pair_r = np.empty((nvars, 2, nx)) if topology.exchanges_r else None

    @staticmethod
    def _fit(buf: np.ndarray | None, n_perp: int) -> np.ndarray | None:
        return buf if buf is not None and buf.shape[-1] == n_perp else None

    # -- uvT halos (viscous gradients) ---------------------------------------
    def uvT_x(self, tag: str, u, v, T):
        return exchange_uvT(
            self.comm, tag, u, v, T, self.left, self.right, axis=0,
            buf=self._fit(self._uvT_x, u.shape[1]),
        )

    def uvT_r(self, tag: str, u, v, T):
        return exchange_uvT(
            self.comm, tag, u, v, T, self.lower, self.upper, axis=1,
            buf=self._fit(self._uvT_r, u.shape[0]),
        )

    # -- flux ghosts (one-sided predictor/corrector stencils) ----------------
    def flux_high_x(self, tag: str, F):
        return exchange_flux_high(
            self.comm, tag, F, self.left, self.right, self.policy, axis=1,
            buf=self._fit(self._pair_x, F.shape[2]),
        )

    def flux_low_x(self, tag: str, F):
        return exchange_flux_low(
            self.comm, tag, F, self.left, self.right, self.policy, axis=1,
            buf=self._fit(self._pair_x, F.shape[2]),
        )

    def flux_high_r(self, tag: str, F):
        return exchange_flux_high(
            self.comm, tag, F, self.lower, self.upper, self.policy, axis=2,
            buf=self._fit(self._pair_r, F.shape[1]),
        )

    def flux_low_r(self, tag: str, F):
        return exchange_flux_low(
            self.comm, tag, F, self.lower, self.upper, self.policy, axis=2,
            buf=self._fit(self._pair_r, F.shape[1]),
        )

    # -- split-phase flux ghosts (overlapped V6 exchange) --------------------
    def post_flux_high_x(self, tag: str, F) -> PendingGhosts:
        return post_flux_exchange(
            self.comm, tag, F, self.left, self.right, self.policy,
            high=True, axis=1, buf=self._fit(self._pair_x, F.shape[2]),
        )

    def post_flux_low_x(self, tag: str, F) -> PendingGhosts:
        return post_flux_exchange(
            self.comm, tag, F, self.left, self.right, self.policy,
            high=False, axis=1, buf=self._fit(self._pair_x, F.shape[2]),
        )

    def post_flux_high_r(self, tag: str, F) -> PendingGhosts:
        return post_flux_exchange(
            self.comm, tag, F, self.lower, self.upper, self.policy,
            high=True, axis=2, buf=self._fit(self._pair_r, F.shape[1]),
        )

    def post_flux_low_r(self, tag: str, F) -> PendingGhosts:
        return post_flux_exchange(
            self.comm, tag, F, self.lower, self.upper, self.policy,
            high=False, axis=2, buf=self._fit(self._pair_r, F.shape[1]),
        )

    # -- state halos (fourth-difference filter) ------------------------------
    def state_low_x(self, tag: str, q):
        return exchange_state_halo_low(
            self.comm, tag, q, self.left, self.right, axis=1,
            buf=self._fit(self._pair_x, q.shape[2]),
        )

    def state_high_x(self, tag: str, q):
        return exchange_state_halo_high(
            self.comm, tag, q, self.left, self.right, axis=1,
            buf=self._fit(self._pair_x, q.shape[2]),
        )

    def state_low_r(self, tag: str, q):
        return exchange_state_halo_low(
            self.comm, tag, q, self.lower, self.upper, axis=2,
            buf=self._fit(self._pair_r, q.shape[1]),
        )

    def state_high_r(self, tag: str, q):
        return exchange_state_halo_high(
            self.comm, tag, q, self.lower, self.upper, axis=2,
            buf=self._fit(self._pair_r, q.shape[1]),
        )


@_traced("state_high")
def exchange_state_halo_high(
    comm,
    tag: str,
    q: np.ndarray,
    left: int | None,
    right: int | None,
    axis: int = 1,
    buf: np.ndarray | None = None,
):
    """Two state lines flowing toward lower ranks (filter high ghosts)."""
    t = f"{tag}:qhi"
    if left is not None:
        comm.send(left, t, _pair(q, axis, slice(0, 2), buf))
    if right is None:
        return None
    return _recv_pair_stacked(comm, right, t, reverse=False)
