"""The distributed (SPMD) jet solver — one instance per rank.

:class:`BlockDistributedSolver` subclasses the serial
:class:`~repro.numerics.solver.CompressibleSolver` and overrides exactly the
points where subdomain boundaries appear, for *any* block decomposition
(axial, radial, or 2-D Cartesian) described by its
:class:`~repro.parallel.decomposition.HaloTopology`:

* viscous gradients receive neighbour ``(u, v, T)`` ghost lines on every
  decomposed axis;
* the one-sided flux stencils receive neighbour flux lines on the side the
  current predictor/corrector phase differences toward;
* the fourth-difference filter receives two conservative-state lines per
  decomposed axis;
* the stable ``dt`` is the all-reduce minimum of the per-block values;
* boundary treatments run only on the ranks owning them: inflow on ranks
  with no left neighbour, characteristic outflow on ranks with no right
  neighbour (a *collective* among radial neighbours when the radial axis is
  decomposed), axis mirror on ranks with no lower neighbour, and the
  far-field sponge on ranks with no upper neighbour.

All exchanges go through a per-rank
:class:`~repro.parallel.halo.ExchangePlan` with preallocated pack buffers,
so the fused :class:`~repro.numerics.kernels.StepWorkspace` works for every
decomposition.  Because every ghost is *real* neighbour data entering the
identical vectorized expressions, the distributed solver is
bitwise-identical to the serial solver for any decomposition, processor
count, communication version, and substrate — verified by the test suite.
This mirrors the paper's property that its parallelization changes
performance, never the numerics.
"""

from __future__ import annotations

import numpy as np

from ..grid import Grid
from ..msglib.api import Communicator
from ..numerics.boundary import (
    AXIS_STATE_SIGNS,
    apply_axis_ghosts,
    characteristic_outflow_rates,
)
from ..numerics.maccormack import PREDICTOR, SplitOperator, SweepWorkspace
from ..numerics.solver import CompressibleSolver, SolverConfig
from ..numerics.timestep import stable_dt
from ..physics.state import FlowState
from .decomposition import AxialDecomposition
from .halo import ExchangePlan, ExchangePolicy
from .versions import Version, version_by_number


class BlockDistributedSolver(CompressibleSolver):
    """Per-rank solver over any block decomposition.

    Subclasses pick the decomposition by overriding
    :meth:`_make_decomposition` (or passing ``decomp``); everything else —
    halo plumbing, fused-kernel workspace, filter halos, collective ``dt``,
    boundary ownership, gather, and checkpoint/restart — is decided by the
    decomposition's :class:`~repro.parallel.decomposition.HaloTopology`.

    Parameters
    ----------
    comm:
        A :class:`~repro.msglib.api.Communicator` (e.g. from a
        :class:`~repro.msglib.virtual.VirtualCluster`).
    global_grid:
        The full-domain grid.
    q_global:
        Full-domain conservative array to slice the local block from
        (shared read-only; each rank copies its block).
    config:
        The same :class:`~repro.numerics.solver.SolverConfig` the serial
        solver takes.
    version:
        Paper code version (5, 6 or 7) controlling message grouping.
    decomp:
        Optional explicit decomposition instance (otherwise built by
        :meth:`_make_decomposition`).
    overlap:
        Overlapped (split-phase) flux-ghost exchange: ``True``/``False``
        forces it on/off; ``None`` (default) follows the version's
        :class:`~repro.parallel.halo.ExchangePolicy` — i.e. Version 6
        overlaps, the others block.  Requires a kernel workspace (fused
        or compiled backend); the baseline backend silently stays
        blocking.  Results are bitwise-identical either way.
    """

    def __init__(
        self,
        comm: Communicator,
        global_grid: Grid,
        q_global: np.ndarray,
        config: SolverConfig,
        version: int | Version = 5,
        decomp=None,
        overlap: bool | None = None,
    ) -> None:
        self.comm = comm
        self._overlap = False  # finalized below, after the workspace exists
        if decomp is None:
            decomp = self._make_decomposition(global_grid, comm.size)
        self.decomp = decomp
        self.topo = decomp.topology(comm.rank)
        self.left, self.right = self.topo.left, self.topo.right
        self.lower, self.upper = self.topo.lower, self.topo.upper
        if isinstance(version, int):
            version = version_by_number(version)
        self.version = version
        self.policy = ExchangePolicy.from_version(version)
        self.global_grid = global_grid
        xsl, rsl = decomp.local_block(comm.rank)
        local_grid = decomp.local_grid(global_grid, comm.rank)
        local_state = FlowState(
            local_grid, q_global[:, xsl, rsl].copy(), config.gamma
        )
        bc = config.boundary
        cap = decomp.top_radial_size()
        if (
            bc is not None
            and bc.sponge is not None
            and cap is not None
            and bc.sponge.width > cap
        ):
            raise ValueError("sponge width exceeds the top radial slab")
        super().__init__(local_state, config)
        self.fm.halo_axis = decomp.halo_axis
        # The overlapped rate path lives in the scratch-backed _rate_into,
        # so overlap needs a workspace; without one (baseline backend) the
        # solver degrades to the blocking exchange.
        requested = self.policy.overlap if overlap is None else overlap
        self._overlap = bool(requested) and self._ws is not None
        self.overlap = self._overlap
        self.plan = ExchangePlan(comm, self.topo, self.policy, self.state.q.shape)
        # Attribute this solver's spans to its rank (also bound as the
        # thread default so MacCormack-phase spans inherit it under MPI,
        # where no VirtualCluster worker does the binding).
        self._trace_rank = comm.rank
        from ..obs import get_metrics, get_tracer

        get_tracer().bind_rank(comm.rank)
        get_metrics().bind_rank(comm.rank)
        # Baselines for per-step comm deltas in the streamed records.
        self._stream_comm_prev = (0.0, 0, 0)

    def _step_stream_record(self, dt: float, wall: float) -> dict:
        rec = super()._step_stream_record(dt, wall)
        stats = getattr(self.comm, "stats", None)
        if stats is not None:
            comm_s = stats.send_seconds + stats.recv_seconds
            sent = stats.bytes_sent
            recvd = stats.bytes_received
            p_comm, p_sent, p_recvd = self._stream_comm_prev
            rec["comm_ms"] = 1e3 * (comm_s - p_comm)
            rec["sent_bytes"] = sent - p_sent
            rec["halo_bytes"] = (sent - p_sent) + (recvd - p_recvd)
            self._stream_comm_prev = (comm_s, sent, recvd)
        faults = getattr(self.comm, "fault_stats", None)
        if faults is not None:
            rec["retries"] = (
                faults.retransmissions + faults.recv_retries
            )
            rec["lost"] = faults.lost_messages
        return rec

    def _make_decomposition(self, global_grid: Grid, nranks: int):
        raise NotImplementedError

    # -- tags -----------------------------------------------------------------
    def _tag(self, op: str, phase: str = "") -> str:
        return f"{self.nstep}:{op}:{phase}"

    def _active_high(self, variant: int, phase: str) -> bool:
        """Forward differencing (consuming high ghosts) for this phase?"""
        return (variant == 1) == (phase == PREDICTOR)

    # -- halo-aware flux evaluation ------------------------------------------
    def _uvT_exchange(self, u, v, T, tag: str, include_x: bool = True):
        """Route the packed ``(u, v, T)`` edge lines per the topology.

        Returns the halo in the shape ``FluxModel`` expects for this
        decomposition's ``halo_axis``: an ``(lo, hi)`` pair for 1-axis
        decompositions, a ``{'x': pair, 'r': pair}`` dict for 2-D blocks,
        or ``None`` when nothing was exchanged.
        """
        axis = self.fm.halo_axis
        if axis == 0:
            if self.left is None and self.right is None:
                return None
            return self.plan.uvT_x(tag, u, v, T)
        if axis == 1:
            if self.lower is None and self.upper is None:
                return None
            return self.plan.uvT_r(tag, u, v, T)
        halo_x = None
        if include_x and (self.left is not None or self.right is not None):
            halo_x = self.plan.uvT_x(f"{tag}:hx", u, v, T)
        halo_r = None
        if self.lower is not None or self.upper is not None:
            halo_r = self.plan.uvT_r(f"{tag}:hr", u, v, T)
        if halo_x is None and halo_r is None:
            return None
        return {"x": halo_x, "r": halo_r}

    def _uvT_halo(self, q: np.ndarray, tag: str, include_x: bool = True):
        """Exchange the paper's velocity/temperature ghost lines."""
        if not self.fm.mu:
            return None
        u, v, T = self.fm.primitives(q)
        return self._uvT_exchange(u, v, T, tag, include_x)

    def _uvT_halo_fused(self, q: np.ndarray, tag: str):
        """Halo exchange with primitives evaluated once into the workspace.

        Returns ``(halo, primitives_ready)``: the workspace flux kernels
        skip their own primitive evaluation when the packing already did
        it (bitwise the same values either way).  Dispatching through
        ``ws.primitives_into`` keeps the evaluation on whichever backend
        owns the workspace (fused numpy or compiled native loops).
        """
        ws = self._ws
        fm = self.fm
        if not fm.mu:
            return None, False
        ws.primitives_into(fm, q)
        return self._uvT_exchange(ws.u, ws.v, ws.T, tag), True

    def _flux_x(self, q, phase):
        """Halo-aware axial flux (fused when a workspace exists)."""
        tag = self._tag("x", phase)
        ws = self._ws
        if ws is None:
            return self.fm.axial_flux(q, uvT_halo=self._uvT_halo(q, tag))
        halo, ready = self._uvT_halo_fused(q, tag)
        return self.fm.axial_flux(q, uvT_halo=halo, ws=ws, primitives_ready=ready)

    def _flux_r(self, q, phase):
        """Halo-aware radial flux (fused when a workspace exists)."""
        tag = self._tag("r", phase)
        ws = self._ws
        if ws is None:
            return self.fm.radial_flux(q, uvT_halo=self._uvT_halo(q, tag))
        halo, ready = self._uvT_halo_fused(q, tag)
        return self.fm.radial_flux(q, uvT_halo=halo, ws=ws, primitives_ready=ready)

    def _x_workspace(self, variant: int) -> SweepWorkspace:  # type: ignore[override]
        solver = self
        ws = self._ws
        flux = lambda q, phase: (solver._flux_x(q, phase), None)
        scratch = ws.sweep_x if ws is not None else None
        if not self.topo.exchanges_x:
            # The axial direction is not decomposed: cubic ghosts as in
            # the serial code.
            return SweepWorkspace(flux=flux, scratch=scratch)

        def high_ghosts(F, phase):
            # Forward differencing consumes high-side ghosts.
            if solver._active_high(variant, phase):
                return solver.plan.flux_high_x(solver._tag("x", phase), F)
            return None

        def low_ghosts(F, phase):
            if not solver._active_high(variant, phase):
                return solver.plan.flux_low_x(solver._tag("x", phase), F)
            return None

        post_ghosts = None
        if self._overlap:

            def post_ghosts(F, phase):
                # Split phase: deposit send legs + post the receive for
                # the side this phase differences toward; the provisional
                # pass uses cubic ghosts on both sides (the inactive side
                # is never read by the one-sided stencil, the in-flight
                # side is recomputed from the real ghosts at finish).
                tag = solver._tag("x", phase)
                if solver._active_high(variant, phase):
                    pending = solver.plan.post_flux_high_x(tag, F)
                else:
                    pending = solver.plan.post_flux_low_x(tag, F)
                return None, None, pending

        return SweepWorkspace(
            flux=flux,
            low_ghosts=low_ghosts,
            high_ghosts=high_ghosts,
            scratch=scratch,
            post_ghosts=post_ghosts,
        )

    def _radial_ghost_callbacks(self, variant: int, tag_op: str):
        """Low/high ghost providers for an r-sweep over a radial block."""
        solver = self

        def low_ghosts(rG, phase):
            if not solver._active_high(variant, phase):  # backward: low side
                # Every rank participates (the exchange's *send* leg must
                # run even on ranks with no lower neighbour, or their
                # upper neighbour deadlocks); ranks at the axis get None
                # back and mirror instead.
                ghosts = solver.plan.flux_low_r(solver._tag(tag_op, phase), rG)
                if ghosts is None:
                    return apply_axis_ghosts(rG)
                return ghosts
            # Inactive side: values unused by the one-sided stencil.  Ranks
            # at the axis still mirror (matches serial); others extrapolate.
            if solver.lower is None:
                return apply_axis_ghosts(rG)
            return None

        def high_ghosts(rG, phase):
            if solver._active_high(variant, phase):
                # None at the far field selects cubic extrapolation, as in
                # the serial solver; the send leg runs on every rank.
                return solver.plan.flux_high_r(solver._tag(tag_op, phase), rG)
            return None

        return low_ghosts, high_ghosts

    def _radial_post_ghosts(self, variant: int, tag_op: str):
        """Split-phase ghost supply for an r-sweep over a radial block.

        The provisional ghosts mirror the blocking callbacks' *local*
        decisions exactly: the axis rank mirrors across the axis on the
        low side (for the active-low case no receive is ever posted
        there, so the mirror is already final and ``finish`` returns
        ``None``); everywhere else the in-flight side extrapolates
        cubically and is recomputed at finish.
        """
        solver = self

        def post_ghosts(rG, phase):
            tag = solver._tag(tag_op, phase)
            at_axis = solver.lower is None
            if solver._active_high(variant, phase):
                pending = solver.plan.post_flux_high_r(tag, rG)
                lo = apply_axis_ghosts(rG) if at_axis else None
                return lo, None, pending
            pending = solver.plan.post_flux_low_r(tag, rG)
            lo = apply_axis_ghosts(rG) if at_axis else None
            return lo, None, pending

        return post_ghosts

    def _r_workspace(self, variant: int | None = None) -> SweepWorkspace:  # type: ignore[override]
        solver = self
        ws = self._ws
        scratch = ws.sweep_r if ws is not None else None
        flux = lambda q, phase: solver._flux_r(q, phase)
        if not self.topo.exchanges_r:
            # The radial direction is not decomposed: serial ghost logic
            # (axis mirror / periodic wrap / cubic) on every rank.
            base = self._r_workspace_serial()
            return SweepWorkspace(
                flux=flux,
                low_ghosts=base.low_ghosts,
                high_ghosts=base.high_ghosts,
                inv_weight=base.inv_weight,
                scratch=scratch,
            )
        if variant is None:
            # Requested by serial helpers; halo-free (used only on windows
            # fully interior to the block, which never happens here — the
            # outflow helper overrides below).
            return super()._r_workspace_serial()
        low, high = self._radial_ghost_callbacks(variant, "r")
        return SweepWorkspace(
            flux=flux,
            low_ghosts=low,
            high_ghosts=high,
            inv_weight=self._inv_weight,
            scratch=scratch,
            post_ghosts=(
                self._radial_post_ghosts(variant, "r")
                if self._overlap
                else None
            ),
        )

    def _operators(self, variant: int):  # type: ignore[override]
        Lx = SplitOperator(
            axis=1,
            h=self.grid.dx,
            variant=variant,
            workspace=self._x_workspace(variant),
        )
        Lr = SplitOperator(
            axis=2,
            h=self.grid.dr,
            variant=variant,
            workspace=self._r_workspace(variant),
        )
        return Lx, Lr

    # -- time step: global reduction ----------------------------------------
    def current_dt(self) -> float:  # type: ignore[override]
        cfg = self.config
        if cfg.dt is not None:
            return cfg.dt
        if (
            self._dt_cached is None
            or self.nstep % max(cfg.dt_recompute_every, 1) == 0
        ):
            local = stable_dt(
                self.state.q,
                self.grid.dx,
                self.grid.dr,
                cfl=cfg.cfl,
                mu=self.fm.mu,
                gamma=cfg.gamma,
            )
            self._dt_cached = self.comm.allreduce_min(
                local, tag=self._tag("dt")
            )
        return self._dt_cached

    # -- filter halos ---------------------------------------------------------
    def _state_ghosts(self, q: np.ndarray, axis: int, side: str):  # type: ignore[override]
        if axis == 1:
            if not self.topo.exchanges_x:
                return super()._state_ghosts(q, axis, side)
            tag = f"{self._tag('filter')}:x"
            if side == "low":
                return self.plan.state_low_x(tag, q)
            return self.plan.state_high_x(tag, q)
        if not self.topo.exchanges_r:
            return super()._state_ghosts(q, axis, side)
        tag = f"{self._tag('filter')}:r"
        if side == "low":
            ghosts = self.plan.state_low_r(tag, q)
            if ghosts is None and self.config.axisymmetric:
                signs = AXIS_STATE_SIGNS[:, None]
                return np.stack([signs * q[:, :, 0], signs * q[:, :, 1]])
            return ghosts
        return self.plan.state_high_r(tag, q)

    # -- characteristic outflow -----------------------------------------------
    def _outflow_rates(self, q: np.ndarray, variant: int) -> np.ndarray:  # type: ignore[override]
        if not self.topo.exchanges_r:
            # The owning rank holds the full radial extent: the serial
            # (cached, halo-free) helper applies unchanged.
            return super()._outflow_rates(q, variant)
        # The outflow column is split across radial neighbours: the radial
        # part of the boundary rates needs neighbour rows, exchanged on the
        # 5-column window by all participating ranks symmetrically.  The
        # window shape differs from the state's, so this stays on the
        # allocating kernels regardless of backend.
        window = np.ascontiguousarray(q[:, -5:, :])
        tag = self._tag("ofw")
        # The serial helper uses one-sided x-gradients on the window (no
        # x-halo); only the radial ghosts are real neighbour data.
        halo = self._uvT_halo(window, f"{tag}:uvx", include_x=False)
        F = self.fm.axial_flux(window, uvT_halo=halo)
        h = self.grid.dx
        dF = (7.0 * (F[:, -1] - F[:, -2]) - (F[:, -2] - F[:, -3])) / (6.0 * h)

        solver = self

        def wflux(qw, phase):
            whalo = solver._uvT_halo(qw, f"{tag}:uvr:{phase}", include_x=False)
            return solver.fm.radial_flux(qw, uvT_halo=whalo)

        low, high = self._radial_ghost_callbacks(variant, "ofwr")
        ws = SweepWorkspace(
            flux=wflux,
            low_ghosts=low,
            high_ghosts=high,
            inv_weight=self._inv_weight,
        )
        Lr = SplitOperator(axis=2, h=self.grid.dr, variant=variant, workspace=ws)
        radial_rate = Lr._rate(window, PREDICTOR)[:, -1, :]
        return -dF + radial_rate

    # -- boundaries: only the owning ranks act --------------------------------
    def _apply_boundaries(self, q_tail: np.ndarray | None, dt: float, variant: int):  # type: ignore[override]
        bc = self.config.boundary
        if bc is None:
            return
        q = self.state.q
        if bc.characteristic_outflow and self.right is None:
            # When the radial axis is decomposed this is a *collective*
            # among the outflow-owning ranks (all of which have
            # ``right is None``): the window exchanges inside
            # ``_outflow_rates`` keep them in lockstep.
            q_t = self._outflow_rates(q_tail, variant)
            rates = characteristic_outflow_rates(
                q_tail[:, -1, :], q_t, self.config.gamma
            )
            q[:, -1, :] = q_tail[:, -1, :] + dt * rates
        if bc.inflow is not None and self.left is None:
            q[:, 0, :] = bc.inflow_column(self.grid.r, self.t, self.config.gamma)
        if (
            bc.sponge is not None
            and self._sponge_col is not None
            and self.upper is None
        ):
            bc.sponge.apply(q, self._sponge_col)

    # -- gathering ------------------------------------------------------------
    def gather_state(self) -> FlowState | None:
        """Assemble the global state on rank 0 (``None`` elsewhere)."""
        parts = self.comm.gather_arrays(self.state.q, tag=f"{self.nstep}:gather")
        if parts is None:
            return None
        return FlowState(
            self.global_grid, self.decomp.assemble(parts), self.config.gamma
        )

    # -- checkpoint/restart ----------------------------------------------------
    def checkpoint(self) -> tuple[int, float, np.ndarray] | None:
        """Gather a recoverable ``(nstep, t, q_global)`` snapshot on rank 0.

        All ranks must call this collectively (it is a gather); non-root
        ranks return ``None``.  The checkpointing runner stores the result
        in a :class:`~repro.parallel.checkpoint.CheckpointStore` outside
        the cluster so a crashed run can resume from it.
        """
        parts = self.comm.gather_arrays(self.state.q, tag=f"{self.nstep}:ckpt")
        if parts is None:
            return None
        return self.nstep, self.t, self.decomp.assemble(parts)


class DistributedSolver(BlockDistributedSolver):
    """Per-rank solver over the paper's axial block decomposition."""

    def _make_decomposition(self, global_grid: Grid, nranks: int):
        return AxialDecomposition(global_grid.nx, nranks)
