"""Inviscid fluxes and the axisymmetric source term.

The governing equations in the paper's ``r``-weighted conservative form are

.. math::

    (r q)_t + (r F)_x + (r G)_r = S,

with

.. math::

    q = \\begin{pmatrix} \\rho \\\\ \\rho u \\\\ \\rho v \\\\ E \\end{pmatrix},
    \\quad
    F = \\begin{pmatrix} \\rho u \\\\ \\rho u^2 + p - \\tau_{xx} \\\\
        \\rho u v - \\tau_{xr} \\\\
        \\rho u H - u\\tau_{xx} - v\\tau_{xr} + q_x \\end{pmatrix},
    \\quad
    G = \\begin{pmatrix} \\rho v \\\\ \\rho u v - \\tau_{xr} \\\\
        \\rho v^2 + p - \\tau_{rr} \\\\
        \\rho v H - u\\tau_{xr} - v\\tau_{rr} + q_r \\end{pmatrix},

and the geometric source ``S = (0, 0, p - tau_theta_theta, 0)`` acting on the
radial momentum (it appears because ``d(r p)/dr = r dp/dr + p``).  This module
provides the *inviscid* parts; :mod:`repro.physics.viscous` supplies the
stress/heat-flux contributions.  Dropping the viscous terms recovers the
Euler equations exactly as the paper describes.
"""

from __future__ import annotations

import numpy as np

from .. import constants


def inviscid_fluxes(q: np.ndarray, gamma: float = constants.GAMMA):
    """Inviscid axial and radial flux vectors for a conservative array.

    Parameters
    ----------
    q:
        Conservative array ``(4, ...)`` ordered ``(rho, rho u, rho v, E)``.

    Returns
    -------
    (F, G, p):
        Flux arrays with the same shape as ``q`` plus the pressure field
        (returned because every caller needs it again for the source term
        and boundary conditions — recomputing it would double the division
        count the paper's Version 4 works so hard to remove).
    """
    rho, rho_u, rho_v, E = q[0], q[1], q[2], q[3]
    inv_rho = 1.0 / rho  # single division, reused (paper Version 4 idiom)
    u = rho_u * inv_rho
    v = rho_v * inv_rho
    p = (gamma - 1.0) * (E - 0.5 * (rho_u * u + rho_v * v))
    Ep = E + p

    F = np.empty_like(q)
    F[0] = rho_u
    F[1] = rho_u * u + p
    F[2] = rho_u * v
    F[3] = u * Ep

    G = np.empty_like(q)
    G[0] = rho_v
    G[1] = rho_v * u
    G[2] = rho_v * v + p
    G[3] = v * Ep
    return F, G, p


def primitives_into(
    q: np.ndarray,
    gamma: float,
    inv_rho: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    p: np.ndarray,
    tmp_a: np.ndarray,
    tmp_b: np.ndarray,
    T: np.ndarray | None = None,
) -> None:
    """Primitive fields evaluated once into caller-owned buffers.

    Bitwise-identical, operation for operation, to the expressions in
    :func:`inviscid_fluxes` and ``FluxModel.primitives`` — the fused kernel
    backend computes them a single time and shares the result between the
    inviscid assembly and the viscous stress gradients (the baseline path
    evaluates the same expressions twice per flux call).
    """
    np.divide(1.0, q[0], out=inv_rho)
    np.multiply(q[1], inv_rho, out=u)
    np.multiply(q[2], inv_rho, out=v)
    # p = (gamma - 1) * (E - 0.5 * (rho_u * u + rho_v * v))
    np.multiply(q[1], u, out=tmp_a)
    np.multiply(q[2], v, out=tmp_b)
    np.add(tmp_a, tmp_b, out=tmp_a)
    np.multiply(tmp_a, 0.5, out=tmp_a)
    np.subtract(q[3], tmp_a, out=tmp_a)
    np.multiply(tmp_a, gamma - 1.0, out=p)
    if T is not None:
        # T = gamma * p / rho, with the single division reused.
        np.multiply(p, gamma, out=tmp_a)
        np.multiply(tmp_a, inv_rho, out=T)


def axial_inviscid_into(
    q: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    p: np.ndarray,
    F: np.ndarray,
    tmp: np.ndarray,
) -> np.ndarray:
    """Axial inviscid flux only, into ``F`` (the radial ``G`` is skipped).

    The allocating :func:`inviscid_fluxes` always assembles both flux
    vectors although each split sweep consumes exactly one of them; this
    kernel writes the four axial components into a preallocated ``F`` and
    is bitwise-identical to the corresponding rows of the full evaluation.
    """
    np.copyto(F[0], q[1])
    np.multiply(q[1], u, out=F[1])
    F[1] += p
    np.multiply(q[1], v, out=F[2])
    np.add(q[3], p, out=tmp)  # E + p
    np.multiply(u, tmp, out=F[3])
    return F


def radial_inviscid_into(
    q: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    p: np.ndarray,
    G: np.ndarray,
    tmp: np.ndarray,
) -> np.ndarray:
    """Radial inviscid flux only, into ``G`` (the axial ``F`` is skipped)."""
    np.copyto(G[0], q[2])
    np.multiply(q[2], u, out=G[1])
    np.multiply(q[2], v, out=G[2])
    G[2] += p
    np.add(q[3], p, out=tmp)  # E + p
    np.multiply(v, tmp, out=G[3])
    return G


def axisymmetric_source(
    q: np.ndarray,
    p: np.ndarray,
    tau_tt: np.ndarray | float = 0.0,
) -> np.ndarray:
    """Geometric source ``S = (0, 0, p - tau_theta_theta, 0)``.

    ``tau_tt`` is the azimuthal normal stress computed by
    :func:`repro.physics.viscous.stress_tensor`; it is zero for Euler.
    """
    S = np.zeros_like(q)
    S[2] = p - tau_tt
    return S
