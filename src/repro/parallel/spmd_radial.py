"""Radial-block distributed solver — the paper's Section-8 future work.

"We will then explore other problem decompositions such as blocking along
the radial direction, for example, and study their impact on the
performance."  This module makes that variant executable: each rank owns a
radial slab with full axial extent, so the *radial* sweep needs halo
exchange (rows of length ``nx`` instead of columns of length ``nr``) while
the axial sweep is communication-free — the mirror image of
:class:`repro.parallel.spmd.DistributedSolver`.

Differences from axial blocking (all decided by the decomposition's
:class:`~repro.parallel.decomposition.HaloTopology` in the shared
:class:`~repro.parallel.spmd.BlockDistributedSolver` base):

* every rank owns a piece of the inflow and outflow columns, so the
  characteristic outflow treatment becomes a *collective* step: the radial
  part of the boundary rates needs neighbour rows, exchanged on the
  5-column outflow window by all ranks symmetrically;
* the axis (rank 0) and far-field/sponge (last rank) boundaries live on
  single ranks;
* viscous ``d/dr`` gradients need row ghosts in both sweeps.

Like the axial solver, every ghost is real neighbour data entering the
identical vectorized expressions, so the result is bitwise-identical to the
serial solver — with both the baseline and the fused kernel backends, on
every substrate, with checkpoint/restart — verified by the test suite.
"""

from __future__ import annotations

from ..grid import Grid
from .decomposition import RadialDecomposition
from .spmd import BlockDistributedSolver


class RadialDistributedSolver(BlockDistributedSolver):
    """Per-rank solver over a radial block decomposition."""

    def _make_decomposition(self, global_grid: Grid, nranks: int):
        return RadialDecomposition(global_grid.nr, nranks)
