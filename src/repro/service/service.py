"""The run service core: queue, scheduler, worker pool, dedupe, streaming.

:class:`RunService` is the in-process engine behind both the Unix-socket
server (``repro serve``) and direct library use.  Design points:

* **Worker OS processes.**  Jobs execute in forked worker processes (the
  PR 5 process-substrate discipline): a crashing or runaway run cannot
  take the service down, and real runs get real cores.  A worker that
  dies mid-job (killed, segfault) is detected by liveness polling; its
  job fails with a structured error — never a hang — and a replacement
  worker is forked.
* **Fingerprint dedupe, two layers.**  At submit time a request whose
  ``fingerprint()`` is already in the :class:`~repro.service.store.ResultStore`
  completes instantly as ``cached``; one whose fingerprint is already
  *in flight* attaches to the running execution (``attached``) and
  completes when it does.  Either way: N identical submissions, one
  execution, N results.
* **Status streaming.**  Every job transition bumps a version counter
  and wakes waiters; :meth:`RunService.watch` yields each transition as
  it happens (the socket server forwards these lines to clients).
* **Persistent results.**  Workers write the pickled payload into the
  store's content-addressed ``results/`` directory; the parent (single
  writer) appends the index line.  A restarted service sees every prior
  result.

Workers force ``metrics=True`` on run requests (every cached entry then
carries a :class:`~repro.obs.PerfReport`) and by default append to the
anchored run ledger — the service is how the run database grows.
"""

from __future__ import annotations

import itertools
import multiprocessing as _mp
import os
import queue as _queue
import threading
import time
import traceback
from collections import deque
from struct import error as struct_error
from dataclasses import dataclass, field, replace as _dc_replace
from pathlib import Path
from typing import Any, Iterator

from ..obs import (
    FlightRecorder,
    QueueStepStream,
    SpanRecord,
    StragglerDetector,
    Trace,
    TraceContext,
)
from ..obs.flight import FlightRing, write_flight_jsonl
from ..request import RunRequest
from .experiments import EXPERIMENT_SCHEMA, ExperimentRequest
from .store import ResultStore

__all__ = ["Job", "JobFailed", "RunService"]

#: Liveness/queue poll interval for the pump thread (seconds).
_POLL = 0.1
#: After a job goes terminal, ``tail`` keeps draining the fan-in queue
#: until no new record has arrived for this long (in-flight records can
#: trail the worker's completion message through the queue feeders).
_TAIL_GRACE = 0.5

#: Job states.  ``cached`` is terminal-on-arrival: served from the store
#: without execution.  ``attached`` jobs mirror their primary's state.
_TERMINAL = frozenset({"done", "failed", "cached"})


class JobFailed(RuntimeError):
    """Asking for the result of a failed job; carries the job's error."""


@dataclass
class Job:
    """One submission's lifecycle record (safe to snapshot/serialize)."""

    id: str
    fingerprint: str
    kind: str
    """``"run"`` or ``"experiment"``."""
    request: dict
    """Wire form of the submitted request."""
    status: str = "queued"
    """``queued`` → ``running`` → ``done`` | ``failed``; or ``cached``."""
    error: str | None = None
    """Structured failure description (``status == "failed"``)."""
    cached: bool = False
    """Served from the persistent store without execution."""
    attached_to: str | None = None
    """Primary job id this submission deduped onto (in-flight dedupe)."""
    worker_pid: int | None = None
    """PID of the worker executing this job (while ``running``)."""
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    version: int = 0
    """Monotone transition counter (drives ``watch`` streaming)."""
    context: dict | None = None
    """Wire form of the job's :class:`~repro.obs.TraceContext`."""
    flight: dict | None = None
    """``rank -> last flight-recorder events`` recovered from a failed
    execution (the post-mortem half of the failure report)."""
    flight_path: str | None = None
    """The worker's shared flight-ring file, announced before execution so
    the parent can read the last events of every rank even after the
    worker is SIGKILLed."""

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "request": self.request,
            "status": self.status,
            "error": self.error,
            "cached": self.cached,
            "attached_to": self.attached_to,
            "worker_pid": self.worker_pid,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "version": self.version,
            "context": self.context,
            "flight": (
                {str(r): evs for r, evs in self.flight.items()}
                if self.flight
                else None
            ),
            "flight_path": self.flight_path,
        }


def _encode_request(request) -> tuple[str, dict, str]:
    """Normalize a submission to ``(kind, wire_dict, fingerprint)``."""
    if isinstance(request, dict):
        if request.get("schema") == EXPERIMENT_SCHEMA:
            request = ExperimentRequest.from_dict(request)
        else:
            request = RunRequest.from_dict(request)
    if isinstance(request, ExperimentRequest):
        return "experiment", request.to_dict(), request.fingerprint()
    if isinstance(request, RunRequest):
        return "run", request.to_dict(), request.fingerprint()
    raise TypeError(
        "submit() takes a RunRequest, an ExperimentRequest, or a wire "
        f"dict; got {type(request).__name__}"
    )


def _flight_ring_path(store_root: str, fingerprint: str) -> str:
    """Where a run's crash-survivable flight ring lives in the store."""
    return str(Path(store_root) / "results" / f"{fingerprint}.flight.ring")


def _flight_jsonl_path(ring_path: str) -> str:
    """The flushed post-mortem file beside a ring (``.ring`` -> ``.jsonl``)."""
    base = ring_path[: -len(".ring")] if ring_path.endswith(".ring") else ring_path
    return base + ".jsonl"


def _worker_main(tasks, results, store_root: str, policy: dict, stream_q) -> None:
    """Worker process loop: execute queued requests, ship results back.

    Payloads are written straight into the store's content-addressed
    ``results/`` directory (atomic rename); only small manifests cross
    the result queue.  ``None`` is the poison pill.

    Telemetry plumbing per run job:

    * per-step records flow through ``stream_q`` (a bounded fan-in queue
      shared by all workers, tagged with the job id) — the rank processes
      a process-substrate run forks inherit the queue and publish
      directly;
    * a flight ring file is announced to the parent *before* execution
      (``("flight", ...)``) so the last events of every rank survive this
      worker being SIGKILLed;
    * the submit-time :class:`~repro.obs.TraceContext` is adopted one
      tier down, so every rank's spans join the client's trace tree.
    """
    from ..msglib.process import bind_to_parent_lifetime

    # Workers are non-daemonic (they fork rank children), so they would
    # survive a SIGKILLed service process; die with the parent instead.
    bind_to_parent_lifetime()
    store = ResultStore(store_root)
    while True:
        item = tasks.get()
        if item is None:
            return
        job_id, kind, req_dict, ctx_dict = item
        results.put(("started", job_id, os.getpid(), None))
        ring_path = None
        try:
            if kind == "experiment":
                req = ExperimentRequest.from_dict(req_dict)
                text = req.execute()
                store.write_payload(req.fingerprint(), text)
                report = req.report_for(text)
            else:
                from ..api import run_request

                req = RunRequest.from_dict(req_dict)
                fp = req.fingerprint()
                ring_path = _flight_ring_path(store_root, fp)
                os.makedirs(os.path.dirname(ring_path), exist_ok=True)
                results.put(("flight", job_id, os.getpid(), ring_path))
                obs = _dc_replace(
                    req.observability,
                    metrics=req.observability.metrics
                    or policy.get("force_metrics", True),
                    ledger=req.observability.ledger
                    or policy.get("ledger", False),
                    stream=(
                        QueueStepStream(stream_q, job=job_id)
                        if stream_q is not None
                        else req.observability.stream
                    ),
                    flight=FlightRecorder(ring_path=ring_path),
                )
                req = req.replace(observability=obs)
                context = (
                    TraceContext.from_dict(ctx_dict).child(
                        "service.worker", origin="worker"
                    )
                    if ctx_dict
                    else None
                )
                result = run_request(req, context=context)
                result.request = None  # live objects stay out of the pickle
                store.write_payload(fp, result)
                if result.flight:
                    write_flight_jsonl(
                        result.flight, _flight_jsonl_path(ring_path)
                    )
                try:  # clean exit: the jsonl flush supersedes the ring
                    os.unlink(ring_path)
                except OSError:
                    pass
                report = result.perf.to_dict() if result.perf else {}
            results.put(("done", job_id, os.getpid(), report))
        except BaseException as exc:  # ship *everything* back structured
            err = (
                f"{type(exc).__name__}: {exc}\n"
                + "".join(traceback.format_exception(exc)[-3:])
            )
            detail: dict = {"message": err, "flight_path": ring_path}
            flight = getattr(exc, "flight", None)
            if flight:
                detail["flight"] = {
                    int(r): list(evs) for r, evs in flight.items()
                }
            results.put(("failed", job_id, os.getpid(), detail))


class _JobStream:
    """Parent-side view of one job's streamed step records.

    A bounded ring of the most recent records (``tail`` serves from it),
    a monotone ``_seq`` stamped on arrival (so tailers can resume), and a
    live :class:`~repro.obs.StragglerDetector` fed every record (``top``
    reports its verdict while the job runs).
    """

    def __init__(self, maxlen: int = 256) -> None:
        self.records: deque = deque(maxlen=maxlen)
        self.total = 0
        self.first: float | None = None
        self.last: float | None = None
        self.detector = StragglerDetector()

    def add(self, record: dict) -> None:
        self.total += 1
        record = dict(record)
        record["_seq"] = self.total
        now = time.monotonic()
        if self.first is None:
            self.first = now
        self.last = now
        self.records.append(record)
        self.detector.observe(record)

    @property
    def record_rate(self) -> float | None:
        """Streamed records per second (all ranks pooled), or ``None``."""
        if self.first is None or self.total < 2 or self.last <= self.first:
            return None
        return (self.total - 1) / (self.last - self.first)


class RunService:
    """Async job-queue run service over a pool of worker OS processes.

    Use as a context manager (or call :meth:`start` / :meth:`close`)::

        with RunService(workers=2) as svc:
            job = svc.submit(RunRequest("jet", steps=50,
                                        scenario_kw={"nx": 48, "nr": 24}))
            job = svc.wait(job.id)
            res = svc.result(job.id)

    Parameters
    ----------
    workers:
        Worker processes to fork (each executes one job at a time).
    store:
        A :class:`~repro.service.store.ResultStore` (or path / ``None``
        for the anchored default) — the persistent dedupe cache.
    ledger:
        Append every executed run's PerfReport to the anchored run
        ledger (default ``True`` — service runs feed the run database).
    """

    def __init__(
        self,
        workers: int = 2,
        store: ResultStore | str | os.PathLike | None = None,
        *,
        ledger: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self.workers = workers
        self._policy = {"force_metrics": True, "ledger": ledger}
        try:
            self._ctx = _mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "RunService requires the 'fork' start method (POSIX only), "
                "matching the process substrate"
            ) from None
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        # Bounded fan-in for per-step telemetry (publishers drop on full —
        # a slow parent never stalls a solver step).
        self._stream_q = self._ctx.Queue(4096)
        self._streams: dict[str, _JobStream] = {}
        self._procs: list[Any] = []
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._inflight: dict[str, str] = {}  # fingerprint -> primary job id
        self._followers: dict[str, list[str]] = {}  # primary id -> followers
        self._pid_job: dict[int, str] = {}  # worker pid -> running job id
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._pump: threading.Thread | None = None
        self._closing = False
        self.executed = 0
        """Jobs actually executed by a worker (cache/dedupe hits excluded)."""

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RunService":
        if self._pump is not None:
            return self
        for _ in range(self.workers):
            self._spawn_worker()
        self._pump = threading.Thread(
            target=self._pump_loop, name="repro-service-pump", daemon=True
        )
        self._pump.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers and the pump; queued jobs stay queued (persist by
        resubmitting after a restart — completed work is in the store)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._changed.notify_all()
        for _ in self._procs:
            self._tasks.put(None)
        deadline = time.monotonic() + timeout
        for p in self._procs:
            p.join(max(deadline - time.monotonic(), 0.1))
            if p.is_alive():
                p.terminate()
                p.join(1.0)
            if p.is_alive():  # non-daemonic workers must not outlive us
                p.kill()
                p.join(1.0)
        if self._pump is not None:
            self._pump.join(timeout=2.0)
        self._tasks.close()
        self._results.close()
        self._stream_q.close()

    def __enter__(self) -> "RunService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _spawn_worker(self) -> None:
        # NOT daemonic: a worker must be able to fork its own children —
        # the process substrate runs one OS process per rank inside the
        # worker, and daemonic processes may not have children.  close()
        # joins, then terminates, then kills, so they never outlive us.
        p = self._ctx.Process(
            target=_worker_main,
            args=(self._tasks, self._results, str(self.store.root),
                  dict(self._policy), self._stream_q),
            daemon=False,
            name=f"repro-service-worker-{len(self._procs)}",
        )
        p.start()
        self._procs.append(p)

    # -- submission ----------------------------------------------------------

    def submit(self, request, context=None) -> Job:
        """Enqueue (or instantly satisfy) one request; returns its Job.

        Dedupe order: persistent store first (``cached``), then in-flight
        fingerprints (``attached``), then a fresh queue entry.

        ``context`` is the submitting client's
        :class:`~repro.obs.TraceContext` (object or wire dict); ``None``
        mints a fresh one, so every job carries a distributed trace
        identity that the worker — and each forked rank — joins.
        """
        if self._pump is None:
            raise RuntimeError("RunService is not started (use 'with' or start())")
        kind, wire, fp = _encode_request(request)
        if context is None:
            context = TraceContext.mint(origin="service")
        elif isinstance(context, dict):
            context = TraceContext.from_dict(context)
        now = time.time()
        with self._lock:
            if self._closing:
                raise RuntimeError("RunService is closing")
            job = Job(
                id=f"job-{next(self._ids):06d}",
                fingerprint=fp,
                kind=kind,
                request=wire,
                submitted=now,
                context=context.to_dict(),
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            if fp in self.store:
                job.status = "cached"
                job.cached = True
                job.finished = now
                self._bump(job)
                return _snapshot(job)
            primary_id = self._inflight.get(fp)
            if primary_id is not None:
                primary = self._jobs[primary_id]
                job.attached_to = primary_id
                job.status = primary.status
                job.started = primary.started
                job.worker_pid = primary.worker_pid
                self._followers.setdefault(primary_id, []).append(job.id)
                self._bump(job)
                return _snapshot(job)
            self._inflight[fp] = job.id
            self._tasks.put((job.id, kind, wire, job.context))
            self._bump(job)
            return _snapshot(job)

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._lock:
            return _snapshot(self._require(job_id))

    def jobs(self) -> list[Job]:
        with self._lock:
            return [_snapshot(self._jobs[i]) for i in self._order]

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            job = self._require(job_id)
            while not job.terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._changed.wait(timeout=remaining if remaining else _POLL)
                if self._closing and not job.terminal:
                    break
            return _snapshot(job)

    def watch(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[Job]:
        """Yield a snapshot at each status transition, ending terminal.

        This is the streaming surface: the socket server forwards each
        yielded snapshot as one JSON line to the watching client.
        """
        last_version = -1
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                job = self._require(job_id)
                while job.version == last_version and not job.terminal:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return
                    self._changed.wait(
                        timeout=remaining if remaining else _POLL
                    )
                    if self._closing:
                        break
                if job.version == last_version:
                    return
                last_version = job.version
                snap = _snapshot(job)
            yield snap
            if snap.terminal:
                return

    def result(self, job_id: str) -> Any:
        """The stored payload of a completed job (RunResult / text).

        Raises :class:`JobFailed` for failed jobs and ``RuntimeError``
        for jobs still in flight.
        """
        with self._lock:
            job = self._require(job_id)
            if job.status == "failed":
                raise JobFailed(f"{job.id}: {job.error}")
            if not job.terminal:
                raise RuntimeError(
                    f"{job.id} is {job.status}; wait() for it first"
                )
            fp = job.fingerprint
        self.store.refresh()
        return self.store.load_result(fp)

    # -- telemetry -----------------------------------------------------------

    def tail(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict]:
        """Yield the job's per-step stream records as they arrive.

        Serves from the parent-side ring (records already buffered come
        first), then follows the live stream; returns once the job is
        terminal and the ring is drained (or on timeout).  Each yielded
        record is a ``repro.stream/1`` dict plus ``_seq`` (arrival order)
        and ``job`` tags.

        A ``cached`` job (store dedupe hit at submit) never forked a
        worker, so no stream records exist or will ever arrive; tailing
        one yields a single served-from-cache marker record and returns
        immediately instead of waiting out the post-terminal grace
        window.
        """
        with self._lock:
            job = self._require(job_id)
            if job.cached:
                from ..obs.stream import STREAM_SCHEMA

                yield {
                    "schema": STREAM_SCHEMA,
                    "kind": "cached",
                    "job": job_id,
                    "fingerprint": job.fingerprint,
                    "_seq": 0,
                }
                return
        deadline = None if timeout is None else time.monotonic() + timeout
        last_seq = 0
        grace = None
        while True:
            with self._lock:
                job = self._require(job_id)
                ring = self._streams.get(job_id)
                fresh = (
                    [r for r in ring.records if r["_seq"] > last_seq]
                    if ring is not None
                    else []
                )
                if fresh:
                    last_seq = fresh[-1]["_seq"]
                    grace = None
                else:
                    if self._closing:
                        return
                    if job.terminal:
                        # Records the ranks published just before finishing
                        # may still be in flight through the fan-in queue's
                        # feeder threads; keep draining through a short
                        # grace window that fresh arrivals re-arm.
                        if grace is None:
                            grace = time.monotonic() + _TAIL_GRACE
                        elif time.monotonic() >= grace:
                            return
                        self._drain_stream()
                        self._changed.wait(timeout=0.02)
                        continue
                    remaining = _POLL
                    if deadline is not None:
                        remaining = min(
                            _POLL, deadline - time.monotonic()
                        )
                        if remaining <= 0:
                            return
                    self._changed.wait(timeout=remaining)
                    continue
            for record in fresh:
                yield dict(record)

    def top(self) -> dict:
        """A live utilization snapshot (the ``repro top`` payload).

        Queue depth, busy workers, dedupe hit rate, and one row per
        running job: latest step per rank pool, streamed-record rate, and
        the online straggler verdict.
        """
        with self._lock:
            jobs = [self._jobs[i] for i in self._order]
            queued = sum(
                1
                for j in jobs
                if j.status == "queued" and j.attached_to is None
            )
            running = [
                j
                for j in jobs
                if j.status == "running" and j.attached_to is None
            ]
            dedupe_hits = sum(
                1 for j in jobs if j.cached or j.attached_to is not None
            )
            rows = []
            for j in running:
                ring = self._streams.get(j.id)
                row = {
                    "id": j.id,
                    "scenario": j.request.get("scenario"),
                    "worker_pid": j.worker_pid,
                    "step": None,
                    "records_per_s": None,
                    "balance": None,
                }
                if ring is not None and ring.records:
                    row["step"] = max(
                        r.get("step", 0) for r in ring.records
                    )
                    rate = ring.record_rate
                    row["records_per_s"] = (
                        round(rate, 2) if rate is not None else None
                    )
                    row["balance"] = ring.detector.verdict()
                rows.append(row)
            return {
                "workers": self.workers,
                "busy": len(self._pid_job),
                "queue_depth": queued,
                "jobs_total": len(jobs),
                "executed": self.executed,
                "dedupe_hits": dedupe_hits,
                "dedupe_rate": (
                    round(dedupe_hits / len(jobs), 4) if jobs else 0.0
                ),
                "stream_records": sum(
                    s.total for s in self._streams.values()
                ),
                "running": rows,
            }

    def job_trace(self, job_id: str) -> Trace:
        """One merged :class:`~repro.obs.Trace` for a completed job.

        Synthetic service-tier spans (``client.submit`` → ``service.job``
        → ``service.worker``, rank ``-1``) frame the stored worker trace;
        worker spans are rebased onto the job's wall-clock epoch and
        parentless ones re-parented under ``service.worker``, so a
        Perfetto export of the result shows client, service, worker and
        every rank as a single tree sharing the job's trace id.
        """
        with self._lock:
            job = _snapshot(self._require(job_id))
        if not job.terminal:
            raise RuntimeError(
                f"{job.id} is {job.status}; the merged trace exists once "
                "the job completes"
            )
        merged = Trace(meta={"name": f"service:{job.id}"})
        if job.context:
            merged.meta["trace_id"] = job.context.get("trace_id")
            merged.meta["trace_origin"] = "service"
        started = job.started or job.submitted
        finished = job.finished or started
        merged.spans.append(
            SpanRecord(
                "client.submit", "service", -1, job.submitted, started, 0
            )
        )
        merged.spans.append(
            SpanRecord(
                "service.job", "service", -1, job.submitted, finished, 1,
                parent="client.submit",
            )
        )
        merged.spans.append(
            SpanRecord(
                "service.worker", "service", -1, started, finished, 2,
                parent="service.job",
            )
        )
        seq = itertools.count(3)
        inner = None
        if job.status in ("done", "cached"):
            self.store.refresh()
            try:
                inner = getattr(
                    self.store.load_result(job.fingerprint), "trace", None
                )
            except (KeyError, OSError):
                inner = None
        if inner is not None:
            stamps = [s.t0 for s in inner.spans]
            stamps += [e.t for e in inner.events]
            shift = (started - min(stamps)) if stamps else 0.0
            for s in inner.ordered_spans():
                merged.spans.append(
                    _dc_replace(
                        s,
                        t0=s.t0 + shift,
                        t1=s.t1 + shift,
                        seq=next(seq),
                        parent=s.parent or "service.worker",
                    )
                )
            for e in inner.ordered_events():
                merged.events.append(
                    _dc_replace(e, t=e.t + shift, seq=next(seq))
                )
            merged.counters.update(inner.counters)
        return merged

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _read_flight_ring(ring_path: str | None) -> dict | None:
        """Recover ``rank -> events`` from a (possibly torn) ring file."""
        if not ring_path or not os.path.exists(ring_path):
            return None
        try:
            ring = FlightRing.open(ring_path)
        except (OSError, ValueError, struct_error):
            return None
        try:
            events = ring.read_all()
        except (OSError, ValueError):
            return None
        finally:
            ring.close()
        return events if any(events.values()) else None

    @staticmethod
    def _flush_flight(ring_path: str | None, flight: dict) -> None:
        """Best-effort post-mortem flush beside the ring file."""
        if not ring_path:
            return
        try:
            write_flight_jsonl(flight, _flight_jsonl_path(ring_path))
        except OSError:
            pass

    def _require(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def _bump(self, job: Job) -> None:
        job.version += 1
        self._changed.notify_all()

    def _group(self, primary: Job) -> list[Job]:
        return [primary] + [
            self._jobs[i] for i in self._followers.get(primary.id, [])
        ]

    def _pump_loop(self) -> None:
        """Drain worker results; poll worker liveness; respawn the dead."""
        while True:
            with self._lock:
                if self._closing:
                    return
            try:
                msg = self._results.get(timeout=_POLL)
            except _queue.Empty:
                msg = None
            except (EOFError, OSError):
                return
            if msg is not None:
                self._handle(msg)
            self._drain_stream()
            self._check_liveness()

    def _drain_stream(self) -> None:
        """Fold queued per-step records into their jobs' stream rings."""
        while True:
            try:
                record = self._stream_q.get_nowait()
            except _queue.Empty:
                return
            except (EOFError, OSError):
                return
            if not isinstance(record, dict):
                continue
            job_id = record.get("job")
            if job_id is None:
                continue
            with self._lock:
                ring = self._streams.get(job_id)
                if ring is None:
                    ring = self._streams[job_id] = _JobStream()
                ring.add(record)
                self._changed.notify_all()

    def _handle(self, msg) -> None:
        event, job_id, pid, detail = msg
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            if event == "started":
                self._pid_job[pid] = job_id
                for j in self._group(job):
                    j.status = "running"
                    j.started = time.time()
                    j.worker_pid = pid
                    self._bump(j)
                return
            if event == "flight":
                # The worker names its shared flight-ring file up front, so
                # a SIGKILL later still leaves the parent a ring to read.
                for j in self._group(job):
                    j.flight_path = detail
                    self._bump(j)
                return
            self._pid_job.pop(pid, None)
            self._inflight.pop(job.fingerprint, None)
            if event == "done":
                # Single-writer index append happens here, in the parent.
                self.store.commit(
                    job.fingerprint,
                    kind=job.kind,
                    request=job.request,
                    report=detail or {},
                    meta={"job": job.id},
                )
                self.executed += 1
                for j in self._group(job):
                    j.status = "done"
                    j.finished = time.time()
                    j.worker_pid = None
                    self._bump(j)
            else:  # failed
                if isinstance(detail, dict):
                    message = detail.get("message", "unknown failure")
                    flight = detail.get("flight")
                    flight_path = detail.get("flight_path") or job.flight_path
                else:  # plain-string detail (older workers)
                    message, flight, flight_path = detail, None, job.flight_path
                if flight is None and flight_path:
                    flight = self._read_flight_ring(flight_path)
                if flight:
                    self._flush_flight(flight_path, flight)
                for j in self._group(job):
                    j.status = "failed"
                    j.error = message
                    j.flight = flight
                    if flight_path:
                        j.flight_path = flight_path
                    j.finished = time.time()
                    j.worker_pid = None
                    self._bump(j)

    def _check_liveness(self) -> None:
        """Fail jobs owned by dead workers; fork replacements."""
        with self._lock:
            if self._closing:
                return
            dead = [p for p in self._procs if not p.is_alive()]
            if not dead:
                return
            for p in dead:
                self._procs.remove(p)
                job_id = self._pid_job.pop(p.pid, None)
                if job_id is not None:
                    job = self._jobs.get(job_id)
                    if job is not None and not job.terminal:
                        self._inflight.pop(job.fingerprint, None)
                        # Post-mortem: the dead worker's flight ring is a
                        # plain file — read the last events of every rank.
                        flight = self._read_flight_ring(job.flight_path)
                        if flight:
                            self._flush_flight(job.flight_path, flight)
                        err = (
                            f"worker process died (pid={p.pid}, "
                            f"exitcode={p.exitcode}) while running {job_id}"
                        )
                        for j in self._group(job):
                            j.status = "failed"
                            j.error = err
                            j.flight = flight
                            j.finished = time.time()
                            j.worker_pid = None
                            self._bump(j)
            while len(self._procs) < self.workers:
                self._spawn_worker()


def _snapshot(job: Job) -> Job:
    """A detached copy safe to return across the lock boundary."""
    return _dc_replace(job)
