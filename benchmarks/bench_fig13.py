"""Reproduction benchmark: Figure 13: Processor busy times / load balance (Navier-Stokes; IBM SP)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig13(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig13"),
        "Figure 13: Processor busy times / load balance (Navier-Stokes; IBM SP)",
    )
