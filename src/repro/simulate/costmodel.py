"""Maps workload compute segments to seconds on a CPU model."""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.cpu import ScalarCpuModel
from ..parallel.versions import Version, version_by_number


@dataclass(frozen=True)
class CostModel:
    """Compute-time charging for one (CPU, code version) pair."""

    cpu: ScalarCpuModel
    version: Version

    @classmethod
    def of(cls, cpu: ScalarCpuModel, version: Version | int) -> "CostModel":
        if isinstance(version, int):
            version = version_by_number(version)
        return cls(cpu=cpu, version=version)

    def compute_time(self, flops: float, working_set_bytes: float) -> float:
        """Seconds to execute ``flops`` nominal flops."""
        return self.cpu.time_for_flops(
            flops, self.version, working_set=working_set_bytes
        )

    def sustained_mflops(self, working_set_bytes: float) -> float:
        return self.cpu.sustained_mflops(self.version, working_set=working_set_bytes)
