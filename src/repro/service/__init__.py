"""The run service: a job queue + worker pool + fingerprint-keyed cache.

PRs 1–5 built four execution substrates behind one facade, but every run
was a blocking one-shot call with no memory of prior results.  This
package promotes the facade into a long-lived **run service** — the
architecture a large experiment campaign (or a deployment serving many
users) needs:

* :class:`~repro.service.service.RunService` — accepts typed
  :class:`~repro.request.RunRequest` (and
  :class:`~repro.service.experiments.ExperimentRequest`) submissions,
  shards them across a pool of worker OS processes (forked, like the
  PR 5 process substrate, so a crashing run never takes the service
  down), dedupes identical-fingerprint requests, and streams job status
  back through :meth:`~repro.service.service.RunService.watch`;
* :class:`~repro.service.store.ResultStore` — the persistent result
  cache, content-addressed by ``request.fingerprint()``: a JSON-lines
  index (``index.jsonl``, one line per completed run — the
  ``BENCH_runs.jsonl`` idiom) plus pickled
  :class:`~repro.api.RunResult` payloads.  A resubmitted fingerprint is
  served from the store without re-execution, bitwise-identical to the
  original run — across service restarts;
* :class:`~repro.service.server.ServiceServer` /
  :class:`~repro.service.client.ServiceClient` — a newline-delimited
  JSON protocol over a Unix domain socket, fronting the service for
  other processes (``repro serve`` / ``repro submit`` / ``repro jobs``).

Quickstart (in-process)::

    from repro.request import RunRequest
    from repro.service import RunService

    with RunService(workers=2) as svc:
        a = svc.submit(RunRequest("jet", steps=100,
                                  scenario_kw={"nx": 64, "nr": 32}))
        b = svc.submit(RunRequest("jet", steps=100,
                                  scenario_kw={"nx": 64, "nr": 32}))
        svc.wait(a.id); svc.wait(b.id)      # one execution, two results
        res = svc.result(b.id)              # a full RunResult
"""

from .experiments import EXPERIMENT_SCHEMA, ExperimentRequest
from .service import Job, JobFailed, RunService
from .store import STORE_SCHEMA, ResultStore, StoreEntry
from .server import ServiceServer, default_socket_path, serve
from .client import ServiceClient, ServiceUnavailable

__all__ = [
    "EXPERIMENT_SCHEMA",
    "ExperimentRequest",
    "Job",
    "JobFailed",
    "ResultStore",
    "RunService",
    "STORE_SCHEMA",
    "ServiceClient",
    "ServiceServer",
    "ServiceUnavailable",
    "StoreEntry",
    "default_socket_path",
    "serve",
]
