"""FlowState conversions and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Grid
from repro.physics.state import NVARS, FlowState

from conftest import random_physical_state

positive = st.floats(0.1, 20.0, allow_nan=False)
velocity = st.floats(-3.0, 3.0, allow_nan=False)


class TestConstruction:
    def test_from_primitive_round_trip(self, small_grid, rng):
        rho = 0.5 + rng.random(small_grid.shape)
        u = rng.standard_normal(small_grid.shape)
        v = rng.standard_normal(small_grid.shape)
        p = 0.5 + rng.random(small_grid.shape)
        st_ = FlowState.from_primitive(small_grid, rho, u, v, p)
        assert np.allclose(st_.rho, rho)
        assert np.allclose(st_.u, u)
        assert np.allclose(st_.v, v)
        assert np.allclose(st_.p, p)

    def test_scalar_broadcast(self, small_grid):
        st_ = FlowState.from_primitive(small_grid, 2.0, 0.5, 0.0, 1.0)
        assert st_.rho.shape == small_grid.shape
        assert np.all(st_.rho == 2.0)

    def test_quiescent(self, small_grid):
        st_ = FlowState.quiescent(small_grid)
        assert np.all(st_.u == 0)
        assert np.all(st_.v == 0)
        assert np.allclose(st_.T, 1.0)
        assert np.allclose(st_.c, 1.0)

    def test_shape_validation(self, small_grid):
        with pytest.raises(ValueError, match="state shape"):
            FlowState(small_grid, np.zeros((NVARS, 3, 3)))


class TestDerivedFields:
    @given(rho=positive, u=velocity, v=velocity, p=positive)
    @settings(max_examples=100, deadline=None)
    def test_mach_number(self, rho, u, v, p):
        g = Grid(nx=5, nr=5)
        st_ = FlowState.from_primitive(g, rho, u, v, p)
        speed = np.sqrt(u * u + v * v)
        c = np.sqrt(1.4 * p / rho)
        assert st_.mach[0, 0] == pytest.approx(speed / c, rel=1e-9)

    def test_axial_momentum_is_rho_u(self, small_grid):
        st_ = FlowState.from_primitive(small_grid, 2.0, 1.5, 0.0, 1.0)
        assert np.allclose(st_.axial_momentum, 3.0)

    def test_enthalpy_positive_for_physical(self, small_grid, rng):
        st_ = random_physical_state(small_grid, rng)
        assert np.all(st_.H > 0)


class TestValidation:
    def test_physical_state(self, small_grid, rng):
        assert random_physical_state(small_grid, rng).is_physical()

    def test_negative_density_flagged(self, small_grid):
        st_ = FlowState.quiescent(small_grid)
        st_.q[0, 3, 3] = -1.0
        assert not st_.is_physical()

    def test_negative_pressure_flagged(self, small_grid):
        st_ = FlowState.quiescent(small_grid)
        st_.q[3, 2, 2] = 0.0  # energy below kinetic => p < 0
        assert not st_.is_physical()

    def test_nan_flagged(self, small_grid):
        st_ = FlowState.quiescent(small_grid)
        st_.q[1, 0, 0] = np.nan
        assert not st_.is_physical()


class TestUtilities:
    def test_copy_is_deep(self, small_grid):
        a = FlowState.quiescent(small_grid)
        b = a.copy()
        b.q[0] *= 2
        assert np.all(a.q[0] == 1.0)

    def test_conserved_totals_shape(self, jet_state):
        tot = jet_state.conserved_totals()
        assert tot.shape == (NVARS,)
        assert tot[0] > 0  # mass
        assert tot[3] > 0  # energy

    def test_conserved_totals_scale_with_density(self, small_grid):
        a = FlowState.from_primitive(small_grid, 1.0, 0.0, 0.0, 1.0)
        b = FlowState.from_primitive(small_grid, 2.0, 0.0, 0.0, 1.0)
        assert b.conserved_totals()[0] == pytest.approx(
            2 * a.conserved_totals()[0]
        )

    def test_axial_slab(self, jet_state):
        slab = jet_state.axial_slab(5, 15)
        assert slab.grid.nx == 10
        assert np.array_equal(slab.q, jet_state.q[:, 5:15, :])
        # Independent copy:
        slab.q[:] = 0
        assert jet_state.q[:, 5:15, :].any()
