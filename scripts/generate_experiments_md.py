#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs the full reproduction pipeline (simulated machines + the real solver
probes) and writes the comparison tables.  Invoked manually::

    python scripts/generate_experiments_md.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.metrics import crossover, minimum_location
from repro.analysis.tables import measured_characteristics
from repro.machines.platforms import (
    CRAY_T3D,
    CRAY_YMP,
    IBM_SP,
    IBM_SP_PVME,
    LACE_560,
    LACE_560_ETHERNET,
    LACE_560_FDDI,
    LACE_590,
    LACE_590_ATM,
)
from repro.simulate.machine import SimulatedMachine
from repro.simulate.sharedmem import SharedMemoryMachine
from repro.simulate.workload import EULER, NAVIER_STOKES

PROCS = [1, 2, 4, 6, 8, 10, 12, 14, 16]
WINDOW = 30


def series(platform, app, version=5, quantity="execution_time", procs=PROCS):
    out = []
    for p in procs:
        r = SimulatedMachine(platform, p, version=version).run(
            app, steps_window=WINDOW
        )
        out.append(getattr(r, quantity))
    return out


def fmt_row(cells):
    return "| " + " | ".join(str(c) for c in cells) + " |"


def check(ok: bool) -> str:
    return "reproduced" if ok else "**deviates**"


def main() -> None:
    lines: list[str] = []
    w = lines.append

    w("# EXPERIMENTS — paper vs. this reproduction")
    w("")
    w("Regenerate with `python scripts/generate_experiments_md.py`; every row")
    w("is also exercised by `tests/test_paper_claims.py` and printed by the")
    w("matching benchmark in `benchmarks/`.")
    w("")
    w("Absolute times are **model-derived** (the platforms are simulated —")
    w("see DESIGN.md section 2); the reproduction criterion is the *shape*:")
    w("orderings, ratios, crossovers and saturation points.")
    w("")

    # ---- data ---------------------------------------------------------------
    data = {}
    for key, plat in [
        ("af", LACE_590),
        ("as", LACE_560),
        ("eth", LACE_560_ETHERNET),
        ("fddi", LACE_560_FDDI),
        ("atm", LACE_590_ATM),
        ("sp", IBM_SP),
        ("spe", IBM_SP_PVME),
        ("t3d", CRAY_T3D),
    ]:
        data[key] = {
            app.name: series(plat, app) for app in (NAVIER_STOKES, EULER)
        }
    ymp = {
        app.name: [
            SharedMemoryMachine(CRAY_YMP, p).run(app).execution_time
            for p in (1, 2, 4, 8)
        ]
        for app in (NAVIER_STOKES, EULER)
    }

    ns_meas = measured_characteristics(viscous=True)
    eu_meas = measured_characteristics(viscous=False)

    # ---- Table 1 -------------------------------------------------------------
    w("## Table 1 — application characteristics")
    w("")
    w(fmt_row(["quantity", "paper", "this package (measured)", "status"]))
    w(fmt_row(["---"] * 4))
    rows = [
        ("NS total FP ops (x1e6)", "145,000", f"{ns_meas.total_flops/1e6:,.0f}"),
        ("Euler total FP ops (x1e6)", "77,000", f"{eu_meas.total_flops/1e6:,.0f}"),
        ("NS startups/proc", "80,000", f"{ns_meas.startups_per_proc:,.0f}"),
        ("Euler startups/proc", "60,000", f"{eu_meas.startups_per_proc:,.0f}"),
        ("NS volume MB/proc", "125", f"{ns_meas.volume_bytes_per_proc/1e6:,.0f}"),
        ("Euler volume MB/proc", "95", f"{eu_meas.volume_bytes_per_proc/1e6:,.0f}"),
    ]
    for name, paper, ours in rows:
        w(fmt_row([name, paper, ours, "same order"]))
    w("")
    w("Our kernels execute roughly half the paper's per-cell flops (leaner,")
    w("factored expressions; the 1995 code predates its own Version-4")
    w("division removal) and exchange ~2x the bytes (the fourth-difference")
    w("filter halo and both-phase velocity/temperature ghosts, which the")
    w("original overlapped into fewer messages).  Ratios match: measured")
    ratio_f = ns_meas.total_flops / eu_meas.total_flops
    ratio_v = ns_meas.volume_bytes_per_proc / eu_meas.volume_bytes_per_proc
    w(f"NS/Euler flops = {ratio_f:.2f} (paper 1.88), volume = "
      f"{ratio_v:.2f} (paper 1.32).  The simulated machines consume the")
    w("paper's own Table-1 workload, so the figure reproductions are not")
    w("affected by these implementation deltas.")
    w("")

    # ---- Table 2 -------------------------------------------------------------
    w("## Table 2 — computation/communication ratios")
    w("")
    w("Derived identically from Table 1; reproduced **exactly** "
      "(580/290/145/72 FPs/Byte for NS; 405/203/101/51 for Euler; "
      "906K..113K and 642K..80K FPs/startup).  See `bench_table2.py`.")
    w("")

    # ---- figures -------------------------------------------------------------
    ns, eu = NAVIER_STOKES.name, EULER.name

    w("## Figure 1 — excited-jet axial momentum")
    w("")
    w("Real solver run (Gottlieb-Turkel 2-4, characteristic outflow, jet")
    w("inflow at M=1.5, Re=1.2e6, St=1/8).  The shear layer rolls up into")
    w("convected Kelvin-Helmholtz structures as in the paper's contour")
    w("plot; `examples/excited_jet.py --full` runs the paper's exact")
    w("250x100/16,000-step configuration.")
    w("")

    from repro.machines.platforms import CPU_RS6000_560

    w("## Figure 2 — single-processor optimization ladder (RS6000/560)")
    w("")
    w(fmt_row(["quantity", "paper", "reproduced", "status"]))
    w(fmt_row(["---"] * 4))
    v1 = CPU_RS6000_560.sustained_mflops(1)
    v5 = CPU_RS6000_560.sustained_mflops(5)
    w(fmt_row(["V1 MFLOPS", "9.3", f"{v1:.1f}", check(abs(v1 - 9.3) < 0.3)]))
    w(fmt_row(["V5 MFLOPS", "16.0", f"{v5:.1f}", check(abs(v5 - 16.0) < 0.3)]))
    w(fmt_row(["overall gain", "~80%", f"{(v5/v1-1)*100:.0f}%",
               check(0.6 < v5 / v1 - 1 < 0.9)]))
    gain_v3 = CPU_RS6000_560.sustained_mflops(3) / CPU_RS6000_560.sustained_mflops(2)
    w(fmt_row(["V3 vs V2 (loop interchange)", "+50%", f"+{(gain_v3-1)*100:.0f}%",
               "largest single gain, magnitude lower"]))
    w("")

    w("## Figures 3/4 — LACE networks")
    w("")
    w(fmt_row(["claim", "paper", "reproduced", "status"]))
    w(fmt_row(["---"] * 4))
    p_ns, _ = minimum_location(PROCS, data["eth"][ns])
    p_eu, _ = minimum_location(PROCS, data["eth"][eu])
    w(fmt_row(["Ethernet peak (NS)", "8 procs", f"{p_ns} procs",
               check(6 <= p_ns <= 10)]))
    w(fmt_row(["Ethernet peak (Euler)", "10 procs", f"{p_eu} procs",
               check(6 <= p_eu <= 12)]))
    r16 = data["as"][ns][-1] / data["af"][ns][-1]
    r1 = data["as"][ns][0] / data["af"][ns][0]
    w(fmt_row(["ALLNODE-F faster than -S", "70-80%",
               f"{(r1-1)*100:.0f}% (p=1) .. {(r16-1)*100:.0f}% (p=16)",
               check(1.5 < r16 < 2.0)]))
    atm_dev = max(
        abs(a - b) / b for a, b in zip(data["atm"][ns], data["af"][ns])
    )
    fddi_dev = max(
        abs(a - b) / b for a, b in zip(data["fddi"][ns], data["as"][ns])
    )
    w(fmt_row(["ATM ~= ALLNODE-F", "almost identical",
               f"within {atm_dev*100:.0f}%", check(atm_dev < 0.05)]))
    w(fmt_row(["FDDI ~= ALLNODE-S", "almost identical",
               f"within {fddi_dev*100:.0f}%", check(fddi_dev < 0.15)]))
    gain = data["as"][ns][PROCS.index(8)] / data["as"][ns][PROCS.index(16)]
    w(fmt_row(["ALLNODE flattens beyond 12", "sublinear",
               f"8->16 gain {gain:.2f}x (ideal 2x)", check(gain < 1.9)]))
    w("")

    w("## Figures 5/6 — busy vs non-overlapped communication")
    w("")
    comm16 = series(LACE_560, NAVIER_STOKES, quantity="comm_time", procs=[16])[0]
    busy16 = series(LACE_560, NAVIER_STOKES, quantity="busy_time", procs=[16])[0]
    comm16e = series(LACE_560, EULER, quantity="comm_time", procs=[16])[0]
    busy16e = series(LACE_560, EULER, quantity="busy_time", procs=[16])[0]
    w("Busy time falls ~1/p while non-overlapped communication stays flat,")
    w("so their ratio grows with p (the paper's Figure 5/6 structure).")
    w(f"**Known quantitative deviation**: at p=16 on ALLNODE-S our model")
    w(f"gives comm/busy = {comm16/busy16:.2f} for NS and "
      f"{comm16e/busy16e:.2f} for Euler, while the paper reports ~1.0 and")
    w("~0.6.  A per-message cost model bounded by the paper's own Table-1")
    w("message counts cannot produce non-overlapped waits that large while")
    w("simultaneously keeping Version 6 (overlap) gains 'minimal' as the")
    w("paper measures — the paper's large waits likely include switch")
    w("flow-control and daemon scheduling effects it does not characterize.")
    w("We keep the per-message model and note the deviation.")
    w("")

    w("## Figures 7/8 — communication versions V5/V6/V7")
    w("")
    w(fmt_row(["claim", "paper", "reproduced", "status"]))
    w(fmt_row(["---"] * 4))
    v5_16 = data["as"][ns][-1]
    v6_16 = series(LACE_560, NAVIER_STOKES, version=6, procs=[16])[0]
    v7_16 = series(LACE_560, NAVIER_STOKES, version=7, procs=[16])[0]
    w(fmt_row(["V6 vs V5", "minimal or worse",
               f"{(v6_16/v5_16-1)*100:+.1f}% at p=16",
               check(abs(v6_16 / v5_16 - 1) < 0.12)]))
    w(fmt_row(["V7 on ALLNODE-S", "appreciably worse",
               f"{(v7_16/v5_16-1)*100:+.1f}% at p=16", check(v7_16 > v5_16)]))
    e5 = series(LACE_560_ETHERNET, NAVIER_STOKES, version=5, procs=[8])[0]
    e7 = series(LACE_560_ETHERNET, NAVIER_STOKES, version=7, procs=[8])[0]
    w(fmt_row(["V7 on Ethernet near saturation", "better than V5",
               f"{(e7/e5-1)*100:+.1f}% at p=8", check(e7 < 1.02 * e5)]))
    w("")

    w("## Figures 9/10 — cross-platform comparison")
    w("")
    w(fmt_row(["claim", "paper", "reproduced", "status"]))
    w(fmt_row(["---"] * 4))
    lace_beats_sp = all(a < s for a, s in zip(data["as"][ns], data["sp"][ns]))
    w(fmt_row(["ALLNODE-S outperforms SP", "yes (surprising)",
               str(lace_beats_sp), check(lace_beats_sp)]))
    x = crossover(PROCS, data["t3d"][ns], data["as"][ns])
    w(fmt_row(["T3D crosses ALLNODE-S", "beyond 8 procs", f"at p={x}",
               check(x is not None and 6 <= x <= 12)]))
    t3d_worse_af = all(f < t for f, t in zip(data["af"][ns], data["t3d"][ns]))
    w(fmt_row(["T3D worse than ALLNODE-F", "consistently", str(t3d_worse_af),
               check(t3d_worse_af)]))
    t3d_beats_sp = all(t < s for t, s in zip(data["t3d"][ns], data["sp"][ns]))
    w(fmt_row(["T3D superior to SP", "yes", str(t3d_beats_sp),
               check(t3d_beats_sp)]))
    sp_speedup = data["sp"][ns][0] / data["sp"][ns][-1]
    t3d_speedup = data["t3d"][ns][0] / data["t3d"][ns][-1]
    w(fmt_row(["T3D & SP speedup at 16", "almost linear",
               f"{t3d_speedup:.1f}x / {sp_speedup:.1f}x",
               check(min(t3d_speedup, sp_speedup) > 11)]))
    ymp1 = ymp[ns][0]
    lace590_16 = data["af"][ns][-1]
    w(fmt_row(["LACE/590 x16 vs Y-MP x1", "comparable",
               f"{lace590_16:,.0f}s vs {ymp1:,.0f}s",
               check(0.5 < lace590_16 / ymp1 < 1.5)]))
    ymp8 = ymp[ns][-1]
    w(fmt_row(["Y-MP by far the best", "yes", f"{ymp8:,.0f}s at p=8",
               check(ymp8 < 0.5 * min(min(v[ns]) for v in data.values()))]))
    w("")

    w("## Figures 11/12 — MPL vs PVMe on the SP")
    w("")
    w(fmt_row(["claim", "paper", "reproduced", "status"]))
    w(fmt_row(["---"] * 4))
    g_ns = data["spe"][ns][-1] / data["sp"][ns][-1] - 1
    g_eu = data["spe"][eu][-1] / data["sp"][eu][-1] - 1
    w(fmt_row(["MPL faster (NS)", "~75%", f"{g_ns*100:.0f}% at p=16",
               check(0.25 < g_ns < 1.2)]))
    w(fmt_row(["MPL faster (Euler)", "~40%", f"{g_eu*100:.0f}% at p=16",
               check(0.25 < g_eu < 1.2)]))
    w(fmt_row(["gap lives in busy time", "yes", "yes (library CPU cost)",
               "reproduced"]))
    sp16 = SimulatedMachine(IBM_SP, 16).run(NAVIER_STOKES, steps_window=WINDOW)
    w(fmt_row(["non-overlapped comm on SP", "negligibly small",
               f"{sp16.comm_time/sp16.busy_time*100:.1f}% of busy",
               check(sp16.comm_time < 0.1 * sp16.busy_time)]))
    w("")
    w("Deviation note: the paper's NS gap (75%) exceeds its Euler gap (40%);")
    w("our per-message model inverts that ordering because Euler has fewer")
    w("flops per message than NS — the paper's asymmetry is not derivable")
    w("from its published per-application message counts and volumes.")
    w("")

    w("## Figure 13 — load balance on the SP")
    w("")
    from repro.analysis.metrics import balance_spread

    r = SimulatedMachine(IBM_SP, 16).run(NAVIER_STOKES, steps_window=WINDOW)
    spread = balance_spread(r.per_rank_busy)
    w(f"Per-rank busy-time spread at p=16: {spread*100:.1f}% "
      "(paper: 'almost perfect load balancing') — reproduced; the balanced")
    w("block decomposition assigns 250 columns as 15-16 per processor.")
    w("")

    w("## Raw execution-time series (seconds, full 5000-step run)")
    w("")
    for app in (NAVIER_STOKES, EULER):
        w(f"### {app.name}")
        w("")
        w(fmt_row(["platform"] + [f"p={p}" for p in PROCS]))
        w(fmt_row(["---"] * (1 + len(PROCS))))
        for key, label in [
            ("af", "LACE/590 + ALLNODE-F"),
            ("atm", "LACE/590 + ATM"),
            ("as", "LACE/560 + ALLNODE-S"),
            ("fddi", "LACE/560 + FDDI"),
            ("eth", "LACE/560 + Ethernet"),
            ("sp", "IBM SP (MPL)"),
            ("spe", "IBM SP (PVMe)"),
            ("t3d", "Cray T3D"),
        ]:
            w(fmt_row([label] + [f"{t:,.0f}" for t in data[key][app.name]]))
        ymp_row = [f"{t:,.0f}" for t in ymp[app.name]] + ["-"] * 5
        w(fmt_row(["Cray Y-MP (1,2,4,8)"] + ymp_row))
        w("")

    out = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    sys.exit(main())
