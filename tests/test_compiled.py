"""The compiled ("V6") kernel backend: differential + property wall.

The compiled backend replays the paper's Version 5-6 compiler rung — the
same physics, rebuilt as native loops (numba njit, a cached C shared
object, or the uncompiled reference loops).  Like the fused backend, it
must change performance only, never results:

* every engine declares a **tolerance policy** through its ``bitwise``
  flag — ``True`` (the default, honoured by every engine on this
  container) makes bitwise equality the acceptance bar, and a platform
  that cannot honour it (e.g. a toolchain ignoring ``-ffp-contract=off``)
  flips the flag and is held to the pinned :data:`ULP_BOUND` instead;
* the differential matrix mirrors ``tests/test_kernels.py``: Euler and
  Navier-Stokes, serial and all three decompositions, both substrates;
* selection mirrors the other backends: ``SolverConfig.backend``,
  ``$REPRO_BACKEND``, and a clean ``BackendUnavailable`` fallback to the
  fused workspace (with a ``RuntimeWarning``, never a crash).
"""

import copy
import os

import numpy as np
import pytest

from repro import jet_scenario
from repro.api import run
from repro.numerics.kernels import (
    BACKEND_ENV_VAR,
    BackendUnavailable,
    CompiledBackend,
    CompiledWorkspace,
    StepWorkspace,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.numerics.kernels.compiled import ENGINE_ENV_VAR, resolve_ops
from repro.numerics.solver import CompressibleSolver

#: Maximum per-element ULP distance tolerated from a compiled engine that
#: cannot honour ``bitwise = True`` on its platform.  Engines that do
#: declare bitwise equality are held to exactly 0.
ULP_BOUND = 4


def _ulp_distance(a: np.ndarray, b: np.ndarray) -> int:
    """The largest per-element spacing count between two float64 arrays."""
    if np.array_equal(a, b):
        return 0
    ai = a.view(np.int64)
    bi = b.view(np.int64)
    # Map the sign-magnitude float ordering onto a monotonic integer line.
    ai = np.where(ai < 0, np.int64(-(2**63) + 1) - ai, ai)
    bi = np.where(bi < 0, np.int64(-(2**63) + 1) - bi, bi)
    return int(np.abs(ai - bi).max())


def assert_matches_policy(ops, got: np.ndarray, want: np.ndarray) -> None:
    """Bitwise when the engine promises it, pinned ULP bound otherwise."""
    if ops.bitwise:
        assert np.array_equal(got, want), (
            f"engine {ops.engine!r} declares bitwise=True but differs "
            f"(max ulp {_ulp_distance(got, want)})"
        )
    else:
        dist = _ulp_distance(got, want)
        assert dist <= ULP_BOUND, (
            f"engine {ops.engine!r} exceeds the {ULP_BOUND}-ulp tolerance "
            f"policy (max ulp {dist})"
        )


def _evolve(backend, steps=5, nx=36, nr=18, viscous=True, mu_exp=0.0):
    sc = jet_scenario(nx=nx, nr=nr, viscous=viscous)
    cfg = copy.deepcopy(sc.solver.config)
    cfg.backend = backend
    cfg.mu_exponent = mu_exp
    solver = CompressibleSolver(copy.deepcopy(sc.state), cfg)
    for _ in range(steps):
        solver.step()
    return solver.state.q


def _evolve_engine(engine, **kw):
    """Evolve under the compiled backend with a forced engine choice."""
    old = os.environ.get(ENGINE_ENV_VAR)
    os.environ[ENGINE_ENV_VAR] = engine
    try:
        return _evolve("compiled", **kw)
    finally:
        if old is None:
            del os.environ[ENGINE_ENV_VAR]
        else:
            os.environ[ENGINE_ENV_VAR] = old


@pytest.fixture(scope="module")
def ops():
    """The resolved compiled ops, or skip when no engine exists."""
    try:
        return resolve_ops(os.environ.get(ENGINE_ENV_VAR) or None)
    except BackendUnavailable as exc:  # pragma: no cover - bare container
        pytest.skip(f"no compiled engine: {exc}")


class TestSelection:
    def test_registered(self):
        assert "compiled" in available_backends()
        assert isinstance(get_backend("compiled"), CompiledBackend)

    def test_env_var_selects_compiled(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        assert resolve_backend(None).name == "compiled"

    def test_config_selects_compiled_workspace(self, ops):
        sc = jet_scenario(nx=16, nr=12)
        cfg = copy.deepcopy(sc.solver.config)
        cfg.backend = "compiled"
        solver = CompressibleSolver(copy.deepcopy(sc.state), cfg)
        assert isinstance(solver._ws, CompiledWorkspace)
        assert solver._ws.ops is not None

    def test_unavailable_falls_back_to_fused(self):
        backend = CompiledBackend(engine="engine-that-does-not-exist")
        sc = jet_scenario(nx=16, nr=12)
        with pytest.warns(RuntimeWarning, match="falling back"):
            ws = backend.step_workspace(sc.solver)
        assert type(ws) is StepWorkspace  # the fused workspace, not compiled
        assert ws.ops is None

    def test_fallback_run_is_bitwise_fused(self, monkeypatch):
        """A fallback run produces the fused numbers, not an error."""
        monkeypatch.setenv(ENGINE_ENV_VAR, "engine-that-does-not-exist")
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = _evolve("compiled", steps=3, nx=24, nr=12)
        want = _evolve("fused", steps=3, nx=24, nr=12)
        assert np.array_equal(got, want)

    def test_unknown_engine_raises_structured(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "fortran-2077")
        with pytest.raises(BackendUnavailable, match="fortran-2077"):
            resolve_ops()

    def test_available_reports_without_raising(self):
        assert get_backend("compiled").available() in (True, False)
        assert CompiledBackend(engine="no-such-engine").available() is False


class TestDifferentialSerial:
    """compiled == fused, serial, under the engine's tolerance policy."""

    @pytest.mark.parametrize("viscous", [True, False],
                             ids=["navier-stokes", "euler"])
    def test_matches_fused(self, ops, viscous):
        want = _evolve("fused", viscous=viscous)
        got = _evolve("compiled", viscous=viscous)
        assert_matches_policy(ops, got, want)

    def test_matches_fused_mu_field(self, ops):
        """Sutherland-style variable viscosity hits the mu-array kernels."""
        want = _evolve("fused", mu_exp=0.7)
        got = _evolve("compiled", mu_exp=0.7)
        assert_matches_policy(ops, got, want)

    def test_python_engine_matches_fused(self):
        """The no-toolchain reference engine is always available and must
        hold the same contract the optimized engines do."""
        ops = resolve_ops("python")
        got = _evolve_engine("python", steps=4, nx=20, nr=10)
        want = _evolve("fused", steps=4, nx=20, nr=10)
        assert_matches_policy(ops, got, want)


class TestDifferentialDistributed:
    """compiled == fused == serial across every decomposition/substrate."""

    @pytest.mark.parametrize("scenario", ["jet", "jet-euler"])
    @pytest.mark.parametrize(
        "decomposition,nprocs,kw",
        [
            ("axial", 4, {}),
            ("radial", 2, {}),
            ("2d", 4, {"px": 2, "pr": 2}),
        ],
        ids=["axial-p4", "radial-p2", "2d-2x2"],
    )
    @pytest.mark.parametrize("substrate", ["virtual", "process"])
    def test_matches_serial_fused(
        self, ops, scenario, decomposition, nprocs, kw, substrate
    ):
        want = run(scenario, steps=4, nx=36, nr=18, backend="fused").state.q
        got = run(
            scenario, steps=4, nx=36, nr=18, backend="compiled",
            nprocs=nprocs, decomposition=decomposition, substrate=substrate,
            **kw,
        ).state.q
        assert_matches_policy(ops, got, want)


class TestEngineCross:
    """Engines must agree with each other, not only with fused."""

    def test_python_vs_resolved_engine(self, ops):
        if ops.engine == "python":
            pytest.skip("resolved engine is already the python reference")
        a = _evolve("compiled", steps=3, nx=24, nr=12)
        b = _evolve_engine("python", steps=3, nx=24, nr=12)
        ref = resolve_ops("python")
        if ops.bitwise and ref.bitwise:
            assert np.array_equal(a, b)
        else:
            assert _ulp_distance(a, b) <= 2 * ULP_BOUND

    @pytest.mark.requires_numba
    def test_numba_engine_matches_fused(self):
        pytest.importorskip("numba")
        nops = resolve_ops("numba")
        got = _evolve_engine("numba", steps=4, nx=24, nr=12)
        want = _evolve("fused", steps=4, nx=24, nr=12)
        assert_matches_policy(nops, got, want)


class TestWorkspaceReuse:
    """Scratch buffers carry no state across steps or resets."""

    def test_reset_and_rerun_is_bitwise_stable(self, ops):
        sc = jet_scenario(nx=24, nr=12)
        cfg = copy.deepcopy(sc.solver.config)
        cfg.backend = "compiled"
        q0 = sc.state.q.copy()
        solver = CompressibleSolver(copy.deepcopy(sc.state), cfg)
        for _ in range(3):
            solver.step()
        first = solver.state.q.copy()
        # Rewind the state but keep the (now dirty) workspace.
        solver.state.q[:] = q0
        solver.t = 0.0
        solver.nstep = 0
        solver._dt_cached = None
        for _ in range(3):
            solver.step()
        assert np.array_equal(solver.state.q, first)
