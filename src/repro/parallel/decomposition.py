"""Block domain decompositions.

The paper chose, "after some experimentation, to decompose the domain by
blocks along the axial direction only" (Section 5): each processor owns a
contiguous slab of axial columns with full radial extent, so only the
axial sweep needs halo exchange and messages group naturally into long
column vectors.  :class:`RadialDecomposition` implements the radial
blocking the paper leaves to future work (Section 8) for the extension
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

MIN_BLOCK = 5
"""Smallest slab width the 2-4 stencil machinery supports."""


@dataclass(frozen=True)
class BlockDecomposition1D:
    """Balanced 1-D block partition of ``n`` points into ``nparts`` slabs.

    Slab ``k`` owns ``[bounds(k)[0], bounds(k)[1])``.  The first
    ``n % nparts`` slabs get one extra point, so sizes differ by at most
    one — the (near-perfect) load balance of the paper's Figure 13 follows
    directly from this.
    """

    n: int
    nparts: int

    def __post_init__(self) -> None:
        if self.nparts < 1:
            raise ValueError("nparts must be >= 1")
        if self.n // self.nparts < MIN_BLOCK:
            raise ValueError(
                f"cannot split {self.n} points into {self.nparts} blocks: "
                f"each block needs at least {MIN_BLOCK} points"
            )

    def bounds(self, part: int) -> tuple[int, int]:
        """Half-open global index range owned by ``part``."""
        if not (0 <= part < self.nparts):
            raise IndexError(f"part {part} out of range [0, {self.nparts})")
        base, extra = divmod(self.n, self.nparts)
        lo = part * base + min(part, extra)
        hi = lo + base + (1 if part < extra else 0)
        return lo, hi

    def size(self, part: int) -> int:
        lo, hi = self.bounds(part)
        return hi - lo

    def sizes(self) -> list[int]:
        return [self.size(k) for k in range(self.nparts)]

    def owner(self, index: int) -> int:
        """The part owning global point ``index``."""
        if not (0 <= index < self.n):
            raise IndexError(index)
        base, extra = divmod(self.n, self.nparts)
        # Points below the split carry base+1 each.
        split = extra * (base + 1)
        if index < split:
            return index // (base + 1)
        return extra + (index - split) // base

    def neighbors(self, part: int) -> tuple[int | None, int | None]:
        """``(lower, upper)`` neighbouring parts (``None`` at the ends)."""
        lo = part - 1 if part > 0 else None
        hi = part + 1 if part < self.nparts - 1 else None
        return lo, hi

    def local_slice(self, part: int) -> slice:
        lo, hi = self.bounds(part)
        return slice(lo, hi)


class AxialDecomposition(BlockDecomposition1D):
    """The paper's decomposition: axial slabs with full radial extent."""

    axis = 1  # array axis of (4, nx, nr) states

    def __init__(self, nx: int, nparts: int) -> None:
        super().__init__(n=nx, nparts=nparts)

    @property
    def nx(self) -> int:
        return self.n


class RadialDecomposition(BlockDecomposition1D):
    """Radial blocking (the paper's Section 8 future-work variant).

    Messages become *row* segments of length ``nx`` per exchange instead of
    columns of length ``nr``; with the paper's 250 x 100 grid this more
    than doubles the per-message volume while the sweep structure forces
    exchanges in the radial operator instead — the extension benchmark
    quantifies the difference.
    """

    axis = 2

    def __init__(self, nr: int, nparts: int) -> None:
        super().__init__(n=nr, nparts=nparts)

    @property
    def nr(self) -> int:
        return self.n
