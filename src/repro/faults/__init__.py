"""Fault injection for the virtual cluster, the MPI adapter, and the DES.

The paper's NOW results hinge on an unreliable shared medium — LACE over
10 Mbps Ethernet degrades under load while ALLNODE/ATM stay predictable —
so this package makes unreliability a first-class, *testable* input:

* :class:`FaultPlan` — a seeded, deterministic schedule of message drop,
  duplication, reordering, truncation, delay jitter, rank slowdown and
  rank crash (with named presets like ``"lossy-ethernet"``);
* :class:`FaultyComm` — a decorator over any
  :class:`~repro.msglib.api.Communicator` that injects the plan's faults
  *and* hides the recoverable ones behind a sequence-numbered, idempotent
  transport with timeout/retry/backoff receives;
* DES hooks — :class:`~repro.simulate.machine.SimulatedMachine` maps the
  same plan onto deterministic extra network occupancy and per-node
  slowdown factors.

Entry points: ``repro.api.run(..., faults="lossy-ethernet")`` or the CLI's
``python -m repro run jet --nprocs 4 --faults lossy-ethernet``.
"""

from .comm import (
    FaultError,
    FaultStats,
    FaultyComm,
    MessageTimeout,
    RankCrashed,
)
from .plan import (
    PRESETS,
    Fate,
    FaultPlan,
    fault_plan_by_name,
    resolve_fault_plan,
)
from .wire import HEADER_BYTES, pack_frame, truncate_frame, unpack_frame

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultStats",
    "FaultyComm",
    "Fate",
    "HEADER_BYTES",
    "MessageTimeout",
    "PRESETS",
    "RankCrashed",
    "fault_plan_by_name",
    "pack_frame",
    "resolve_fault_plan",
    "truncate_frame",
    "unpack_frame",
]
