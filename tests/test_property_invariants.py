"""Hypothesis property tests: conservation, filter bounds, halo round-trips.

The property-based half of the ISSUE-3 harness (the chaos half lives in
``tests/test_faults.py`` and needs no hypothesis).  Three families:

* **mass conservation** on periodic interiors — the conservative-form
  solver and filter must preserve the discrete totals to rounding, under
  every kernel backend (baseline, fused, and the compiled "V6" rung —
  which, on hosts with no engine, falls back to fused and still must
  pass);
* **filter contraction** — one more pass of the fourth-difference filter
  never moves the state further than the last pass did
  (``||F(F(q)) - F(q)|| <= ||F(q) - q||``, valid on periodic interiors
  because every eigenvalue of ``I - eps D4`` lies in ``[1 - 16 eps, 1]``);
* **halo pack/unpack round-trips** — for any block widths at or above the
  stencil radius, the ghost lines a rank receives are bitwise the
  neighbour's true edge lines, through the plain wire and through the
  fault layer's sequence-numbered transport alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EulerSolver, SolverConfig
from repro.faults import FaultPlan, FaultyComm
from repro.grid import Grid
from repro.msglib.virtual import VirtualCluster
from repro.parallel.halo import (
    ExchangePolicy,
    exchange_flux_high,
    exchange_flux_low,
    exchange_state_halo_high,
    exchange_state_halo_low,
)
from repro.physics.state import FlowState

from test_solver_properties import _planar_config, _smooth_periodic_state

#: The widest one-sided stencil the exchanges feed (two lines each way).
STENCIL_RADIUS = 2


def _compiled_bitwise() -> bool:
    """True when a compiled engine exists *and* promises bitwise equality
    (no engine means the backend falls back to fused — still correct, but
    there is nothing distinct to compare)."""
    from repro.numerics.kernels import get_backend

    be = get_backend("compiled")
    return be.available() and be.ops().bitwise

BACKENDS = ["baseline", "fused", "compiled"]


# ---------------------------------------------------------------------------
# mass conservation on periodic interiors, both backends
# ---------------------------------------------------------------------------
class TestConservation:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(seed=st.integers(0, 10_000), amplitude=st.floats(1e-5, 0.04))
    @settings(max_examples=15, deadline=None)
    def test_mass_conserved_periodic(self, backend, seed, amplitude):
        grid = Grid(nx=12, nr=10, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, amplitude)
        solver = EulerSolver(state, _planar_config(backend=backend))
        t0 = state.conserved_totals(radial_weight=False)
        solver.run(6)
        t1 = state.conserved_totals(radial_weight=False)
        assert np.allclose(
            t1, t0, rtol=0, atol=1e-11 * max(np.abs(t0).max(), 1.0)
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_backends_bitwise_identical(self, seed):
        grid = Grid(nx=12, nr=10, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, 0.02)

        def evolve(backend):
            s = FlowState(grid, state.q.copy())
            EulerSolver(s, _planar_config(backend=backend)).run(4)
            return s.q

        base = evolve("baseline")
        assert np.array_equal(base, evolve("fused"))
        if _compiled_bitwise():
            assert np.array_equal(base, evolve("compiled"))

    @given(seed=st.integers(0, 10_000), eps=st.floats(0.001, 0.1))
    @settings(max_examples=15, deadline=None)
    def test_filter_alone_conserves_mass(self, seed, eps):
        """The conservative-form filter must not create or destroy mass."""
        grid = Grid(nx=12, nr=10, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, 0.05)
        solver = EulerSolver(state, _planar_config(dissipation=eps))
        filtered = solver.apply_filter(state.q.copy())
        assert np.allclose(
            filtered.sum(axis=(1, 2)),
            state.q.sum(axis=(1, 2)),
            rtol=0,
            atol=1e-12,
        )


# ---------------------------------------------------------------------------
# filter contraction
# ---------------------------------------------------------------------------
class TestFilterContraction:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(seed=st.integers(0, 10_000), eps=st.floats(0.001, 0.1))
    @settings(max_examples=20, deadline=None)
    def test_second_pass_moves_less(self, backend, seed, eps):
        grid = Grid(nx=14, nr=12, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, 0.05)
        solver = EulerSolver(
            state, _planar_config(dissipation=eps, backend=backend)
        )
        q0 = state.q.copy()
        q1 = solver.apply_filter(q0.copy())
        q2 = solver.apply_filter(q1.copy())
        step1 = np.linalg.norm(q1 - q0)
        step2 = np.linalg.norm(q2 - q1)
        assert step2 <= step1 + 1e-14

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_filter_fixed_points_are_smooth(self, backend, seed):
        """Constant states are exact fixed points of the filter."""
        grid = Grid(nx=10, nr=10, length_x=1.0, length_r=1.0)
        rng = np.random.default_rng(seed)
        q = np.tile(
            rng.uniform(0.5, 2.0, size=4)[:, None, None], (1,) + grid.shape
        )
        state = FlowState(grid, q.copy())
        solver = EulerSolver(
            state, _planar_config(dissipation=0.05, backend=backend)
        )
        assert np.array_equal(solver.apply_filter(q.copy()), q)


# ---------------------------------------------------------------------------
# workspace-reuse safety: scratch buffers carry no state between runs
# ---------------------------------------------------------------------------
class TestWorkspaceReuse:
    @pytest.mark.parametrize("backend", ["fused", "compiled"])
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_dirty_workspace_replays_bitwise(self, backend, seed):
        """Rewinding the state and re-running through an already-dirty
        workspace must replay the exact same trajectory — proof the
        persistent scratch arrays (and the compiled kernels writing into
        them) never leak one step's values into the next."""
        grid = Grid(nx=12, nr=10, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, 0.03)
        q0 = state.q.copy()
        solver = EulerSolver(state, _planar_config(backend=backend))
        solver.run(4)
        first = solver.state.q.copy()
        solver.state.q[:] = q0
        solver.t = 0.0
        solver.nstep = 0
        solver._dt_cached = None
        solver.run(4)
        assert np.array_equal(solver.state.q, first)


# ---------------------------------------------------------------------------
# halo pack/unpack round-trips over a real 2-rank cluster
# ---------------------------------------------------------------------------
def _halo_roundtrip(widths: tuple[int, int], nr: int, wrap_in_faults: bool):
    """Run a 2-rank exchange and return each rank's (ghosts, q_local)."""
    rng = np.random.default_rng(hash(widths) % 2**31)
    blocks = [rng.random((4, w, nr)) for w in widths]
    policy = ExchangePolicy(split_flux_columns=False)

    def program(comm):
        if wrap_in_faults:
            comm = FaultyComm(comm, FaultPlan(always_wrap=True))
        rank = comm.rank
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < comm.size - 1 else None
        q = blocks[rank]
        lo = exchange_state_halo_low(comm, "0:filter", q, left, right)
        hi = exchange_state_halo_high(comm, "0:filter", q, left, right)
        fh = exchange_flux_high(comm, "0:x:p", q, left, right, policy)
        fl = exchange_flux_low(comm, "0:x:p", q, left, right, policy)
        return lo, hi, fh, fl

    return VirtualCluster(2, timeout=30).run(program)


@st.composite
def block_widths(draw):
    return (
        draw(st.integers(STENCIL_RADIUS, 9)),
        draw(st.integers(STENCIL_RADIUS, 9)),
    )


class TestHaloRoundTrip:
    @pytest.mark.parametrize("wrapped", [False, True],
                             ids=["plain", "fault-transport"])
    @given(widths=block_widths(), nr=st.integers(3, 8))
    @settings(max_examples=12, deadline=None)
    def test_ghosts_are_neighbour_edges(self, wrapped, widths, nr):
        rng = np.random.default_rng(hash(widths) % 2**31)
        blocks = [rng.random((4, w, nr)) for w in widths]
        (lo0, hi0, fh0, fl0), (lo1, hi1, fh1, fl1) = _halo_roundtrip(
            widths, nr, wrapped
        )
        # rank 0 is the low edge: no low/left ghosts, its high ghosts are
        # rank 1's first lines (ordered outward).
        assert lo0 is None and fl0 is None
        assert np.array_equal(hi0[0], blocks[1][:, 0, :])
        assert np.array_equal(hi0[1], blocks[1][:, 1, :])
        assert np.array_equal(fh0[0], blocks[1][:, 0, :])
        assert np.array_equal(fh0[1], blocks[1][:, 1, :])
        # rank 1 is the high edge: its low ghosts are rank 0's last lines.
        assert hi1 is None and fh1 is None
        assert np.array_equal(lo1[0], blocks[0][:, -1, :])
        assert np.array_equal(lo1[1], blocks[0][:, -2, :])
        assert np.array_equal(fl1[0], blocks[0][:, -1, :])
        assert np.array_equal(fl1[1], blocks[0][:, -2, :])

    @given(widths=block_widths(), nr=st.integers(3, 8))
    @settings(max_examples=8, deadline=None)
    def test_fault_transport_is_bitwise_transparent(self, widths, nr):
        """Framing + sequence numbering changes no ghost bit."""
        plain = _halo_roundtrip(widths, nr, wrap_in_faults=False)
        framed = _halo_roundtrip(widths, nr, wrap_in_faults=True)
        for (pl, fr) in zip(plain, framed):
            for a, b in zip(pl, fr):
                if a is None:
                    assert b is None
                else:
                    assert np.array_equal(a, b)
