"""Structured axisymmetric grids.

The solver works on a uniform structured grid in cylindrical polar
coordinates ``(x, r)``: ``x`` is the axial direction (index ``i``, the first
array axis) and ``r`` the radial direction (index ``j``, the second axis).

Radial points are offset half a cell from the axis, ``r_j = (j + 1/2) dr``,
so the ``1/r`` factors appearing in the axisymmetric equations never hit
``r = 0``.  This is the standard staggering trick for r-weighted conservative
formulations; the axis itself is represented by a symmetry boundary
condition (see :mod:`repro.numerics.boundary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import constants


@dataclass(frozen=True)
class Grid:
    """Uniform structured grid for the axisymmetric domain.

    Parameters
    ----------
    nx, nr:
        Number of grid points in the axial and radial directions.
    length_x, length_r:
        Domain extents in jet radii.  Defaults are the paper's 50 x 5.

    Attributes
    ----------
    x : ndarray, shape (nx,)
        Axial coordinates, ``x_i = i * dx`` starting at the inflow plane.
    r : ndarray, shape (nr,)
        Radial coordinates, ``r_j = (j + 1/2) * dr``.
    """

    nx: int
    nr: int
    length_x: float = constants.DOMAIN_LENGTH_X
    length_r: float = constants.DOMAIN_LENGTH_R
    x: np.ndarray = field(init=False, repr=False, compare=False)
    r: np.ndarray = field(init=False, repr=False, compare=False)
    dx: float = field(init=False, compare=False)
    dr: float = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if self.nx < 5 or self.nr < 5:
            raise ValueError(
                "the 2-4 MacCormack stencil needs at least 5 points per "
                f"direction, got nx={self.nx}, nr={self.nr}"
            )
        if self.length_x <= 0 or self.length_r <= 0:
            raise ValueError("domain extents must be positive")
        # Axial spacing: nx points span length_x; radial: nr half-offset
        # cells span length_r.  Stored (not recomputed) so that subgrids can
        # inherit the parent spacing bit-exactly.
        object.__setattr__(self, "dx", self.length_x / (self.nx - 1))
        object.__setattr__(self, "dr", self.length_r / self.nr)
        object.__setattr__(self, "x", np.arange(self.nx) * self.dx)
        object.__setattr__(self, "r", (np.arange(self.nr) + 0.5) * self.dr)

    @property
    def shape(self) -> tuple[int, int]:
        """Array shape ``(nx, nr)`` of fields on this grid."""
        return (self.nx, self.nr)

    @property
    def ncells(self) -> int:
        """Total number of grid points."""
        return self.nx * self.nr

    def rmesh(self) -> np.ndarray:
        """Radial coordinate broadcast to the full ``(nx, nr)`` shape."""
        return np.broadcast_to(self.r[None, :], self.shape)

    def xmesh(self) -> np.ndarray:
        """Axial coordinate broadcast to the full ``(nx, nr)`` shape."""
        return np.broadcast_to(self.x[:, None], self.shape)

    def subgrid(self, i_lo: int, i_hi: int) -> "Grid":
        """Axial slab ``[i_lo, i_hi)`` of this grid as a standalone grid.

        Used by the domain decomposition; the slab keeps the parent's
        spacing, so ``length_x`` is recomputed from the slab width.
        """
        if not (0 <= i_lo < i_hi <= self.nx):
            raise ValueError(f"invalid slab [{i_lo}, {i_hi}) for nx={self.nx}")
        n = i_hi - i_lo
        sub = Grid(
            nx=n,
            nr=self.nr,
            length_x=(n - 1) * self.dx if n > 1 else self.dx,
            length_r=self.length_r,
        )
        # Inherit the parent spacing bit-exactly (recomputing it from the
        # slab extent can be off by one ulp, which would break the
        # bitwise serial/parallel equivalence) and shift the coordinates
        # to the slab's global position.
        object.__setattr__(sub, "dx", self.dx)
        object.__setattr__(sub, "x", self.x[i_lo:i_hi].copy())
        return sub

    def radial_subgrid(self, j_lo: int, j_hi: int) -> "Grid":
        """Radial slab ``[j_lo, j_hi)`` of this grid as a standalone grid.

        Used by the radial block decomposition (the paper's Section-8
        variant); keeps the parent spacing bit-exactly and the slab's
        global radial coordinates.
        """
        if not (0 <= j_lo < j_hi <= self.nr):
            raise ValueError(f"invalid slab [{j_lo}, {j_hi}) for nr={self.nr}")
        n = j_hi - j_lo
        sub = Grid(
            nx=self.nx,
            nr=n,
            length_x=self.length_x,
            length_r=n * self.dr,
        )
        object.__setattr__(sub, "dx", self.dx)
        object.__setattr__(sub, "dr", self.dr)
        object.__setattr__(sub, "x", self.x.copy())
        object.__setattr__(sub, "r", self.r[j_lo:j_hi].copy())
        return sub


def paper_grid() -> Grid:
    """The paper's canonical 250 x 100 grid on the 50 x 5 domain."""
    return Grid(nx=constants.PAPER_NX, nr=constants.PAPER_NR)
