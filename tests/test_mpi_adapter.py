"""The mpi4py backend adapter (full path only runs on an MPI cluster)."""

import pytest

from repro.msglib.mpi import _TAG_SPACE, MPIComm, tag_to_int

try:
    import mpi4py  # noqa: F401

    HAVE_MPI = True
except ImportError:
    HAVE_MPI = False


class TestTagHashing:
    def test_deterministic(self):
        assert tag_to_int("12:x:predictor:fxh") == tag_to_int(
            "12:x:predictor:fxh"
        )

    def test_in_mpi_tag_space(self):
        for tag in ("a", "0:dt:", "999:filter:qlo", "x" * 200):
            assert 0 <= tag_to_int(tag) < _TAG_SPACE

    def test_solver_tags_collision_free_within_a_step(self):
        """All tags a rank can use within one step must hash distinctly
        (cross-step reuse is safe: exchanges are matched in order)."""
        tags = []
        step = 7
        for op in ("x", "r", "ofw", "ofwr"):
            for phase in ("predictor", "corrector"):
                base = f"{step}:{op}:{phase}"
                tags += [f"{base}:uvT:toleft", f"{base}:uvT:toright"]
                tags += [f"{base}:fxh", f"{base}:fxl"]
                tags += [f"{base}:fxh:c0", f"{base}:fxh:c1"]
                tags += [f"{base}:fxl:c0", f"{base}:fxl:c1"]
        tags += [f"{step}:filter::qlo", f"{step}:filter::qhi",
                 f"{step}:dt::up", f"{step}:dt::down"]
        hashes = [tag_to_int(t) for t in tags]
        assert len(set(hashes)) == len(hashes)


class TestWithoutMPI:
    @pytest.mark.skipif(HAVE_MPI, reason="mpi4py present")
    def test_helpful_error_without_mpi4py(self):
        with pytest.raises(RuntimeError, match="mpi4py is not installed"):
            MPIComm()


@pytest.mark.skipif(not HAVE_MPI, reason="mpi4py not installed")
class TestSingletonMPI:
    """Single-process MPI checks (mpiexec multi-rank runs are exercised by
    scripts/mpi_runner.py --verify on a real cluster)."""

    def test_world_singleton(self):
        comm = MPIComm()
        assert comm.size >= 1
        assert 0 <= comm.rank < comm.size

    def test_allreduce_identity(self):
        comm = MPIComm()
        if comm.size == 1:
            assert comm.allreduce_min(3.5) == 3.5
