#!/usr/bin/env python
"""Batch driver: regenerate missing/stale paper artifacts via the run service.

Every ``benchmarks/bench_*.py`` renders one paper table/figure and writes
it to ``benchmarks/output/<slug>.txt`` (see ``benchmarks/conftest.py``).
This script discovers those targets *statically* — it AST-parses the
``run_and_print(benchmark, <payload>, "<header>")`` calls, so the header
strings and experiment payloads come from the benchmark sources, never
from guesses — and regenerates the deterministic ones through a
:class:`repro.service.RunService` worker pool, deduplicated against the
persistent result store.

Targets whose payload is ``run_experiment("<id>")`` or ``run_fig01(...)``
with literal arguments are *executable* (regenerable here); ablation and
workload benchmarks time locally-defined sweeps, so they are checked for
presence only.

Modes
-----
default
    Regenerate any executable artifact missing from ``benchmarks/output``
    (cache hits allowed) and report presence-only gaps.
``--check``
    Regenerate *all* executable artifacts into a throwaway store
    (bypassing the cache) and byte-compare against the committed files;
    also verify the ``BENCH_core.json`` baseline exists with the expected
    schema.  Exit 1 on any drift or missing artifact — CI's determinism
    gate for the committed outputs.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"
OUTPUT_DIR = BENCH_DIR / "output"
BASELINE = BENCH_DIR / "baseline" / "BENCH_core.json"
BASELINE_SCHEMA = "repro.bench-core/1"

sys.path.insert(0, str(REPO / "src"))


@dataclass
class Target:
    """One artifact a benchmark file writes to ``benchmarks/output``."""

    source: str                      # bench_*.py file name
    header: str                      # run_and_print header literal
    experiment: str | None = None    # experiment id when regenerable here
    kw: dict = field(default_factory=dict)

    @property
    def slug(self) -> str:
        return re.sub(r"[^a-z0-9]+", "_", self.header.lower()).strip("_")[:60]

    @property
    def path(self) -> Path:
        return OUTPUT_DIR / f"{self.slug}.txt"

    @property
    def executable(self) -> bool:
        return self.experiment is not None

    def render(self, text: str) -> str:
        """Wrap experiment text exactly as the benchmark harness does."""
        return f"{'=' * 78}\n{self.header}\n{'=' * 78}\n{text}\n"


def _const_kwargs(call: ast.Call) -> dict | None:
    """The call's keyword arguments, if every one is a literal."""
    kw = {}
    for k in call.keywords:
        if k.arg is None or not isinstance(k.value, ast.Constant):
            return None
        kw[k.arg] = k.value.value
    return kw


def _payload_experiment(node: ast.expr) -> tuple[str, dict] | None:
    """Map a run_and_print payload to (experiment id, kwargs) when the
    payload is a zero-arg lambda around run_experiment()/run_fig01()."""
    if not (isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call)):
        return None
    call = node.body
    if not isinstance(call.func, ast.Name):
        return None
    kw = _const_kwargs(call)
    if kw is None:
        return None
    if call.func.id == "run_experiment":
        if (
            len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            return call.args[0].value, kw
        return None
    if call.func.id == "run_fig01" and not call.args:
        return "fig01", kw
    return None


def discover_targets() -> list[Target]:
    """AST-scan benchmarks/bench_*.py for run_and_print() artifacts."""
    targets: list[Target] = []
    for bench in sorted(BENCH_DIR.glob("bench_*.py")):
        tree = ast.parse(bench.read_text(), filename=str(bench))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "run_and_print"
                and len(node.args) >= 3
                and isinstance(node.args[2], ast.Constant)
                and isinstance(node.args[2].value, str)
            ):
                continue
            t = Target(source=bench.name, header=node.args[2].value)
            exp = _payload_experiment(node.args[1])
            if exp is not None:
                t.experiment, t.kw = exp
            targets.append(t)
    return targets


def regenerate(targets: list[Target], workers: int, store_root=None) -> dict:
    """Run each target's experiment through the service; return
    {slug: rendered artifact text}."""
    from repro.service import ExperimentRequest, ResultStore, RunService

    store = ResultStore(store_root) if store_root else None
    rendered: dict[str, str] = {}
    with RunService(workers=workers, store=store, ledger=False) as svc:
        jobs = [
            (t, svc.submit(ExperimentRequest(t.experiment, t.kw)))
            for t in targets
        ]
        for t, job in jobs:
            done = svc.wait(job.id, timeout=1800)
            if not done.terminal or done.status == "failed":
                raise RuntimeError(
                    f"{t.source}: {t.experiment} {done.status}"
                    + (f" — {done.error}" if done.error else "")
                )
            rendered[t.slug] = t.render(svc.result(job.id))
        print(
            f"service executed {svc.executed} of {len(jobs)} job(s) "
            f"({len(jobs) - svc.executed} served from cache)"
        )
    return rendered


def check_baseline() -> list[str]:
    problems = []
    if not BASELINE.exists():
        return [f"missing baseline {BASELINE.relative_to(REPO)}"]
    try:
        data = json.loads(BASELINE.read_text())
    except ValueError as exc:
        return [f"{BASELINE.relative_to(REPO)}: invalid JSON ({exc})"]
    if data.get("schema") != BASELINE_SCHEMA:
        problems.append(
            f"{BASELINE.relative_to(REPO)}: schema "
            f"{data.get('schema')!r} != {BASELINE_SCHEMA!r}"
        )
    if not data.get("cases"):
        problems.append(f"{BASELINE.relative_to(REPO)}: no cases recorded")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="regenerate everything (no cache) and fail on "
                         "any byte drift vs the committed artifacts")
    ap.add_argument("--workers", type=int, default=2,
                    help="service worker processes (default 2)")
    ap.add_argument("--list", action="store_true",
                    help="print the discovered targets and exit")
    args = ap.parse_args(argv)

    targets = discover_targets()
    runnable = [t for t in targets if t.executable]
    static = [t for t in targets if not t.executable]
    if args.list:
        for t in targets:
            mode = (
                f"run:{t.experiment}{t.kw or ''}" if t.executable
                else "presence-only"
            )
            print(f"{t.path.name:<64} {t.source:<36} {mode}")
        return 0
    print(
        f"{len(targets)} artifact target(s) from benchmark sources "
        f"({len(runnable)} regenerable, {len(static)} presence-only)"
    )

    failures: list[str] = []

    if args.check:
        with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
            rendered = regenerate(runnable, args.workers, store_root=tmp)
        for t in runnable:
            if not t.path.exists():
                failures.append(f"missing artifact {t.path.name}")
            elif t.path.read_text() != rendered[t.slug]:
                failures.append(f"DRIFT: {t.path.name} ({t.source})")
            else:
                print(f"ok: {t.path.name}")
        for t in static:
            if t.path.exists():
                print(f"ok (presence): {t.path.name}")
            else:
                failures.append(f"missing artifact {t.path.name} "
                                f"(regenerate with: pytest benchmarks/"
                                f"{t.source} --benchmark-only -s)")
        failures.extend(check_baseline())
        if failures:
            print(f"\n{len(failures)} problem(s):", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("all committed artifacts reproduce byte-identically")
        return 0

    missing = [t for t in runnable if not t.path.exists()]
    for t in static:
        if not t.path.exists():
            print(f"cannot regenerate {t.path.name} here — run: "
                  f"pytest benchmarks/{t.source} --benchmark-only -s")
    if not missing:
        print("nothing to do: every regenerable artifact is present")
        return 0
    print(f"regenerating {len(missing)} missing artifact(s) ...")
    rendered = regenerate(missing, args.workers)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    for t in missing:
        t.path.write_text(rendered[t.slug])
        print(f"wrote {t.path.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
