"""Checkpoint/restart support for the distributed solvers.

The checkpointing runner gathers the global conservative state to rank 0
every ``checkpoint_every`` steps and stores it in a
:class:`CheckpointStore` that outlives the (possibly crashing) cluster;
after a :class:`~repro.msglib.virtual.RankFailure` the run resumes from
the newest snapshot on a fresh cluster instead of starting over.

Bitwise-exact resume: a snapshot holds ``(nstep, t, q)`` — everything the
solver's arithmetic depends on except the adaptive ``dt`` cache, which is
recomputed from the restored state on the first step after resume.  The
resumed trajectory is therefore bitwise-identical to an uninterrupted run
whenever the ``dt`` recomputation schedule realigns, i.e. when
``checkpoint_every`` is a multiple of ``SolverConfig.dt_recompute_every``
(or ``dt`` is fixed, or ``dt_recompute_every == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Snapshot:
    """One recoverable point of a distributed run."""

    step: int
    t: float
    q: np.ndarray
    """Global conservative array ``(4, nx, nr)`` (a private copy)."""


class CheckpointStore:
    """Keeps the newest ``keep`` snapshots of a run, oldest evicted first.

    Only rank 0 writes (it owns the gathered state); the store lives in
    the driver, outside any cluster, so it survives crashes and restarts.
    """

    def __init__(self, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = keep
        self._snapshots: list[Snapshot] = []

    def save(self, step: int, t: float, q: np.ndarray) -> Snapshot:
        snap = Snapshot(step=step, t=float(t), q=np.array(q, copy=True))
        self._snapshots.append(snap)
        del self._snapshots[: -self.keep]
        return snap

    @property
    def latest(self) -> Snapshot | None:
        return self._snapshots[-1] if self._snapshots else None

    @property
    def steps(self) -> list[int]:
        return [s.step for s in self._snapshots]

    def __len__(self) -> int:
        return len(self._snapshots)
