"""Per-rank time accounting: the paper's execution-time split.

Section 6: "wherever feasible, we have separated the execution time into
two additive components: processor busy time and non-overlapped
communication time.  The processor busy time is itself composed of the
actual computation time and the software overheads associated with sending
and receiving messages."  :class:`RankTimeline` implements exactly that
split: compute and library CPU overheads accumulate into ``busy``;
time blocked waiting on the network or on late messages accumulates into
``comm_wait``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from .engine import Delay, Engine, Event, Wait


@dataclass(frozen=True)
class Segment:
    """One traced activity interval of a rank."""

    kind: str  # "compute", "library", or "wait"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RankTimeline:
    """Accumulated time components for one rank."""

    rank: int
    busy: float = 0.0
    """Compute + message software overheads (paper's 'processor busy')."""
    compute: float = 0.0
    """The compute-only part of ``busy``."""
    library: float = 0.0
    """The message-software part of ``busy``."""
    comm_wait: float = 0.0
    """Non-overlapped communication (blocked on wire/late messages)."""
    finished_at: float = 0.0
    segments: list[Segment] | None = None
    """Traced activity intervals (``None`` unless tracing was enabled)."""

    @property
    def total(self) -> float:
        return self.busy + self.comm_wait


class RankContext:
    """Generator helpers that advance time while keeping the books."""

    def __init__(self, engine: Engine, rank: int, trace: bool = False) -> None:
        self.engine = engine
        self.timeline = RankTimeline(rank)
        if trace:
            self.timeline.segments = []

    def _record(self, kind: str, t0: float) -> None:
        segs = self.timeline.segments
        if segs is not None and self.engine.now > t0:
            segs.append(Segment(kind, t0, self.engine.now))

    def busy_compute(self, seconds: float) -> Generator:
        t0 = self.engine.now
        self.timeline.busy += seconds
        self.timeline.compute += seconds
        yield Delay(seconds)
        self._record("compute", t0)

    def busy_library(self, seconds: float) -> Generator:
        t0 = self.engine.now
        self.timeline.busy += seconds
        self.timeline.library += seconds
        yield Delay(seconds)
        self._record("library", t0)

    def wait_comm(self, event: Event) -> Generator:
        t0 = self.engine.now
        yield Wait(event)
        self.timeline.comm_wait += self.engine.now - t0
        self._record("wait", t0)

    def delay_comm(self, seconds: float) -> Generator:
        """Non-overlapped wire time spent inline (blocking sends)."""
        t0 = self.engine.now
        self.timeline.comm_wait += seconds
        yield Delay(seconds)
        self._record("wait", t0)

    def finish(self) -> None:
        self.timeline.finished_at = self.engine.now
