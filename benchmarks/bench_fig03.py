"""Reproduction benchmark: Figure 3: Navier-Stokes execution time on LACE (ALLNODE-F / ALLNODE-S / Ethernet)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig03(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig03"),
        "Figure 3: Navier-Stokes execution time on LACE (ALLNODE-F / ALLNODE-S / Ethernet)",
    )
