#!/usr/bin/env python3
"""NOW scalability: how the LACE interconnects shape application speedup.

Reproduces the paper's Section 7.1 analysis: simulates the jet workload on
the cluster under all five networks (Ethernet, FDDI, ATM, ALLNODE-F,
ALLNODE-S), locates the Ethernet saturation point, and replays the paper's
back-of-envelope saturation argument ("consider a 1 second interval...")
with the model's own numbers.

Usage::

    python examples/network_study.py [--euler]
"""

import argparse

from repro.analysis.metrics import minimum_location
from repro.analysis.report import format_table, render_series
from repro.machines.platforms import (
    LACE_560,
    LACE_560_ETHERNET,
    LACE_560_FDDI,
    LACE_590,
    LACE_590_ATM,
)
from repro.simulate import SimulatedMachine
from repro.simulate.workload import EULER, NAVIER_STOKES


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--euler", action="store_true")
    args = ap.parse_args()
    app = EULER if args.euler else NAVIER_STOKES
    procs = [1, 2, 4, 6, 8, 10, 12, 14, 16]

    nets = [LACE_590, LACE_590_ATM, LACE_560, LACE_560_FDDI, LACE_560_ETHERNET]
    series = {}
    for plat in nets:
        series[plat.name] = [
            SimulatedMachine(plat, p).run(app, steps_window=30).execution_time
            for p in procs
        ]

    print(render_series(procs, series,
                        title=f"{app.name} on the LACE interconnects"))
    rows = [[p] + [f"{series[k][i]:,.0f}" for k in series]
            for i, p in enumerate(procs)]
    print()
    print(format_table(["p"] + list(series), rows))

    eth = series[LACE_560_ETHERNET.name]
    p_min, t_min = minimum_location(procs, eth)
    print(
        f"\nEthernet minimum: p={p_min} at {t_min:,.0f}s "
        f"(paper: peak at 8 processors for Navier-Stokes, 10 for Euler)"
    )

    # The paper's saturation argument with model numbers.
    mflops = LACE_560.cpu.sustained_mflops(5)
    vol_per_step = sum(
        m.nbytes for ph in __import__("repro.simulate.workload", fromlist=["Workload"])
        .Workload.paper(app).phases for m in ph.messages
    )
    flops_per_step = app.flops_per_step
    for p in (8, 10, 12):
        compute_s = flops_per_step / p / (mflops * 1e6)
        demand = p * vol_per_step / compute_s * 8 / 1e6
        print(
            f"  at p={p:2d}: each step computes {compute_s * 1e3:6.1f} ms and the "
            f"cluster offers {demand:5.1f} Mb/s to a 10 Mb/s medium"
        )


if __name__ == "__main__":
    main()
