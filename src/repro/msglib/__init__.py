"""Message-passing substrate.

Three halves (two real, one modelled):

* A **real** in-process message-passing implementation
  (:class:`~repro.msglib.virtual.VirtualCluster` +
  :class:`~repro.msglib.virtual.VirtualComm`) with PVM-style buffered sends,
  tagged receives, reductions and barriers.  The distributed solver runs on
  it for real — one thread per rank — and is verified bitwise against the
  serial solver.
* A **multi-core** counterpart (:class:`~repro.msglib.process.ProcessCluster`
  + :class:`~repro.msglib.process.ProcessCommunicator`): one OS process per
  rank, halo payloads through POSIX shared memory, a queue control plane for
  tags/collectives/timeouts.  Same :class:`~repro.msglib.api.Communicator`
  contract, bitwise-identical results, and — unlike the GIL-serialized
  virtual cluster — real wall-clock speedup on multi-core hosts.
* **Cost models** of the 1995 message-passing libraries the paper used
  (PVM 3.2.2, IBM's MPL, PVMe) in :mod:`repro.msglib.libmodel`; these feed
  the discrete-event simulator, not the real executor.
"""

from .api import CommStats, Communicator, MessageRecord
from .vchannel import ClusterAborted, DeadlockError, Mailbox
from .virtual import RankFailure, VirtualCluster, VirtualComm
from .process import ProcessCluster, ProcessComm, ProcessCommunicator, RemoteRankError
from .libmodel import LibraryModel, MPL, PVM, PVME, library_by_name

__all__ = [
    "ClusterAborted",
    "Communicator",
    "CommStats",
    "DeadlockError",
    "MessageRecord",
    "Mailbox",
    "ProcessCluster",
    "ProcessComm",
    "ProcessCommunicator",
    "RankFailure",
    "RemoteRankError",
    "VirtualCluster",
    "VirtualComm",
    "LibraryModel",
    "PVM",
    "PVME",
    "MPL",
    "library_by_name",
]
