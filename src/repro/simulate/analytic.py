"""Closed-form performance model — the discrete-event simulator's sanity
check.

For an SPMD step of ``C`` compute seconds and ``m`` messages per rank over
a network of aggregate capacity ``B`` bytes/s:

* **busy** = compute + per-message library CPU costs (exact);
* **comm** (uncontended) = the per-phase round latency
  ``wire_startup + network latency + message transfer`` summed over the
  phases, minus what the send-side software already covers;
* **shared media** add an M/D/1-style waiting factor ``1/(1 - rho)`` at
  utilization ``rho = offered traffic / capacity``, and beyond saturation
  (``rho >= 1``) the medium itself paces the run:
  ``T = total bytes / capacity``.

The tests require the event simulation to agree with this model in the
uncontended regime and to saturate where it predicts — if the DES drifts
from first principles, they fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.platforms import Platform
from ..parallel.versions import Version, version_by_number
from .costmodel import CostModel
from .workload import Application, Workload


@dataclass(frozen=True)
class AnalyticEstimate:
    """Closed-form per-run estimate (full-length seconds)."""

    busy: float
    comm: float
    utilization: float
    """Offered traffic over shared-medium capacity (0 for switched nets)."""

    @property
    def execution_time(self) -> float:
        return self.busy + self.comm


def analytic_execution_time(
    platform: Platform,
    nprocs: int,
    app: Application,
    version: int | Version = 5,
) -> AnalyticEstimate:
    """Closed-form estimate of the full-run execution time."""
    if isinstance(version, int):
        version = version_by_number(version)
    workload = Workload.paper(app)
    p = nprocs
    cost = CostModel.of(platform.cpu, version)
    ws = workload.working_set_bytes(p)
    compute = cost.compute_time(app.total_flops / p, ws)
    # Version 6's op-mix penalties are inside the cost model already.

    library = platform.library
    if library.scale_with_cpu and platform.cpu.v5_target_mflops:
        library = library.scaled(16.0 / platform.cpu.v5_target_mflops)

    sends = workload.sends_per_step()
    if version.split_flux_columns:
        sends += sum(
            1
            for ph in workload.phases
            for msg in ph.messages
            if msg.kind == "flux"
        )
    if p == 1:
        return AnalyticEstimate(busy=compute, comm=0.0, utilization=0.0)

    per_send = workload.volume_per_step() / workload.sends_per_step()
    steps = app.steps
    lib_cpu = steps * sends * (
        library.send_cpu_time(per_send) + library.recv_cpu_time(per_send)
    )
    busy = compute + lib_cpu

    network = platform.network(p)
    # Per-phase latency: one round of startup + wire occupancy, partially
    # covered by the sender-side software time already counted as busy.
    n_rounds = len(workload.phases)
    wire = network.latency + network.transfer_time(int(per_send))
    round_lat = max(
        library.wire_startup + wire - library.send_cpu_time(per_send), 0.0
    )
    comm = steps * n_rounds * round_lat

    # Shared-medium queueing.
    caps = network.capacities()
    shared = [k for k, c in caps.items() if c == 1 and ":" not in k]
    utilization = 0.0
    if shared:
        offered = p * workload.volume_per_step()  # bytes per step
        step_time = compute / steps + workload.sends_per_step() * (
            library.send_cpu_time(per_send) + library.recv_cpu_time(per_send)
        ) + n_rounds * round_lat
        capacity = network.saturation_bandwidth()
        utilization = offered / step_time / capacity
        if utilization >= 1.0:
            # The medium paces everything: total wire time is the floor.
            total_bytes = steps * offered
            wire_total = total_bytes / capacity
            comm = max(wire_total - busy, comm)
        else:
            comm = comm / max(1.0 - utilization, 1e-6)
    return AnalyticEstimate(busy=busy, comm=comm, utilization=utilization)


def analytic_saturation_procs(
    platform: Platform, app: Application, max_procs: int = 32
) -> int | None:
    """Smallest processor count whose offered traffic saturates a shared
    medium (None for switched networks or if never reached)."""
    for p in range(2, max_procs + 1):
        est = analytic_execution_time(platform, p, app)
        if est.utilization >= 1.0:
            return p
    return None
