"""Scalar and vector CPU timing models."""

import pytest

from repro.machines.cache import CacheSpec
from repro.machines.cpu import ScalarCpuModel
from repro.machines.platforms import (
    CPU_ALPHA_21064,
    CPU_RS6000_370,
    CPU_RS6000_560,
    CPU_RS6000_590,
    CPU_YMP,
)
from repro.machines.vector import VectorCpuModel
from repro.parallel.versions import VERSIONS


class TestAnchoring:
    def test_v5_hits_target_exactly(self):
        for cpu in (CPU_RS6000_560, CPU_RS6000_590, CPU_RS6000_370, CPU_ALPHA_21064):
            assert cpu.sustained_mflops(5) == pytest.approx(
                cpu.v5_target_mflops, rel=1e-9
            )

    def test_paper_560_numbers(self):
        """Paper Section 6: 9.3 -> 16.0 MFLOPS on the RS6000/560."""
        assert CPU_RS6000_560.sustained_mflops(5) == pytest.approx(16.0)
        assert CPU_RS6000_560.sustained_mflops(1) == pytest.approx(9.3, rel=0.1)

    def test_unanchored_model_is_mechanistic(self):
        cpu = ScalarCpuModel(
            name="raw",
            clock_hz=50e6,
            cache=CacheSpec(64 * 1024, 128, 4, 12.0),
        )
        assert cpu.v5_target_mflops is None
        assert cpu.sustained_mflops(5) > 0


class TestVersionLadder:
    @pytest.mark.parametrize("cpu", [CPU_RS6000_560, CPU_RS6000_370])
    def test_each_optimization_helps(self, cpu):
        rates = [cpu.sustained_mflops(v) for v in (1, 2, 3, 4, 5)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_loop_interchange_is_biggest_single_win(self):
        cpu = CPU_RS6000_560
        gains = {
            v: cpu.sustained_mflops(v) / cpu.sustained_mflops(v - 1)
            for v in (2, 3, 4, 5)
        }
        assert max(gains, key=gains.get) == 3  # the stride-1 fix

    def test_overall_improvement_near_80_percent(self):
        """Paper: 'an overall improvement of roughly 80%'."""
        cpu = CPU_RS6000_560
        ratio = cpu.sustained_mflops(5) / cpu.sustained_mflops(1)
        assert 1.5 < ratio < 1.95

    def test_v6_slightly_slower_than_v5(self):
        cpu = CPU_RS6000_560
        assert cpu.sustained_mflops(6) < cpu.sustained_mflops(5)
        assert cpu.sustained_mflops(6) > 0.9 * cpu.sustained_mflops(5)

    def test_v7_computes_like_v5(self):
        cpu = CPU_RS6000_560
        assert cpu.sustained_mflops(7) == cpu.sustained_mflops(5)


class TestCacheSensitivity:
    def test_smaller_working_set_is_faster(self):
        cpu = CPU_ALPHA_21064
        assert cpu.sustained_mflops(5, working_set=1e5) > cpu.sustained_mflops(
            5, working_set=4e6
        )

    def test_time_for_flops_linear(self):
        cpu = CPU_RS6000_560
        assert cpu.time_for_flops(2e9, 5) == pytest.approx(
            2 * cpu.time_for_flops(1e9, 5)
        )

    def test_peak_rating_ordering_matches_paper(self):
        """T3D peak is ~2.3x / 3x the 590 / 560 (paper Section 7.2)."""
        assert CPU_ALPHA_21064.peak_mflops == pytest.approx(
            2.3 * CPU_RS6000_590.peak_mflops, rel=0.05
        )
        assert CPU_ALPHA_21064.peak_mflops == pytest.approx(
            3.0 * CPU_RS6000_560.peak_mflops, rel=0.05
        )

    def test_sustained_ordering_inverts_peak(self):
        """Despite its peak, the T3D node sustains less than the 560 —
        the paper's central cache-design point."""
        assert CPU_ALPHA_21064.sustained_mflops(5) < CPU_RS6000_560.sustained_mflops(5)


class TestVectorModel:
    def test_hockney_curve(self):
        v = VectorCpuModel("v", r_inf_mflops=300, n_half=30)
        assert v.sustained_mflops(30) < v.sustained_mflops(300)
        # Half speed at n_half (up to the scalar Amdahl term).
        pure = VectorCpuModel("v", 300, 30, vector_fraction=1.0)
        assert pure.sustained_mflops(30) == pytest.approx(150.0)

    def test_long_vector_limit(self):
        pure = VectorCpuModel("v", 300, 30, vector_fraction=1.0)
        assert pure.sustained_mflops(1e6) == pytest.approx(300.0, rel=1e-3)

    def test_time_for_flops(self):
        t = CPU_YMP.time_for_flops(1e9, vector_length=100)
        assert t > 1e9 / (CPU_YMP.r_inf_mflops * 1e6)  # slower than r_inf

    def test_prevectorization_versions_slower(self):
        t_v1 = CPU_YMP.time_for_flops(1e9, 100, version=1)
        t_v5 = CPU_YMP.time_for_flops(1e9, 100, version=5)
        assert t_v1 > t_v5
