"""The compiled "V6" kernel backend: JIT-compiled fused-step kernels.

The paper's single-processor story is a V1→V5 ladder that kept the
algorithm fixed while recompiling the hot loops harder; this backend is
the same move one rung further.  The fused backend's numpy ufunc chains
are transcribed per element into native loops and dispatched through a
:class:`CompiledWorkspace`, so every solver layer — serial, all three
decompositions, every substrate — inherits the speedup without touching
the spatial or communication machinery.

Three interchangeable engines provide the kernels:

* ``"numba"`` — :mod:`_loops` functions wrapped in ``numba.njit`` (strict
  IEEE semantics: no fastmath, no FMA contraction), used when numba is
  importable;
* ``"cc"`` — the C translation unit in :mod:`_cc` built with the system
  compiler (``-ffp-contract=off``) and called through ctypes;
* ``"python"`` — the raw loop functions, uncompiled.  Orders of magnitude
  too slow for production grids but it lets the differential wall run on
  hosts with neither numba nor a C compiler (tiny grids only).

Engine order: ``$REPRO_COMPILED_ENGINE`` if set, else numba, else cc,
else ``"python"`` is **not** silently substituted — the backend raises
:class:`BackendUnavailable` and ``step_workspace`` falls back to the
fused workspace with a warning, so a solver asked for ``"compiled"``
always runs (and, because every engine is bitwise-equal to fused,
always computes the same flow field).

**Tolerance policy.**  Each engine declares ``bitwise = True`` because
every kernel replicates the fused op order with strict IEEE-754 double
arithmetic (no fast-math, no FMA, divisions stay divisions).  On a
platform where an engine cannot honour that (e.g. a toolchain that
ignores ``-ffp-contract=off``), flip its ``bitwise`` flag to ``False``:
the differential tests then assert the pinned ULP bound
(``tests/test_compiled.py::ULP_BOUND``) instead of equality, and the run
fingerprint keeps ``"compiled"`` results in a separate cache identity
(see ``RunRequest.fingerprint``).
"""

from __future__ import annotations

import os
import warnings
import weakref

import numpy as np

from ... import constants
from ...physics import eos
from .base import KernelBackend, StepWorkspace
from .fused import _halo_stress, _mu, _subtract_viscous
from . import _loops

#: Environment variable forcing a specific engine ("numba", "cc", "python").
ENGINE_ENV_VAR = "REPRO_COMPILED_ENGINE"

#: Engines tried in order when none is forced.
_ENGINE_ORDER = ("numba", "cc")


class BackendUnavailable(RuntimeError):
    """No engine can supply compiled kernels on this host."""


class _OpsBase:
    """Engine-neutral kernel facade the workspace dispatches through.

    Subclasses implement the raw kernels (``prim``/``ax_inv``/…); the
    shapes, optional-operand conventions, and op orders are identical
    across engines, so the differential tests can compare engines
    directly.
    """

    engine = ""
    #: Engine produces bitwise-identical doubles to the fused backend.
    #: See the module docstring for the policy when a platform cannot.
    bitwise = True

    # Raw kernels — subclasses override.
    def prim(self, q, gamma, inv_rho, u, v, p, T):  # pragma: no cover
        raise NotImplementedError

    def ax_inv(self, q, u, v, p, F):  # pragma: no cover
        raise NotImplementedError

    def rad_inv(self, q, u, v, p, G):  # pragma: no cover
        raise NotImplementedError

    def visc(self, F, tau_tt, ws, r, mu, k, dx, dr, radial):  # pragma: no cover
        raise NotImplementedError

    def rad_finish(self, G, S2, p, tau_tt, r, viscous):  # pragma: no cover
        raise NotImplementedError

    def rate(self, f, lo, hi, axis, h, forward, source, iw, out):  # pragma: no cover
        raise NotImplementedError

    def predictor(self, q, rate, dt, q_star):  # pragma: no cover
        raise NotImplementedError

    def corrector(self, q, q_star, rate, dt, out):  # pragma: no cover
        raise NotImplementedError

    def filter_apply(self, q, lo, hi, axis, eps, scratch):  # pragma: no cover
        raise NotImplementedError

    # -- overlapped-exchange loop variants (shared across engines) ---------
    def rate_interior(self, f, lo, hi, axis, h, forward, source, iw, out):
        """Provisional rate pass for the overlap window.

        The in-flight side's ghost argument is ``None`` (every engine's
        rate kernel then cubic-extrapolates it, the serial-boundary
        path), so all interior columns come out final and only the two
        edge columns on the in-flight side are provisional — exactly the
        strip :meth:`rate_edges` recomputes after the exchange lands.
        """
        return self.rate(f, lo, hi, axis, h, forward, source, iw, out)

    def rate_edges(self, f, ghosts, axis, h, forward, source, iw, out):
        """Recompute the two ghost-dependent edge columns of ``out``.

        Engine-neutral by construction: the strip replay in
        :func:`repro.numerics.kernels.overlap.rate_edges` follows the
        identical strict-IEEE op chain all engines implement, so its
        columns are bitwise what this engine's full kernel would have
        produced with the real ghosts.
        """
        from .overlap import rate_edges as _rate_edges

        return _rate_edges(f, ghosts, axis, h, forward, source, iw, out)

    def warmup(self) -> None:
        """Run every kernel once on a tiny grid.

        For the numba engine this triggers (and caches) every ``njit``
        specialization the solver will need, so JIT compile time lands
        here — at backend resolution — and never inside a benchmarked or
        traced step.  For the other engines it doubles as a smoke test.
        """
        nx, nr = 5, 4
        q = np.ascontiguousarray(
            1.0 + 0.01 * np.arange(4 * nx * nr, dtype=np.float64)
        ).reshape(4, nx, nr)
        ws = StepWorkspace((4, nx, nr), viscous=True, mu_field=True)
        r = np.linspace(0.5, 2.0, nr)
        self.prim(q, 1.4, ws.inv_rho, ws.u, ws.v, ws.p, ws.T)
        self.prim(q, 1.4, ws.inv_rho, ws.u, ws.v, ws.p, None)
        self.ax_inv(q, ws.u, ws.v, ws.p, ws.F)
        self.rad_inv(q, ws.u, ws.v, ws.p, ws.F)
        for radial in (False, True):
            for mu in (0.01, ws.mu):
                k = eos.conductivity(mu, 1.4, constants.PRANDTL)
                self.visc(ws.F, ws.tau_tt, ws, r, mu, k, 0.1, 0.1, radial)
        for viscous in (True, False):
            self.rad_finish(ws.F, ws.S[2], ws.p, ws.tau_tt, r, viscous)
        iw = 1.0 / r
        for axis in (1, 2):
            gh = np.ones((2, 4, nx if axis == 2 else nr))
            for forward in (True, False):
                for ghost in (None, gh):
                    self.rate(
                        q, ghost, ghost, axis, 0.1, forward, None, 1.0,
                        ws.rate,
                    )
                    self.rate(
                        q, ghost, ghost, axis, 0.1, forward, ws.S,
                        iw[None, None, :], ws.rate,
                    )
            self.filter_apply(ws.q_star, None, None, axis, 0.01, ws.rate[0])
            self.filter_apply(ws.q_star, gh, gh, axis, 0.01, ws.rate[0])
        self.predictor(q, ws.rate, 0.01, ws.q_star)
        self.corrector(q, ws.q_star, ws.rate, 0.01, ws.tmp3)


#: Stable-typed placeholders for optional loop-kernel operands (Numba sees
#: one signature per kernel regardless of which optionals are present).
_DUMMY1 = np.empty(1)
_DUMMY3 = np.empty((1, 1, 1))


def _ghost_planes(gh):
    """A ghost-plane provider result as a kernel-ready array, or ``None``.

    Providers return ``(2, 4, plane)`` stacks (or ``None`` for cubic
    extrapolation); received halos may be views, so this forces the
    contiguous float64 layout the kernels index directly.
    """
    if gh is None:
        return None
    gh = np.asarray(gh)
    if gh.dtype == np.float64 and gh.flags.c_contiguous:
        return gh
    return np.ascontiguousarray(gh, dtype=np.float64)


def _iw_array(iw):
    """The per-``j`` 1/r weight as a 1-D array, or ``None`` for identity.

    ``inv_weight`` is either the identity (axial sweeps, planar mode) or
    the broadcastable ``(1, 1, nr)`` 1/r array of a radial sweep; any
    other scalar would be silently mis-broadcast by the per-``j`` kernels
    and is rejected.
    """
    if iw is None:
        return None
    if isinstance(iw, float):
        if iw != 1.0:
            raise ValueError("compiled kernels require inv_weight 1.0 or 1/r")
        return None
    return np.ascontiguousarray(iw).reshape(-1)


class _LoopOps(_OpsBase):
    """Shared facade over the loop kernels (python or numba-jitted)."""

    def __init__(self, kernels: dict):
        self._k = kernels

    def prim(self, q, gamma, inv_rho, u, v, p, T):
        with_T = T is not None
        self._k["prim"](
            q, gamma, inv_rho, u, v, p, T if with_T else inv_rho, with_T
        )

    def ax_inv(self, q, u, v, p, F):
        self._k["ax_inv"](q, u, v, p, F)

    def rad_inv(self, q, u, v, p, G):
        self._k["rad_inv"](q, u, v, p, G)

    def visc(self, F, tau_tt, ws, r, mu, k, dx, dr, radial):
        has_mu = isinstance(mu, np.ndarray)
        has_k = isinstance(k, np.ndarray)
        dummy = ws.p  # any plane-shaped array; flag-guarded, never read
        self._k["visc"](
            F, tau_tt if tau_tt is not None else dummy,
            ws.u, ws.v, ws.T, r,
            mu if has_mu else dummy, 0.0 if has_mu else float(mu), has_mu,
            k if has_k else dummy, 0.0 if has_k else -float(k), has_k,
            dx, dr, radial,
        )

    def rad_finish(self, G, S2, p, tau_tt, r, viscous):
        self._k["rad_finish"](
            G, S2, p, tau_tt if tau_tt is not None else p, r, viscous
        )

    def rate(self, f, lo, hi, axis, h, forward, source, iw, out):
        gh = _ghost_planes(hi if forward else lo)
        if gh is None and f.shape[axis] < 4:
            raise ValueError("cubic extrapolation needs at least 4 points")
        iw1 = _iw_array(iw)
        self._k["rate"](
            f, gh if gh is not None else _DUMMY3, gh is not None,
            source if source is not None else out, source is not None,
            iw1 if iw1 is not None else _DUMMY1, iw1 is not None,
            out, axis, h, forward,
        )
        return out

    def predictor(self, q, rate, dt, q_star):
        self._k["predict"](q, rate, dt, q_star)

    def corrector(self, q, q_star, rate, dt, out):
        self._k["correct"](q, q_star, rate, dt, out)

    def filter_apply(self, q, lo, hi, axis, eps, scratch):
        lo_a = _ghost_planes(lo)
        hi_a = _ghost_planes(hi)
        if (lo_a is None or hi_a is None) and q.shape[axis] < 4:
            raise ValueError("cubic extrapolation needs at least 4 points")
        self._k["filter"](
            q, lo_a if lo_a is not None else _DUMMY3, lo_a is not None,
            hi_a if hi_a is not None else _DUMMY3, hi_a is not None,
            scratch, eps, axis,
        )


class PythonOps(_LoopOps):
    """Uncompiled loop kernels — the no-toolchain reference engine."""

    engine = "python"

    def __init__(self):
        super().__init__(dict(_loops.KERNELS))


class NumbaOps(_LoopOps):
    """Loop kernels under ``numba.njit`` (strict IEEE: fastmath off)."""

    engine = "numba"

    def __init__(self):
        try:
            import numba
        except ImportError as exc:  # pragma: no cover - depends on host
            raise BackendUnavailable(f"numba not importable: {exc}") from exc
        jit = numba.njit(cache=True, fastmath=False)
        super().__init__({n: jit(f) for n, f in _loops.KERNELS.items()})


class CcOps(_OpsBase):
    """The C translation unit in ``_cc.py`` via the system compiler."""

    engine = "cc"

    def __init__(self):
        from . import _cc

        try:
            self._lib = _cc.load_library()
        except (RuntimeError, OSError) as exc:
            raise BackendUnavailable(str(exc)) from exc
        self._ptr_cache: dict[int, int] = {}

    def _p(self, a):
        # ctypes reads raw memory: only C-contiguous float64 is legal.
        # ``ndarray.ctypes.data`` costs ~1µs per access, which dominates
        # small-kernel dispatch, so pointers are cached by array identity;
        # a finalizer evicts the entry when the array dies, before its id
        # (and address) can be reused.  Data pointers are immutable for a
        # live ndarray, so a cache hit is always the current pointer.
        key = id(a)
        ptr = self._ptr_cache.get(key)
        if ptr is not None:
            return ptr
        assert a.dtype == np.float64 and a.flags.c_contiguous
        ptr = a.ctypes.data
        self._ptr_cache[key] = ptr
        weakref.finalize(a, self._ptr_cache.pop, key, None)
        return ptr

    def prim(self, q, gamma, inv_rho, u, v, p, T):
        n = q[0].size
        self._lib.k_prim(
            self._p(q), gamma, self._p(inv_rho), self._p(u), self._p(v),
            self._p(p), self._p(T) if T is not None else None, n,
        )

    def ax_inv(self, q, u, v, p, F):
        self._lib.k_ax_inv(
            self._p(q), self._p(u), self._p(v), self._p(p), self._p(F), u.size
        )

    def rad_inv(self, q, u, v, p, G):
        self._lib.k_rad_inv(
            self._p(q), self._p(u), self._p(v), self._p(p), self._p(G), u.size
        )

    def visc(self, F, tau_tt, ws, r, mu, k, dx, dr, radial):
        nx, nr = ws.u.shape
        has_mu = isinstance(mu, np.ndarray)
        has_k = isinstance(k, np.ndarray)
        self._lib.k_visc(
            self._p(F), self._p(tau_tt) if tau_tt is not None else None,
            self._p(ws.u), self._p(ws.v), self._p(ws.T), self._p(r),
            self._p(mu) if has_mu else None, 0.0 if has_mu else float(mu),
            self._p(k) if has_k else None, 0.0 if has_k else -float(k),
            nx, nr, dx, dr, int(radial),
        )

    def rad_finish(self, G, S2, p, tau_tt, r, viscous):
        nx, nr = p.shape
        self._lib.k_rad_finish(
            self._p(G), self._p(S2), self._p(p),
            self._p(tau_tt) if tau_tt is not None else None,
            self._p(r), nx, nr, int(viscous),
        )

    def rate(self, f, lo, hi, axis, h, forward, source, iw, out):
        _nv, nx, nr = out.shape
        f = _c_contig(f)
        # The local binding keeps any contiguous ghost copy alive for the
        # duration of the foreign call (only its raw pointer is passed).
        gh = _ghost_planes(hi if forward else lo)
        if gh is None and f.shape[axis] < 4:
            raise ValueError("cubic extrapolation needs at least 4 points")
        iw1 = _iw_array(iw)
        self._lib.k_rate(
            self._p(f),
            self._p(gh) if gh is not None else None,
            self._p(source) if source is not None else None,
            self._p(iw1) if iw1 is not None else None,
            self._p(out), nx, nr, axis, h, int(forward),
        )
        return out

    def predictor(self, q, rate, dt, q_star):
        self._lib.k_predict(
            self._p(q), self._p(rate), dt, self._p(q_star), q_star.size
        )

    def corrector(self, q, q_star, rate, dt, out):
        self._lib.k_correct(
            self._p(q), self._p(q_star), self._p(rate), dt, self._p(out),
            out.size,
        )

    def filter_apply(self, q, lo, hi, axis, eps, scratch):
        _nv, nx, nr = q.shape
        lo_a = _ghost_planes(lo)
        hi_a = _ghost_planes(hi)
        if (lo_a is None or hi_a is None) and q.shape[axis] < 4:
            raise ValueError("cubic extrapolation needs at least 4 points")
        self._lib.k_filter(
            self._p(q),
            self._p(lo_a) if lo_a is not None else None,
            self._p(hi_a) if hi_a is not None else None,
            self._p(scratch), eps, nx, nr, axis,
        )


_ENGINES = {"python": PythonOps, "numba": NumbaOps, "cc": CcOps}

#: Warm ops per engine name (compile/JIT happens once per process).
_OPS_CACHE: dict[str, _OpsBase] = {}


def resolve_ops(engine: str | None = None) -> _OpsBase:
    """Build (or reuse) the kernel ops for an engine.

    ``engine=None`` consults ``$REPRO_COMPILED_ENGINE``, then tries numba
    and the C toolchain in order.  Raises :class:`BackendUnavailable`
    when nothing works.
    """
    name = engine or os.environ.get(ENGINE_ENV_VAR) or None
    if name is not None:
        if name not in _ENGINES:
            raise BackendUnavailable(
                f"unknown compiled engine {name!r}; "
                f"expected one of {sorted(_ENGINES)}"
            )
        candidates = (name,)
    else:
        candidates = _ENGINE_ORDER
    errors = []
    for cand in candidates:
        ops = _OPS_CACHE.get(cand)
        if ops is not None:
            return ops
        try:
            ops = _ENGINES[cand]()
            ops.warmup()
        except BackendUnavailable as exc:
            errors.append(f"{cand}: {exc}")
            continue
        _OPS_CACHE[cand] = ops
        return ops
    raise BackendUnavailable(
        "no compiled-kernel engine available (" + "; ".join(errors) + ")"
    )


def _c_contig(a: np.ndarray) -> np.ndarray:
    """The array itself when kernel-ready, else a C-contiguous copy.

    Inputs are only ever read, so a copy preserves bitwise identity; all
    output buffers are workspace-owned and already contiguous float64.
    """
    if a.dtype == np.float64 and a.flags.c_contiguous:
        return a
    return np.ascontiguousarray(a, dtype=np.float64)


class CompiledWorkspace(StepWorkspace):
    """A fused workspace whose hot kernels dispatch to a compiled engine.

    Everything numpy-side stays identical to the fused backend — ghost
    extrapolation, halo exchange, boundary treatment, the distributed
    viscous halo path — while the per-element heavy lifting (primitives,
    flux assembly, gradients, stress application, 2-4 differences,
    predictor/corrector combines, the fourth-difference filter) runs in
    the engine's native loops, bitwise-identically.
    """

    def __init__(self, shape, viscous, mu_field, ops: _OpsBase):
        super().__init__(shape, viscous, mu_field=mu_field)
        self.ops = ops
        self.sweep_x.ops = ops
        self.sweep_r.ops = ops

    def primitives_into(self, fm, q: np.ndarray) -> None:
        self.ops.prim(
            _c_contig(q), fm.gamma, self.inv_rho, self.u, self.v, self.p,
            self.T,
        )

    def axial_flux(self, fm, q, uvT_halo=None, primitives_ready=False):
        ops = self.ops
        q = _c_contig(q)
        viscous = bool(fm.mu)
        if not primitives_ready:
            ops.prim(
                q, fm.gamma, self.inv_rho, self.u, self.v, self.p,
                self.T if viscous else None,
            )
        ops.ax_inv(q, self.u, self.v, self.p, self.F)
        if not viscous:
            return self.F
        mu = _mu(fm, self)
        if uvT_halo is not None:
            # Subdomain-edge gradients keep the numpy reference machinery,
            # exactly as the fused backend does (bitwise-equal to it by
            # construction; the interior kernels above did the hot work).
            terms = _halo_stress(fm, self, mu, uvT_halo)
            _subtract_viscous(
                self.F, terms.tau_xx, terms.tau_xr, terms.heat_x,
                self.u, self.v, 1, 2, self,
            )
            return self.F
        k = eos.conductivity(mu, fm.gamma, constants.PRANDTL)
        ops.visc(self.F, None, self, fm.r, mu, k, fm.dx, fm.dr, radial=False)
        return self.F

    def radial_flux(self, fm, q, uvT_halo=None, primitives_ready=False):
        ops = self.ops
        q = _c_contig(q)
        viscous = bool(fm.mu)
        if not primitives_ready:
            ops.prim(
                q, fm.gamma, self.inv_rho, self.u, self.v, self.p,
                self.T if viscous else None,
            )
        G = self.F
        ops.rad_inv(q, self.u, self.v, self.p, G)
        if viscous:
            mu = _mu(fm, self)
            if uvT_halo is not None:
                terms = _halo_stress(fm, self, mu, uvT_halo)
                _subtract_viscous(
                    G, terms.tau_rr, terms.tau_xr, terms.heat_r,
                    self.u, self.v, 2, 1, self,
                )
                if not fm.config.axisymmetric:
                    return G, self.S
                np.multiply(G, fm.weight, out=G)
                np.subtract(self.p, terms.tau_tt, out=self.S[2])
                return G, self.S
            k = eos.conductivity(mu, fm.gamma, constants.PRANDTL)
            ops.visc(
                G, self.tau_tt, self, fm.r, mu, k, fm.dx, fm.dr, radial=True
            )
        if not fm.config.axisymmetric:
            return G, self.S  # planar: unweighted flux, all-zero source
        ops.rad_finish(
            G, self.S[2], self.p, self.tau_tt if viscous else None,
            fm.r, viscous,
        )
        return G, self.S


class CompiledBackend(KernelBackend):
    """Registry entry: compiled kernels with a clean fallback to fused."""

    name = "compiled"

    def __init__(self, engine: str | None = None):
        self._engine = engine

    def available(self) -> bool:
        """True when some engine can supply kernels on this host."""
        try:
            resolve_ops(self._engine)
        except BackendUnavailable:
            return False
        return True

    def ops(self) -> _OpsBase:
        """The resolved (warm) kernel ops; raises BackendUnavailable."""
        return resolve_ops(self._engine)

    def step_workspace(self, solver) -> StepWorkspace:
        viscous = bool(solver.fm.mu)
        mu_field = viscous and solver.config.mu_exponent != 0.0
        shape = solver.state.q.shape
        try:
            ops = resolve_ops(self._engine)
        except BackendUnavailable as exc:
            warnings.warn(
                f"compiled backend unavailable ({exc}); "
                "falling back to the fused numpy kernels "
                "(bitwise-identical, slower)",
                RuntimeWarning,
                stacklevel=2,
            )
            return StepWorkspace(shape, viscous, mu_field=mu_field)
        return CompiledWorkspace(shape, viscous, mu_field, ops)
