"""Reproduction benchmark: Figure 1 — axial momentum of the excited jet.

Runs the *real* Navier-Stokes solver (vectorized numpy) at reduced
resolution; ``examples/excited_jet.py --full`` runs the paper's exact
250x100 / 16,000-step configuration.
"""

from repro.experiments.runners import run_fig01

from conftest import run_and_print


def test_fig01(benchmark):
    run_and_print(
        benchmark,
        lambda: run_fig01(nx=100, nr=40, steps=800),
        "Figure 1: X MOMENTUM in an excited axisymmetric jet "
        "(reduced-size real solver run)",
    )
