"""Serial time-accurate solvers for the jet Navier-Stokes/Euler equations.

:class:`NavierStokesSolver` and :class:`EulerSolver` integrate the
axisymmetric equations with the alternated split 2-4 MacCormack scheme
(paper Section 3):

* even steps apply ``Q <- L1x( L1r(Q) )``,
* odd steps apply ``Q <- L2r( L2x(Q) )``,

each split operator advancing the full ``dt``.  After the sweeps the inflow
column is pinned to the excited jet profile at the new time, the outflow
column is advanced with the characteristic treatment, and an optional thin
sponge relaxes the far field.

A planar, optionally periodic mode (``SolverConfig(axisymmetric=False,
periodic_x=True, ...)``) exists purely for verification: on periodic
domains the scheme telescopes and conserves the state sums to round-off and
its spatial order of accuracy can be measured against smooth exact
solutions.  All benchmark experiments use the axisymmetric jet mode.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .. import constants
from ..grid import Grid
from ..obs import get_metrics, get_stream, get_tracer, step_record
from ..physics import eos
from ..physics.fluxes import axisymmetric_source, inviscid_fluxes
from ..physics.state import FlowState
from ..physics.viscous import stress_tensor, viscous_fluxes
from .boundary import (
    BoundaryConditions,
    apply_axis_ghosts,
    characteristic_outflow_rates,
)
from .kernels import resolve_backend
from .maccormack import PREDICTOR, SplitOperator, SweepWorkspace
from .stencils import extend_axis
from .timestep import stable_dt


@dataclass
class SolverConfig:
    """Configuration shared by the serial and distributed solvers."""

    viscous: bool = True
    gamma: float = constants.GAMMA
    mu: float | None = None
    """Dynamic viscosity; ``None`` derives it from Mach/Reynolds."""
    mu_exponent: float = 0.0
    """Power-law temperature dependence ``mu(T) = mu_ref * T**exponent``
    (0 = constant viscosity, the configuration the paper's jet uses;
    ~0.7 approximates Sutherland over this temperature range)."""
    mach: float = constants.JET_MACH
    reynolds: float = constants.REYNOLDS
    cfl: float = 0.5
    dt: float | None = None
    """Fixed time step; ``None`` adapts from the CFL condition."""
    dt_recompute_every: int = 10
    """Steps between CFL re-evaluations when adapting."""
    axisymmetric: bool = True
    periodic_x: bool = False
    periodic_r: bool = False
    boundary: BoundaryConditions | None = None
    """Jet boundary bundle; ``None`` disables inflow/outflow/sponge
    treatment (test mode)."""
    dissipation: float = 0.02
    """Fourth-difference smoothing coefficient applied once per step.

    The 2-4 MacCormack scheme's built-in dissipation (from the alternating
    one-sided differences) is marginal for a Reynolds-1.2e6 shear layer at
    the paper's resolution; production codes of the era added a weak
    fourth-difference filter.  Applied in conservative difference form so
    periodic conservation is preserved; set to 0 to disable.
    """
    backend: str | None = None
    """Kernel backend name (``"baseline"``, ``"fused"``, ``"compiled"``,
    or a name added via :func:`repro.numerics.kernels.register_backend`).
    ``None`` defers to the ``REPRO_BACKEND`` environment variable, then
    ``"baseline"``.  Backends select *how* the hot-path kernels are
    evaluated, never what they compute: all backends are
    bitwise-identical (``"compiled"`` falls back to the fused kernels
    with a warning on hosts with neither numba nor a C toolchain)."""

    def viscosity(self) -> float:
        if not self.viscous:
            return 0.0
        if self.mu is not None:
            return self.mu
        return eos.viscosity(mach=self.mach, reynolds=self.reynolds)


class FluxModel:
    """Evaluates the total (inviscid + viscous) split fluxes on any slab.

    Shared verbatim by the serial solver and every rank of the distributed
    solver; the distributed solver calls it on halo-extended arrays so that
    its gradients reproduce the serial interior arithmetic exactly.
    """

    def __init__(self, r: np.ndarray, dx: float, dr: float, config: SolverConfig):
        self.r = np.asarray(r, dtype=np.float64)
        self.dx = dx
        self.dr = dr
        self.config = config
        self.mu = config.viscosity()
        self.gamma = config.gamma
        # Radial weight for the r-sweep; 1 in planar mode.
        if config.axisymmetric:
            self.weight = self.r[None, None, :]
        else:
            self.weight = np.ones((1, 1, self.r.size))

    def primitives(self, q: np.ndarray):
        """``(u, v, T)`` from the conservative array (for halo packing)."""
        rho = q[0]
        inv_rho = 1.0 / rho
        u = q[1] * inv_rho
        v = q[2] * inv_rho
        p = (self.gamma - 1.0) * (q[3] - 0.5 * (q[1] * u + q[2] * v))
        T = self.gamma * p * inv_rho
        return u, v, T

    #: Axis of uvT halo lines: 0 = columns (axial decomposition), 1 = rows
    #: (radial decomposition), 2 = both (2-D blocks, where ``uvT_halo`` is
    #: a ``{'x': pair, 'r': pair}`` dict).  Set by the distributed solvers.
    halo_axis: int = 0

    def _mu_field(self, T: np.ndarray):
        """Viscosity at the local temperature (scalar when constant)."""
        exp = self.config.mu_exponent
        if exp == 0.0:
            return self.mu
        return self.mu * T**exp

    def _viscous(self, q: np.ndarray, uvT_halo=None):
        u, v, T = self.primitives(q)
        if self.halo_axis == 2 and uvT_halo is not None:
            from ..physics.viscous import assemble_stress, field_gradients_2d

            grads = field_gradients_2d(
                u, v, T, self.dx, self.dr,
                halo_x=uvT_halo.get("x"),
                halo_r=uvT_halo.get("r"),
            )
            terms = assemble_stress(
                grads, v, self.r, self._mu_field(T), self.gamma
            )
            return u, v, terms
        halo_lo = halo_hi = None
        if uvT_halo is not None:
            halo_lo, halo_hi = uvT_halo
        terms = stress_tensor(
            u,
            v,
            T,
            self.r,
            self.dx,
            self.dr,
            self._mu_field(T),
            self.gamma,
            halo_lo=halo_lo,
            halo_hi=halo_hi,
            halo_axis=min(self.halo_axis, 1),
        )
        return u, v, terms

    def axial_flux(
        self, q: np.ndarray, uvT_halo=None, ws=None, primitives_ready=False
    ) -> np.ndarray:
        """Total axial flux ``F`` (no radial weight: r is constant in x).

        ``uvT_halo = (lo, hi)`` optionally supplies neighbour ghost columns
        of ``(u, v, T)`` so viscous gradients at subdomain edges match the
        serial interior arithmetic.  ``ws`` selects the workspace's
        zero-allocation kernels — fused numpy in-place ufuncs, or native
        loops when the workspace came from the compiled backend (result
        lands in ``ws.F``, bitwise-identical either way);
        ``primitives_ready`` says the workspace primitive buffers already
        hold this ``q``'s values (set by the distributed halo packing).
        """
        if ws is not None:
            return ws.axial_flux(
                self, q, uvT_halo=uvT_halo, primitives_ready=primitives_ready
            )
        F, _G, _p = inviscid_fluxes(q, self.gamma)
        if self.mu:
            u, v, terms = self._viscous(q, uvT_halo)
            Fv, _Gv = viscous_fluxes(u, v, terms)
            F -= Fv
        return F

    def radial_flux(
        self, q: np.ndarray, uvT_halo=None, ws=None, primitives_ready=False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Weighted radial flux ``r G`` and source ``S = (0,0,p - tau_tt,0)``.

        In planar mode the weight is 1 and the geometric source is absent.
        ``ws``/``primitives_ready`` as in :meth:`axial_flux`.
        """
        if ws is not None:
            return ws.radial_flux(
                self, q, uvT_halo=uvT_halo, primitives_ready=primitives_ready
            )
        _F, G, p = inviscid_fluxes(q, self.gamma)
        tau_tt: np.ndarray | float = 0.0
        if self.mu:
            u, v, terms = self._viscous(q, uvT_halo)
            _Fv, Gv = viscous_fluxes(u, v, terms)
            G -= Gv
            tau_tt = terms.tau_tt
        if not self.config.axisymmetric:
            return G, np.zeros_like(q)
        return self.weight * G, axisymmetric_source(q, p, tau_tt)


def _wrap_ghosts(flux: np.ndarray, axis: int, side: str) -> np.ndarray:
    """Periodic ghost planes (ordered outward, nearest first)."""
    if side == "low":
        idx = [-1, -2]
    else:
        idx = [0, 1]
    sl = [slice(None)] * flux.ndim
    planes = []
    for k in idx:
        sl[axis] = k
        planes.append(flux[tuple(sl)])
    return np.stack(planes)


class CompressibleSolver:
    """Serial integrator; see the module docstring for the step structure.

    Parameters
    ----------
    state:
        Initial :class:`~repro.physics.state.FlowState` (mutated in place).
    config:
        :class:`SolverConfig`.  ``config.boundary`` supplies the jet inflow
        excitation, outflow treatment and sponge.  ``config.backend``
        selects the kernel backend (see :mod:`repro.numerics.kernels`).
    """

    def __init__(self, state: FlowState, config: SolverConfig | None = None):
        self.state = state
        self.grid: Grid = state.grid
        self.config = config or SolverConfig()
        self.fm = FluxModel(self.grid.r, self.grid.dx, self.grid.dr, self.config)
        self.t = 0.0
        self.nstep = 0
        self._dt_cached: float | None = None
        self.wall_time = 0.0
        #: Rank attributed to this solver's trace spans (the distributed
        #: solver overrides it with the communicator rank).
        self._trace_rank = 0
        self.backend = resolve_backend(self.config.backend)
        self._ws = self.backend.step_workspace(self)
        #: Split operators cached per variant (their workspaces close over
        #: ``self`` and read mutable state lazily, so reuse is safe).  Also
        #: holds the outflow helper's radial operator under ("ofw", variant).
        self._ops_cache: dict = {}
        #: Filter index tuples cached per axis (rebuilt-per-step before).
        self._filter_ix: dict[int, list[tuple]] = {}
        cfg = self.config
        if cfg.axisymmetric:
            self._inv_weight = 1.0 / self.grid.r[None, None, :]
        else:
            self._inv_weight = 1.0
        bc = cfg.boundary
        if bc is not None and bc.inflow is not None:
            self._ambient_col = bc.inflow_column(self.grid.r, 0.0, cfg.gamma)
            # Ambient for the sponge: the freestream (g -> 0) state.
            prof = bc.inflow.profile
            t_inf = prof.t_infinity
            rho_inf = cfg.gamma * prof.pressure / t_inf
            amb = np.empty_like(self._ambient_col)
            amb[0] = rho_inf
            amb[1] = rho_inf * prof.coflow
            amb[2] = 0.0
            amb[3] = eos.total_energy(
                rho_inf, prof.coflow, 0.0, prof.pressure, cfg.gamma
            )
            self._sponge_col = amb
        else:
            self._sponge_col = None

    # -- sweep plumbing ------------------------------------------------------
    def _x_workspace(self) -> SweepWorkspace:
        cfg = self.config
        ws = self._ws
        flux = lambda q, ph: (self.fm.axial_flux(q, ws=ws), None)
        scratch = ws.sweep_x if ws is not None else None
        if cfg.periodic_x:
            return SweepWorkspace(
                flux=flux,
                low_ghosts=lambda f, ph: _wrap_ghosts(f, 1, "low"),
                high_ghosts=lambda f, ph: _wrap_ghosts(f, 1, "high"),
                scratch=scratch,
            )
        return SweepWorkspace(flux=flux, scratch=scratch)

    def _r_workspace(self) -> SweepWorkspace:
        base = self._r_workspace_serial()
        ws = self._ws
        if ws is None:
            return base
        return SweepWorkspace(
            flux=lambda q, ph: self.fm.radial_flux(q, ws=ws),
            low_ghosts=base.low_ghosts,
            high_ghosts=base.high_ghosts,
            inv_weight=base.inv_weight,
            scratch=ws.sweep_r,
        )

    def _r_workspace_serial(self) -> SweepWorkspace:
        """Halo-free radial workspace (also used by the outflow helper,
        whose 5-column window is always local to the owning rank)."""
        cfg = self.config
        if cfg.periodic_r:
            low = lambda f, ph: _wrap_ghosts(f, 2, "low")
            high = lambda f, ph: _wrap_ghosts(f, 2, "high")
        elif cfg.axisymmetric:
            low = lambda f, ph: apply_axis_ghosts(f)
            high = lambda f, ph: None
        else:
            low = lambda f, ph: None
            high = lambda f, ph: None
        return SweepWorkspace(
            flux=lambda q, ph: self.fm.radial_flux(q),
            low_ghosts=low,
            high_ghosts=high,
            inv_weight=self._inv_weight,
        )

    def _operators(self, variant: int):
        ws_x = self._x_workspace()
        ws_r = self._r_workspace()
        Lx = SplitOperator(axis=1, h=self.grid.dx, variant=variant, workspace=ws_x)
        Lr = SplitOperator(axis=2, h=self.grid.dr, variant=variant, workspace=ws_r)
        return Lx, Lr

    def _cached_operators(self, variant: int):
        """The per-variant operator pair, constructed once and reused.

        Safe for every solver subclass because the sweep workspaces close
        over ``self`` and read mutable state (``nstep``, halo tags) at call
        time, not construction time.
        """
        ops = self._ops_cache.get(variant)
        if ops is None:
            ops = self._operators(variant)
            self._ops_cache[variant] = ops
        return ops

    # -- time step ------------------------------------------------------------
    def current_dt(self) -> float:
        cfg = self.config
        if cfg.dt is not None:
            return cfg.dt
        if (
            self._dt_cached is None
            or self.nstep % max(cfg.dt_recompute_every, 1) == 0
        ):
            self._dt_cached = stable_dt(
                self.state.q,
                self.grid.dx,
                self.grid.dr,
                cfl=cfg.cfl,
                mu=self.fm.mu,
                gamma=cfg.gamma,
            )
        return self._dt_cached

    # -- boundary updates -------------------------------------------------------
    def _outflow_rates(self, q: np.ndarray, variant: int) -> np.ndarray:
        """Interior conservative rates at the outflow column, shape (4, nr)."""
        window = q[:, -5:, :]
        F = self.fm.axial_flux(window)
        h = self.grid.dx
        # Backward one-sided 2-4 difference at the last column.
        dF = (7.0 * (F[:, -1] - F[:, -2]) - (F[:, -2] - F[:, -3])) / (6.0 * h)
        # Radial contribution near the boundary via the split machinery
        # (a 5-column window keeps the viscous x-gradients well-posed).
        # The window shape differs from the state's, so this stays on the
        # allocating kernels regardless of backend.
        col = np.ascontiguousarray(window)
        Lr = self._ops_cache.get(("ofw", variant))
        if Lr is None:
            ws = self._r_workspace_serial()
            Lr = SplitOperator(axis=2, h=self.grid.dr, variant=variant, workspace=ws)
            self._ops_cache[("ofw", variant)] = Lr
        radial_rate = Lr._rate(col, PREDICTOR)[:, -1, :]
        return -dF + radial_rate

    def _boundary_snapshot(self) -> np.ndarray | None:
        """Pre-step copy of the state strips the boundary update reads.

        The characteristic outflow is the only boundary treatment that
        reads the pre-step state, and every implementation reads at most
        the trailing five columns (``q[:, -5:, :]``); copying just that
        strip replaces the full-state copy the solver used to make each
        step.  Returns ``None`` when no snapshot is needed.
        """
        bc = self.config.boundary
        if bc is None or not bc.characteristic_outflow:
            return None
        q = self.state.q
        ws = self._ws
        if ws is not None:
            np.copyto(ws.q_tail, q[:, -ws.q_tail.shape[1] :, :])
            return ws.q_tail
        return q[:, -5:, :].copy()

    def _apply_boundaries(self, q_tail: np.ndarray | None, dt: float, variant: int):
        """Post-sweep boundary update.

        ``q_tail`` is the :meth:`_boundary_snapshot` strip — the trailing
        (up to) five pre-step columns, so ``q_tail[:, -5:, :]`` and
        ``q_tail[:, -1, :]`` mean the same thing they meant on the full
        pre-step array.
        """
        bc = self.config.boundary
        if bc is None:
            return
        q = self.state.q
        if bc.characteristic_outflow:
            q_t = self._outflow_rates(q_tail, variant)
            rates = characteristic_outflow_rates(
                q_tail[:, -1, :], q_t, self.config.gamma
            )
            q[:, -1, :] = q_tail[:, -1, :] + dt * rates
        if bc.inflow is not None:
            q[:, 0, :] = bc.inflow_column(self.grid.r, self.t, self.config.gamma)
        if bc.sponge is not None and self._sponge_col is not None:
            bc.sponge.apply(q, self._sponge_col)

    # -- fourth-difference filter -------------------------------------------------
    def _state_ghosts(self, q: np.ndarray, axis: int, side: str):
        """Ghost planes of the conservative state for the filter stencil.

        Same boundary logic as the flux sweeps: periodic wrap, axis mirror
        (radial momentum odd), cubic extrapolation elsewhere.  The
        distributed solver overrides this with halo exchange.
        """
        cfg = self.config
        periodic = cfg.periodic_x if axis == 1 else cfg.periodic_r
        if periodic:
            return _wrap_ghosts(q, axis, side)
        if axis == 2 and side == "low" and cfg.axisymmetric:
            from .boundary import AXIS_STATE_SIGNS

            signs = AXIS_STATE_SIGNS[:, None]
            return np.stack([signs * q[:, :, 0], signs * q[:, :, 1]])
        return None  # cubic extrapolation

    def _filter_indices(self, axis: int, n: int) -> list[tuple]:
        """The five stencil index tuples into the extended array, cached.

        These were rebuilt (as slice closures) on every step; the solver
        geometry is fixed, so one construction per axis suffices for both
        backends.
        """
        cached = self._filter_ix.get(axis)
        if cached is None:
            cached = []
            for off in (-2, -1, 0, 1, 2):
                sl: list = [slice(None)] * 3
                sl[axis] = slice(2 + off, 2 + off + n)
                cached.append(tuple(sl))
            self._filter_ix[axis] = cached
        return cached

    def apply_filter(self, q: np.ndarray, ws=None) -> np.ndarray:
        """One pass of the conservative fourth-difference smoothing.

        ``q <- q - eps * (q_{i-2} - 4 q_{i-1} + 6 q_i - 4 q_{i+1} + q_{i+2})``
        along each direction.  With cubic-extrapolated ghosts the fourth
        difference vanishes identically at smooth boundaries, so the filter
        acts only on marginally-resolved interior content.

        With a :class:`~repro.numerics.kernels.StepWorkspace` ``ws`` the
        filter runs in place on ``q`` using the workspace's extended and
        scratch buffers (which are free after the sweeps), bitwise-identical
        to the allocating form.
        """
        eps = self.config.dissipation
        if eps <= 0.0:
            return q
        for axis in (1, 2):
            low = self._state_ghosts(q, axis, "low")
            high = self._state_ghosts(q, axis, "high")
            if ws is not None and ws.ops is not None:
                # Compiled path: ghost extension folded into the filter
                # kernel; ws.rate is free scratch after the sweeps.
                ws.ops.filter_apply(q, low, high, axis, eps, ws.rate[0])
                continue
            ix = self._filter_indices(axis, q.shape[axis])
            if ws is None:
                ext = extend_axis(q, axis, low=low, high=high)
                d4 = (
                    ext[ix[0]]
                    - 4.0 * ext[ix[1]]
                    + 6.0 * ext[ix[2]]
                    - 4.0 * ext[ix[3]]
                    + ext[ix[4]]
                )
                q = q - eps * d4
                continue
            ext = extend_axis(q, axis, low=low, high=high, out=ws.ext_for(axis))
            d4, tmp = ws.rate, ws.tmp3
            np.multiply(ext[ix[1]], 4.0, out=d4)
            np.subtract(ext[ix[0]], d4, out=d4)
            np.multiply(ext[ix[2]], 6.0, out=tmp)
            np.add(d4, tmp, out=d4)
            np.multiply(ext[ix[3]], 4.0, out=tmp)
            np.subtract(d4, tmp, out=d4)
            np.add(d4, ext[ix[4]], out=d4)
            np.multiply(d4, eps, out=d4)
            np.subtract(q, d4, out=q)
        return q

    # -- main loop ---------------------------------------------------------------
    def step(self) -> None:
        """Advance one time step (one ``L1x L1r`` or ``L2r L2x`` composite).

        With a fused-kernel workspace the two sweeps write into the
        workspace's ping-pong state buffers (the first sweep's output must
        not alias its input because predictor and corrector both read it;
        the second sweep may land back on the step's input, which is dead
        by then) and the filter runs in place — a steady-state step touches
        no fresh heap memory beyond small boundary lines.
        """
        tr = get_tracer()
        mx = get_metrics()
        mon = mx.enabled
        rank = self._trace_rank
        ws = self._ws
        t0 = _time.perf_counter()
        s1 = t0
        with tr.span("solver.step", rank=rank, step=self.nstep):
            with tr.span("solver.dt", rank=rank):
                dt = self.current_dt()
            if mon:
                s2 = _time.perf_counter()
                mx.observe("stage.dt", s2 - s1, rank=rank)
                s1 = s2
            variant = 1 if self.nstep % 2 == 0 else 2
            Lx, Lr = self._cached_operators(variant)
            q_tail = self._boundary_snapshot()
            q_in = self.state.q
            if ws is not None:
                out1, out2 = ws.rotate_states(q_in)
            else:
                out1 = out2 = None
            if variant == 1:
                with tr.span("solver.sweep_r", rank=rank):
                    q = Lr.apply(q_in, dt, out=out1)
                if mon:
                    s2 = _time.perf_counter()
                    mx.observe("stage.sweep_r", s2 - s1, rank=rank)
                    s1 = s2
                with tr.span("solver.sweep_x", rank=rank):
                    q = Lx.apply(q, dt, out=out2)
                if mon:
                    s2 = _time.perf_counter()
                    mx.observe("stage.sweep_x", s2 - s1, rank=rank)
                    s1 = s2
            else:
                with tr.span("solver.sweep_x", rank=rank):
                    q = Lx.apply(q_in, dt, out=out1)
                if mon:
                    s2 = _time.perf_counter()
                    mx.observe("stage.sweep_x", s2 - s1, rank=rank)
                    s1 = s2
                with tr.span("solver.sweep_r", rank=rank):
                    q = Lr.apply(q, dt, out=out2)
                if mon:
                    s2 = _time.perf_counter()
                    mx.observe("stage.sweep_r", s2 - s1, rank=rank)
                    s1 = s2
            with tr.span("solver.filter", rank=rank):
                q = self.apply_filter(q, ws=ws)
            if mon:
                s2 = _time.perf_counter()
                mx.observe("stage.filter", s2 - s1, rank=rank)
                s1 = s2
            self.state.q = q
            self.t += dt
            self.nstep += 1
            with tr.span("solver.boundaries", rank=rank):
                self._apply_boundaries(q_tail, dt, variant)
            if mon:
                mx.observe(
                    "stage.boundaries", _time.perf_counter() - s1, rank=rank
                )
        wall = _time.perf_counter() - t0
        self.wall_time += wall
        if mon:
            mx.observe("solver.step_seconds", wall, rank=rank)
            mx.count("solver.steps", 1.0, rank=rank)
            mx.count(
                "solver.cell_steps",
                float(q.shape[1] * q.shape[2]),
                rank=rank,
            )
        stream = get_stream()
        if stream.enabled:
            stream.publish(self._step_stream_record(dt, wall))

    def _step_stream_record(self, dt: float, wall: float) -> dict:
        """One ``repro.stream/1`` progress record for the step just taken
        (distributed subclasses add comm/fault fields)."""
        return step_record(
            rank=self._trace_rank,
            step=self.nstep,
            t=self.t,
            dt=dt,
            ms=1e3 * wall,
        )

    def restore(self, nstep: int, t: float) -> None:
        """Resume the step/time counters after reloading checkpointed state.

        The caller has already placed the snapshot into ``self.state.q``
        (or constructed the solver from it); this re-aligns the step
        parity (which selects the MacCormack variant), the simulation
        time (which drives the inflow excitation), and invalidates the
        adaptive ``dt`` cache so the next step recomputes it from the
        restored state.
        """
        self.nstep = nstep
        self.t = t
        self._dt_cached = None

    def run(
        self,
        steps: int,
        monitor: Optional[Callable[["CompressibleSolver"], None]] = None,
        monitor_every: int = 100,
    ) -> FlowState:
        """Advance ``steps`` steps; optionally call ``monitor`` periodically."""
        for _ in range(steps):
            self.step()
            if monitor is not None and self.nstep % monitor_every == 0:
                monitor(self)
        return self.state


class NavierStokesSolver(CompressibleSolver):
    """Navier-Stokes jet solver (viscous terms on)."""

    def __init__(self, state: FlowState, config: SolverConfig | None = None):
        config = config or SolverConfig()
        config.viscous = True
        super().__init__(state, config)


class EulerSolver(CompressibleSolver):
    """Euler jet solver — the paper's second application (viscosity and
    heat conduction set to zero, ~50% of the Navier-Stokes computation)."""

    def __init__(self, state: FlowState, config: SolverConfig | None = None):
        config = config or SolverConfig()
        config.viscous = False
        super().__init__(state, config)
