"""Viscous stresses and heat fluxes for the axisymmetric Navier-Stokes flux.

For an axisymmetric flow (no swirl) the Stokes-hypothesis stress tensor is

.. math::

    \\tau_{xx} = \\mu (2 u_x - \\tfrac{2}{3} \\Theta), \\quad
    \\tau_{rr} = \\mu (2 v_r - \\tfrac{2}{3} \\Theta), \\quad
    \\tau_{\\theta\\theta} = \\mu (2 v/r - \\tfrac{2}{3} \\Theta), \\quad
    \\tau_{xr} = \\mu (u_r + v_x),

with dilatation ``Theta = u_x + v_r + v/r``, and the Fourier heat flux is
``q_i = -k dT/dx_i`` with ``k = mu / ((gamma - 1) Pr)``.

Velocity and temperature gradients are evaluated with second-order central
differences (one-sided at domain edges) via :func:`numpy.gradient`.  In the
MacCormack framework the one-sided 2-4 differencing is applied to the *total*
flux, so second-order treatment of the already-diffusive terms preserves the
scheme's overall accuracy; this matches common practice for the
Gottlieb-Turkel scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from . import eos


@dataclass
class ViscousTerms:
    """Bundle of stress-tensor components and heat fluxes on the grid."""

    tau_xx: np.ndarray
    tau_rr: np.ndarray
    tau_tt: np.ndarray
    tau_xr: np.ndarray
    heat_x: np.ndarray
    heat_r: np.ndarray


def gradient_axis(
    f: np.ndarray,
    h: float,
    axis: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Second-order central gradient along one axis, optionally into ``out``.

    Bitwise-identical to ``np.gradient(f, h, axis=axis, edge_order=2)`` —
    the interior stencil ``(f[i+1] - f[i-1]) / (2 h)`` and numpy's one-sided
    second-order edge formulas are transcribed operation for operation — but
    computes only the requested axis and writes into a caller-owned buffer,
    which is what lets the fused kernel backend evaluate single-direction
    viscous stresses without allocating.
    """
    if out is None:
        return np.gradient(f, h, axis=axis, edge_order=2)
    n = f.shape[axis]
    if n < 3:
        raise ValueError(
            "gradient_axis needs at least 3 points for second-order edges"
        )

    def sl(idx) -> tuple:
        s = [slice(None)] * f.ndim
        s[axis] = idx
        return tuple(s)

    # Interior: (f[i+1] - f[i-1]) / (2 h).
    interior = out[sl(slice(1, -1))]
    np.subtract(f[sl(slice(2, None))], f[sl(slice(None, -2))], out=interior)
    np.divide(interior, 2.0 * h, out=interior)
    # Second-order one-sided edges (numpy's uniform-spacing coefficients).
    a, b, c = -1.5 / h, 2.0 / h, -0.5 / h
    out[sl(0)] = a * f[sl(0)] + b * f[sl(1)] + c * f[sl(2)]
    a, b, c = 0.5 / h, -2.0 / h, 1.5 / h
    out[sl(-1)] = a * f[sl(-3)] + b * f[sl(-2)] + c * f[sl(-1)]
    return out


def field_gradients(
    u: np.ndarray,
    v: np.ndarray,
    T: np.ndarray,
    dx: float,
    dr: float,
    halo_lo: np.ndarray | None = None,
    halo_hi: np.ndarray | None = None,
    halo_axis: int = 0,
):
    """Central x/r gradients of (u, v, T), optionally halo-extended.

    ``halo_lo``/``halo_hi`` are single ghost lines of shape ``(3, n_perp)``
    ordered ``(u, v, T)`` received from neighbours by the distributed
    solver — columns (``halo_axis = 0``, axial decomposition) or rows
    (``halo_axis = 1``, radial decomposition).  Gradients are evaluated on
    the extended arrays and trimmed back to the local extent, so a line
    adjacent to a subdomain boundary gets the same central-difference
    arithmetic as in the serial solver — this is what makes the parallel
    solvers bitwise-identical.

    Returns the six local-extent arrays
    ``(du_dx, du_dr, dv_dx, dv_dr, dT_dx, dT_dr)``.
    """
    axis = halo_axis
    lo = 1 if halo_lo is not None else 0

    def _line(h):
        return h[None, :] if axis == 0 else h[:, None]

    fields = []
    for k, f in enumerate((u, v, T)):
        parts = []
        if halo_lo is not None:
            parts.append(_line(halo_lo[k]))
        parts.append(f)
        if halo_hi is not None:
            parts.append(_line(halo_hi[k]))
        fields.append(
            np.concatenate(parts, axis=axis) if len(parts) > 1 else f
        )
    n = u.shape[axis]
    sl = [slice(None), slice(None)]
    sl[axis] = slice(lo, lo + n)
    sl = tuple(sl)
    out = []
    for f in fields:
        gx, gr = np.gradient(f, dx, dr, edge_order=2)
        out.extend([gx[sl], gr[sl]])
    return tuple(out)


def field_gradients_2d(
    u: np.ndarray,
    v: np.ndarray,
    T: np.ndarray,
    dx: float,
    dr: float,
    halo_x: tuple | None = None,
    halo_r: tuple | None = None,
):
    """Central gradients with ghost lines along *both* axes (2-D blocks).

    ``halo_x = (lo, hi)`` supplies ghost columns and ``halo_r = (lo, hi)``
    ghost rows (each entry a ``(3, n_perp)`` array or ``None``).  The x- and
    r-derivatives are evaluated on separately extended arrays, so no corner
    ghosts are needed — ``d/dx`` never reads radial neighbours and vice
    versa.  Returns the same six arrays as :func:`field_gradients`.
    """
    gx = field_gradients(
        u, v, T, dx, dr,
        halo_lo=halo_x[0] if halo_x else None,
        halo_hi=halo_x[1] if halo_x else None,
        halo_axis=0,
    )
    gr = field_gradients(
        u, v, T, dx, dr,
        halo_lo=halo_r[0] if halo_r else None,
        halo_hi=halo_r[1] if halo_r else None,
        halo_axis=1,
    )
    # x-derivatives from the x-extended pass, r-derivatives from the other.
    return gx[0], gr[1], gx[2], gr[3], gx[4], gr[5]


def stress_tensor(
    u: np.ndarray,
    v: np.ndarray,
    T: np.ndarray,
    r: np.ndarray,
    dx: float,
    dr: float,
    mu: np.ndarray | float,
    gamma: float = constants.GAMMA,
    prandtl: float = constants.PRANDTL,
    halo_lo: np.ndarray | None = None,
    halo_hi: np.ndarray | None = None,
    halo_axis: int = 0,
) -> ViscousTerms:
    """Compute stresses and heat fluxes from primitive fields.

    Parameters
    ----------
    u, v, T:
        Axial velocity, radial velocity, temperature: ``(nx, nr)`` arrays.
    r:
        Radial coordinates, ``(nr,)`` (strictly positive; the grid offsets
        points off the axis).
    dx, dr:
        Grid spacings.
    mu:
        Dynamic viscosity, scalar or field.
    halo_lo, halo_hi:
        Optional ghost lines ``(3, n_perp)`` of ``(u, v, T)`` for the
        distributed solvers (see :func:`field_gradients`).
    halo_axis:
        0 for axial halos (columns), 1 for radial halos (rows).
    """
    grads = field_gradients(
        u, v, T, dx, dr, halo_lo=halo_lo, halo_hi=halo_hi, halo_axis=halo_axis
    )
    return assemble_stress(grads, v, r, mu, gamma, prandtl)


def assemble_stress(
    gradients,
    v: np.ndarray,
    r: np.ndarray,
    mu: np.ndarray | float,
    gamma: float = constants.GAMMA,
    prandtl: float = constants.PRANDTL,
) -> ViscousTerms:
    """Stress/heat-flux assembly from precomputed gradients.

    ``gradients`` is the 6-tuple returned by :func:`field_gradients` or
    :func:`field_gradients_2d`.
    """
    du_dx, du_dr, dv_dx, dv_dr, dT_dx, dT_dr = gradients
    v_over_r = v / r[None, :]
    dilat = du_dx + dv_dr + v_over_r
    two_thirds_dilat = (2.0 / 3.0) * dilat

    k = eos.conductivity(mu, gamma, prandtl)
    return ViscousTerms(
        tau_xx=mu * (2.0 * du_dx - two_thirds_dilat),
        tau_rr=mu * (2.0 * dv_dr - two_thirds_dilat),
        tau_tt=mu * (2.0 * v_over_r - two_thirds_dilat),
        tau_xr=mu * (du_dr + dv_dx),
        heat_x=-k * dT_dx,
        heat_r=-k * dT_dr,
    )


def viscous_fluxes(
    u: np.ndarray, v: np.ndarray, terms: ViscousTerms
) -> tuple[np.ndarray, np.ndarray]:
    """Viscous contributions ``(Fv, Gv)`` to subtract from the inviscid fluxes.

    ``F_total = F_inviscid - Fv`` and ``G_total = G_inviscid - Gv`` with

    ``Fv = (0, tau_xx, tau_xr, u tau_xx + v tau_xr - heat_x)`` and
    ``Gv = (0, tau_xr, tau_rr, u tau_xr + v tau_rr - heat_r)``.
    """
    shape = (4,) + u.shape
    Fv = np.zeros(shape)
    Gv = np.zeros(shape)
    Fv[1] = terms.tau_xx
    Fv[2] = terms.tau_xr
    Fv[3] = u * terms.tau_xx + v * terms.tau_xr - terms.heat_x
    Gv[1] = terms.tau_xr
    Gv[2] = terms.tau_rr
    Gv[3] = u * terms.tau_xr + v * terms.tau_rr - terms.heat_r
    return Fv, Gv
