#!/usr/bin/env python3
"""Inside one simulated time step: per-rank Gantt traces.

Renders what each processor does during the SPMD step on two contrasting
configurations — the saturated Ethernet cluster (long waits on the shared
bus) and the ALLNODE switch (steady compute with small library gaps).
This is the microscopic view behind the paper's busy/non-overlapped-
communication split (Figures 5-6).

Both runs go through ``repro.api.run``; ``--trace`` additionally exports
the ALLNODE run's activity segments as Chrome-trace JSON keyed on the
simulator's deterministic clock (open it at https://ui.perfetto.dev).

Usage::

    python examples/timeline_trace.py [--procs 8] [--version 5]
                                      [--trace sim.trace.json]
"""

import argparse

from repro import run
from repro.analysis.report import render_gantt


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--procs", type=int, default=8)
    ap.add_argument("--version", type=int, default=5, choices=(5, 6, 7))
    ap.add_argument(
        "--trace", metavar="PATH", help="export the ALLNODE run as Chrome-trace JSON"
    )
    args = ap.parse_args()

    for name, trace in (
        ("LACE/560+Ethernet", True),
        ("LACE/560+ALLNODE-S", args.trace or True),
    ):
        res = run(
            "jet",
            platform=name,
            nprocs=args.procs,
            version=args.version,
            steps_window=4,
            trace=trace,
        )
        r = res.sim
        print(
            render_gantt(
                r,
                title=f"{name}, p={args.procs}, V{args.version} "
                f"(exec {r.execution_time:,.0f}s scaled; "
                f"busy {r.busy_time:,.0f}s, comm {r.comm_time:,.0f}s)",
            )
        )
        print()
        if res.trace_path:
            print(f"Chrome trace written to {res.trace_path}")


if __name__ == "__main__":
    main()
