"""The run service core: queue, scheduler, worker pool, dedupe, streaming.

:class:`RunService` is the in-process engine behind both the Unix-socket
server (``repro serve``) and direct library use.  Design points:

* **Worker OS processes.**  Jobs execute in forked worker processes (the
  PR 5 process-substrate discipline): a crashing or runaway run cannot
  take the service down, and real runs get real cores.  A worker that
  dies mid-job (killed, segfault) is detected by liveness polling; its
  job fails with a structured error — never a hang — and a replacement
  worker is forked.
* **Fingerprint dedupe, two layers.**  At submit time a request whose
  ``fingerprint()`` is already in the :class:`~repro.service.store.ResultStore`
  completes instantly as ``cached``; one whose fingerprint is already
  *in flight* attaches to the running execution (``attached``) and
  completes when it does.  Either way: N identical submissions, one
  execution, N results.
* **Status streaming.**  Every job transition bumps a version counter
  and wakes waiters; :meth:`RunService.watch` yields each transition as
  it happens (the socket server forwards these lines to clients).
* **Persistent results.**  Workers write the pickled payload into the
  store's content-addressed ``results/`` directory; the parent (single
  writer) appends the index line.  A restarted service sees every prior
  result.

Workers force ``metrics=True`` on run requests (every cached entry then
carries a :class:`~repro.obs.PerfReport`) and by default append to the
anchored run ledger — the service is how the run database grows.
"""

from __future__ import annotations

import itertools
import multiprocessing as _mp
import os
import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any, Iterator

from ..request import RunRequest
from .experiments import EXPERIMENT_SCHEMA, ExperimentRequest
from .store import ResultStore

__all__ = ["Job", "JobFailed", "RunService"]

#: Liveness/queue poll interval for the pump thread (seconds).
_POLL = 0.1

#: Job states.  ``cached`` is terminal-on-arrival: served from the store
#: without execution.  ``attached`` jobs mirror their primary's state.
_TERMINAL = frozenset({"done", "failed", "cached"})


class JobFailed(RuntimeError):
    """Asking for the result of a failed job; carries the job's error."""


@dataclass
class Job:
    """One submission's lifecycle record (safe to snapshot/serialize)."""

    id: str
    fingerprint: str
    kind: str
    """``"run"`` or ``"experiment"``."""
    request: dict
    """Wire form of the submitted request."""
    status: str = "queued"
    """``queued`` → ``running`` → ``done`` | ``failed``; or ``cached``."""
    error: str | None = None
    """Structured failure description (``status == "failed"``)."""
    cached: bool = False
    """Served from the persistent store without execution."""
    attached_to: str | None = None
    """Primary job id this submission deduped onto (in-flight dedupe)."""
    worker_pid: int | None = None
    """PID of the worker executing this job (while ``running``)."""
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    version: int = 0
    """Monotone transition counter (drives ``watch`` streaming)."""

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "request": self.request,
            "status": self.status,
            "error": self.error,
            "cached": self.cached,
            "attached_to": self.attached_to,
            "worker_pid": self.worker_pid,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "version": self.version,
        }


def _encode_request(request) -> tuple[str, dict, str]:
    """Normalize a submission to ``(kind, wire_dict, fingerprint)``."""
    if isinstance(request, dict):
        if request.get("schema") == EXPERIMENT_SCHEMA:
            request = ExperimentRequest.from_dict(request)
        else:
            request = RunRequest.from_dict(request)
    if isinstance(request, ExperimentRequest):
        return "experiment", request.to_dict(), request.fingerprint()
    if isinstance(request, RunRequest):
        return "run", request.to_dict(), request.fingerprint()
    raise TypeError(
        "submit() takes a RunRequest, an ExperimentRequest, or a wire "
        f"dict; got {type(request).__name__}"
    )


def _worker_main(tasks, results, store_root: str, policy: dict) -> None:
    """Worker process loop: execute queued requests, ship results back.

    Payloads are written straight into the store's content-addressed
    ``results/`` directory (atomic rename); only small manifests cross
    the result queue.  ``None`` is the poison pill.
    """
    store = ResultStore(store_root)
    while True:
        item = tasks.get()
        if item is None:
            return
        job_id, kind, req_dict = item
        results.put(("started", job_id, os.getpid(), None))
        try:
            if kind == "experiment":
                req = ExperimentRequest.from_dict(req_dict)
                text = req.execute()
                store.write_payload(req.fingerprint(), text)
                report = req.report_for(text)
            else:
                from ..api import run_request

                req = RunRequest.from_dict(req_dict)
                if policy.get("force_metrics", True):
                    req = req.replace(
                        observability=_dc_replace(
                            req.observability,
                            metrics=True,
                            ledger=req.observability.ledger
                            or policy.get("ledger", False),
                        )
                    )
                result = run_request(req)
                result.request = None  # live objects stay out of the pickle
                store.write_payload(req.fingerprint(), result)
                report = result.perf.to_dict() if result.perf else {}
            results.put(("done", job_id, os.getpid(), report))
        except BaseException as exc:  # ship *everything* back structured
            err = (
                f"{type(exc).__name__}: {exc}\n"
                + "".join(traceback.format_exception(exc)[-3:])
            )
            results.put(("failed", job_id, os.getpid(), err))


class RunService:
    """Async job-queue run service over a pool of worker OS processes.

    Use as a context manager (or call :meth:`start` / :meth:`close`)::

        with RunService(workers=2) as svc:
            job = svc.submit(RunRequest("jet", steps=50,
                                        scenario_kw={"nx": 48, "nr": 24}))
            job = svc.wait(job.id)
            res = svc.result(job.id)

    Parameters
    ----------
    workers:
        Worker processes to fork (each executes one job at a time).
    store:
        A :class:`~repro.service.store.ResultStore` (or path / ``None``
        for the anchored default) — the persistent dedupe cache.
    ledger:
        Append every executed run's PerfReport to the anchored run
        ledger (default ``True`` — service runs feed the run database).
    """

    def __init__(
        self,
        workers: int = 2,
        store: ResultStore | str | os.PathLike | None = None,
        *,
        ledger: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self.workers = workers
        self._policy = {"force_metrics": True, "ledger": ledger}
        try:
            self._ctx = _mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "RunService requires the 'fork' start method (POSIX only), "
                "matching the process substrate"
            ) from None
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs: list[Any] = []
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._inflight: dict[str, str] = {}  # fingerprint -> primary job id
        self._followers: dict[str, list[str]] = {}  # primary id -> followers
        self._pid_job: dict[int, str] = {}  # worker pid -> running job id
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._pump: threading.Thread | None = None
        self._closing = False
        self.executed = 0
        """Jobs actually executed by a worker (cache/dedupe hits excluded)."""

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RunService":
        if self._pump is not None:
            return self
        for _ in range(self.workers):
            self._spawn_worker()
        self._pump = threading.Thread(
            target=self._pump_loop, name="repro-service-pump", daemon=True
        )
        self._pump.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers and the pump; queued jobs stay queued (persist by
        resubmitting after a restart — completed work is in the store)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._changed.notify_all()
        for _ in self._procs:
            self._tasks.put(None)
        deadline = time.monotonic() + timeout
        for p in self._procs:
            p.join(max(deadline - time.monotonic(), 0.1))
            if p.is_alive():
                p.terminate()
                p.join(1.0)
        if self._pump is not None:
            self._pump.join(timeout=2.0)
        self._tasks.close()
        self._results.close()

    def __enter__(self) -> "RunService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _spawn_worker(self) -> None:
        p = self._ctx.Process(
            target=_worker_main,
            args=(self._tasks, self._results, str(self.store.root),
                  dict(self._policy)),
            daemon=True,
            name=f"repro-service-worker-{len(self._procs)}",
        )
        p.start()
        self._procs.append(p)

    # -- submission ----------------------------------------------------------

    def submit(self, request) -> Job:
        """Enqueue (or instantly satisfy) one request; returns its Job.

        Dedupe order: persistent store first (``cached``), then in-flight
        fingerprints (``attached``), then a fresh queue entry.
        """
        if self._pump is None:
            raise RuntimeError("RunService is not started (use 'with' or start())")
        kind, wire, fp = _encode_request(request)
        now = time.time()
        with self._lock:
            if self._closing:
                raise RuntimeError("RunService is closing")
            job = Job(
                id=f"job-{next(self._ids):06d}",
                fingerprint=fp,
                kind=kind,
                request=wire,
                submitted=now,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            if fp in self.store:
                job.status = "cached"
                job.cached = True
                job.finished = now
                self._bump(job)
                return _snapshot(job)
            primary_id = self._inflight.get(fp)
            if primary_id is not None:
                primary = self._jobs[primary_id]
                job.attached_to = primary_id
                job.status = primary.status
                job.started = primary.started
                job.worker_pid = primary.worker_pid
                self._followers.setdefault(primary_id, []).append(job.id)
                self._bump(job)
                return _snapshot(job)
            self._inflight[fp] = job.id
            self._tasks.put((job.id, kind, wire))
            self._bump(job)
            return _snapshot(job)

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._lock:
            return _snapshot(self._require(job_id))

    def jobs(self) -> list[Job]:
        with self._lock:
            return [_snapshot(self._jobs[i]) for i in self._order]

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            job = self._require(job_id)
            while not job.terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._changed.wait(timeout=remaining if remaining else _POLL)
                if self._closing and not job.terminal:
                    break
            return _snapshot(job)

    def watch(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[Job]:
        """Yield a snapshot at each status transition, ending terminal.

        This is the streaming surface: the socket server forwards each
        yielded snapshot as one JSON line to the watching client.
        """
        last_version = -1
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                job = self._require(job_id)
                while job.version == last_version and not job.terminal:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return
                    self._changed.wait(
                        timeout=remaining if remaining else _POLL
                    )
                    if self._closing:
                        break
                if job.version == last_version:
                    return
                last_version = job.version
                snap = _snapshot(job)
            yield snap
            if snap.terminal:
                return

    def result(self, job_id: str) -> Any:
        """The stored payload of a completed job (RunResult / text).

        Raises :class:`JobFailed` for failed jobs and ``RuntimeError``
        for jobs still in flight.
        """
        with self._lock:
            job = self._require(job_id)
            if job.status == "failed":
                raise JobFailed(f"{job.id}: {job.error}")
            if not job.terminal:
                raise RuntimeError(
                    f"{job.id} is {job.status}; wait() for it first"
                )
            fp = job.fingerprint
        self.store.refresh()
        return self.store.load_result(fp)

    # -- internals -----------------------------------------------------------

    def _require(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def _bump(self, job: Job) -> None:
        job.version += 1
        self._changed.notify_all()

    def _group(self, primary: Job) -> list[Job]:
        return [primary] + [
            self._jobs[i] for i in self._followers.get(primary.id, [])
        ]

    def _pump_loop(self) -> None:
        """Drain worker results; poll worker liveness; respawn the dead."""
        while True:
            with self._lock:
                if self._closing:
                    return
            try:
                msg = self._results.get(timeout=_POLL)
            except _queue.Empty:
                msg = None
            except (EOFError, OSError):
                return
            if msg is not None:
                self._handle(msg)
            self._check_liveness()

    def _handle(self, msg) -> None:
        event, job_id, pid, detail = msg
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            if event == "started":
                self._pid_job[pid] = job_id
                for j in self._group(job):
                    j.status = "running"
                    j.started = time.time()
                    j.worker_pid = pid
                    self._bump(j)
                return
            self._pid_job.pop(pid, None)
            self._inflight.pop(job.fingerprint, None)
            if event == "done":
                # Single-writer index append happens here, in the parent.
                self.store.commit(
                    job.fingerprint,
                    kind=job.kind,
                    request=job.request,
                    report=detail or {},
                    meta={"job": job.id},
                )
                self.executed += 1
                for j in self._group(job):
                    j.status = "done"
                    j.finished = time.time()
                    j.worker_pid = None
                    self._bump(j)
            else:  # failed
                for j in self._group(job):
                    j.status = "failed"
                    j.error = detail
                    j.finished = time.time()
                    j.worker_pid = None
                    self._bump(j)

    def _check_liveness(self) -> None:
        """Fail jobs owned by dead workers; fork replacements."""
        with self._lock:
            if self._closing:
                return
            dead = [p for p in self._procs if not p.is_alive()]
            if not dead:
                return
            for p in dead:
                self._procs.remove(p)
                job_id = self._pid_job.pop(p.pid, None)
                if job_id is not None:
                    job = self._jobs.get(job_id)
                    if job is not None and not job.terminal:
                        self._inflight.pop(job.fingerprint, None)
                        err = (
                            f"worker process died (pid={p.pid}, "
                            f"exitcode={p.exitcode}) while running {job_id}"
                        )
                        for j in self._group(job):
                            j.status = "failed"
                            j.error = err
                            j.finished = time.time()
                            j.worker_pid = None
                            self._bump(j)
            while len(self._procs) < self.workers:
                self._spawn_worker()


def _snapshot(job: Job) -> Job:
    """A detached copy safe to return across the lock boundary."""
    return _dc_replace(job)
