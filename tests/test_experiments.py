"""The experiment dispatch harness and Figure 1's real solver run."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, characterize, run_experiment
from repro.experiments.runners import run_fig01


class TestDispatch:
    def test_every_paper_artifact_registered(self):
        expected = {"table1", "table2"} | {f"fig{k:02d}" for k in range(1, 14)}
        assert expected == set(EXPERIMENTS)

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="known"):
            run_experiment("fig99")

    def test_table_dispatch(self):
        out = run_experiment("table2")
        assert "580" in out


class TestFig01:
    def test_small_run_produces_jet_contour(self, tmp_path):
        npz = tmp_path / "field.npz"
        out = run_fig01(nx=48, nr=24, steps=60, save_npz=str(npz))
        assert "X MOMENTUM" in out
        assert "M=1.5" in out
        data = np.load(npz)
        mom = data["axial_momentum"]
        assert mom.shape[0] == 48
        assert np.isfinite(mom).all()
        # The jet core carries momentum ~ rho*u ~ 1.5; ambient ~ 0.
        assert mom.max() > 1.2
        assert abs(mom[:, -1]).max() < 0.2


class TestCharacterize:
    def test_measured_rows(self):
        c = characterize()
        assert c["ns"].total_flops > c["euler"].total_flops
        assert 1.0 < c["ns_over_euler_volume"] < 3.0
