"""The optimization-version registry and its op-mix semantics."""

import pytest

from repro import constants
from repro.parallel.versions import VERSIONS, version_by_number


class TestRegistry:
    def test_seven_versions(self):
        assert sorted(VERSIONS) == [1, 2, 3, 4, 5, 6, 7]

    def test_lookup(self):
        assert version_by_number(5).name == "V5"
        with pytest.raises(KeyError, match="known"):
            version_by_number(8)

    def test_all_have_descriptions(self):
        for v in VERSIONS.values():
            assert v.description


class TestOptimizationLadder:
    """Each version applies the paper's specific change on top of the last."""

    def test_v2_removes_exponentiation(self):
        assert version_by_number(1).pow_calls_per_flop > 0
        assert version_by_number(2).pow_calls_per_flop == 0

    def test_v3_fixes_stride(self):
        assert version_by_number(2).stride1_fraction < 0.6
        assert version_by_number(3).stride1_fraction > 0.9

    def test_v4_division_counts_match_paper(self):
        v3 = version_by_number(3)
        v4 = version_by_number(4)
        total = constants.PAPER_TOTAL_FLOPS_NS
        assert v3.divisions_per_flop * total == pytest.approx(
            constants.PAPER_DIVISIONS_BEFORE
        )
        assert v4.divisions_per_flop * total == pytest.approx(
            constants.PAPER_DIVISIONS_AFTER
        )

    def test_v5_reduces_memory_references(self):
        assert (
            version_by_number(5).mem_refs_per_flop
            < version_by_number(4).mem_refs_per_flop
        )

    def test_v6_overlap_flags(self):
        v6 = version_by_number(6)
        assert v6.overlap_communication
        assert v6.loop_overhead_factor > 1.0
        assert v6.cache_degradation > 1.0
        assert not v6.split_flux_columns

    def test_v7_split_flux(self):
        v7 = version_by_number(7)
        assert v7.split_flux_columns
        assert not v7.overlap_communication
        # V7 is V5's computation exactly.
        v5 = version_by_number(5)
        assert v7.mem_refs_per_flop == v5.mem_refs_per_flop
        assert v7.divisions_per_flop == v5.divisions_per_flop
