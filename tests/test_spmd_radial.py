"""Radial-block distributed solver (the paper's Section-8 variant)."""

import numpy as np
import pytest

from repro import jet_scenario
from repro.parallel.runner import ParallelJetSolver, serial_reference


@pytest.fixture(scope="module")
def ns_case():
    sc = jet_scenario(nx=50, nr=24, viscous=True)
    ref = serial_reference(sc.state, sc.solver.config, steps=10)
    return sc, ref


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("nranks", [2, 3, 4])
    def test_navier_stokes(self, ns_case, nranks):
        sc, ref = ns_case
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=nranks,
            decomposition="radial", timeout=60,
        ).run(10)
        assert np.array_equal(res.state.q, ref.q)

    @pytest.mark.parametrize("version", [5, 6, 7])
    def test_versions(self, ns_case, version):
        sc, ref = ns_case
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=3, version=version,
            decomposition="radial", timeout=60,
        ).run(10)
        assert np.array_equal(res.state.q, ref.q)

    def test_euler(self):
        sc = jet_scenario(nx=50, nr=24, viscous=False)
        ref = serial_reference(sc.state, sc.solver.config, steps=10)
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=4,
            decomposition="radial", timeout=60,
        ).run(10)
        assert np.array_equal(res.state.q, ref.q)


class TestCommunicationContrast:
    def test_radial_blocks_send_more_on_paper_aspect_ratio(self):
        """On a wide grid (nx >> nr) radial messages are rows of length nx:
        more volume per exchange than axial columns — the quantitative case
        for the paper's Section-5 choice."""
        sc = jet_scenario(nx=80, nr=20, viscous=True)
        ax = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=4, timeout=60
        ).run(6)
        ra = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=4,
            decomposition="radial", timeout=60,
        ).run(6)
        assert (
            ra.interior_rank_stats.bytes_sent
            > 1.5 * ax.interior_rank_stats.bytes_sent
        )

    def test_radial_outflow_is_collective(self):
        """Every rank owns part of the outflow column: even edge ranks
        communicate each step (for the characteristic window)."""
        sc = jet_scenario(nx=50, nr=24, viscous=True)
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=3,
            decomposition="radial", timeout=60,
        ).run(5)
        for st in res.per_rank_stats:
            assert st.sends > 0


class TestValidation:
    def test_bad_decomposition_name(self):
        sc = jet_scenario(nx=40, nr=20)
        with pytest.raises(ValueError, match="decomposition"):
            ParallelJetSolver(
                sc.state, sc.solver.config, nranks=2, decomposition="blocks"
            )

    def test_sponge_width_guard(self):
        from repro.numerics.boundary import Sponge

        sc = jet_scenario(nx=40, nr=20, sponge=Sponge(width=12))
        with pytest.raises(RuntimeError, match="sponge width"):
            ParallelJetSolver(
                sc.state, sc.solver.config, nranks=3,
                decomposition="radial", timeout=10,
            ).run(1)
