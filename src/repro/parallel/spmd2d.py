"""Two-dimensional (axial x radial) block decomposition — beyond the paper.

The paper's Section 8 proposes exploring "other problem decompositions";
this module implements the general case: a Cartesian grid of ranks, each
owning an axial-radial block.  Both sweeps now exchange halos — columns
with the axial neighbours, rows with the radial ones.  Because every
stencil in the solver is dimension-split (the one-sided flux differences,
the viscous gradients via separate extended passes, and the
fourth-difference filter), **no corner ghosts are needed**, and the result
remains bitwise-identical to the serial solver with both kernel backends
on every substrate.

Boundary ownership: inflow = first axial column of ranks; characteristic
outflow = last axial column (a collective among that column's radial
neighbours); axis = bottom radial row; far field/sponge = top radial row.
All of this is decided by :class:`CartesianDecomposition`'s
:class:`~repro.parallel.decomposition.HaloTopology` in the shared
:class:`~repro.parallel.spmd.BlockDistributedSolver` base.
"""

from __future__ import annotations

import numpy as np

from ..grid import Grid
from ..msglib.api import Communicator
from ..numerics.solver import SolverConfig
from .decomposition import CartesianDecomposition
from .spmd import BlockDistributedSolver
from .versions import Version

__all__ = ["CartesianDecomposition", "Distributed2DSolver"]


class Distributed2DSolver(BlockDistributedSolver):
    """Per-rank solver over a 2-D Cartesian block decomposition."""

    def __init__(
        self,
        comm: Communicator,
        global_grid: Grid,
        q_global: np.ndarray,
        config: SolverConfig,
        px: int,
        pr: int,
        version: int | Version = 5,
        overlap: bool | None = None,
    ) -> None:
        if px * pr != comm.size:
            raise ValueError(
                f"px * pr = {px * pr} does not match {comm.size} ranks"
            )
        super().__init__(
            comm,
            global_grid,
            q_global,
            config,
            version=version,
            decomp=CartesianDecomposition(
                global_grid.nx, global_grid.nr, px, pr
            ),
            overlap=overlap,
        )
