"""Message-passing substrate.

Two halves:

* A **real** in-process message-passing implementation
  (:class:`~repro.msglib.virtual.VirtualCluster` +
  :class:`~repro.msglib.virtual.VirtualComm`) with PVM-style buffered sends,
  tagged receives, reductions and barriers.  The distributed solver runs on
  it for real — one thread per rank — and is verified bitwise against the
  serial solver.
* **Cost models** of the 1995 message-passing libraries the paper used
  (PVM 3.2.2, IBM's MPL, PVMe) in :mod:`repro.msglib.libmodel`; these feed
  the discrete-event simulator, not the real executor.
"""

from .api import CommStats, Communicator, MessageRecord
from .vchannel import ClusterAborted, DeadlockError, Mailbox
from .virtual import RankFailure, VirtualCluster, VirtualComm
from .libmodel import LibraryModel, MPL, PVM, PVME, library_by_name

__all__ = [
    "ClusterAborted",
    "Communicator",
    "CommStats",
    "DeadlockError",
    "MessageRecord",
    "Mailbox",
    "RankFailure",
    "VirtualCluster",
    "VirtualComm",
    "LibraryModel",
    "PVM",
    "PVME",
    "MPL",
    "library_by_name",
]
