"""Reproduction benchmark: Table 2: Computation-communication ratios (exact reproduction)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_table2(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("table2"),
        "Table 2: Computation-communication ratios (exact reproduction)",
    )
