"""Reproduction benchmark: Table 1: Application characteristics (paper values + measured from this package's instrumented solver)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_table1(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("table1"),
        "Table 1: Application characteristics (paper values + measured from this package's instrumented solver)",
    )
