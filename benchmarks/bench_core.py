"""Pinned core benchmark matrix feeding the performance-regression gate.

Not a pytest benchmark: this is a plain script (``make bench``) that runs a
small fixed matrix of solver configurations through the
:func:`repro.api.run` facade with metrics enabled, records the best-of-N
step time per case alongside a machine *calibration* measurement (a fixed
numpy workload, so baselines transfer across machines), and writes

* ``benchmarks/output/BENCH_core.json`` — the matrix results
  ``scripts/perf_gate.py`` compares against the committed baseline in
  ``benchmarks/baseline/BENCH_core.json``;
* one :class:`~repro.obs.PerfReport` ledger line per case appended to
  ``benchmarks/output/BENCH_runs.jsonl``.

The matrix is deliberately tiny (seconds, not minutes): small grids, few
steps, serial + fused + a 4-rank virtual-cluster case for both Euler and
Navier-Stokes, plus process-substrate cases for all three decompositions
(axial, radial, 2-D Cartesian — all fused, all bitwise-equal), so the
gate exercises every hot seam the metrics layer instruments without
making CI slow.  A separate speedup curve (serial vs 2/4 OS-process ranks on the
paper's full 250 x 100 grid) is measured once per run and stored under
``"speedup"`` — the repo's real multi-core numbers.  A blocking-vs-overlap
communication comparison (the paper's Version 5 -> Version 6 transition,
measured on the process substrate and predicted by the DES on the LACE)
is stored under ``"overlap"``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

SCHEMA = "repro.bench-core/1"

#: The pinned matrix.  ``tolerance`` is the per-case relative step-time
#: regression the gate allows (parallel cases breathe more: thread
#: scheduling noise).  Do not edit casually — baselines key off ``id``.
MATRIX = (
    {
        "id": "ns-serial-baseline",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 1,
        "backend": "baseline",
        "tolerance": 0.15,
    },
    {
        "id": "ns-serial-fused",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 1,
        "backend": "fused",
        "tolerance": 0.15,
    },
    {
        # Compiled ("V6") rung: on hosts with no engine this silently
        # benchmarks the fused fallback — the regression gate's
        # calibration normalization keeps that honest because the
        # committed baseline records which engine produced it.
        "id": "ns-serial-compiled",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 1,
        "backend": "compiled",
        "tolerance": 0.20,
    },
    {
        "id": "euler-serial-fused",
        "scenario": "jet-euler",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 1,
        "backend": "fused",
        "tolerance": 0.15,
    },
    {
        "id": "ns-p4-fused",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 4,
        "backend": "fused",
        "tolerance": 0.25,
    },
    {
        "id": "euler-p4-fused",
        "scenario": "jet-euler",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 4,
        "backend": "fused",
        "tolerance": 0.25,
    },
    {
        "id": "ns-p2-process-fused",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 2,
        "backend": "fused",
        "substrate": "process",
        "tolerance": 0.35,
    },
    {
        "id": "ns-p2-radial-fused",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 2,
        "backend": "fused",
        "substrate": "process",
        "decomposition": "radial",
        "tolerance": 0.35,
    },
    {
        # The overlapped twin of ns-p2-process-fused: identical physics
        # (overlap never enters the request fingerprint — results are
        # bitwise-equal), split-phase exchange forced on.  The "overlap"
        # section of the output compares the two modes' communication
        # time head to head.
        "id": "ns-p2-overlap-fused",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 2,
        "backend": "fused",
        "substrate": "process",
        "overlap": True,
        "tolerance": 0.35,
    },
    {
        "id": "ns-p4-2d-fused",
        "scenario": "jet",
        "kw": {"nx": 64, "nr": 32},
        "steps": 20,
        "nprocs": 4,
        "backend": "fused",
        "substrate": "process",
        "decomposition": "2d",
        "px": 2,
        "pr": 2,
        "tolerance": 0.40,
    },
)

#: The multi-core speedup measurement (the paper's Table 2 analogue):
#: serial fused vs the process substrate at 2 and 4 ranks on the paper's
#: full 250 x 100 jet grid.  ``scripts/perf_gate.py`` requires this
#: section and — on hosts with >= 4 cores — a >= 2x speedup at 4 ranks.
SPEEDUP = {
    "scenario": "jet",
    "kw": {"nx": 250, "nr": 100},
    "steps": 200,
    "backend": "fused",
    "substrate": "process",
    "ranks": (1, 2, 4),
}


def calibration_ms(repeats: int = 5) -> float:
    """Best-of-N milliseconds for a fixed numpy workload.

    Stored with every BENCH_core.json so the gate can normalize a baseline
    recorded on one machine against results from another: the ratio of
    calibrations approximates the ratio of solver step times.
    """
    import numpy as np

    best = float("inf")
    a = np.linspace(0.0, 1.0, 200_000)
    m = np.linspace(0.0, 1.0, 160_000).reshape(400, 400)
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(5):
            b = np.sqrt(a * a + 1.0)
            c = np.cumsum(b)
            d = m @ m
            float(c[-1] + d[0, 0])
        best = min(best, time.perf_counter() - t0)
    return 1e3 * best


def run_case(case: dict, repeats: int, ledger_path: str | None):
    """Best-of-``repeats`` metrics run of one matrix case."""
    from repro.api import run

    best = None
    for _ in range(repeats):
        res = run(
            case["scenario"],
            steps=case["steps"],
            nprocs=case["nprocs"],
            backend=case["backend"],
            substrate=case.get("substrate", "virtual"),
            decomposition=case.get("decomposition", "axial"),
            px=case.get("px"),
            pr=case.get("pr"),
            overlap=case.get("overlap", False),
            metrics=True,
            **case["kw"],
        )
        if best is None or res.perf.ms_per_step < best.perf.ms_per_step:
            best = res
    if ledger_path:
        from repro.obs import append_ledger

        append_ledger(best.perf, ledger_path)
    return best.perf


def run_speedup(repeats: int = 1, quick: bool = False) -> dict:
    """Measure the wall-clock speedup curve of the process substrate.

    Rank 1 is the serial fused solver (the honest baseline — no cluster
    overhead at all); ranks 2 and 4 run on real OS processes.  The host
    core count is recorded with the curve: on a single-core machine the
    "speedup" is genuinely < 1 (IPC cost, no parallel hardware), and the
    gate only enforces >= 2x at 4 ranks when >= 4 cores exist.
    """
    from repro.api import run

    steps = max(SPEEDUP["steps"] // 10, 2) if quick else SPEEDUP["steps"]
    rows = []
    serial_ms = None
    for nprocs in SPEEDUP["ranks"]:
        best_ms = None
        for _ in range(repeats):
            res = run(
                SPEEDUP["scenario"],
                steps=steps,
                nprocs=nprocs,
                backend=SPEEDUP["backend"],
                substrate=SPEEDUP["substrate"] if nprocs > 1 else "virtual",
                **SPEEDUP["kw"],
            )
            ms = res.timings.ms_per_step
            if best_ms is None or ms < best_ms:
                best_ms = ms
        if serial_ms is None:
            serial_ms = best_ms
        rows.append({
            "nprocs": nprocs,
            "ms_per_step": best_ms,
            "speedup": serial_ms / best_ms,
        })
        print(
            f"  speedup p={nprocs}          {best_ms:8.2f} ms/step  "
            f"x{serial_ms / best_ms:.2f}",
            flush=True,
        )
    return {
        "scenario": SPEEDUP["scenario"],
        "grid": [SPEEDUP["kw"]["nx"], SPEEDUP["kw"]["nr"]],
        "steps": steps,
        "backend": SPEEDUP["backend"],
        "substrate": SPEEDUP["substrate"],
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }


#: The blocking-vs-overlap communication measurement: the same 2-rank
#: process-substrate run executed with the synchronous exchange and with
#: the split-phase (post / interior-compute / finish) exchange.  Results
#: are bitwise-identical; the point of the section is the *communication
#: time* — under overlap only the residual ``finish()`` wait counts, so
#: ``comm_ms_per_step`` is the paper's non-overlapped communication
#: component.  ``scripts/perf_gate.py`` requires overlap's comm time to
#: be strictly below blocking's on hosts with real parallel hardware.
OVERLAP = {
    "scenario": "jet",
    "kw": {"nx": 96, "nr": 48},
    "steps": 40,
    "nprocs": 2,
    "backend": "fused",
    "substrate": "process",
}


def _comm_ms_per_step(perf) -> float:
    """Mean per-rank communication milliseconds per step of one run."""
    rows = perf.per_rank or []
    if not rows:
        return 0.0
    comm = sum(r.get("comm_seconds", 0.0) for r in rows) / len(rows)
    return 1e3 * comm / perf.steps


def run_overlap_comparison(repeats: int = 3, quick: bool = False) -> dict:
    """Blocking vs overlapped exchange, measured and DES-predicted.

    The real half runs the :data:`OVERLAP` configuration twice (same
    fingerprint, bitwise-equal results) and reports each mode's step time
    and non-overlapped communication time.  The DES half simulates the
    same Version 5 -> Version 6 transition on the paper's LACE/560 —
    the model this measurement validates — so the JSON carries the
    predicted and measured comm-time reductions side by side.
    """
    from repro.api import run
    from repro.machines import LACE_560
    from repro.simulate import NAVIER_STOKES, SimulatedMachine

    steps = max(OVERLAP["steps"] // 4, 4) if quick else OVERLAP["steps"]
    modes = {}
    for label, overlap in (("blocking", False), ("overlap", True)):
        best = None
        for _ in range(repeats):
            res = run(
                OVERLAP["scenario"],
                steps=steps,
                nprocs=OVERLAP["nprocs"],
                backend=OVERLAP["backend"],
                substrate=OVERLAP["substrate"],
                overlap=overlap,
                metrics=True,
                **OVERLAP["kw"],
            )
            if best is None or res.perf.ms_per_step < best.perf.ms_per_step:
                best = res
        modes[label] = {
            "ms_per_step": best.perf.ms_per_step,
            "comm_ms_per_step": _comm_ms_per_step(best.perf),
        }
        print(
            f"  overlap[{label}]       {modes[label]['ms_per_step']:8.2f} "
            f"ms/step  comm={modes[label]['comm_ms_per_step']:6.2f} ms/step",
            flush=True,
        )
    b, o = modes["blocking"]["comm_ms_per_step"], modes["overlap"]["comm_ms_per_step"]
    real_reduction = (1.0 - o / b) if b > 0.0 else None

    des = {}
    for vnum in (5, 6):
        sim = SimulatedMachine(LACE_560, OVERLAP["nprocs"], version=vnum).run(
            NAVIER_STOKES, steps_window=40
        )
        des[f"v{vnum}_comm_s_per_step"] = sim.comm_time / sim.total_steps
    des_b = des["v5_comm_s_per_step"]
    des_reduction = (
        (1.0 - des["v6_comm_s_per_step"] / des_b) if des_b > 0.0 else None
    )
    return {
        "scenario": OVERLAP["scenario"],
        "grid": [OVERLAP["kw"]["nx"], OVERLAP["kw"]["nr"]],
        "steps": steps,
        "nprocs": OVERLAP["nprocs"],
        "backend": OVERLAP["backend"],
        "substrate": OVERLAP["substrate"],
        "cpu_count": os.cpu_count(),
        "real": {**modes, "comm_reduction": real_reduction},
        "des": {
            "platform": LACE_560.name,
            "app": NAVIER_STOKES.name,
            "nprocs": OVERLAP["nprocs"],
            **des,
            "comm_reduction": des_reduction,
        },
    }


def run_matrix(
    repeats: int = 3, ledger_path: str | None = None, quick: bool = False
) -> dict:
    cases = {}
    for case in MATRIX:
        spec = dict(case)
        if quick:
            spec["steps"] = max(spec["steps"] // 4, 2)
        perf = run_case(spec, repeats, ledger_path)
        engine = None
        if case["backend"] == "compiled":
            from repro.numerics.kernels import get_backend

            be = get_backend("compiled")
            engine = be.ops().engine if be.available() else "fused-fallback"
        cases[case["id"]] = {
            "ms_per_step": perf.ms_per_step,
            "mflops": perf.mflops_total,
            "comp_comm_ratio": perf.comp_comm_ratio,
            "fingerprint": perf.fingerprint,
            "tolerance": case["tolerance"],
            "config": {
                "scenario": case["scenario"],
                "steps": spec["steps"],
                "nprocs": case["nprocs"],
                "backend": case["backend"],
                "substrate": case.get("substrate", "virtual"),
                "decomposition": case.get("decomposition", "axial"),
                **case["kw"],
                **({"engine": engine} if engine is not None else {}),
            },
        }
        print(
            f"  {case['id']:22s} {perf.ms_per_step:8.2f} ms/step  "
            f"MFLOPS={perf.mflops_total:7.1f}",
            flush=True,
        )
    return {
        "schema": SCHEMA,
        "calibration_ms": calibration_ms(),
        "repeats": repeats,
        "cases": cases,
        "speedup": run_speedup(quick=quick),
        "overlap": run_overlap_comparison(quick=quick),
    }


def main(argv=None) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--output",
        default=os.path.join(here, "output", "BENCH_core.json"),
        help="where to write the matrix results JSON",
    )
    ap.add_argument(
        "--ledger",
        default=os.path.join(here, "output", "BENCH_runs.jsonl"),
        help="PerfReport ledger to append to ('' disables)",
    )
    ap.add_argument("--repeats", type=int, default=3, help="best-of-N runs")
    ap.add_argument(
        "--quick", action="store_true",
        help="quarter-length steps (smoke-testing the harness itself)",
    )
    args = ap.parse_args(argv)
    print(f"core benchmark matrix ({len(MATRIX)} cases, best of {args.repeats}):")
    doc = run_matrix(
        repeats=args.repeats,
        ledger_path=args.ledger or None,
        quick=args.quick,
    )
    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"calibration: {doc['calibration_ms']:.2f} ms")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    raise SystemExit(main())
