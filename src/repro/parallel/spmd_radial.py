"""Radial-block distributed solver — the paper's Section-8 future work.

"We will then explore other problem decompositions such as blocking along
the radial direction, for example, and study their impact on the
performance."  This module makes that variant executable: each rank owns a
radial slab with full axial extent, so the *radial* sweep needs halo
exchange (rows of length ``nx`` instead of columns of length ``nr``) while
the axial sweep is communication-free — the mirror image of
:class:`repro.parallel.spmd.DistributedSolver`.

Differences from axial blocking:

* every rank owns a piece of the inflow and outflow columns, so the
  characteristic outflow treatment becomes a *collective* step: the radial
  part of the boundary rates needs neighbour rows, exchanged on the
  5-column outflow window by all ranks symmetrically;
* the axis (rank 0) and far-field/sponge (last rank) boundaries live on
  single ranks;
* viscous ``d/dr`` gradients need row ghosts in both sweeps.

Like the axial solver, every ghost is real neighbour data entering the
identical vectorized expressions, so the result is bitwise-identical to the
serial solver — verified by the test suite.
"""

from __future__ import annotations

import numpy as np

from ..grid import Grid
from ..msglib.api import Communicator
from ..numerics.boundary import (
    AXIS_STATE_SIGNS,
    apply_axis_ghosts,
    characteristic_outflow_rates,
)
from ..numerics.maccormack import PREDICTOR, SplitOperator, SweepWorkspace
from ..numerics.solver import CompressibleSolver, SolverConfig
from ..numerics.timestep import stable_dt
from ..physics.state import FlowState
from .decomposition import RadialDecomposition
from .halo import (
    ExchangePolicy,
    exchange_flux_high,
    exchange_flux_low,
    exchange_state_halo_high,
    exchange_state_halo_low,
    exchange_uvT,
)
from .versions import Version, version_by_number


class RadialDistributedSolver(CompressibleSolver):
    """Per-rank solver over a radial block decomposition."""

    #: The fused kernel workspace is not wired through the radial halo
    #: plumbing yet; the fused backend degrades to the allocating path here.
    _supports_fused_kernels = False

    def __init__(
        self,
        comm: Communicator,
        global_grid: Grid,
        q_global: np.ndarray,
        config: SolverConfig,
        version: int | Version = 5,
    ) -> None:
        self.comm = comm
        self.decomp = RadialDecomposition(global_grid.nr, comm.size)
        self.lo, self.hi = self.decomp.bounds(comm.rank)
        self.lower, self.upper = self.decomp.neighbors(comm.rank)
        if isinstance(version, int):
            version = version_by_number(version)
        self.version = version
        self.policy = ExchangePolicy.from_version(version)
        self.global_grid = global_grid
        local_grid = global_grid.radial_subgrid(self.lo, self.hi)
        local_state = FlowState(
            local_grid, q_global[:, :, self.lo : self.hi].copy(), config.gamma
        )
        bc = config.boundary
        if bc is not None and bc.sponge is not None:
            if bc.sponge.width > self.decomp.size(comm.size - 1):
                raise ValueError(
                    "sponge width exceeds the last rank's radial slab"
                )
        super().__init__(local_state, config)
        self._trace_rank = comm.rank
        from ..obs import get_tracer

        get_tracer().bind_rank(comm.rank)
        self.fm.halo_axis = 1  # uvT halos are rows

    # -- tags -------------------------------------------------------------------
    def _tag(self, op: str, phase: str = "") -> str:
        return f"{self.nstep}:{op}:{phase}"

    def _active_high(self, variant: int, phase: str) -> bool:
        """Forward differencing (consuming high ghosts) for this phase?"""
        return (variant == 1) == (phase == PREDICTOR)

    # -- halo-aware flux evaluation ------------------------------------------
    def _uvT_halo(self, q: np.ndarray, tag: str):
        if not self.fm.mu:
            return None
        if self.lower is None and self.upper is None:
            return None
        u, v, T = self.fm.primitives(q)
        return exchange_uvT(
            self.comm, tag, u, v, T, self.lower, self.upper, axis=1
        )

    def _x_workspace(self, variant: int | None = None) -> SweepWorkspace:  # type: ignore[override]
        solver = self

        def flux(q, phase):
            halo = solver._uvT_halo(q, solver._tag("x", phase))
            return solver.fm.axial_flux(q, uvT_halo=halo), None

        # The axial direction is not decomposed: cubic ghosts as in serial.
        return SweepWorkspace(flux=flux)

    def _radial_ghost_callbacks(self, variant: int, tag_op: str):
        """Low/high ghost providers for an r-sweep over the slab."""
        solver = self

        def low_ghosts(rG, phase):
            if not self._active_high(variant, phase):  # backward: low side
                # Every rank participates (the exchange's *send* leg must
                # run even on ranks with no lower neighbour, or their
                # upper neighbour deadlocks); ranks at the axis get None
                # back and mirror instead.
                ghosts = exchange_flux_low(
                    solver.comm,
                    solver._tag(tag_op, phase),
                    rG,
                    solver.lower,
                    solver.upper,
                    solver.policy,
                    axis=2,
                )
                if ghosts is None:
                    return apply_axis_ghosts(rG)
                return ghosts
            # Inactive side: values unused by the one-sided stencil.  Rank 0
            # still mirrors (matches serial); others extrapolate.
            if solver.lower is None:
                return apply_axis_ghosts(rG)
            return None

        def high_ghosts(rG, phase):
            if self._active_high(variant, phase):
                # None at the far field selects cubic extrapolation, as in
                # the serial solver; the send leg runs on every rank.
                return exchange_flux_high(
                    solver.comm,
                    solver._tag(tag_op, phase),
                    rG,
                    solver.lower,
                    solver.upper,
                    solver.policy,
                    axis=2,
                )
            return None

        return low_ghosts, high_ghosts

    def _r_workspace(self, variant: int | None = None) -> SweepWorkspace:  # type: ignore[override]
        solver = self
        if variant is None:
            # Requested by serial helpers; halo-free (used only on windows
            # fully interior to the slab, which never happens here — the
            # outflow helper overrides below).
            return super()._r_workspace_serial()

        def flux(q, phase):
            halo = solver._uvT_halo(q, solver._tag("r", phase))
            return solver.fm.radial_flux(q, uvT_halo=halo)

        low, high = self._radial_ghost_callbacks(variant, "r")
        return SweepWorkspace(
            flux=flux,
            low_ghosts=low,
            high_ghosts=high,
            inv_weight=self._inv_weight,
        )

    def _operators(self, variant: int):  # type: ignore[override]
        Lx = SplitOperator(
            axis=1,
            h=self.grid.dx,
            variant=variant,
            workspace=self._x_workspace(variant),
        )
        Lr = SplitOperator(
            axis=2,
            h=self.grid.dr,
            variant=variant,
            workspace=self._r_workspace(variant),
        )
        return Lx, Lr

    # -- time step ----------------------------------------------------------------
    def current_dt(self) -> float:  # type: ignore[override]
        cfg = self.config
        if cfg.dt is not None:
            return cfg.dt
        if (
            self._dt_cached is None
            or self.nstep % max(cfg.dt_recompute_every, 1) == 0
        ):
            local = stable_dt(
                self.state.q,
                self.grid.dx,
                self.grid.dr,
                cfl=cfg.cfl,
                mu=self.fm.mu,
                gamma=cfg.gamma,
            )
            self._dt_cached = self.comm.allreduce_min(local, tag=self._tag("dt"))
        return self._dt_cached

    # -- filter halos ----------------------------------------------------------------
    def _state_ghosts(self, q: np.ndarray, axis: int, side: str):  # type: ignore[override]
        if axis == 2:
            tag = self._tag("filter")
            if side == "low":
                ghosts = exchange_state_halo_low(
                    self.comm, tag, q, self.lower, self.upper, axis=2
                )
                if ghosts is None and self.config.axisymmetric:
                    signs = AXIS_STATE_SIGNS[:, None]
                    return np.stack(
                        [signs * q[:, :, 0], signs * q[:, :, 1]]
                    )
                return ghosts
            return exchange_state_halo_high(
                self.comm, tag, q, self.lower, self.upper, axis=2
            )
        # The axial direction is serial: cubic ghosts (inflow/outflow edges).
        return None

    # -- characteristic outflow (collective over radial slabs) -----------------------
    def _outflow_rates(self, q: np.ndarray, variant: int) -> np.ndarray:  # type: ignore[override]
        window = np.ascontiguousarray(q[:, -5:, :])
        tag = self._tag("ofw")
        halo = self._uvT_halo(window, f"{tag}:uvx")
        F = self.fm.axial_flux(window, uvT_halo=halo)
        h = self.grid.dx
        dF = (7.0 * (F[:, -1] - F[:, -2]) - (F[:, -2] - F[:, -3])) / (6.0 * h)

        solver = self

        def wflux(qw, phase):
            whalo = solver._uvT_halo(qw, f"{tag}:uvr:{phase}")
            return solver.fm.radial_flux(qw, uvT_halo=whalo)

        low, high = self._radial_ghost_callbacks(variant, "ofwr")
        ws = SweepWorkspace(
            flux=wflux,
            low_ghosts=low,
            high_ghosts=high,
            inv_weight=self._inv_weight,
        )
        Lr = SplitOperator(axis=2, h=self.grid.dr, variant=variant, workspace=ws)
        radial_rate = Lr._rate(window, PREDICTOR)[:, -1, :]
        return -dF + radial_rate

    # -- boundaries ------------------------------------------------------------------
    def _apply_boundaries(self, q_before: np.ndarray, dt: float, variant: int):  # type: ignore[override]
        bc = self.config.boundary
        if bc is None:
            return
        q = self.state.q
        if bc.characteristic_outflow:
            # Collective: every rank owns a radial slice of the outflow
            # column; the window exchanges keep all ranks in lockstep.
            q_t = self._outflow_rates(q_before, variant)
            rates = characteristic_outflow_rates(
                q_before[:, -1, :], q_t, self.config.gamma
            )
            q[:, -1, :] = q_before[:, -1, :] + dt * rates
        if bc.inflow is not None:
            q[:, 0, :] = bc.inflow_column(self.grid.r, self.t, self.config.gamma)
        if bc.sponge is not None and self._sponge_col is not None and self.upper is None:
            bc.sponge.apply(q, self._sponge_col)

    # -- gathering -------------------------------------------------------------------
    def gather_state(self) -> FlowState | None:
        """Assemble the global state on rank 0 (``None`` elsewhere)."""
        parts = self.comm.gather_arrays(self.state.q, tag=f"{self.nstep}:gather")
        if parts is None:
            return None
        q_full = np.concatenate(parts, axis=2)
        return FlowState(self.global_grid, q_full, self.config.gamma)
