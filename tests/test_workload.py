"""Workload descriptions and Table-1 consistency."""

import pytest

from repro import constants
from repro.simulate.workload import (
    EULER,
    NAVIER_STOKES,
    Application,
    Message,
    StepPhase,
    Workload,
    workload_for,
)


class TestApplications:
    def test_table1_values(self):
        assert NAVIER_STOKES.total_flops == 145_000e6
        assert NAVIER_STOKES.startups_per_proc == 80_000
        assert NAVIER_STOKES.volume_bytes_per_proc == 125e6
        assert EULER.total_flops == 77_000e6
        assert EULER.startups_per_proc == 60_000
        assert EULER.volume_bytes_per_proc == 95e6

    def test_per_step_rates(self):
        """16 startups/step NS = 8 sends + 8 receives at an interior rank."""
        assert NAVIER_STOKES.sends_per_step == 8
        assert EULER.sends_per_step == 6
        assert NAVIER_STOKES.bytes_per_send == pytest.approx(3125)

    def test_paper_ratios(self):
        """Euler: ~50% of the computation, ~75% of the communication."""
        assert EULER.total_flops / NAVIER_STOKES.total_flops == pytest.approx(
            0.53, abs=0.02
        )
        assert (
            EULER.volume_bytes_per_proc / NAVIER_STOKES.volume_bytes_per_proc
        ) == pytest.approx(0.76, abs=0.01)


class TestPaperWorkloads:
    def test_fractions_sum_to_one(self):
        for app in (NAVIER_STOKES, EULER):
            w = Workload.paper(app)
            assert sum(p.compute_fraction for p in w.phases) == pytest.approx(1.0)

    def test_send_counts_match_startups(self):
        assert Workload.paper(NAVIER_STOKES).sends_per_step() == 8
        assert Workload.paper(EULER).sends_per_step() == 6

    def test_volume_matches_table1(self):
        for app in (NAVIER_STOKES, EULER):
            w = Workload.paper(app)
            total = w.volume_per_step() * app.steps
            assert total == pytest.approx(app.volume_bytes_per_proc, rel=0.001)

    def test_ns_has_uvT_messages_euler_not(self):
        kinds_ns = {m.kind for p in Workload.paper(NAVIER_STOKES).phases
                    for m in p.messages}
        kinds_eu = {m.kind for p in Workload.paper(EULER).phases
                    for m in p.messages}
        assert "uvT" in kinds_ns
        assert "uvT" not in kinds_eu
        assert "flux" in kinds_ns and "flux" in kinds_eu

    def test_flops_split_evenly(self):
        w = Workload.paper(NAVIER_STOKES)
        assert w.flops_per_step_per_rank(8) == pytest.approx(
            145_000e6 / 5000 / 8
        )

    def test_working_set_shrinks_with_procs(self):
        w = Workload.paper(NAVIER_STOKES)
        assert w.working_set_bytes(16) == pytest.approx(
            w.working_set_bytes(1) / 16
        )

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            Workload(
                app=NAVIER_STOKES,
                phases=(StepPhase(0.5), StepPhase(0.4)),
            )


class TestMeasuredWorkload:
    def test_rescaling(self):
        w = Workload.measured(
            NAVIER_STOKES, sends_per_step=16, bytes_per_step=50_000
        )
        assert w.source == "measured"
        assert w.sends_per_step() == 16
        assert w.volume_per_step() == pytest.approx(50_000, rel=0.05)

    def test_dispatcher(self):
        assert workload_for(NAVIER_STOKES).source == "paper"
        w = workload_for(
            EULER, source="measured", sends_per_step=6, bytes_per_step=19_000
        )
        assert w.source == "measured"
        with pytest.raises(ValueError):
            workload_for(EULER, source="guessed")


class TestVolumeScale:
    def test_scales_every_message(self):
        w = Workload.paper(NAVIER_STOKES)
        w2 = w.with_volume_scale(2.5, label="radial-blocks")
        assert w2.source == "radial-blocks"
        assert w2.sends_per_step() == w.sends_per_step()
        assert w2.volume_per_step() == pytest.approx(
            2.5 * w.volume_per_step(), rel=0.001
        )

    def test_compute_unchanged(self):
        w = Workload.paper(EULER).with_volume_scale(3.0)
        assert w.flops_per_step_per_rank(4) == Workload.paper(
            EULER
        ).flops_per_step_per_rank(4)
