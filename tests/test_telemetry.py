"""The live telemetry plane (ISSUE 9).

Four capabilities, each tested bottom-up and then end-to-end through the
run service:

* **Distributed trace propagation** — a :class:`~repro.obs.TraceContext`
  minted at submission rides the service wire protocol and the
  fork-worker job queue into every rank's tracer, so
  ``RunService.job_trace`` assembles client, service, worker and rank
  spans into one Perfetto-openable tree under a single trace id.
* **Streaming step telemetry** — each rank publishes one compact
  ``repro.stream/1`` record per solver step; the service fans them into
  a parent-side ring served live by ``tail()`` / summarized by ``top()``.
* **Flight recorder** — a bounded ring of each rank's last structured
  events, file-backed on the process substrate so the parent (or the
  service) recovers it even after the writer is SIGKILLed mid-write.
* **Straggler / imbalance detection** — online
  :class:`~repro.obs.StragglerDetector` verdicts plus the post-run
  :func:`~repro.obs.imbalance_verdict` recorded into ``PerfReport``.

Also here: the regression test for torn run-ledger lines and the
service-vs-direct observability identity (telemetry must never perturb
physics, metrics, or the trace shape).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import signal
import threading
import time

import numpy as np
import pytest

from repro import api
from repro.msglib import ProcessCluster, RankFailure
from repro.obs import (
    BufferStepStream,
    FlightRecorder,
    QueueStepStream,
    StragglerDetector,
    TraceContext,
    Tracer,
    chrome_trace_json,
    imbalance_verdict,
    read_flight_jsonl,
    step_record,
    use_flight,
    write_flight_jsonl,
)
from repro.obs.flight import FLIGHT_SCHEMA, FlightRing
from repro.obs.report import read_ledger
from repro.obs.stream import STREAM_SCHEMA
from repro.request import RunRequest
from repro.service import ResultStore, RunService, ServiceClient, serve

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process substrate / run service need the fork start method",
)

SOD_SMALL = dict(nx=64, nr=8)


def make_service(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("ledger", False)
    return RunService(store=ResultStore(tmp_path / "store"), **kw)


# -- trace context ------------------------------------------------------------


class TestTraceContext:
    def test_mint_child_roundtrip(self):
        ctx = TraceContext.mint(origin="client")
        assert len(ctx.trace_id) == 16
        assert ctx.parent_span is None
        assert TraceContext.mint().trace_id != ctx.trace_id
        child = ctx.child("service.worker", origin="worker")
        assert child.trace_id == ctx.trace_id
        assert child.parent_span == "service.worker"
        assert child.origin == "worker"
        assert TraceContext.from_dict(child.to_dict()) == child

    def test_tracer_adopts_context_into_meta(self):
        ctx = TraceContext.mint(origin="client").child("outer", "worker")
        tracer = Tracer(name="t")
        tracer.adopt_context(ctx)
        assert tracer.trace.meta["trace_id"] == ctx.trace_id
        assert tracer.trace.meta["trace_origin"] == "worker"
        assert tracer.trace.meta["parent_span"] == "outer"

    def test_observability_never_perturbs_fingerprints(self):
        bare = RunRequest.from_run_args("sod", steps=5)
        instrumented = RunRequest.from_run_args(
            "sod", steps=5, trace=True, metrics=True, stream=True, flight=32
        )
        assert instrumented.fingerprint() == bare.fingerprint()


# -- step stream --------------------------------------------------------------


class TestStepStream:
    def test_step_record_schema(self):
        rec = step_record(
            rank=1, step=3, t=0.5, dt=1e-4, ms=2.0, comm_ms=0.4
        )
        assert rec["schema"] == STREAM_SCHEMA
        assert rec["rank"] == 1 and rec["step"] == 3
        assert rec["comm_ms"] == 0.4

    def test_buffer_stream_bounds_and_counts(self):
        buf = BufferStepStream(capacity=4)
        for i in range(6):
            buf.publish(step_record(rank=0, step=i, t=0.0, dt=1.0, ms=1.0))
        assert buf.published == 6 and buf.dropped == 2
        assert [r["step"] for r in buf.records()] == [2, 3, 4, 5]

    def test_queue_stream_drops_instead_of_blocking(self):
        channel = queue.Queue(maxsize=2)
        qs = QueueStepStream(channel, job="j-1")
        for i in range(5):
            qs.publish(step_record(rank=0, step=i, t=0.0, dt=1.0, ms=1.0))
        assert qs.published == 2 and qs.dropped == 3
        rec = channel.get_nowait()
        assert rec["job"] == "j-1"  # tags merged for demultiplexing

    def test_serial_run_publishes_one_record_per_step(self):
        buf = BufferStepStream()
        api.run("sod", steps=5, stream=buf, **SOD_SMALL)
        recs = buf.records()
        assert len(recs) == 5
        assert all(r["schema"] == STREAM_SCHEMA for r in recs)
        assert [r["step"] for r in recs] == sorted(r["step"] for r in recs)
        assert {r["rank"] for r in recs} == {0}

    def test_distributed_records_carry_comm_split(self):
        buf = BufferStepStream()
        api.run("sod", steps=4, nprocs=2, stream=buf, **SOD_SMALL)
        recs = buf.records()
        assert len(recs) == 8  # one per step per rank
        assert {r["rank"] for r in recs} == {0, 1}
        assert all("comm_ms" in r and "sent_bytes" in r for r in recs)


# -- flight recorder ----------------------------------------------------------


class TestFlightRecorder:
    def test_ring_keeps_only_last_events(self):
        fl = FlightRecorder(capacity=3)
        for i in range(7):
            fl.record("send", rank=0, step=i)
        fl.record("recv", rank=1)
        by_rank = fl.events_by_rank()
        assert [e["step"] for e in by_rank[0]] == [4, 5, 6]
        assert by_rank[1][0]["kind"] == "recv"

    def test_jsonl_roundtrip_and_schema_guard(self, tmp_path):
        fl = FlightRecorder(capacity=4)
        fl.record("send", rank=0, dest=1, tag="halo")
        fl.record("recv", rank=1, source=0)
        path = tmp_path / "post.flight.jsonl"
        write_flight_jsonl(fl.events_by_rank(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == FLIGHT_SCHEMA
        back = read_flight_jsonl(path)
        assert back == fl.events_by_rank()
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text(json.dumps({"schema": "nope/0"}) + "\n")
        with pytest.raises(ValueError, match="unknown flight schema"):
            read_flight_jsonl(bogus)

    def test_facade_collects_flight_per_rank(self):
        res = api.run("sod", steps=4, nprocs=2, flight=16, **SOD_SMALL)
        assert set(res.flight) == {0, 1}
        assert all(0 < len(v) <= 16 for v in res.flight.values())
        kinds = {e["kind"] for evs in res.flight.values() for e in evs}
        assert kinds, "ranks recorded no structured events"


class TestFlightRing:
    def test_write_read_reopen(self, tmp_path):
        path = str(tmp_path / "f.ring")
        ring = FlightRing.create(path, nranks=2, capacity=8)
        w0, w1 = ring.writer(0), ring.writer(1)
        for i in range(3):
            w0.record("send", step=i)
        w1.record("recv", source=0)
        assert [e["step"] for e in ring.read(0)] == [0, 1, 2]
        # A different handle (post-mortem reader) sees the same events.
        other = FlightRing.open(path)
        assert other.read_all() == ring.read_all()
        other.close()
        ring.close()

    def test_capacity_wraps_to_last_events(self, tmp_path):
        ring = FlightRing.create(str(tmp_path / "f.ring"), 1, capacity=4)
        w = ring.writer(0)
        for i in range(10):
            w.record("send", step=i)
        assert [e["step"] for e in ring.read(0)] == [6, 7, 8, 9]
        ring.close()

    def test_torn_slots_are_skipped_not_propagated(self, tmp_path):
        """A SIGKILL mid-write leaves garbage payloads; readers skip them."""
        ring = FlightRing.create(str(tmp_path / "f.ring"), 1, capacity=8)
        w = ring.writer(0)
        for i in range(3):
            w.record("send", step=i)
        ring._write_slot(0, 3, b"\xfe\xffhalf-written junk")  # torn payload
        ring._write_slot(0, 4, b"")  # zero-length slot
        events = ring.read(0)
        assert [e["step"] for e in events] == [0, 1, 2]
        ring.close()

    def test_oversized_payload_never_crashes_reader(self, tmp_path):
        ring = FlightRing.create(
            str(tmp_path / "f.ring"), 1, capacity=4, slot_bytes=48
        )
        ring.writer(0).record("send", blob="x" * 500)  # truncated to slot
        assert ring.read(0) == []  # unparseable, skipped
        ring.close()

    @needs_fork
    def test_sigkilled_rank_leaves_recoverable_flight(self):
        """ProcessCluster attaches the killed rank's last events to the
        RankFailure it raises — the acceptance path for post-mortems."""

        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(right, "ring", np.zeros(4))
            comm.recv(left, "ring", timeout=30)
            if comm.rank == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            comm.recv(1, "never", timeout=60)  # survivor gets aborted

        with use_flight(FlightRecorder()):
            with ProcessCluster(2, timeout=60) as cluster:
                with pytest.raises(RankFailure) as exc:
                    cluster.run(program)
        flight = getattr(exc.value, "flight", None)
        assert flight, "failure carried no flight events"
        assert flight.get(1), "the killed rank's ring was not recovered"
        kinds = {e["kind"] for e in flight[1]}
        assert kinds & {"send", "recv", "recv_view", "slot_wait"}


# -- straggler / imbalance ----------------------------------------------------


class TestStragglerDetection:
    def _rec(self, rank, step, ms, comm_ms):
        return step_record(
            rank=rank, step=step, t=0.0, dt=1e-3, ms=ms, comm_ms=comm_ms
        )

    def test_detector_needs_two_ranks(self):
        d = StragglerDetector()
        assert d.verdict() is None
        d.observe(self._rec(0, 0, 10.0, 1.0))
        assert d.verdict() is None

    def test_detector_flags_slow_comm_bound_rank(self):
        d = StragglerDetector(window=8)
        for step in range(8):
            d.observe(self._rec(0, step, 10.0, 1.0))
            d.observe(self._rec(1, step, 40.0, 30.0))
        v = d.verdict()
        assert v["verdict"] == "imbalanced+comm-bound"
        assert v["slowest_rank"] == 1
        assert v["comm_bound_ranks"] == [1]
        assert v["max_mean_step_ratio"] == pytest.approx(1.6)

    def test_detector_balanced(self):
        d = StragglerDetector(window=8)
        for step in range(8):
            d.observe(self._rec(0, step, 10.0, 1.0))
            d.observe(self._rec(1, step, 11.0, 1.0))
        assert d.verdict()["verdict"] == "balanced"

    def test_post_run_verdict_from_perf_rows(self):
        rows = [
            {"rank": 0, "step_seconds": 0.5, "comm_seconds": 0.05},
            {"rank": 1, "step_seconds": 2.0, "comm_seconds": 1.2},
        ]
        v = imbalance_verdict(rows)
        assert v["schema"] == "repro.balance/1"
        assert v["verdict"] == "imbalanced+comm-bound"
        assert imbalance_verdict(rows[:1]) is None

    def test_perf_report_records_balance(self):
        res = api.run("sod", steps=6, nprocs=2, metrics=True, **SOD_SMALL)
        balance = res.perf.balance
        assert balance is not None
        assert balance["schema"] == "repro.balance/1"
        assert balance["ranks"] == 2
        assert "verdict" in balance


# -- ledger robustness (satellite: torn BENCH_runs.jsonl lines) ---------------


class TestLedgerRobustness:
    def test_read_ledger_skips_torn_lines_with_warning(self, tmp_path):
        path = tmp_path / "BENCH_runs.jsonl"
        api.run("sod", steps=4, ledger=path, **SOD_SMALL)
        api.run("sod", steps=5, ledger=path, **SOD_SMALL)
        good = path.read_text().splitlines()
        assert len(good) == 2
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(good[0][: len(good[0]) // 2] + "\n")  # torn mid-append
            fh.write("[1, 2, 3]\n")  # well-formed JSON, not an object
        with pytest.warns(UserWarning, match="skipping"):
            reports = read_ledger(path)
        assert len(reports) == 2
        assert [r.steps for r in reports] == [4, 5]

    def test_unknown_schema_still_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps({"schema": "bogus/9"}) + "\n")
        with pytest.raises(ValueError, match="unknown ledger schema"):
            read_ledger(path)


# -- the run service end-to-end ----------------------------------------------


def _metrics_projection(reg) -> dict:
    """The deterministic slice of a MetricsRegistry snapshot.

    Counter values/updates and histogram observation counts are pure
    functions of the numerics; ``*_seconds`` counters, histogram sums and
    gauges carry wall-clock timings and are excluded.
    """
    snap = reg.snapshot()
    return {
        "counters": {
            name: ranks
            for name, ranks in snap["counters"].items()
            if not name.endswith("seconds")
        },
        "histogram_counts": {
            name: {rank: payload["count"] for rank, payload in ranks.items()}
            for name, ranks in snap["histograms"].items()
        },
    }


def _trace_projection(trace) -> dict:
    """The deterministic shape of a trace: span/event structure, no times."""
    return {
        "spans": sorted(
            (s.name, s.cat, s.rank, s.parent or "") for s in trace.spans
        ),
        "events": sorted((e.name, e.cat, e.rank) for e in trace.events),
        "counters": {
            f"{r}:{n}": v
            for (r, n), v in trace.counters.items()
            if not n.endswith("seconds")  # wall-clock totals
        },
    }


@needs_fork
class TestServiceTelemetry:
    def test_service_run_assembles_single_trace_tree(self, tmp_path):
        """Acceptance: one Perfetto export of a service-submitted 4-rank
        process run shows client → service → worker → ranks as one tree."""
        ctx = TraceContext.mint(origin="client")
        req = RunRequest.from_run_args(
            "sod", steps=8, nx=96, nr=8, nprocs=4, substrate="process",
            trace=True,
        )
        with make_service(tmp_path) as svc:
            job = svc.submit(req, context=ctx)
            assert svc.wait(job.id, timeout=180).status == "done"
            merged = svc.job_trace(job.id)
            stored = svc.result(job.id)
        # The minted context reached the worker's tracer across the job
        # queue and fork boundary.
        assert stored.trace.meta["trace_id"] == ctx.trace_id
        assert merged.meta["trace_id"] == ctx.trace_id
        names = {s.name for s in merged.spans}
        assert {"client.submit", "service.job", "service.worker"} <= names
        roots = [s for s in merged.spans if s.parent is None]
        assert [r.name for r in roots] == ["client.submit"]
        for s in merged.spans:  # fully connected: every parent exists
            assert s.parent is None or s.parent in names
        assert set(merged.ranks()) >= {0, 1, 2, 3}
        # And it exports: valid Chrome trace JSON with the service tiers.
        doc = json.loads(chrome_trace_json(merged))
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        exported = {e.get("name") for e in events}
        assert {"client.submit", "service.worker"} <= exported

    def test_tail_streams_live_records(self, tmp_path):
        """Acceptance: ``tail`` serves per-rank records from a running
        job.  100 steps x 2 ranks = 200 records < the 256-record ring, so
        every published record must come back, in arrival order."""
        req = RunRequest.from_run_args(
            "sod", steps=100, nx=96, nr=8, nprocs=2, substrate="process"
        )
        with make_service(tmp_path) as svc:
            job = svc.submit(req)
            records, live = [], False
            for rec in svc.tail(job.id, timeout=180):
                records.append(rec)
                if not live and not svc.job(job.id).terminal:
                    live = True
            assert svc.wait(job.id, timeout=60).status == "done"
        assert live, "tail never yielded while the job was running"
        assert len(records) == 200
        assert all(r["schema"] == STREAM_SCHEMA for r in records)
        assert all(r["job"] == job.id for r in records)
        assert {r["rank"] for r in records} == {0, 1}
        seqs = [r["_seq"] for r in records]
        assert seqs == sorted(seqs)
        for rank in (0, 1):
            steps = [r["step"] for r in records if r["rank"] == rank]
            assert steps == sorted(steps) and len(steps) == 100

    def test_top_reports_running_job(self, tmp_path):
        req = RunRequest.from_run_args(
            "sod", steps=400, nx=96, nr=8, nprocs=2, substrate="process"
        )
        with make_service(tmp_path) as svc:
            job = svc.submit(req)
            row = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                top = svc.top()
                rows = [r for r in top["running"] if r["id"] == job.id]
                if rows and rows[0]["step"] is not None:
                    row = rows[0]
                    break
                if svc.job(job.id).terminal:
                    break
                time.sleep(0.02)
            assert row is not None, "top never showed the running job"
            assert row["scenario"] == "sod"
            assert row["worker_pid"]
            assert svc.wait(job.id, timeout=120).status == "done"
            # The pump keeps draining in-flight records after completion.
            deadline = time.monotonic() + 10
            while (
                svc.top()["stream_records"] < 2 * 400
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            top = svc.top()
            assert top["executed"] == 1
            assert top["stream_records"] == 2 * 400
            assert top["running"] == []

    def test_sigkilled_worker_yields_recovered_flight(self, tmp_path):
        """Acceptance: SIGKILL a worker mid-run; the service recovers the
        flight ring into the job's failure report."""
        req = RunRequest.from_run_args(
            "sod", steps=400, nx=96, nr=8, nprocs=2, substrate="process"
        )
        with make_service(tmp_path) as svc:
            job = svc.submit(req)
            snap = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                snap = svc.job(job.id)
                mid_run = (
                    snap.status == "running"
                    and snap.worker_pid
                    and snap.flight_path
                    and svc.top()["stream_records"] > 10
                )
                if mid_run or snap.terminal:
                    break
                time.sleep(0.02)
            assert snap is not None and snap.status == "running", (
                "job finished before it could be killed mid-run"
            )
            os.kill(snap.worker_pid, signal.SIGKILL)
            done = svc.wait(job.id, timeout=120)
            assert done.status == "failed"
            assert "worker process died" in done.error
            assert done.flight, "no flight events recovered from the ring"
            assert any(done.flight.values())
            kinds = {
                e["kind"] for evs in done.flight.values() for e in evs
            }
            assert kinds & {"send", "recv", "recv_view", "slot_wait"}
            # The post-mortem is also flushed beside the ring for triage
            # tooling (scripts/dump_telemetry.py picks it up).
            assert done.flight_path
            jsonl = done.flight_path[: -len(".ring")] + ".jsonl"
            assert os.path.exists(jsonl)
            assert read_flight_jsonl(jsonl) == {
                int(r): evs for r, evs in done.flight.items()
            }

    @pytest.mark.parametrize("substrate", ["virtual", "process"])
    def test_service_obs_identical_to_direct_run(self, tmp_path, substrate):
        """Satellite: the service's always-on telemetry (stream + flight +
        forced metrics) must not perturb the run — merged metrics and the
        trace shape are identical to a direct ``api.run_request``."""
        kw = dict(
            steps=10, nx=64, nr=8, nprocs=2, substrate=substrate,
            metrics=True, trace=True,
        )
        direct = api.run_request(RunRequest.from_run_args("sod", **kw))
        with make_service(tmp_path) as svc:
            job = svc.submit(RunRequest.from_run_args("sod", **kw))
            assert svc.wait(job.id, timeout=180).status == "done"
            via = svc.result(job.id)
        assert np.array_equal(via.state.q, direct.state.q)
        assert _metrics_projection(via.metrics) == _metrics_projection(
            direct.metrics
        )
        assert _trace_projection(via.trace) == _trace_projection(
            direct.trace
        )


@needs_fork
class TestSocketTelemetry:
    @pytest.fixture
    def endpoint(self, tmp_path):
        sock = str(tmp_path / "svc.sock")
        ready = threading.Event()
        t = threading.Thread(
            target=serve,
            kwargs=dict(socket_path=sock, workers=1,
                        store=ResultStore(tmp_path / "store"),
                        ledger=False, ready=lambda _srv: ready.set()),
        )
        t.start()
        assert ready.wait(30), "server never came up"
        yield sock
        client = ServiceClient(sock)
        try:
            client.shutdown()
        except Exception:
            pass
        t.join(30)
        assert not t.is_alive()

    def test_context_tail_and_top_over_the_socket(self, endpoint):
        client = ServiceClient(endpoint, timeout=180)
        ctx = TraceContext.mint(origin="client")
        job = client.submit(
            RunRequest.from_run_args(
                "sod", steps=30, nx=64, nr=8, nprocs=2, substrate="process",
                trace=True,
            ),
            context=ctx,
        )
        records = list(client.tail(job["id"], timeout=180))
        states = [s["status"] for s in client.watch(job["id"], timeout=60)]
        assert states[-1] == "done"
        assert len(records) == 60
        assert {r["rank"] for r in records} == {0, 1}
        assert all(r["job"] == job["id"] for r in records)
        top = client.top()
        assert top["executed"] == 1
        assert top["stream_records"] == 60
        # The client-minted trace id survived two process hops and a fork.
        res = client.result(job["id"])
        assert res.trace.meta["trace_id"] == ctx.trace_id
