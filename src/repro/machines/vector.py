"""Vector processor model (the Cray Y-MP).

Hockney's two-parameter characterization: a vector pipe of asymptotic rate
``r_inf`` reaches half speed at vector length ``n_half``, so a sweep of
length ``n`` sustains ``r_inf * n / (n + n_half)``.

The paper's Y-MP parallelization "partitioned the domain along the
orthogonal direction of the sweep to keep the vector lengths large and to
avoid non-stride access" — i.e. splitting among processors does *not*
shorten the vectors, so per-processor rate is preserved and the machine
scales nearly linearly to its 8 CPUs (paper Figure 9/10 and Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.versions import Version, version_by_number


@dataclass(frozen=True)
class VectorCpuModel:
    """One vector CPU (Hockney ``r_inf`` / ``n_half`` model)."""

    name: str
    r_inf_mflops: float
    """Asymptotic vector rate per CPU in MFLOPS."""
    n_half: float
    """Vector length achieving half the asymptotic rate."""
    vector_fraction: float = 0.95
    """Fraction of the application's flops that vectorize (Amdahl term)."""
    scalar_mflops: float = 12.0
    """Rate of the non-vectorized remainder."""

    def sustained_mflops(self, vector_length: float) -> float:
        """Sustained rate for sweeps of the given vector length."""
        rv = self.r_inf_mflops * vector_length / (vector_length + self.n_half)
        f = self.vector_fraction
        return 1.0 / (f / rv + (1.0 - f) / self.scalar_mflops)

    def time_for_flops(
        self, flops: float, vector_length: float, version: Version | int = 5
    ) -> float:
        """Seconds for ``flops`` nominal flops at the given vector length.

        Code versions barely matter on the vector machine (the compiler
        vectorizes the stride-1 form regardless), so only the vectorizable
        fraction degrades slightly for the pre-interchange versions.
        """
        if isinstance(version, int):
            version = version_by_number(version)
        # Non-stride-1 versions vectorize less of the code.
        frac = self.vector_fraction * (
            0.85 if version.stride1_fraction < 0.6 else 1.0
        )
        model = VectorCpuModel(
            self.name, self.r_inf_mflops, self.n_half, frac, self.scalar_mflops
        )
        return flops / (model.sustained_mflops(vector_length) * 1e6)
