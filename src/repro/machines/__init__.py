"""Architectural platform models (the paper's Section 4 hardware).

The original study ran on 1995 hardware that no longer exists; this package
substitutes parametric models whose inputs are exactly the hardware
attributes the paper reasons about — clock rate, cache size/associativity/
line size, memory-bus width, vector length, network link bandwidth and
topology, message-library overheads.  See DESIGN.md for the substitution
rationale.
"""

from .cache import CacheSpec, CacheSim, sweep_miss_rate
from .cpu import ScalarCpuModel
from .vector import VectorCpuModel
from .platforms import (
    CRAY_T3D,
    CRAY_YMP,
    IBM_SP,
    LACE_560,
    LACE_590,
    NodeModel,
    Platform,
    platform_by_name,
)

__all__ = [
    "CacheSpec",
    "CacheSim",
    "sweep_miss_rate",
    "ScalarCpuModel",
    "VectorCpuModel",
    "NodeModel",
    "Platform",
    "LACE_560",
    "LACE_590",
    "IBM_SP",
    "CRAY_T3D",
    "CRAY_YMP",
    "platform_by_name",
]
