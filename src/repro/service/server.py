"""Unix-domain-socket front end for :class:`~repro.service.RunService`.

Protocol: newline-delimited JSON, one request per connection.  The client
sends one object ``{"op": ..., ...}``; the server answers with one
``{"ok": true, ...}`` line (or ``{"ok": false, "error": ...}``).  The
``watch`` op streams one line per job transition and closes after the
terminal one — job status streaming over a raw socket, no framework.

Result payloads never cross the socket: ``result`` returns the store
entry's manifest plus the payload *path*, and the client unpickles it
from the shared filesystem (server and clients sit on one machine, by
construction of a Unix socket).

Ops: ``ping``, ``submit``, ``jobs``, ``status``, ``wait``, ``watch``,
``result``, ``top``, ``tail``, ``shutdown``.

``submit`` accepts an optional ``context`` (a
:class:`~repro.obs.TraceContext` wire dict) so the client's trace id rides
the socket into the service, the worker, and every rank.  ``tail``
streams the job's live per-step telemetry records exactly like ``watch``
streams status transitions.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
from pathlib import Path

from ..config import default_service_dir
from .service import RunService

__all__ = ["SOCKET_ENV", "ServiceServer", "default_socket_path", "serve"]

#: Environment variable overriding the control socket location.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"


def default_socket_path() -> Path:
    env = os.environ.get(SOCKET_ENV)
    if env:
        return Path(env)
    return default_service_dir() / "repro.sock"


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one JSON request per connection
        server: "ServiceServer" = self.server  # type: ignore[assignment]
        line = self.rfile.readline()
        if not line:
            return
        try:
            req = json.loads(line)
            op = req.get("op")
            fn = getattr(self, f"_op_{op}", None)
            if fn is None:
                raise ValueError(f"unknown op {op!r}")
            fn(server.service, req)
        except Exception as exc:  # malformed input must not kill the server
            self._send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})

    def _send(self, obj: dict) -> None:
        try:
            self.wfile.write(json.dumps(obj).encode() + b"\n")
            self.wfile.flush()
        except (BrokenPipeError, OSError):
            pass  # client went away mid-stream

    # -- ops -----------------------------------------------------------------

    def _op_ping(self, svc: RunService, req: dict) -> None:
        self._send({
            "ok": True,
            "pid": os.getpid(),
            "workers": svc.workers,
            "jobs": len(svc.jobs()),
            "executed": svc.executed,
            "store_root": str(svc.store.root),
            "store_entries": len(svc.store),
        })

    def _op_submit(self, svc: RunService, req: dict) -> None:
        job = svc.submit(req["request"], context=req.get("context"))
        self._send({"ok": True, "job": job.to_dict()})

    def _op_jobs(self, svc: RunService, req: dict) -> None:
        self._send({"ok": True, "jobs": [j.to_dict() for j in svc.jobs()]})

    def _op_status(self, svc: RunService, req: dict) -> None:
        self._send({"ok": True, "job": svc.job(req["job_id"]).to_dict()})

    def _op_wait(self, svc: RunService, req: dict) -> None:
        job = svc.wait(req["job_id"], timeout=req.get("timeout"))
        self._send({
            "ok": True,
            "job": job.to_dict(),
            "timed_out": not job.terminal,
        })

    def _op_watch(self, svc: RunService, req: dict) -> None:
        for snap in svc.watch(req["job_id"], timeout=req.get("timeout")):
            self._send({
                "ok": True,
                "job": snap.to_dict(),
                "final": snap.terminal,
            })

    def _op_result(self, svc: RunService, req: dict) -> None:
        job = svc.wait(req["job_id"], timeout=req.get("timeout"))
        if job.status == "failed":
            self._send({
                "ok": False,
                "error": f"{job.id} failed: {job.error}",
                "job": job.to_dict(),
            })
            return
        if not job.terminal:
            self._send({
                "ok": False,
                "error": f"{job.id} still {job.status} (timeout)",
                "job": job.to_dict(),
            })
            return
        svc.store.refresh()
        entry = svc.store.get(job.fingerprint)
        if entry is None:
            self._send({
                "ok": False,
                "error": f"{job.id}: store entry vanished",
            })
            return
        self._send({
            "ok": True,
            "job": job.to_dict(),
            "report": entry.report,
            "kind": entry.kind,
            "payload_path": str(svc.store.root / entry.payload),
        })

    def _op_top(self, svc: RunService, req: dict) -> None:
        self._send({"ok": True, "top": svc.top()})

    def _op_tail(self, svc: RunService, req: dict) -> None:
        for record in svc.tail(req["job_id"], timeout=req.get("timeout")):
            self._send({"ok": True, "record": record, "final": False})
        self._send({"ok": True, "record": None, "final": True})

    def _op_shutdown(self, svc: RunService, req: dict) -> None:
        self._send({"ok": True, "stopping": True})
        # shutdown() must come from another thread (it joins the serve loop)
        threading.Thread(
            target=self.server.shutdown, daemon=True  # type: ignore[attr-defined]
        ).start()


class ServiceServer(socketserver.ThreadingUnixStreamServer):
    """Threaded Unix-socket server bound to a :class:`RunService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: RunService,
        socket_path: str | os.PathLike | None = None,
    ) -> None:
        self.service = service
        path = Path(socket_path) if socket_path else default_socket_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()  # stale socket from a previous serve
        self.socket_path = path
        super().__init__(str(path), _Handler)

    def server_close(self) -> None:
        super().server_close()
        try:
            self.socket_path.unlink()
        except OSError:
            pass


def serve(
    socket_path: str | os.PathLike | None = None,
    workers: int = 2,
    store=None,
    *,
    ledger: bool = True,
    ready=None,
) -> None:
    """Run the service + socket server until ``shutdown`` (blocking).

    ``ready`` (optional) is a callable invoked with the bound
    :class:`ServiceServer` once accepting — tests use it to coordinate.
    """
    with RunService(workers=workers, store=store, ledger=ledger) as svc:
        server = ServiceServer(svc, socket_path)
        try:
            if ready is not None:
                ready(server)
            server.serve_forever(poll_interval=0.1)
        finally:
            server.server_close()
