"""Parameter-sweep utilities over the simulated platforms.

``sweep()`` runs a (platform x processor-count x version x application)
grid through the simulated machines and returns a tidy list of records —
the workhorse behind custom studies beyond the paper's figures (the CLI's
``sweep`` subcommand and notebook-style exploration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..analysis.report import format_table
from ..machines.platforms import Platform
from ..simulate.machine import SimulatedMachine
from ..simulate.sharedmem import SharedMemoryMachine
from ..simulate.workload import Application


@dataclass(frozen=True)
class SweepRecord:
    """One simulated configuration's outcome."""

    platform: str
    app: str
    nprocs: int
    version: int
    execution_time: float
    busy_time: float
    comm_time: float
    speedup: float


def sweep(
    platforms: Sequence[Platform],
    apps: Sequence[Application],
    procs: Sequence[int] = (1, 2, 4, 8, 16),
    versions: Sequence[int] = (5,),
    steps_window: int = 25,
) -> list[SweepRecord]:
    """Run the full grid; Y-MP-style platforms use the shared-memory model
    and are clamped to their processor limit."""
    records: list[SweepRecord] = []
    for plat in platforms:
        for app in apps:
            for version in versions:
                base: float | None = None
                for p in procs:
                    if p > plat.max_procs:
                        continue
                    if plat.cpu is None:
                        r = SharedMemoryMachine(plat, p).run(app, version=version)
                    else:
                        r = SimulatedMachine(plat, p, version=version).run(
                            app, steps_window=steps_window
                        )
                    if base is None:
                        # Extrapolated single-processor time from this
                        # platform's smallest measured p (ideal scaling).
                        base = r.execution_time * p
                    records.append(
                        SweepRecord(
                            platform=plat.name,
                            app=app.name,
                            nprocs=p,
                            version=version,
                            execution_time=r.execution_time,
                            busy_time=r.busy_time,
                            comm_time=r.comm_time,
                            speedup=base / r.execution_time,
                        )
                    )
    return records


def sweep_table(records: Iterable[SweepRecord]) -> str:
    """Render sweep records as an aligned table."""
    rows = []
    for r in records:
        rows.append(
            [
                r.platform,
                r.app,
                r.nprocs,
                f"V{r.version}",
                f"{r.execution_time:,.0f}",
                f"{r.busy_time:,.0f}",
                f"{r.comm_time:,.0f}",
                f"{r.speedup:.2f}",
            ]
        )
    return format_table(
        ["platform", "app", "p", "ver", "exec (s)", "busy (s)", "comm (s)",
         "speedup"],
        rows,
    )
