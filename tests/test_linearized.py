"""Linear-stability eigensolver for the inflow eigenfunctions."""

import numpy as np
import pytest

from repro.physics.jet import JetProfile
from repro.physics.linearized import (
    Eigenmode,
    GaussianEigenmode,
    _radial_derivative,
    solve_temporal_mode,
)


class TestRadialDerivative:
    def test_exact_for_linear_even(self):
        n, dr = 20, 0.1
        r = (np.arange(n) + 0.5) * dr
        D = _radial_derivative(n, dr, parity=+1)
        f = 3.0 + 0.0 * r  # constant, even
        assert np.allclose(D @ f, 0.0, atol=1e-12)

    def test_exact_for_odd_linear(self):
        n, dr = 20, 0.1
        r = (np.arange(n) + 0.5) * dr
        D = _radial_derivative(n, dr, parity=-1)
        f = 2.0 * r  # odd across the axis
        # Interior + axis row should give exactly 2.
        assert np.allclose((D @ f)[:-1], 2.0, atol=1e-10)

    def test_parity_matters_at_axis(self):
        n, dr = 10, 0.1
        D_even = _radial_derivative(n, dr, parity=+1)
        D_odd = _radial_derivative(n, dr, parity=-1)
        f = np.ones(n)
        # Even extension of a constant: derivative 0 at the axis row.
        assert (D_even @ f)[0] == pytest.approx(0.0, abs=1e-12)
        # Odd extension of a constant jumps across the axis.
        assert (D_odd @ f)[0] != pytest.approx(0.0, abs=1e-6)


class TestGaussianMode:
    def test_shapes_and_localization(self):
        mode = GaussianEigenmode(theta=0.1)
        r = np.linspace(0.05, 6.0, 300)
        rho_h, u_h, v_h, p_h = mode.evaluate(r)
        assert np.abs(u_h).max() == pytest.approx(1.0, abs=0.05)
        peak = r[np.argmax(np.abs(u_h))]
        assert 0.8 < peak < 1.2
        # Decay in the far field and toward the axis.
        assert np.abs(u_h[-1]) < 1e-6
        assert np.abs(v_h[0]) < 0.05  # v' ~ 0 at the axis

    def test_v_in_quadrature(self):
        mode = GaussianEigenmode()
        r = np.array([1.0])
        _, u_h, v_h, _ = mode.evaluate(r)
        assert abs(np.real(v_h[0])) < 1e-12
        assert np.imag(v_h[0]) > 0


class TestEigensolver:
    @pytest.fixture(scope="class")
    def mode(self):
        # Thin shear layer: strongly KH-unstable.
        return solve_temporal_mode(
            JetProfile(theta=0.08), strouhal=0.125, n_points=90
        )

    def test_finds_unstable_mode(self, mode):
        assert not isinstance(mode, GaussianEigenmode)
        assert mode.growth_rate > 0

    def test_phase_speed_between_streams(self, mode):
        assert 0.0 < mode.phase_speed < 1.5

    def test_eigenfunction_localized(self, mode):
        peak = mode.r[np.argmax(np.abs(mode.u_hat))]
        assert 0.3 < peak < 2.5

    def test_normalization(self, mode):
        assert np.abs(mode.u_hat).max() == pytest.approx(1.0, rel=1e-9)
        k = np.argmax(np.abs(mode.u_hat))
        assert mode.u_hat[k].real == pytest.approx(1.0, rel=1e-9)
        assert mode.u_hat[k].imag == pytest.approx(0.0, abs=1e-9)

    def test_far_field_decay(self, mode):
        assert np.abs(mode.p_hat[-1]) < 0.05 * np.abs(mode.p_hat).max()

    def test_interpolation(self, mode):
        r = np.linspace(0.1, 4.0, 57)
        rho_h, u_h, v_h, p_h = mode.evaluate(r)
        assert u_h.shape == (57,)
        assert np.iscomplexobj(u_h)

    def test_thick_layer_falls_back_gracefully(self):
        # A very thick layer may have no admissible unstable mode; either
        # outcome must produce usable eigenfunctions.
        mode = solve_temporal_mode(
            JetProfile(theta=1.5), strouhal=0.125, n_points=60
        )
        r = np.linspace(0.1, 4.0, 30)
        vals = mode.evaluate(r)
        assert all(np.all(np.isfinite(v)) for v in vals)
