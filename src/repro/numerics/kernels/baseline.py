"""The baseline (allocating) kernel backend.

This is the paper's "Version 1": the straightforward vectorized
implementation, kept verbatim as the reference the fused backend must match
bitwise.  It requests no workspace, so every solver layer takes its original
allocating path.
"""

from __future__ import annotations

from .base import KernelBackend, StepWorkspace


class BaselineBackend(KernelBackend):
    """Reference backend: original allocating numpy kernels."""

    name = "baseline"

    def step_workspace(self, solver) -> StepWorkspace | None:
        return None
