"""High-level facade: run the decomposed jet solver over a virtual cluster.

:class:`ParallelJetSolver` takes the same inputs as the serial solver plus a
processor count and a paper code version, executes the SPMD program for real
(one thread per rank, actual message passing), and returns the gathered
global state together with per-rank communication statistics — the measured
source for the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid import Grid
from ..msglib.api import CommStats
from ..msglib.virtual import VirtualCluster
from ..numerics.solver import SolverConfig
from ..physics.state import FlowState
from .spmd import DistributedSolver


@dataclass
class ParallelRunResult:
    """Outcome of a distributed run."""

    state: FlowState
    """Gathered global state after the run."""
    per_rank_stats: list[CommStats]
    """Communication statistics of each rank."""
    nsteps: int
    t: float
    """Final simulation time."""

    @property
    def interior_rank_stats(self) -> CommStats:
        """Stats of a middle rank — the paper's 'per processor' numbers
        (interior ranks have two neighbours; edge ranks communicate less)."""
        return self.per_rank_stats[len(self.per_rank_stats) // 2]


class ParallelJetSolver:
    """Distributed counterpart of the serial solvers.

    Parameters
    ----------
    state:
        Initial global :class:`~repro.physics.state.FlowState`.
    config:
        Solver configuration (identical to the serial one).
    nranks:
        Number of processors (axial blocks).
    version:
        Paper code version: 5 (grouped messages), 6 (overlapped), or
        7 (flux columns one at a time).
    decomposition:
        ``"axial"`` (the paper's choice), ``"radial"`` (its Section-8
        future-work variant), or ``"2d"`` (a Cartesian ``px x pr`` grid of
        blocks; pass ``px``/``pr`` with ``px * pr == nranks``).
    timeout:
        Per-receive deadlock timeout in seconds.
    """

    def __init__(
        self,
        state: FlowState,
        config: SolverConfig | None = None,
        nranks: int = 2,
        version: int = 5,
        decomposition: str = "axial",
        px: int | None = None,
        pr: int | None = None,
        timeout: float = 120.0,
    ) -> None:
        if decomposition not in ("axial", "radial", "2d"):
            raise ValueError(
                f"decomposition must be 'axial', 'radial' or '2d', got "
                f"{decomposition!r}"
            )
        if decomposition == "2d":
            if px is None or pr is None or px * pr != nranks:
                raise ValueError(
                    "2d decomposition needs px and pr with px * pr == nranks"
                )
        self.global_grid: Grid = state.grid
        self.q0 = state.q.copy()
        self.config = config or SolverConfig()
        self.nranks = nranks
        self.version = version
        self.decomposition = decomposition
        self.px, self.pr = px, pr
        self.timeout = timeout

    def run(self, steps: int) -> ParallelRunResult:
        """Execute ``steps`` time steps across all ranks and gather."""
        cluster = VirtualCluster(self.nranks, timeout=self.timeout)
        grid = self.global_grid
        q0 = self.q0
        config = self.config
        version = self.version
        if self.decomposition == "radial":
            from .spmd_radial import RadialDistributedSolver as solver_cls

            make = lambda comm: solver_cls(comm, grid, q0, config, version=version)
        elif self.decomposition == "2d":
            from .spmd2d import Distributed2DSolver

            px, pr = self.px, self.pr
            make = lambda comm: Distributed2DSolver(
                comm, grid, q0, config, px=px, pr=pr, version=version
            )
        else:
            make = lambda comm: DistributedSolver(
                comm, grid, q0, config, version=version
            )

        def program(comm):
            solver = make(comm)
            for _ in range(steps):
                solver.step()
            gathered = solver.gather_state()
            return gathered, solver.t, solver.nstep

        results = cluster.run(program)
        state, t, nsteps = results[0]
        return ParallelRunResult(
            state=state,
            per_rank_stats=[c.stats for c in cluster.comms],
            nsteps=nsteps,
            t=t,
        )


def run_serial_reference(
    state: FlowState, config: SolverConfig, steps: int
) -> FlowState:
    """Serial run from the same initial state, for equivalence checks."""
    from ..numerics.solver import CompressibleSolver

    solver = CompressibleSolver(
        FlowState(state.grid, state.q.copy(), config.gamma), config
    )
    for _ in range(steps):
        solver.step()
    return solver.state
