"""The DES rank-program builder: message pairing, versions, edge ranks."""

import pytest

from repro.msglib.libmodel import MPL, PVM
from repro.parallel.versions import version_by_number
from repro.simulate.engine import Engine, Event, Resource
from repro.simulate.program import (
    EDGE_COMPUTE_FRACTION,
    _split_for_version,
    build_rank_program,
    transfer_process,
)
from repro.simulate.timeline import RankContext
from repro.simulate.workload import EULER, NAVIER_STOKES, Message, Workload
from repro.machines.network.crossbar import CrossbarNetwork


def _run_program(nprocs, workload, version=5, library=PVM, steps=2,
                 step_seconds=1.0):
    engine = Engine()
    net = CrossbarNetwork(nprocs)
    resources = {k: Resource(c, k) for k, c in net.capacities().items()}
    events = {}

    def event_for(key):
        if key not in events:
            events[key] = Event(str(key))
        return events[key]

    contexts = [RankContext(engine, r) for r in range(nprocs)]
    for r in range(nprocs):
        engine.add_process(
            build_rank_program(
                contexts[r], r, nprocs, workload,
                version_by_number(version), library, net, resources,
                event_for, steps, step_seconds,
            ),
            name=f"rank{r}",
        )
    makespan = engine.run()
    return contexts, makespan


class TestSplit:
    def test_v5_keeps_messages_whole(self):
        m = Message("L", 3000, "flux")
        assert _split_for_version(m, version_by_number(5)) == [(0, 3000)]

    def test_v7_splits_flux_only(self):
        v7 = version_by_number(7)
        flux = Message("L", 3001, "flux")
        parts = _split_for_version(flux, v7)
        assert len(parts) == 2
        assert sum(n for _, n in parts) == 3001
        uvt = Message("L", 3000, "uvT")
        assert _split_for_version(uvt, v7) == [(0, 3000)]


class TestProgramExecution:
    def test_all_ranks_finish(self):
        ctxs, makespan = _run_program(4, Workload.paper(NAVIER_STOKES))
        assert makespan > 2.0  # at least the compute time
        for c in ctxs:
            assert c.timeline.finished_at > 0

    def test_single_rank_never_communicates(self):
        ctxs, makespan = _run_program(1, Workload.paper(NAVIER_STOKES))
        t = ctxs[0].timeline
        assert t.library == 0.0
        assert t.comm_wait == 0.0
        assert makespan == pytest.approx(2.0)

    def test_edge_ranks_cheaper(self):
        ctxs, _ = _run_program(4, Workload.paper(NAVIER_STOKES))
        lib = [c.timeline.library for c in ctxs]
        assert lib[0] < lib[1]
        assert lib[3] < lib[2]
        assert lib[1] == pytest.approx(lib[2], rel=1e-9)

    def test_euler_communicates_less_than_ns(self):
        ns, _ = _run_program(4, Workload.paper(NAVIER_STOKES))
        eu, _ = _run_program(4, Workload.paper(EULER))
        assert eu[1].timeline.library < ns[1].timeline.library

    def test_v7_more_library_time(self):
        v5, _ = _run_program(4, Workload.paper(NAVIER_STOKES), version=5)
        v7, _ = _run_program(4, Workload.paper(NAVIER_STOKES), version=7)
        assert v7[1].timeline.library > v5[1].timeline.library

    def test_v6_overlap_reduces_wait(self):
        """On a fast network with early posting, waits shrink vs V5."""
        v5, _ = _run_program(
            4, Workload.paper(NAVIER_STOKES), version=5, step_seconds=0.01
        )
        v6, _ = _run_program(
            4, Workload.paper(NAVIER_STOKES), version=6, step_seconds=0.01
        )
        w5 = sum(c.timeline.comm_wait for c in v5)
        w6 = sum(c.timeline.comm_wait for c in v6)
        assert w6 <= w5 + 1e-12

    def test_blocking_send_charges_sender_wait(self):
        ctxs, _ = _run_program(2, Workload.paper(NAVIER_STOKES), library=MPL)
        # MPL transfers run inline: the sender accumulates comm_wait.
        assert ctxs[0].timeline.comm_wait > 0

    def test_makespan_scales_with_steps(self):
        _, m2 = _run_program(4, Workload.paper(NAVIER_STOKES), steps=2)
        _, m4 = _run_program(4, Workload.paper(NAVIER_STOKES), steps=4)
        assert m4 == pytest.approx(2 * m2, rel=0.02)


class TestTransferProcess:
    def test_holds_route_and_triggers(self):
        engine = Engine()
        net = CrossbarNetwork(2, bytes_per_s=1000.0, latency=0.0)
        resources = {k: Resource(c, k) for k, c in net.capacities().items()}
        ev = Event("arrival")
        engine.add_process(
            transfer_process(net, resources, 0, 1, 500, ev, wire_startup=0.25)
        )
        end = engine.run()
        assert ev.triggered
        # 0.25 startup + 500/1000 transfer.
        assert end == pytest.approx(0.75)
        assert resources["pair:0->1"].in_use == 0

    def test_edge_fraction_sane(self):
        assert 0.0 < EDGE_COMPUTE_FRACTION < 0.2
