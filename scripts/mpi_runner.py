#!/usr/bin/env python3
"""Run the distributed jet solver under real MPI (requires mpi4py).

Each MPI process becomes one rank of the paper's SPMD program::

    mpiexec -n 8 python scripts/mpi_runner.py --nx 250 --nr 100 --steps 100
    mpiexec -n 8 python scripts/mpi_runner.py --decomposition radial
    mpiexec -n 8 python scripts/mpi_runner.py --decomposition 2d --px 4 --pr 2

Rank 0 gathers the final field, reports communication statistics, and — if
``--verify`` is given — recomputes the serial reference and checks bitwise
equality (expensive: the full problem runs twice on rank 0).
"""

import argparse

import numpy as np


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=250)
    ap.add_argument("--nr", type=int, default=100)
    ap.add_argument("--steps", type=int, default=100)
    ap.add_argument("--version", type=int, default=5, choices=(5, 6, 7))
    ap.add_argument("--decomposition", default="axial",
                    choices=("axial", "radial", "2d"))
    ap.add_argument("--px", type=int, default=None)
    ap.add_argument("--pr", type=int, default=None)
    ap.add_argument("--euler", action="store_true")
    ap.add_argument("--verify", action="store_true",
                    help="rank 0 recomputes the serial reference")
    args = ap.parse_args()

    from repro.msglib.mpi import MPIComm
    from repro.scenarios import jet_scenario

    comm = MPIComm()
    sc = jet_scenario(nx=args.nx, nr=args.nr, viscous=not args.euler)
    grid, q0, config = sc.state.grid, sc.state.q, sc.solver.config

    if args.decomposition == "radial":
        from repro.parallel.spmd_radial import RadialDistributedSolver

        solver = RadialDistributedSolver(comm, grid, q0, config,
                                         version=args.version)
    elif args.decomposition == "2d":
        from repro.parallel.spmd2d import Distributed2DSolver

        solver = Distributed2DSolver(comm, grid, q0, config,
                                     px=args.px, pr=args.pr,
                                     version=args.version)
    else:
        from repro.parallel.spmd import DistributedSolver

        solver = DistributedSolver(comm, grid, q0, config,
                                   version=args.version)

    for _ in range(args.steps):
        solver.step()
    gathered = solver.gather_state()

    if comm.rank == 0:
        st = comm.stats
        print(f"ranks={comm.size} steps={solver.nstep} t={solver.t:.4f}")
        print(f"rank-0 comm: {st.sends} sends, "
              f"{st.bytes_sent / 1e6:.2f} MB sent")
        print(f"max |rho u| = {np.abs(gathered.axial_momentum).max():.4f}  "
              f"physical={gathered.is_physical()}")
        if args.verify:
            from repro.parallel.runner import serial_reference

            ref = serial_reference(sc.state, config, args.steps)
            same = np.array_equal(gathered.q, ref.q)
            print(f"bitwise identical to serial: {same}")
            if not same:
                raise SystemExit(1)


if __name__ == "__main__":
    main()
