"""The virtual cluster: real SPMD execution with one thread per rank.

This is the *correctness* execution substrate (the performance substrate is
the discrete-event simulator in :mod:`repro.simulate`).  Rank programs are
ordinary callables ``fn(comm, *args)``; they exchange numpy arrays through
:class:`VirtualComm` with buffered sends and tag-matched blocking receives.

Typical use::

    cluster = VirtualCluster(4)
    results = cluster.run(my_rank_program, extra_arg)

Failure semantics (the resilience contract the chaos suite exercises):

* any rank exception aborts every mailbox, so ranks blocked on a dead
  peer fail promptly with :class:`~repro.msglib.vchannel.ClusterAborted`
  instead of hanging until the cluster timeout;
* the caller receives a single structured :class:`RankFailure` naming the
  primary failing rank, the solver step it died at (when known), and every
  secondary casualty;
* receives that stall past the (per-call or cluster-default) timeout raise
  :class:`~repro.msglib.vchannel.DeadlockError`.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Any, Callable, Sequence

import numpy as np

from ..obs import get_metrics, get_tracer
from .api import Communicator, CommStats, Request
from .vchannel import ClusterAborted, Mailbox


class RankFailure(RuntimeError):
    """A rank (or several) died during a :meth:`VirtualCluster.run`.

    Attributes
    ----------
    rank:
        The primary failing rank (the first non-secondary casualty).
    step:
        Solver step the primary failure occurred at, when the underlying
        exception carried one (e.g. an injected crash), else ``None``.
    failures:
        Every ``(rank, step, exception)`` collected from the run —
        secondary :class:`~repro.msglib.vchannel.ClusterAborted` casualties
        included.
    last_good_step:
        Highest checkpointed step available for restart (filled in by the
        checkpointing runner; ``None`` when no checkpointing was active).
    """

    def __init__(
        self,
        rank: int,
        cause: BaseException,
        step: int | None = None,
        failures: tuple[tuple[int, int | None, BaseException], ...] = (),
    ) -> None:
        self.rank = rank
        self.step = step
        self.failures = tuple(failures)
        self.last_good_step: int | None = None
        at = f" at step {step}" if step is not None else ""
        others = [r for r, _, _ in self.failures if r != rank]
        tail = f"; also took down ranks {sorted(others)}" if others else ""
        super().__init__(f"rank {rank} failed{at}: {cause!r}{tail}")

    @property
    def ranks(self) -> list[int]:
        """All ranks that raised, primary first."""
        rest = sorted({r for r, _, _ in self.failures if r != self.rank})
        return [self.rank, *rest]


class VirtualComm(Communicator):
    """Communicator endpoint for one rank of a :class:`VirtualCluster`."""

    def __init__(self, cluster: "VirtualCluster", rank: int) -> None:
        self.cluster = cluster
        self.rank = rank
        self.size = cluster.size
        self.stats = CommStats()

    def send(self, dest: int, tag: str, array: np.ndarray) -> None:
        if not (0 <= dest < self.size) or dest == self.rank:
            raise ValueError(f"invalid destination {dest} from rank {self.rank}")
        tr = get_tracer()
        with tr.span("comm.send", cat="comm", rank=self.rank, peer=dest, tag=tag):
            t0 = _time.perf_counter()
            payload = np.ascontiguousarray(array).copy()
            self.cluster.mailboxes[dest].put(self.rank, tag, payload)
            seconds = _time.perf_counter() - t0
        self.stats.record_send(dest, tag, payload.nbytes, seconds)
        if tr.enabled:
            tr.count("messages", 1, rank=self.rank)
            tr.count("bytes_sent", payload.nbytes, rank=self.rank)
        mx = get_metrics()
        if mx.enabled:
            mx.observe("comm.send_call_seconds", seconds, rank=self.rank)

    def recv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> np.ndarray:
        """Blocking receive; ``timeout`` overrides the cluster default for
        this call (seconds), failing fast with a ``DeadlockError`` that
        names receiver, sender and tag."""
        tr = get_tracer()
        with tr.span("comm.recv", cat="comm", rank=self.rank, peer=source, tag=tag):
            t0 = _time.perf_counter()
            payload = self.cluster.mailboxes[self.rank].get(
                source, tag, timeout=timeout
            )
            seconds = _time.perf_counter() - t0
        self.stats.record_recv(source, tag, payload.nbytes, seconds)
        if tr.enabled:
            tr.count("messages", 1, rank=self.rank)
            tr.count("bytes_received", payload.nbytes, rank=self.rank)
        mx = get_metrics()
        if mx.enabled:
            mx.observe("comm.recv_call_seconds", seconds, rank=self.rank)
        return payload

    def irecv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> Request:
        """True non-blocking receive: ``test()`` probes the mailbox;
        ``timeout`` bounds ``wait()`` like :meth:`recv`'s."""
        comm = self
        mailbox = self.cluster.mailboxes[self.rank]

        class _ProbingRecv(Request):
            def __init__(self) -> None:
                self._value = None
                self._done = False

            def _account(self, payload, seconds: float = 0.0) -> None:
                comm.stats.record_recv(source, tag, payload.nbytes, seconds)
                self._value = payload
                self._done = True

            def test(self) -> bool:
                if self._done:
                    return True
                payload = mailbox.try_get(source, tag)
                if payload is not None:
                    self._account(payload)
                return self._done

            def wait(self):
                if not self._done:
                    tr = get_tracer()
                    with tr.span(
                        "comm.recv",
                        cat="comm",
                        rank=comm.rank,
                        peer=source,
                        tag=tag,
                    ):
                        t0 = _time.perf_counter()
                        payload = mailbox.get(source, tag, timeout=timeout)
                        self._account(payload, _time.perf_counter() - t0)
                return self._value

        return _ProbingRecv()


class VirtualCluster:
    """A fixed-size set of ranks with all-to-all mailbox connectivity."""

    def __init__(self, size: int, timeout: float = 120.0) -> None:
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        self.size = size
        self.mailboxes = [Mailbox(r, timeout=timeout) for r in range(size)]
        self.comms = [VirtualComm(self, r) for r in range(size)]

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        per_rank_args: Sequence[tuple] | None = None,
    ) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; returns per-rank results.

        ``per_rank_args`` optionally supplies a distinct argument tuple per
        rank (appended after the shared ``args``).  Any rank exception
        aborts every mailbox (so peers blocked on the dead rank fail fast
        instead of hanging) and is re-raised in the caller as a structured
        :class:`RankFailure` after all threads stop.
        """
        results: list[Any] = [None] * self.size
        errors: list[tuple[int, BaseException]] = []

        def worker(rank: int) -> None:
            extra = per_rank_args[rank] if per_rank_args is not None else ()
            # Default-rank binding: spans and metrics recorded below here
            # (solver stages, MacCormack phases) are attributed to this
            # rank's thread.
            get_tracer().bind_rank(rank)
            get_metrics().bind_rank(rank)
            try:
                results[rank] = fn(self.comms[rank], *args, *extra)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append((rank, exc))
                self.abort(f"rank {rank} died with {exc!r}")

        if self.size == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(r,), daemon=True)
                for r in range(self.size)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise self._failure(errors)
        return results

    def abort(self, reason: str) -> None:
        """Poison every mailbox: blocked receives raise ``ClusterAborted``."""
        for mb in self.mailboxes:
            mb.abort(reason)

    @staticmethod
    def _failure(errors: list[tuple[int, BaseException]]) -> RankFailure:
        """Build the structured failure: the primary casualty is the first
        rank that did not merely observe the abort of another rank."""
        primary = [e for e in errors if not isinstance(e[1], ClusterAborted)]
        rank, exc = (primary or errors)[0]
        failures = tuple(
            (r, getattr(e, "step", None), e) for r, e in errors
        )
        failure = RankFailure(
            rank, exc, step=getattr(exc, "step", None), failures=failures
        )
        failure.__cause__ = exc
        return failure

    def total_stats(self) -> CommStats:
        """Aggregate statistics over all ranks."""
        agg = CommStats()
        for c in self.comms:
            agg = agg.merged_with(c.stats)
        return agg
