#!/usr/bin/env python3
"""Profile the solver's hot path (the optimization workflow of the era).

The paper's Section 6 is a profiling-driven optimization story (stride-1
access, division removal); this script applies the same discipline to the
reproduction itself: cProfile over a short paper-resolution run, printed by
cumulative time.

Usage::

    python scripts/profile_solver.py [steps]
"""

import cProfile
import pstats
import sys


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    from repro import jet_scenario

    sc = jet_scenario(nx=250, nr=100, viscous=True)
    sc.solver.run(2)  # warm up allocations and the dt cache

    prof = cProfile.Profile()
    prof.enable()
    sc.solver.run(steps)
    prof.disable()

    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    print(f"=== top functions over {steps} steps at 250x100 ===")
    stats.print_stats(18)
    ms = 1e3 * sc.solver.wall_time / sc.solver.nstep
    print(f"mean wall time per step: {ms:.1f} ms "
          f"(full 5000-step run ~ {ms * 5:.0f} s)")


if __name__ == "__main__":
    main()
