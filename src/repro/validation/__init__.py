"""Verification references: exact solutions the solver is tested against."""

from .riemann import RiemannState, exact_riemann, sod_solution

__all__ = ["RiemannState", "exact_riemann", "sod_solution"]
