"""Boundary treatments: characteristic outflow, axis ghosts, sponge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.grid import Grid
from repro.numerics.boundary import (
    AXIS_FLUX_SIGNS,
    BoundaryConditions,
    Sponge,
    apply_axis_ghosts,
    characteristic_outflow_rates,
    conservative_rates,
    primitive_rates,
)
from repro.physics.jet import InflowExcitation, JetProfile
from repro.physics.state import FlowState

positive = st.floats(0.2, 10.0, allow_nan=False)
small = st.floats(-2.0, 2.0, allow_nan=False)


class TestRateConversions:
    @given(
        rho=positive, u=small, v=small, p=positive,
        rho_t=small, u_t=small, v_t=small, p_t=small,
    )
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, rho, u, v, p, rho_t, u_t, v_t, p_t):
        g = Grid(nx=5, nr=5)
        q = FlowState.from_primitive(g, rho, u, v, p).q[:, 0, :]
        q_t = conservative_rates(
            q,
            np.full(5, rho_t),
            np.full(5, u_t),
            np.full(5, v_t),
            np.full(5, p_t),
        )
        r2, u2, v2, p2 = primitive_rates(q, q_t)
        assert np.allclose(r2, rho_t, atol=1e-9)
        assert np.allclose(u2, u_t, atol=1e-9)
        assert np.allclose(v2, v_t, atol=1e-9)
        assert np.allclose(p2, p_t, atol=1e-9)


class TestCharacteristicOutflow:
    def _column(self, u):
        g = Grid(nx=5, nr=8)
        return FlowState.from_primitive(g, 1.0, u, 0.0, 1.0 / 1.4).q[:, -1, :]

    def test_supersonic_passes_through(self, rng):
        """u > c: all rates come from the interior scheme unchanged."""
        q = self._column(u=2.0)  # c = 1, supersonic
        q_t = rng.standard_normal(q.shape)
        out = characteristic_outflow_rates(q, q_t)
        assert np.allclose(out, q_t, atol=1e-12)

    def test_subsonic_zeroes_incoming_characteristic(self, rng):
        """u < c: the filtered rates satisfy p_t - rho c u_t = 0."""
        q = self._column(u=0.3)
        q_t = rng.standard_normal(q.shape)
        out = characteristic_outflow_rates(q, q_t)
        rho_t, u_t, v_t, p_t = primitive_rates(q, out)
        rho = q[0]
        c = np.sqrt(1.4 * (1.0 / 1.4))
        assert np.allclose(p_t - rho * c * u_t, 0.0, atol=1e-10)

    def test_subsonic_preserves_outgoing_invariants(self, rng):
        """R2, R3, R4 keep their interior values."""
        q = self._column(u=0.3)
        q_t = rng.standard_normal(q.shape)
        out = characteristic_outflow_rates(q, q_t)
        rho = q[0]
        c = np.sqrt(1.4 / 1.4 / rho) * np.sqrt(rho) * 0 + 1.0  # c = 1 here
        r_in = primitive_rates(q, q_t)
        r_out = primitive_rates(q, out)
        R2_in = r_in[3] + rho * c * r_in[1]
        R2_out = r_out[3] + rho * c * r_out[1]
        assert np.allclose(R2_in, R2_out, atol=1e-9)
        R3_in = r_in[3] - c * c * r_in[0]
        R3_out = r_out[3] - c * c * r_out[0]
        assert np.allclose(R3_in, R3_out, atol=1e-9)
        assert np.allclose(r_in[2], r_out[2], atol=1e-12)  # R4 = v_t

    def test_zero_interior_rates_stay_zero(self):
        q = self._column(u=0.5)
        out = characteristic_outflow_rates(q, np.zeros_like(q))
        assert np.allclose(out, 0.0, atol=1e-14)


class TestAxisGhosts:
    def test_signs(self):
        assert list(AXIS_FLUX_SIGNS) == [1.0, 1.0, -1.0, 1.0]

    def test_mirror_structure(self, rng):
        rG = rng.standard_normal((4, 6, 10))
        ghosts = apply_axis_ghosts(rG)
        assert ghosts.shape == (2, 4, 6)
        # Nearest ghost mirrors j=0, second mirrors j=1.
        assert np.array_equal(ghosts[0, 0], rG[0, :, 0])
        assert np.array_equal(ghosts[0, 2], -rG[2, :, 0])
        assert np.array_equal(ghosts[1, 1], rG[1, :, 1])
        assert np.array_equal(ghosts[1, 2], -rG[2, :, 1])


class TestSponge:
    def test_relaxes_outer_lines_toward_ambient(self):
        g = Grid(nx=8, nr=12)
        st_ = FlowState.from_primitive(g, 2.0, 1.0, 0.5, 1.0)
        ambient = FlowState.quiescent(g).q[:, 0, :]
        q = st_.q.copy()
        Sponge(width=4, strength=0.5).apply(q, ambient)
        # Outermost line moved toward ambient; inner lines untouched.
        assert np.all(np.abs(q[1, :, -1]) < np.abs(st_.q[1, :, -1]))
        assert np.array_equal(q[:, :, : 12 - 4], st_.q[:, :, : 12 - 4])

    def test_zero_width_is_noop(self):
        g = Grid(nx=6, nr=8)
        st_ = FlowState.quiescent(g)
        q = st_.q.copy()
        q0 = q.copy()
        Sponge(width=0).apply(q, q[:, 0, :])
        assert np.array_equal(q, q0)

    def test_fixed_point_is_ambient(self):
        g = Grid(nx=6, nr=8)
        st_ = FlowState.quiescent(g)
        q = st_.q.copy()
        Sponge(width=3, strength=0.9).apply(q, st_.q[:, 0, :].copy())
        assert np.allclose(q, st_.q)


class TestInflowColumn:
    def test_conservative_inflow_column(self):
        prof = JetProfile()
        bc = BoundaryConditions(inflow=InflowExcitation(prof, epsilon=0.0))
        r = np.linspace(0.05, 5.0, 40)
        col = bc.inflow_column(r, t=0.0, gamma=constants.GAMMA)
        assert col.shape == (4, 40)
        rho, u, _, p = prof.primitives(r)
        assert np.allclose(col[0], rho)
        assert np.allclose(col[1], rho * u)
        assert np.allclose(col[2], 0.0)
