"""Governing-equation substrate: gas model, flow state, fluxes, jet profile.

Nondimensionalization used throughout (see :mod:`repro.constants`):
lengths by the jet radius, velocity by the inflow centerline sound speed,
density by the centerline density, temperature by the centerline temperature,
pressure by ``rho_c * c_c**2``.  In these units the centerline state is
``rho = 1``, ``T = 1``, ``p = 1/gamma``, ``u = M_jet`` and the sound speed is
``c = sqrt(T)``.
"""

from .eos import (
    enthalpy,
    internal_energy,
    pressure,
    sound_speed,
    temperature,
    total_energy,
    viscosity,
)
from .state import FlowState
from .fluxes import inviscid_fluxes, axisymmetric_source
from .viscous import ViscousTerms, viscous_fluxes
from .jet import JetProfile, InflowExcitation
from .linearized import Eigenmode, GaussianEigenmode, solve_temporal_mode

__all__ = [
    "FlowState",
    "JetProfile",
    "InflowExcitation",
    "Eigenmode",
    "GaussianEigenmode",
    "ViscousTerms",
    "pressure",
    "temperature",
    "sound_speed",
    "total_energy",
    "internal_energy",
    "enthalpy",
    "viscosity",
    "inviscid_fluxes",
    "axisymmetric_source",
    "viscous_fluxes",
    "solve_temporal_mode",
]
