"""The unified run facade: one entry point for every execution substrate.

``run(scenario, ...)`` routes a :class:`~repro.scenarios.Scenario` (or a
registered scenario name) to

* the **serial solver** (``nprocs=1``, the default),
* the **distributed solver** over the in-process virtual cluster
  (``nprocs > 1`` — real SPMD execution, real message passing), or
* the **simulated platform** (``platform=...`` — the discrete-event model
  of one of the paper's 1995 machines),

and returns a single :class:`RunResult` shape for all three, optionally
carrying a full :class:`~repro.obs.Trace` of the run.

Examples
--------
Serial jet run (never mutates the input scenario)::

    from repro.api import run
    res = run("jet", steps=400, nx=96, nr=40)
    print(res.state.axial_momentum.max(), res.timings.ms_per_step)

Distributed, traced, exported for Perfetto::

    res = run("jet", steps=50, nprocs=4, trace="jet.trace.json")
    print(res.interior_rank_stats.sends, len(res.trace.spans))

Simulated 1995 platform::

    res = run("jet", platform="Cray T3D", nprocs=16)
    print(res.sim.execution_time, res.sim.comm_time)
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass, replace as _dc_replace

from .config import default_ledger_path
from .msglib.api import CommStats
from .obs import (
    BufferStepStream,
    FlightRecorder,
    MetricsRegistry,
    PerfReport,
    Trace,
    TraceContext,
    Tracer,
    append_ledger,
    build_perf_report,
    use_flight,
    use_metrics,
    use_stream,
    use_tracer,
    write_chrome_trace,
    write_flight_jsonl,
)
from .physics.state import FlowState
from .request import (
    ExecutionConfig,
    ObservabilityConfig,
    ResilienceConfig,
    RunRequest,
)
from .scenarios import Scenario, scenario_by_name

__all__ = [
    "run",
    "run_request",
    "RunRequest",
    "ExecutionConfig",
    "ResilienceConfig",
    "ObservabilityConfig",
    "RunResult",
    "RunTimings",
    "DEFAULT_LEDGER",
]


def __getattr__(name: str):
    # DEFAULT_LEDGER is resolved at access time against the anchored data
    # directory (env REPRO_DATA_DIR, else the repo checkout) so service
    # workers and CLI runs from any cwd append to the same ledger.
    if name == "DEFAULT_LEDGER":
        return str(default_ledger_path())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class RunTimings:
    """Wall-clock accounting of one run (this package's own clock, not the
    simulated platform's — see ``RunResult.sim`` for the latter)."""

    wall_seconds: float
    steps: int
    per_rank_wall: tuple[float, ...] | None = None
    """Per-rank seconds inside ``solver.step`` (distributed runs only)."""

    @property
    def ms_per_step(self) -> float:
        return 1e3 * self.wall_seconds / max(self.steps, 1)


@dataclass
class RunResult:
    """Uniform outcome of :func:`run` across all three substrates.

    Fields that do not apply to a route are ``None`` (e.g. ``state`` for a
    simulated platform run, ``sim`` for a real solver run).
    """

    scenario: str
    mode: str
    """``"serial"``, ``"parallel"`` or ``"simulated"``."""
    nprocs: int
    version: int | None
    steps: int
    t: float | None
    """Final simulation time (``None`` for simulated platform runs)."""
    state: FlowState | None
    per_rank_stats: list[CommStats] | None
    timings: RunTimings
    trace: Trace | None = None
    trace_path: str | None = None
    """Where the Chrome-trace JSON was written (when requested)."""
    sim: object | None = None
    """The :class:`repro.simulate.machine.RunResult` for platform runs."""
    restarts: int = 0
    """Checkpoint restarts a faulted distributed run needed (0 = clean)."""
    fault_stats: list | None = None
    """Per-rank :class:`~repro.faults.FaultStats` when faults were active
    on the distributed route, else ``None``."""
    perf: PerfReport | None = None
    """Performance report (``run(..., metrics=True)``), else ``None``."""
    metrics: MetricsRegistry | None = None
    """The populated registry behind ``perf`` for programmatic access."""
    substrate: str | None = None
    """Parallel-route execution substrate (``"virtual"`` — one thread per
    rank — or ``"process"`` — one OS process per rank over shared
    memory); ``None`` for serial and simulated runs."""
    request: RunRequest | None = None
    """The typed request this result answered (``run_request`` sets it;
    its :meth:`~repro.request.RunRequest.fingerprint` is the cache key)."""
    flight: dict | None = None
    """``rank -> last flight-recorder events`` when ``flight=`` was on."""

    @property
    def interior_rank_stats(self) -> CommStats:
        """Middle-rank communication stats (paper's per-processor numbers).

        Raises ``ValueError`` when no interior rank exists (``nprocs < 3``)
        or the run produced no per-rank statistics (serial / simulated)."""
        from .parallel.runner import interior_stats

        if self.per_rank_stats is None:
            raise ValueError(
                f"no per-rank statistics for a {self.mode} run; "
                "communication stats exist only for nprocs > 1 real runs"
            )
        return interior_stats(self.per_rank_stats)

    @property
    def total_stats(self) -> CommStats:
        """All-rank aggregate communication statistics."""
        agg = CommStats()
        for st in self.per_rank_stats or []:
            agg = agg.merged_with(st)
        return agg

    def summary(self) -> str:
        if self.mode == "simulated":
            return self.sim.summary()
        head = (
            f"{self.scenario:12s} {self.mode:8s} p={self.nprocs:2d} "
            f"steps={self.steps:5d} t={self.t:.3f} "
            f"{self.timings.ms_per_step:6.1f} ms/step"
        )
        if self.per_rank_stats:
            agg = self.total_stats
            head += f"  msgs={agg.sends} vol={agg.bytes_sent / 1e6:.2f}MB"
        return head


def _coerce_tracer(trace) -> tuple[Tracer | None, str | None]:
    """``trace`` may be falsy, True, a Tracer, or an export path."""
    if trace is None or trace is False:
        return None, None
    if isinstance(trace, Tracer):
        return trace, None
    if trace is True:
        return Tracer(), None
    return Tracer(), os.fspath(trace)


def _coerce_metrics(metrics, profile) -> MetricsRegistry | None:
    """``metrics`` may be falsy, True, or a registry; profiling and the
    ledger imply metrics (the report needs the registry to exist)."""
    if isinstance(metrics, MetricsRegistry):
        return metrics
    if metrics or profile:
        return MetricsRegistry()
    return None


def _coerce_stream(stream):
    """``stream`` may be falsy, True (buffered), or a live publisher."""
    if not stream:
        return None
    if stream is True:
        return BufferStepStream()
    return stream


def _coerce_flight(flight):
    """``flight`` may be falsy, True, a capacity, a recorder, or a path
    to flush the post-mortem JSON lines to."""
    if not flight:
        return None, None
    if flight is True:
        return FlightRecorder(), None
    if isinstance(flight, int):
        return FlightRecorder(capacity=flight), None
    if hasattr(flight, "record"):
        return flight, None
    return FlightRecorder(), os.fspath(flight)


def _profile_top(stats: dict, n: int) -> list[dict]:
    """Top-``n`` functions by cumulative time from ``cProfile`` raw stats."""
    rows = []
    ranked = sorted(stats.items(), key=lambda kv: kv[1][3], reverse=True)
    for func, (cc, nc, tt, ct, _callers) in ranked[:n]:
        filename, lineno, name = func
        rows.append(
            {
                "func": f"{os.path.basename(filename)}:{lineno}({name})",
                "ncalls": nc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    return rows


def _resolve(scenario, **scenario_kw) -> Scenario:
    if isinstance(scenario, Scenario):
        if scenario_kw:
            raise TypeError(
                "scenario keyword arguments "
                f"{sorted(scenario_kw)} are only valid when the scenario is "
                "given by name; pass them to the scenario constructor instead"
            )
        return scenario
    return scenario_by_name(scenario, **scenario_kw)


def run(
    scenario,
    *,
    steps: int | None = None,
    nprocs: int = 1,
    platform=None,
    version: int = 7,
    trace=None,
    backend: str | None = None,
    decomposition: str = "axial",
    px: int | None = None,
    pr: int | None = None,
    timeout: float = 120.0,
    substrate: str = "virtual",
    steps_window: int = 30,
    overlap: bool = False,
    faults=None,
    fault_seed: int | None = None,
    checkpoint_every: int = 0,
    max_restarts: int = 2,
    metrics=None,
    profile: bool | int = False,
    ledger=None,
    stream=None,
    flight=None,
    **scenario_kw,
) -> RunResult:
    """Run ``scenario`` on the selected substrate and return a
    :class:`RunResult`.

    Parameters
    ----------
    scenario:
        A :class:`~repro.scenarios.Scenario` or a registered name
        (``"jet"``, ``"jet-euler"``, ``"advection"``, ``"acoustic"``,
        ``"sod"``).  Extra keyword arguments are forwarded to the named
        scenario's constructor (``nx=...``, ``viscous=...``, ...).
        The input scenario is never mutated; the evolved state comes back
        in ``RunResult.state``.
    steps:
        Time steps to advance.  Required for real runs; for simulated
        platform runs it sets the *total* (scaled) step count and defaults
        to the paper's 5000.
    nprocs:
        1 = serial solver; >1 = distributed solver over the virtual
        cluster (``platform=None``), or the simulated processor count.
    platform:
        A :class:`~repro.machines.platforms.Platform` or platform name
        (``"Cray T3D"``, ``"LACE/560+ALLNODE-S"``, ...) — selects the
        discrete-event simulation route.
    version:
        Paper code version (5 grouped / 6 overlapped / 7 de-burstified).
        Real distributed results are bitwise independent of it; it shapes
        message traffic and simulated cost.
    trace:
        ``True`` to record a :class:`~repro.obs.Trace`, a
        :class:`~repro.obs.Tracer` to record into, or a path to also
        export Chrome-trace JSON (openable in Perfetto).
    backend:
        Kernel backend name (``"baseline"`` or ``"fused"``; see
        :mod:`repro.numerics.kernels`).  ``None`` keeps the scenario's
        configured backend, which itself defaults to the ``REPRO_BACKEND``
        environment variable.  Backends are bitwise-identical — this only
        selects how the hot-path kernels are evaluated.
    decomposition, px, pr, timeout:
        Forwarded to the distributed solver (``nprocs > 1`` route).
    substrate:
        How distributed ranks execute (``nprocs > 1``, ``platform=None``):
        ``"virtual"`` (default) runs one thread per rank — real message
        passing, GIL-serialized, the correctness substrate; ``"process"``
        runs one OS process per rank over POSIX shared memory — true
        multi-core execution with measured wall-clock speedup (see
        :mod:`repro.msglib.process`).  Both produce bitwise-identical
        final states.
    steps_window:
        Simulated steps actually executed by the DES before scaling
        (simulated route only).
    overlap:
        ``True`` forces the overlapped (split-phase) halo exchange on the
        distributed route regardless of ``version``; the default
        ``False`` keeps the version's behaviour (V6+ overlaps, V5
        blocks).  Overlapped runs are bitwise-identical to blocking ones
        and share their cache fingerprint — this switch only changes
        *when* the per-step flux halos travel, not the numbers.
    faults:
        ``None`` (default), a preset name (``"lossy-ethernet"``,
        ``"jittery-now"``, ``"drop-storm"``, ``"crash-rank1"``,
        ``"lossy-crash"``) or a :class:`~repro.faults.FaultPlan`.  On the
        distributed route this wraps every rank's communicator in a
        fault-injecting :class:`~repro.faults.FaultyComm`; on the simulated
        route it degrades the DES network deterministically.  Not valid for
        serial runs (there is no network to break).
    fault_seed:
        Re-seeds the plan (``plan.with_seed``); every injection decision is
        a pure function of the seed, so a printed seed reproduces a run.
    checkpoint_every:
        Distributed route: gather a restart snapshot every N steps so an
        injected crash resumes instead of failing (0 = off).
    max_restarts:
        Distributed route: checkpoint restarts allowed before the
        structured :class:`~repro.msglib.RankFailure` propagates.
    metrics:
        ``True`` (or a :class:`~repro.obs.MetricsRegistry` to record into)
        enables continuous measurement: stage timings, communication and
        fault counters, and a derived :class:`~repro.obs.PerfReport` in
        ``RunResult.perf`` (per-stage MFLOPS, comp:comm ratio, per-rank
        split).  Works on all three substrates.
    profile:
        ``True`` additionally runs the calling thread under ``cProfile``
        and exposes the top functions by cumulative time in
        ``perf.profile_top`` (an integer selects how many; default 15).
        Implies ``metrics``.  Note cProfile observes only the calling
        thread — full coverage on the serial route; rank threads of the
        virtual cluster are outside it.
    ledger:
        A path (or ``True`` for the anchored default ledger — see
        :func:`repro.config.default_ledger_path`) to append the
        :class:`~repro.obs.PerfReport` to as one JSON line.  Implies
        ``metrics``.
    stream:
        ``True`` (buffered) or a live publisher to stream one compact
        ``repro.stream/1`` progress record per solver step per rank
        (step, t, dt, ms, comm split) — see :mod:`repro.obs.stream`.
    flight:
        ``True`` (or a capacity / recorder / flush path) keeps a bounded
        flight-recorder ring of each rank's last events (sends, recvs,
        collectives, checkpoint marks) in ``RunResult.flight`` — see
        :mod:`repro.obs.flight`.

    Notes
    -----
    This is a thin shim: it packs its keyword surface into a typed
    :class:`~repro.request.RunRequest` and calls :func:`run_request`.
    New code (and anything that serializes, caches, or ships runs — see
    :mod:`repro.service`) should build ``RunRequest`` objects directly.
    """
    req = RunRequest.from_run_args(
        scenario,
        steps=steps,
        nprocs=nprocs,
        platform=platform,
        version=version,
        trace=trace,
        backend=backend,
        decomposition=decomposition,
        px=px,
        pr=pr,
        timeout=timeout,
        substrate=substrate,
        steps_window=steps_window,
        overlap=overlap,
        faults=faults,
        fault_seed=fault_seed,
        checkpoint_every=checkpoint_every,
        max_restarts=max_restarts,
        metrics=metrics,
        profile=profile,
        ledger=ledger,
        stream=stream,
        flight=flight,
        **scenario_kw,
    )
    return run_request(req)


def run_request(
    req: RunRequest, *, context: TraceContext | None = None
) -> RunResult:
    """Execute a typed :class:`~repro.request.RunRequest` — the canonical
    entry point behind :func:`run` and the unit of work the run service
    (:mod:`repro.service`) ships to its worker processes.

    The resulting :class:`RunResult` carries the request back
    (``result.request``), and any :class:`~repro.obs.PerfReport` built for
    it is stamped with ``req.fingerprint()`` — the request-derived cache
    key, not a post-hoc hash of run outputs.

    ``context`` joins this run to a distributed trace: the trace id is
    stamped into the tracer (and inherited by forked rank processes), so
    a service-executed run's spans line up under the submitting client's.
    """
    from contextlib import ExitStack

    ex, rz, ob = req.execution, req.resilience, req.observability
    if ex.substrate not in ("virtual", "process"):
        raise ValueError(
            f"substrate must be 'virtual' or 'process', got {ex.substrate!r}"
        )
    if ex.substrate == "process" and ex.platform is not None:
        raise ValueError(
            "substrate='process' applies to real distributed runs; "
            "platform= selects the simulated route (drop one of the two)"
        )
    sc = req.resolve_scenario()
    tracer, trace_path = _coerce_tracer(ob.trace)
    if context is not None and tracer is not None:
        tracer.adopt_context(context)
    reg = _coerce_metrics(ob.metrics, ob.profile or ob.ledger)
    publisher = _coerce_stream(ob.stream)
    flight, flight_path = _coerce_flight(ob.flight)
    from .faults import resolve_fault_plan

    plan = resolve_fault_plan(rz.faults, seed=rz.fault_seed)
    profiler = None
    if ob.profile:
        import cProfile

        profiler = cProfile.Profile()
    with ExitStack() as stack:
        if reg is not None:
            stack.enter_context(use_metrics(reg))
        if publisher is not None:
            stack.enter_context(use_stream(publisher))
        if flight is not None:
            stack.enter_context(use_flight(flight))
        if profiler is not None:
            profiler.enable()
        try:
            if ex.platform is not None:
                result = _run_simulated(
                    sc, req.resolve_platform(), ex.nprocs, ex.version,
                    req.steps, ex.steps_window, tracer, faults=plan,
                )
            elif ex.nprocs == 1:
                if plan is not None:
                    raise ValueError(
                        "faults= requires a network to break: use nprocs > 1 "
                        "(virtual cluster) or platform=... (simulated machine)"
                    )
                result = _run_serial(sc, req.steps, tracer, ex.backend)
            else:
                result = _run_parallel(
                    sc, req.steps, ex.nprocs, ex.version, ex.decomposition,
                    ex.px, ex.pr, ex.timeout, tracer, ex.backend,
                    faults=plan,
                    checkpoint_every=rz.checkpoint_every,
                    max_restarts=rz.max_restarts,
                    substrate=ex.substrate,
                    overlap=ex.overlap,
                )
        finally:
            if profiler is not None:
                profiler.disable()
    result.request = req
    if flight is not None and hasattr(flight, "events_by_rank"):
        result.flight = flight.events_by_rank()
        if flight_path is not None:
            write_flight_jsonl(result.flight, flight_path)
    if tracer is not None and trace_path is not None:
        write_chrome_trace(tracer.trace, trace_path)
        result.trace_path = trace_path
    if reg is not None:
        # Exact post-run totals from the communicators' own accounting
        # (live metrics only sample per-call distributions; see
        # CommStats.ingest_into).
        for r, st in enumerate(result.per_rank_stats or []):
            st.ingest_into(reg, r)
        top = None
        if profiler is not None:
            profiler.create_stats()
            n = ob.profile if ob.profile is not True else 15
            top = _profile_top(profiler.stats, int(n))
        backend_name = None
        if result.mode != "simulated":
            from .numerics.kernels import resolve_backend

            backend_name = resolve_backend(
                ex.backend or sc.solver.config.backend
            ).name
        result.metrics = reg
        result.perf = build_perf_report(
            result,
            reg,
            backend=backend_name,
            grid=(sc.grid.nx, sc.grid.nr),
            viscous=sc.solver.config.viscous,
            profile_top=top,
            fingerprint=req.fingerprint(),
        )
        if ob.ledger:
            path = (
                str(default_ledger_path())
                if ob.ledger is True
                else os.fspath(ob.ledger)
            )
            append_ledger(result.perf, path)
    return result


def _require_steps(steps: int | None) -> int:
    if steps is None:
        raise TypeError("steps is required for real solver runs: run(..., steps=N)")
    return steps


def _backend_config(config, backend: str | None):
    """The scenario's solver config, with the backend overridden if asked.

    ``replace`` keeps the input scenario immutable (the facade's contract).
    """
    if backend is None:
        return config
    return _dc_replace(config, backend=backend)


def _run_serial(
    sc: Scenario,
    steps: int | None,
    tracer: Tracer | None,
    backend: str | None = None,
) -> RunResult:
    steps = _require_steps(steps)
    config = _backend_config(sc.solver.config, backend)
    solver = type(sc.solver)(
        FlowState(sc.grid, sc.state.q.copy(), config.gamma),
        config,
    )
    t0 = _time.perf_counter()
    with use_tracer(tracer):
        for _ in range(steps):
            solver.step()
    wall = _time.perf_counter() - t0
    return RunResult(
        scenario=sc.name or "scenario",
        mode="serial",
        nprocs=1,
        version=None,
        steps=solver.nstep,
        t=solver.t,
        state=solver.state,
        per_rank_stats=None,
        timings=RunTimings(wall_seconds=wall, steps=solver.nstep),
        trace=tracer.trace if tracer is not None else None,
    )


def _run_parallel(
    sc: Scenario,
    steps: int | None,
    nprocs: int,
    version: int,
    decomposition: str,
    px: int | None,
    pr: int | None,
    timeout: float,
    tracer: Tracer | None,
    backend: str | None = None,
    faults=None,
    checkpoint_every: int = 0,
    max_restarts: int = 2,
    substrate: str = "virtual",
    overlap: bool = False,
) -> RunResult:
    from .parallel.runner import ParallelJetSolver

    steps = _require_steps(steps)
    solver = ParallelJetSolver(
        sc.state,
        _backend_config(sc.solver.config, backend),
        nranks=nprocs,
        version=version,
        decomposition=decomposition,
        px=px,
        pr=pr,
        timeout=timeout,
        substrate=substrate,
        faults=faults,
        checkpoint_every=checkpoint_every,
        max_restarts=max_restarts,
        # False means "the version's default", not "force blocking":
        # request-level overlap is an opt-in override on top of the
        # version policy (V6+ already overlaps).
        overlap=True if overlap else None,
    )
    t0 = _time.perf_counter()
    res = solver.run(steps, tracer=tracer)
    wall = _time.perf_counter() - t0
    return RunResult(
        scenario=sc.name or "scenario",
        mode="parallel",
        nprocs=nprocs,
        version=version,
        steps=res.nsteps,
        t=res.t,
        state=res.state,
        per_rank_stats=res.per_rank_stats,
        timings=RunTimings(
            wall_seconds=wall,
            steps=res.nsteps,
            per_rank_wall=tuple(res.per_rank_wall),
        ),
        trace=res.trace,
        restarts=res.restarts,
        fault_stats=res.fault_stats,
        substrate=substrate,
    )


def _run_simulated(
    sc: Scenario,
    platform,
    nprocs: int,
    version: int,
    steps: int | None,
    steps_window: int,
    tracer: Tracer | None,
    faults=None,
) -> RunResult:
    from .machines.platforms import platform_by_name
    from .simulate.machine import SimulatedMachine
    from .simulate.sharedmem import SharedMemoryMachine
    from .simulate.workload import EULER, NAVIER_STOKES

    if isinstance(platform, str):
        platform = platform_by_name(platform)
    app = NAVIER_STOKES if sc.solver.config.viscous else EULER
    t0 = _time.perf_counter()
    if platform.cpu is None:
        # Shared-memory vector machine (the Y-MP): analytic, no DES trace.
        if faults is not None:
            raise ValueError(
                f"faults= is not supported on {platform.name}: the "
                "shared-memory model has no network to degrade"
            )
        sim = SharedMemoryMachine(platform, nprocs).run(
            app, version=version, total_steps=steps
        )
        if tracer is not None:
            from .obs import trace_from_timelines

            trace_from_timelines(
                sim.timelines,
                tracer=tracer,
                meta={"platform": platform.name, "app": app.name, "nprocs": nprocs},
            )
    else:
        sim = SimulatedMachine(
            platform, nprocs, version=version, faults=faults
        ).run(
            app,
            steps_window=steps_window,
            total_steps=steps,
            tracer=tracer,
        )
    wall = _time.perf_counter() - t0
    return RunResult(
        scenario=sc.name or "scenario",
        mode="simulated",
        nprocs=nprocs,
        version=version,
        steps=sim.total_steps,
        t=None,
        state=None,
        per_rank_stats=None,
        timings=RunTimings(wall_seconds=wall, steps=sim.total_steps),
        trace=tracer.trace if tracer is not None else None,
        sim=sim,
    )
