"""Interconnect models for the paper's platforms.

Each network is a *description*: it names the contention resources a
message must hold (``link_ids``), their capacities, and the occupancy time
of a transfer.  The discrete-event machine
(:mod:`repro.simulate.machine`) materializes the resources and runs the
traffic, so saturation and queueing *emerge* from the description rather
than being curve-fit.
"""

from .base import Network
from .ethernet import EthernetNetwork
from .fddi import FddiNetwork
from .atm import AtmNetwork
from .allnode import AllnodeNetwork
from .spswitch import SPSwitchNetwork
from .torus3d import Torus3DNetwork
from .crossbar import CrossbarNetwork

__all__ = [
    "Network",
    "EthernetNetwork",
    "FddiNetwork",
    "AtmNetwork",
    "AllnodeNetwork",
    "SPSwitchNetwork",
    "Torus3DNetwork",
    "CrossbarNetwork",
]
