"""Kernel operation counts (the measured Table-1 FP column)."""

import pytest

from repro import constants
from repro.numerics.opcount import euler_ops, navier_stokes_ops


class TestOpCounts:
    def test_ns_heavier_than_euler(self):
        assert navier_stokes_ops().per_cell_step > 1.5 * euler_ops().per_cell_step

    def test_total_scales_with_grid_and_steps(self):
        ops = navier_stokes_ops()
        base = ops.total(nx=100, nr=100, steps=1000)
        assert ops.total(nx=200, nr=100, steps=1000) == pytest.approx(2 * base)
        assert ops.total(nx=100, nr=100, steps=2000) == pytest.approx(2 * base)

    def test_paper_configuration_magnitude(self):
        """Same order as the paper's 145/77 GFLOP (our kernels are leaner;
        the ratio is recorded in EXPERIMENTS.md)."""
        ns = navier_stokes_ops().total()
        eu = euler_ops().total()
        assert 0.2 * constants.PAPER_TOTAL_FLOPS_NS < ns < constants.PAPER_TOTAL_FLOPS_NS
        assert 0.2 * constants.PAPER_TOTAL_FLOPS_EULER < eu < constants.PAPER_TOTAL_FLOPS_EULER

    def test_sweeps_dominate(self):
        ops = navier_stokes_ops()
        assert ops.x_sweep + ops.r_sweep > 0.7 * ops.per_cell_step
