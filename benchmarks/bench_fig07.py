"""Reproduction benchmark: Figure 7: Communication optimization V5/V6/V7 (Navier-Stokes; LACE)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig07(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig07"),
        "Figure 7: Communication optimization V5/V6/V7 (Navier-Stokes; LACE)",
    )
