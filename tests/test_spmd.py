"""The distributed solver: bitwise serial equivalence and instrumentation.

This is the package's central parallel-correctness property (mirroring the
paper's: parallelization changes performance, never results).
"""

import numpy as np
import pytest

from repro import jet_scenario
from repro.parallel.runner import ParallelJetSolver, serial_reference


@pytest.fixture(scope="module")
def ns_case():
    sc = jet_scenario(nx=60, nr=20, viscous=True)
    ref = serial_reference(sc.state, sc.solver.config, steps=12)
    return sc, ref


@pytest.fixture(scope="module")
def euler_case():
    sc = jet_scenario(nx=60, nr=20, viscous=False)
    ref = serial_reference(sc.state, sc.solver.config, steps=12)
    return sc, ref


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 5])
    def test_navier_stokes_any_proc_count(self, ns_case, nranks):
        sc, ref = ns_case
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=nranks, timeout=60
        ).run(12)
        assert np.array_equal(res.state.q, ref.q)

    @pytest.mark.parametrize("version", [5, 6, 7])
    def test_all_versions_identical(self, ns_case, version):
        """V6/V7 change message grouping only — never the arithmetic."""
        sc, ref = ns_case
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=3, version=version, timeout=60
        ).run(12)
        assert np.array_equal(res.state.q, ref.q)

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_euler(self, euler_case, nranks):
        sc, ref = euler_case
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=nranks, timeout=60
        ).run(12)
        assert np.array_equal(res.state.q, ref.q)

    def test_time_matches_serial(self, ns_case):
        sc, ref = ns_case
        res = ParallelJetSolver(sc.state, sc.solver.config, nranks=4, timeout=60).run(12)
        assert res.nsteps == 12
        assert res.t > 0

    @pytest.mark.parametrize("viscous", [True, False], ids=["ns", "euler"])
    def test_fused_backend_matches_serial_baseline(
        self, ns_case, euler_case, viscous
    ):
        """Kernel backend and rank count are both bitwise-invisible."""
        import dataclasses

        sc, ref = ns_case if viscous else euler_case
        config = dataclasses.replace(sc.solver.config, backend="fused")
        res = ParallelJetSolver(sc.state, config, nranks=4, timeout=60).run(12)
        assert np.array_equal(res.state.q, ref.q)


class TestCommunicationStructure:
    def test_interior_rank_counts(self, ns_case):
        """NS interior rank, Version 5: 6 sends in the x/r sweeps (uvT x4,
        flux x2) plus 2 filter state sends plus 4 more uvT for the radial
        sweep = 12 sends/step, plus the periodic dt allreduce."""
        sc, _ = ns_case
        res = ParallelJetSolver(sc.state, sc.solver.config, nranks=4, timeout=60).run(10)
        st = res.interior_rank_stats
        sends_per_step = st.sends / 10
        assert 12 <= sends_per_step <= 13  # 12 + dt-reduction amortized

    def test_euler_communicates_less(self, ns_case, euler_case):
        sc_ns, _ = ns_case
        sc_eu, _ = euler_case
        r_ns = ParallelJetSolver(sc_ns.state, sc_ns.solver.config, nranks=4, timeout=60).run(8)
        r_eu = ParallelJetSolver(sc_eu.state, sc_eu.solver.config, nranks=4, timeout=60).run(8)
        assert (
            r_eu.interior_rank_stats.bytes_sent
            < 0.7 * r_ns.interior_rank_stats.bytes_sent
        )
        assert r_eu.interior_rank_stats.sends < r_ns.interior_rank_stats.sends

    def test_v7_more_startups_same_volume(self, ns_case):
        sc, _ = ns_case
        r5 = ParallelJetSolver(sc.state, sc.solver.config, nranks=4, version=5, timeout=60).run(8)
        r7 = ParallelJetSolver(sc.state, sc.solver.config, nranks=4, version=7, timeout=60).run(8)
        s5, s7 = r5.interior_rank_stats, r7.interior_rank_stats
        assert s7.sends > s5.sends
        assert s7.bytes_sent == s5.bytes_sent

    def test_edge_ranks_communicate_less(self, ns_case):
        sc, _ = ns_case
        res = ParallelJetSolver(sc.state, sc.solver.config, nranks=4, timeout=60).run(8)
        sends = [s.sends for s in res.per_rank_stats]
        assert sends[0] < sends[1]
        assert sends[-1] < sends[-2]

    def test_volume_scales_with_radial_resolution(self):
        """Messages are radial columns: volume/step ~ nr."""
        vols = []
        for nr in (20, 40):
            sc = jet_scenario(nx=60, nr=nr, viscous=True)
            res = ParallelJetSolver(sc.state, sc.solver.config, nranks=3, timeout=60).run(6)
            vols.append(res.interior_rank_stats.bytes_sent)
        assert vols[1] / vols[0] == pytest.approx(2.0, rel=0.1)


class TestGather:
    def test_gathered_shape_and_grid(self, ns_case):
        sc, _ = ns_case
        res = ParallelJetSolver(sc.state, sc.solver.config, nranks=3, timeout=60).run(4)
        assert res.state.q.shape == (4, 60, 20)
        assert res.state.grid.nx == 60
