"""The split Gottlieb-Turkel operators on model problems."""

import numpy as np
import pytest

from repro.numerics.maccormack import (
    CORRECTOR,
    PREDICTOR,
    SplitOperator,
    SweepWorkspace,
)


def _advection_workspace(a: float, periodic_n: int) -> SweepWorkspace:
    """Linear advection q_t + a q_x = 0 on a periodic domain."""

    def flux(q, phase):
        return a * q, None

    def wrap_low(f, phase):
        return np.stack([f[:, -1], f[:, -2]])

    def wrap_high(f, phase):
        return np.stack([f[:, 0], f[:, 1]])

    return SweepWorkspace(flux=flux, low_ghosts=wrap_low, high_ghosts=wrap_high)


def _advect(q0, a, h, dt, steps):
    """Alternate L1 and L2 exactly as the solver does."""
    ws = _advection_workspace(a, q0.shape[1])
    L1 = SplitOperator(axis=1, h=h, variant=1, workspace=ws)
    L2 = SplitOperator(axis=1, h=h, variant=2, workspace=ws)
    q = q0
    for k in range(steps):
        q = (L1 if k % 2 == 0 else L2).apply(q, dt)
    return q


class TestValidation:
    def test_bad_variant(self):
        ws = _advection_workspace(1.0, 8)
        with pytest.raises(ValueError, match="variant"):
            SplitOperator(axis=1, h=0.1, variant=3, workspace=ws)


class TestLinearAdvection:
    def _wave(self, n):
        x = np.arange(n) / n
        return np.sin(2 * np.pi * x)[None, :, None] * np.ones((1, 1, 2)), x

    def test_advects_at_correct_speed(self):
        n, a = 64, 1.0
        q0, x = self._wave(n)
        h = 1.0 / n
        dt = 0.4 * h / a
        steps = 100
        q = _advect(q0.copy(), a, h, dt, steps)
        exact = np.sin(2 * np.pi * (x - a * dt * steps))
        assert np.abs(q[0, :, 0] - exact).max() < 2e-3

    def test_conservation_on_periodic_domain(self):
        n = 32
        q0, _ = self._wave(n)
        q0 += 2.0
        q = _advect(q0.copy(), 1.0, 1.0 / n, 0.01, 51)
        assert q[0, :, 0].sum() == pytest.approx(q0[0, :, 0].sum(), abs=1e-11)

    def test_spatial_order_of_accuracy(self):
        """Alternated L1/L2 at fixed (small) dt: error ~ h^4."""
        a = 1.0
        errs = []
        for n in (32, 64):
            q0, x = self._wave(n)
            h = 1.0 / n
            dt = 1e-4  # time error negligible
            steps = 200
            q = _advect(q0.copy(), a, h, dt, steps)
            exact = np.sin(2 * np.pi * (x - a * dt * steps))
            errs.append(np.abs(q[0, :, 0] - exact).max())
        order = np.log2(errs[0] / errs[1])
        assert order > 3.5, f"measured spatial order {order:.2f}"

    def test_l1_l2_symmetry(self):
        """L2 on the mirrored field equals the mirror of L1."""
        n, a, h, dt = 32, 1.0, 1.0 / 32, 0.005
        rng = np.random.default_rng(3)
        smooth = np.cumsum(rng.standard_normal(n))
        smooth = np.convolve(smooth, np.ones(5) / 5, mode="same")
        q0 = smooth[None, :, None] * np.ones((1, 1, 2))

        ws = _advection_workspace(a, n)
        L1 = SplitOperator(axis=1, h=h, variant=1, workspace=ws)
        q1 = L1.apply(q0.copy(), dt)

        # Mirror: x -> -x flips the sign of the advection speed.
        q0m = q0[:, ::-1, :].copy()
        wsm = _advection_workspace(-a, n)
        L2 = SplitOperator(axis=1, h=h, variant=2, workspace=wsm)
        q2 = L2.apply(q0m, dt)
        assert np.allclose(q2[:, ::-1, :], q1, atol=1e-12)


class TestSourceTerm:
    def test_pure_source_integration(self):
        """q_t = S with zero flux: predictor-corrector gives exact linear
        growth for constant S."""

        def flux(q, phase):
            return np.zeros_like(q), np.ones_like(q)

        ws = SweepWorkspace(flux=flux)
        L = SplitOperator(axis=1, h=1.0, variant=1, workspace=ws)
        q0 = np.zeros((1, 8, 2))
        q1 = L.apply(q0, dt=0.25)
        assert np.allclose(q1, 0.25)

    def test_inv_weight_scales_rate(self):
        def flux(q, phase):
            return np.zeros_like(q), np.ones_like(q)

        ws = SweepWorkspace(flux=flux, inv_weight=0.5)
        L = SplitOperator(axis=1, h=1.0, variant=1, workspace=ws)
        q1 = L.apply(np.zeros((1, 8, 2)), dt=1.0)
        assert np.allclose(q1, 0.5)


class TestFixStateHook:
    def test_hook_called_both_phases(self):
        calls = []

        def fix(q, phase):
            calls.append(phase)
            return q

        def flux(q, phase):
            return np.zeros_like(q), None

        ws = SweepWorkspace(flux=flux, fix_state=fix)
        L = SplitOperator(axis=1, h=1.0, variant=1, workspace=ws)
        L.apply(np.zeros((1, 8, 2)), dt=0.1)
        assert calls == [PREDICTOR, CORRECTOR]
