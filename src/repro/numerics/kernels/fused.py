"""The fused, zero-allocation kernel backend.

Re-runs the paper's single-processor optimisation ladder (Versions 2-4:
eliminate redundant computation, fuse loops, keep everything in registers —
here: in preallocated buffers) on the Python/numpy hot path:

* primitives (``1/rho``, ``u``, ``v``, ``p``, ``T``) are evaluated **once**
  per flux call and shared between the inviscid assembly and the viscous
  stress gradients — the baseline path evaluates the identical expressions
  twice;
* only the flux vector the current split sweep consumes is assembled
  (baseline ``inviscid_fluxes`` always builds both ``F`` and ``G``);
* only the stress components and gradients the current direction needs are
  computed (the axial flux never reads ``dT/dr`` or ``tau_rr``);
* every ufunc writes into a persistent :class:`~.base.StepWorkspace` buffer
  via ``out=``, so a steady-state step performs no large allocations.

Every transformation is bitwise-neutral: only commutations of float
multiplies, skipped ``+ 0.0`` / ``* 1.0`` identities, and sign propagation
through exact negation are used — divisions stay divisions.  The test suite
asserts bitwise identity of the evolved state against the baseline backend.
"""

from __future__ import annotations

import numpy as np

from ... import constants
from ...physics import eos
from ...physics.fluxes import (
    axial_inviscid_into,
    primitives_into,
    radial_inviscid_into,
)
from ...physics.viscous import (
    assemble_stress,
    field_gradients_2d,
    gradient_axis,
    stress_tensor,
)
from .base import KernelBackend, StepWorkspace


class FusedBackend(KernelBackend):
    """In-place kernels over a preallocated workspace (bitwise-identical)."""

    name = "fused"

    def step_workspace(self, solver) -> StepWorkspace:
        viscous = bool(solver.fm.mu)
        mu_field = viscous and solver.config.mu_exponent != 0.0
        return StepWorkspace(solver.state.q.shape, viscous, mu_field=mu_field)


def _mu(fm, ws: StepWorkspace):
    """Viscosity at the workspace temperature (scalar when constant)."""
    exp = fm.config.mu_exponent
    if exp == 0.0:
        return fm.mu
    np.power(ws.T, exp, out=ws.mu)
    np.multiply(ws.mu, fm.mu, out=ws.mu)
    return ws.mu


def _two_thirds_dilatation(ws: StepWorkspace, r: np.ndarray) -> None:
    """``ws.dilat <- (2/3)(du/dx + dv/dr + v/r)``; ``ws.t2a`` keeps ``v/r``.

    Matches ``assemble_stress`` term for term: the sum associates as
    ``(du_dx + dv_dr) + v_over_r`` and ``v/r`` stays a true division.
    """
    np.divide(ws.v, r[None, :], out=ws.t2a)
    np.add(ws.g_ux, ws.g_vr, out=ws.dilat)
    np.add(ws.dilat, ws.t2a, out=ws.dilat)
    np.multiply(ws.dilat, 2.0 / 3.0, out=ws.dilat)


def _heat_flux(g_t: np.ndarray, mu, gamma: float, out: np.ndarray) -> np.ndarray:
    """``-k dT/dxi`` with ``k = mu / ((gamma - 1) Pr)`` into ``out``."""
    k = eos.conductivity(mu, gamma, constants.PRANDTL)
    if np.isscalar(k) or np.ndim(k) == 0:
        np.multiply(g_t, -k, out=out)
    else:
        # -(k x) and (-k) x differ only in the sign bit computation, which
        # is exact for IEEE multiplication.
        np.multiply(g_t, k, out=out)
        np.negative(out, out=out)
    return out


def _halo_stress(fm, ws: StepWorkspace, mu, uvT_halo):
    """Viscous stress terms with neighbour ghost lines, any decomposition.

    A 2-D block decomposition passes its ``{'x': pair, 'r': pair}`` halo
    dict; 1-axis decompositions pass an ``(lo, hi)`` pair.  Both routes use
    the reference gradient machinery on the workspace primitives — the
    identical expressions the baseline backend evaluates, so the result is
    bitwise-equal.
    """
    if isinstance(uvT_halo, dict):
        grads = field_gradients_2d(
            ws.u, ws.v, ws.T, fm.dx, fm.dr,
            halo_x=uvT_halo.get("x"), halo_r=uvT_halo.get("r"),
        )
        return assemble_stress(grads, ws.v, fm.r, mu, fm.gamma)
    return stress_tensor(
        ws.u, ws.v, ws.T, fm.r, fm.dx, fm.dr, mu, fm.gamma,
        halo_lo=uvT_halo[0], halo_hi=uvT_halo[1],
        halo_axis=min(fm.halo_axis, 1),
    )


def _subtract_viscous(
    flux: np.ndarray,
    tau_normal,
    tau_shear,
    heat,
    u: np.ndarray,
    v: np.ndarray,
    normal_row: int,
    shear_row: int,
    ws: StepWorkspace,
) -> None:
    """``flux -= (0, tau_n, tau_s, u tau_n' + v tau_s' - heat)`` in place.

    ``normal_row``/``shear_row`` say where the normal stress lands (row 1
    for the axial flux, row 2 for the radial one).  Row 0 of the viscous
    flux is identically zero, so the baseline's ``F[0] -= 0.0`` is skipped
    (``x - 0.0`` is a bitwise identity).
    """
    if normal_row == 1:  # axial: Fv[3] = u tau_xx + v tau_xr - heat_x
        np.multiply(u, tau_normal, out=ws.t2a)
        np.multiply(v, tau_shear, out=ws.t2b)
    else:  # radial: Gv[3] = u tau_xr + v tau_rr - heat_r
        np.multiply(u, tau_shear, out=ws.t2a)
        np.multiply(v, tau_normal, out=ws.t2b)
    np.add(ws.t2a, ws.t2b, out=ws.t2a)
    np.subtract(ws.t2a, heat, out=ws.t2a)
    np.subtract(flux[normal_row], tau_normal, out=flux[normal_row])
    np.subtract(flux[shear_row], tau_shear, out=flux[shear_row])
    np.subtract(flux[3], ws.t2a, out=flux[3])


def fused_axial_flux(
    fm, q: np.ndarray, ws: StepWorkspace, uvT_halo=None, primitives_ready=False
) -> np.ndarray:
    """Total axial flux into ``ws.F``, bitwise equal to ``FluxModel.axial_flux``."""
    viscous = bool(fm.mu)
    if not primitives_ready:
        primitives_into(
            q, fm.gamma, ws.inv_rho, ws.u, ws.v, ws.p, ws.t2a, ws.t2b,
            T=ws.T if viscous else None,
        )
    F = axial_inviscid_into(q, ws.u, ws.v, ws.p, ws.F, ws.t2a)
    if not viscous:
        return F
    mu = _mu(fm, ws)
    if uvT_halo is not None:
        # Subdomain-boundary gradients need halo-extended fields; reuse the
        # (already computed) primitives but keep the reference gradient
        # machinery, which is identical to the serial interior arithmetic.
        terms = _halo_stress(fm, ws, mu, uvT_halo)
        tau_xx, tau_xr, heat_x = terms.tau_xx, terms.tau_xr, terms.heat_x
    else:
        # The axial flux needs tau_xx, tau_xr and heat_x only, i.e. every
        # gradient except dT/dr.
        gradient_axis(ws.u, fm.dx, 0, out=ws.g_ux)
        gradient_axis(ws.u, fm.dr, 1, out=ws.g_ur)
        gradient_axis(ws.v, fm.dx, 0, out=ws.g_vx)
        gradient_axis(ws.v, fm.dr, 1, out=ws.g_vr)
        gradient_axis(ws.T, fm.dx, 0, out=ws.g_t)
        _two_thirds_dilatation(ws, fm.r)
        # tau_xx = mu (2 du/dx - (2/3) dilatation)
        np.multiply(ws.g_ux, 2.0, out=ws.tau_n)
        np.subtract(ws.tau_n, ws.dilat, out=ws.tau_n)
        np.multiply(ws.tau_n, mu, out=ws.tau_n)
        # tau_xr = mu (du/dr + dv/dx)
        np.add(ws.g_ur, ws.g_vx, out=ws.tau_s)
        np.multiply(ws.tau_s, mu, out=ws.tau_s)
        tau_xx, tau_xr = ws.tau_n, ws.tau_s
        heat_x = _heat_flux(ws.g_t, mu, fm.gamma, ws.heat)
    _subtract_viscous(F, tau_xx, tau_xr, heat_x, ws.u, ws.v, 1, 2, ws)
    return F


def fused_radial_flux(
    fm, q: np.ndarray, ws: StepWorkspace, uvT_halo=None, primitives_ready=False
):
    """Weighted radial flux into ``ws.F`` plus the source ``ws.S``.

    Bitwise equal to ``FluxModel.radial_flux``; the source array's rows 0,
    1 and 3 are zero-initialised once at workspace construction and only
    row 2 (``p - tau_tt``) is rewritten per call.
    """
    viscous = bool(fm.mu)
    if not primitives_ready:
        primitives_into(
            q, fm.gamma, ws.inv_rho, ws.u, ws.v, ws.p, ws.t2a, ws.t2b,
            T=ws.T if viscous else None,
        )
    G = radial_inviscid_into(q, ws.u, ws.v, ws.p, ws.F, ws.t2a)
    tau_tt: np.ndarray | float = 0.0
    if viscous:
        mu = _mu(fm, ws)
        if uvT_halo is not None:
            terms = _halo_stress(fm, ws, mu, uvT_halo)
            tau_rr, tau_xr = terms.tau_rr, terms.tau_xr
            heat_r, tau_tt = terms.heat_r, terms.tau_tt
        else:
            # The radial flux needs tau_rr, tau_xr, tau_tt and heat_r,
            # i.e. every gradient except dT/dx.
            gradient_axis(ws.u, fm.dx, 0, out=ws.g_ux)
            gradient_axis(ws.u, fm.dr, 1, out=ws.g_ur)
            gradient_axis(ws.v, fm.dx, 0, out=ws.g_vx)
            gradient_axis(ws.v, fm.dr, 1, out=ws.g_vr)
            gradient_axis(ws.T, fm.dr, 1, out=ws.g_t)
            _two_thirds_dilatation(ws, fm.r)
            # tau_rr = mu (2 dv/dr - (2/3) dilatation)
            np.multiply(ws.g_vr, 2.0, out=ws.tau_n)
            np.subtract(ws.tau_n, ws.dilat, out=ws.tau_n)
            np.multiply(ws.tau_n, mu, out=ws.tau_n)
            # tau_xr = mu (du/dr + dv/dx)
            np.add(ws.g_ur, ws.g_vx, out=ws.tau_s)
            np.multiply(ws.tau_s, mu, out=ws.tau_s)
            # tau_tt = mu (2 v/r - (2/3) dilatation); ws.t2a still holds v/r.
            np.multiply(ws.t2a, 2.0, out=ws.tau_tt)
            np.subtract(ws.tau_tt, ws.dilat, out=ws.tau_tt)
            np.multiply(ws.tau_tt, mu, out=ws.tau_tt)
            tau_rr, tau_xr = ws.tau_n, ws.tau_s
            heat_r = _heat_flux(ws.g_t, mu, fm.gamma, ws.heat)
            tau_tt = ws.tau_tt
        _subtract_viscous(G, tau_rr, tau_xr, heat_r, ws.u, ws.v, 2, 1, ws)
    if not fm.config.axisymmetric:
        return G, ws.S  # planar: unweighted flux, all-zero source
    np.multiply(G, fm.weight, out=G)
    if viscous:
        np.subtract(ws.p, tau_tt, out=ws.S[2])
    else:
        np.copyto(ws.S[2], ws.p)  # p - 0.0 is a bitwise identity
    return G, ws.S
