"""Scenario builders and the full paper-resolution smoke test."""

import numpy as np
import pytest

from repro import (
    acoustic_pulse_scenario,
    jet_scenario,
    periodic_advection_scenario,
    shock_tube_scenario,
)
from repro.numerics.boundary import Sponge
from repro.scenarios import jet_initial_state
from repro.grid import Grid
from repro.physics.jet import JetProfile


class TestJetScenario:
    def test_defaults(self):
        sc = jet_scenario()
        assert sc.grid.shape == (125, 50)
        assert sc.name == "jet-ns"
        assert sc.solver.config.viscous

    def test_euler_variant(self):
        sc = jet_scenario(viscous=False)
        assert sc.name == "jet-euler"
        assert sc.solver.fm.mu == 0.0

    def test_parameters_forwarded(self):
        sc = jet_scenario(nx=40, nr=20, mach=2.0, theta=0.2, epsilon=5e-3)
        assert sc.solver.config.mach == 2.0
        bc = sc.solver.config.boundary
        assert bc.inflow.epsilon == 5e-3
        assert bc.inflow.profile.theta == 0.2
        # Centerline momentum reflects the Mach number.
        assert sc.state.axial_momentum[0, 0] == pytest.approx(2.0, rel=0.01)

    def test_custom_sponge(self):
        sc = jet_scenario(nx=40, nr=20, sponge=Sponge(width=2, strength=0.3))
        assert sc.solver.config.boundary.sponge.width == 2

    def test_stability_mode_excitation(self):
        sc = jet_scenario(nx=40, nr=20, use_stability_mode=True, theta=0.08)
        mode = sc.solver.config.boundary.inflow.mode
        assert mode is not None
        sc.solver.run(5)
        assert sc.state.is_physical()

    def test_initial_state_is_parallel_flow(self):
        g = Grid(nx=30, nr=20)
        st = jet_initial_state(g, JetProfile())
        assert np.all(st.v == 0.0)
        # Every axial station identical at t=0.
        assert np.array_equal(st.q[:, 0, :], st.q[:, 15, :])


class TestVerificationScenarios:
    def test_advection_wave_periodicity(self):
        sc = periodic_advection_scenario(n=16)
        lam = sc.grid.nx * sc.grid.dx
        rho = sc.state.rho[:, 0]
        # First point and the wrap-around ghost value agree.
        x = sc.grid.x
        wave = 1e-3 * np.sin(2 * np.pi * x / lam)
        assert np.allclose(rho, 1.0 + wave)

    def test_acoustic_pulse_centered(self):
        sc = acoustic_pulse_scenario(n=32)
        p = sc.state.p
        i, j = np.unravel_index(np.argmax(p), p.shape)
        assert abs(sc.grid.x[i] - 0.5) < 0.05
        assert abs(sc.grid.r[j] - 0.5) < 0.05

    def test_shock_tube_initial_jump(self):
        sc = shock_tube_scenario(nx=100, nr=8)
        rho = sc.state.rho[:, 0]
        assert rho[10] == 1.0 and rho[-10] == 0.125


class TestPaperResolution:
    def test_paper_grid_runs(self):
        """The full 250x100 configuration advances stably (short smoke)."""
        sc = jet_scenario(nx=250, nr=100, viscous=True)
        sc.solver.run(25)
        assert sc.state.is_physical()
        ms_per_step = 1e3 * sc.solver.wall_time / sc.solver.nstep
        # Sanity on the README claim that full runs take minutes: one step
        # should be well under a second.
        assert ms_per_step < 500
