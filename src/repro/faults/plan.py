"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is a frozen description of *which* faults to inject
and *how often*; every concrete decision ("is this transmission dropped?")
is a pure function of ``(plan.seed, salt, src, dst, tag, seq, attempt)``
hashed through BLAKE2 — never of wall-clock time or thread interleaving.
Two runs of the same program under the same plan therefore inject exactly
the same faults on exactly the same messages, which is what makes the
chaos suite reproducible from a printed seed.

The same plan drives both execution substrates:

* the **thread substrate** (:class:`~repro.faults.comm.FaultyComm` over the
  virtual cluster or the MPI adapter) injects real message-level faults —
  drop, duplication, reordering, payload truncation, delay jitter, rank
  slowdown and rank crash;
* the **DES substrate** (:class:`~repro.simulate.machine.SimulatedMachine`)
  maps the wire-level faults onto deterministic extra occupancy of the
  simulated network (retransmissions and jitter) and the rank slowdowns
  onto per-node speed factors.

``salt`` distinguishes restart attempts: the checkpoint/restart path in
:mod:`repro.parallel.runner` re-runs with ``salt = attempt`` so a crash
scheduled for attempt 0 does not fire again after recovery (see
``crash_attempts``).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass


def _unit(seed: int, *key) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from ``(seed, *key)``."""
    material = repr((seed,) + key).encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class Fate:
    """The plan's verdict for one transmission attempt of one message."""

    drop: bool = False
    truncate: bool = False
    duplicate: bool = False
    reorder: bool = False
    delay_seconds: float = 0.0

    @property
    def delivered(self) -> bool:
        """Whether an intact frame reaches the wire on this attempt."""
        return not (self.drop or self.truncate)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults.

    All probabilities are per *transmission attempt*; a message whose
    attempt is dropped or truncated is retransmitted (up to
    ``max_transmits`` attempts total), modelling an unreliable wire under
    the sequence-numbered transport :class:`~repro.faults.comm.FaultyComm`
    implements.  A message whose every attempt fails is lost for good and
    surfaces at the receiver as a
    :class:`~repro.faults.comm.MessageTimeout`.
    """

    seed: int = 0
    name: str = ""
    drop: float = 0.0
    """P(transmission attempt lost on the wire)."""
    duplicate: float = 0.0
    """P(delivered frame deposited twice)."""
    reorder: float = 0.0
    """P(delivered frame held back until the sender's next library call)."""
    truncate: float = 0.0
    """P(frame delivered with its tail cut off — detected and discarded
    by the receiver's length check, then retransmitted)."""
    delay: float = 0.0
    """P(extra latency injected before the transmission)."""
    max_delay: float = 0.002
    """Upper bound of the injected latency, seconds (thread substrate);
    the DES substrate scales it relative to the uncontended message time."""
    max_transmits: int = 3
    """Sender-side transmissions per message (1 = no retransmission)."""
    slow_ranks: tuple[tuple[int, float], ...] = ()
    """``(rank, factor)`` pairs; factor >= 1 slows that rank down."""
    op_seconds: float = 0.0002
    """Busy-wait unit for slowed ranks: each library call on a slowed rank
    sleeps ``(factor - 1) * op_seconds`` (thread substrate only)."""
    crashes: tuple[tuple[int, int], ...] = ()
    """``(rank, step)`` pairs: the rank raises
    :class:`~repro.faults.comm.RankCrashed` at its first library call at or
    after that solver step."""
    crash_attempts: int = 1
    """Crashes fire only while ``salt < crash_attempts`` — after a
    checkpoint restart (salt = attempt number) the rank stays up."""
    recv_timeout: float = 0.5
    """Receiver poll window per attempt, seconds."""
    recv_retries: int = 4
    """Extra receive polls (with backoff) before declaring the message
    lost."""
    backoff: float = 1.5
    """Multiplier applied to the poll window after each timeout."""
    always_wrap: bool = False
    """Force the sequence-numbered transport on even with all fault
    probabilities at zero (used to test the envelope round-trip and to
    measure transport overhead)."""

    # -- state queries -------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(
            self.drop
            or self.duplicate
            or self.reorder
            or self.truncate
            or self.delay
            or self.slow_ranks
            or self.crashes
            or self.always_wrap
        )

    @property
    def wire_faulty(self) -> bool:
        """Whether any message-level fault is active (vs crash/slow only)."""
        return bool(
            self.drop or self.duplicate or self.reorder or self.truncate
            or self.delay
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return dataclasses.replace(self, seed=seed)

    # -- deterministic decisions --------------------------------------------
    def fate(
        self, src: int, dst: int, tag: str, seq: int, attempt: int, salt: int = 0
    ) -> Fate:
        """The verdict for transmission ``attempt`` of message ``seq`` on
        the ``(src, dst, tag)`` stream.  Pure and thread-independent."""
        key = (salt, src, dst, tag, seq, attempt)
        drop = self.drop > 0.0 and _unit(self.seed, "drop", *key) < self.drop
        truncate = (
            not drop
            and self.truncate > 0.0
            and _unit(self.seed, "trunc", *key) < self.truncate
        )
        duplicate = (
            self.duplicate > 0.0
            and _unit(self.seed, "dup", *key) < self.duplicate
        )
        reorder = (
            self.reorder > 0.0
            and _unit(self.seed, "reorder", *key) < self.reorder
        )
        delay_seconds = 0.0
        if self.delay > 0.0 and _unit(self.seed, "delay", *key) < self.delay:
            delay_seconds = self.max_delay * _unit(self.seed, "delayamt", *key)
        return Fate(
            drop=drop,
            truncate=truncate,
            duplicate=duplicate,
            reorder=reorder,
            delay_seconds=delay_seconds,
        )

    def crash_step(self, rank: int) -> int | None:
        """The step at which ``rank`` is scheduled to crash, or ``None``."""
        steps = [s for r, s in self.crashes if r == rank]
        return min(steps) if steps else None

    def slow_factor(self, rank: int) -> float:
        """Slowdown factor for ``rank`` (1.0 = full speed)."""
        for r, factor in self.slow_ranks:
            if r == rank:
                return max(float(factor), 1.0)
        return 1.0

    def slow_seconds(self, rank: int) -> float:
        """Per-library-call sleep injected on a slowed rank."""
        return (self.slow_factor(rank) - 1.0) * self.op_seconds

    # -- DES substrate mapping ----------------------------------------------
    def sim_extra_delay(
        self, src: int, dst: int, key: tuple, base_seconds: float
    ) -> float:
        """Deterministic extra wire occupancy for one simulated transfer.

        Failed transmission attempts (drop or truncate) each cost one more
        ``base_seconds`` of occupancy (the retransmission); delay jitter
        adds up to one extra uncontended message time.  The draw key mirrors
        the thread substrate's ``(src, dst, message-identity, attempt)``
        shape so the two substrates consume the same schedule family.
        """
        extra = 0.0
        for attempt in range(max(self.max_transmits, 1) - 1):
            k = ("sim", src, dst) + key + (attempt,)
            failed = (
                self.drop > 0.0 and _unit(self.seed, "drop", *k) < self.drop
            ) or (
                self.truncate > 0.0
                and _unit(self.seed, "trunc", *k) < self.truncate
            )
            if not failed:
                break
            extra += base_seconds
        k = ("sim", src, dst) + key
        if self.delay > 0.0 and _unit(self.seed, "delay", *k) < self.delay:
            extra += base_seconds * _unit(self.seed, "delayamt", *k)
        return extra

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for field in ("drop", "duplicate", "reorder", "truncate", "delay"):
            v = getattr(self, field)
            if v:
                parts.append(f"{field}={v:g}")
        if self.slow_ranks:
            parts.append(f"slow={dict(self.slow_ranks)}")
        if self.crashes:
            parts.append(f"crashes={list(self.crashes)}")
        label = self.name or "faults"
        return f"{label}({', '.join(parts)})"


#: Named presets, mirroring the paper's platforms: the shared 10 Mbps
#: Ethernet NOW degrades under load (loss, duplication, reordering, heavy
#: jitter) while the switched fabrics only jitter mildly.
PRESETS: dict[str, FaultPlan] = {
    "lossy-ethernet": FaultPlan(
        name="lossy-ethernet",
        drop=0.12,
        duplicate=0.05,
        reorder=0.08,
        truncate=0.04,
        delay=0.25,
        max_delay=0.002,
        max_transmits=4,
    ),
    "jittery-now": FaultPlan(
        name="jittery-now",
        delay=0.6,
        max_delay=0.004,
        reorder=0.05,
        slow_ranks=((1, 2.5),),
        max_transmits=3,
    ),
    "drop-storm": FaultPlan(
        name="drop-storm",
        drop=0.5,
        max_transmits=2,
        recv_timeout=0.25,
        recv_retries=3,
    ),
    "crash-rank1": FaultPlan(
        name="crash-rank1",
        crashes=((1, 3),),
        recv_timeout=0.25,
        recv_retries=3,
    ),
    "lossy-crash": FaultPlan(
        name="lossy-crash",
        drop=0.1,
        duplicate=0.05,
        reorder=0.05,
        max_transmits=4,
        crashes=((1, 3),),
        recv_timeout=0.25,
        recv_retries=3,
    ),
}


def fault_plan_by_name(name: str, seed: int | None = None) -> FaultPlan:
    """Look up a preset plan, optionally re-seeded."""
    try:
        plan = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(
            f"unknown fault preset {name!r}; known presets: {known}"
        ) from None
    return plan if seed is None else plan.with_seed(seed)


def resolve_fault_plan(faults, seed: int | None = None) -> FaultPlan | None:
    """Coerce the ``faults=`` argument of :func:`repro.api.run`.

    ``None`` stays ``None``; a string selects a preset; a
    :class:`FaultPlan` passes through (re-seeded when ``seed`` is given).
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        return fault_plan_by_name(faults, seed=seed)
    if isinstance(faults, FaultPlan):
        return faults if seed is None else faults.with_seed(seed)
    raise TypeError(
        f"faults must be None, a preset name, or a FaultPlan; got "
        f"{type(faults).__name__}"
    )
