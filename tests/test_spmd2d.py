"""2-D Cartesian block decomposition solver."""

import numpy as np
import pytest

from repro import jet_scenario
from repro.parallel.runner import ParallelJetSolver, serial_reference
from repro.parallel.spmd2d import CartesianDecomposition


class TestCartesianDecomposition:
    def test_rank_coordinates_round_trip(self):
        d = CartesianDecomposition(nx=60, nr=24, px=3, pr=2)
        assert d.nparts == 6
        for rank in range(6):
            ix, jr = d.coords(rank)
            assert d.rank_of(ix, jr) == rank

    def test_blocks_tile_the_grid(self):
        d = CartesianDecomposition(nx=47, nr=23, px=3, pr=2)
        cells = 0
        for rank in range(d.nparts):
            (ilo, ihi), (jlo, jhi) = d.block(rank)
            cells += (ihi - ilo) * (jhi - jlo)
        assert cells == 47 * 23

    def test_neighbors(self):
        d = CartesianDecomposition(nx=60, nr=24, px=3, pr=2)
        # rank 0 = (0, 0): corner.
        assert d.neighbors(0) == (None, d.rank_of(1, 0), None, d.rank_of(0, 1))
        # rank (1, 1): fully interior in x, top in r.
        r = d.rank_of(1, 1)
        left, right, lower, upper = d.neighbors(r)
        assert left == d.rank_of(0, 1) and right == d.rank_of(2, 1)
        assert lower == d.rank_of(1, 0) and upper is None

    def test_small_blocks_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            CartesianDecomposition(nx=12, nr=24, px=3, pr=2)

    def test_coords_bounds(self):
        d = CartesianDecomposition(nx=60, nr=24, px=2, pr=2)
        with pytest.raises(IndexError):
            d.coords(4)


@pytest.fixture(scope="module")
def ns_case():
    sc = jet_scenario(nx=60, nr=24, viscous=True)
    ref = serial_reference(sc.state, sc.solver.config, steps=10)
    return sc, ref


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("px,pr", [(2, 2), (3, 2), (2, 3)])
    def test_navier_stokes(self, ns_case, px, pr):
        sc, ref = ns_case
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=px * pr,
            decomposition="2d", px=px, pr=pr, timeout=60,
        ).run(10)
        assert np.array_equal(res.state.q, ref.q)

    @pytest.mark.parametrize("version", [6, 7])
    def test_versions(self, ns_case, version):
        sc, ref = ns_case
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=4, version=version,
            decomposition="2d", px=2, pr=2, timeout=60,
        ).run(10)
        assert np.array_equal(res.state.q, ref.q)

    def test_euler(self):
        sc = jet_scenario(nx=60, nr=24, viscous=False)
        ref = serial_reference(sc.state, sc.solver.config, steps=10)
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=4,
            decomposition="2d", px=2, pr=2, timeout=60,
        ).run(10)
        assert np.array_equal(res.state.q, ref.q)

    def test_degenerate_grids_match_1d_solvers(self, ns_case):
        """px x 1 behaves like the axial solver; 1 x pr like the radial."""
        sc, ref = ns_case
        ax = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=3,
            decomposition="2d", px=3, pr=1, timeout=60,
        ).run(10)
        ra = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=3,
            decomposition="2d", px=1, pr=3, timeout=60,
        ).run(10)
        assert np.array_equal(ax.state.q, ref.q)
        assert np.array_equal(ra.state.q, ref.q)


class TestValidation:
    def test_mismatched_grid_of_ranks(self):
        sc = jet_scenario(nx=60, nr=24)
        with pytest.raises(ValueError, match="px"):
            ParallelJetSolver(
                sc.state, sc.solver.config, nranks=4,
                decomposition="2d", px=3, pr=2,
            )

    def test_missing_px_pr(self):
        sc = jet_scenario(nx=60, nr=24)
        with pytest.raises(ValueError, match="px and pr"):
            ParallelJetSolver(
                sc.state, sc.solver.config, nranks=4, decomposition="2d"
            )
