"""Tracing/metrics layer: tracer semantics, exporters, determinism."""

import json
import threading

import pytest

from repro.obs import (
    NullTracer,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    get_tracer,
    load_trace,
    set_tracer,
    to_jsonl,
    trace_from_timelines,
    use_tracer,
)


class TickClock:
    """Deterministic clock: returns 0.0, 1.0, 2.0, ..."""

    def __init__(self):
        self.t = -1.0

    def __call__(self):
        self.t += 1.0
        return self.t


# ---------------------------------------------------------------------------
# Tracer semantics
# ---------------------------------------------------------------------------


def test_span_records_nesting_and_args():
    tr = Tracer(clock=TickClock())
    with tr.span("outer", cat="a", rank=3, step=7):
        with tr.span("inner", cat="b", rank=3):
            pass
    inner, outer = tr.trace.spans  # inner closes first
    assert (inner.name, outer.name) == ("inner", "outer")
    assert inner.parent == "outer" and outer.parent is None
    assert outer.args == (("step", 7),)
    assert outer.rank == 3 and inner.cat == "b"
    assert outer.t0 < inner.t0 and inner.t1 < outer.t1
    assert outer.seq < inner.seq  # seq assigned at span *start*


def test_bind_rank_sets_thread_default():
    tr = Tracer()
    tr.bind_rank(5)
    with tr.span("s"):
        pass
    assert tr.trace.spans[0].rank == 5
    # explicit rank wins over the bound default
    with tr.span("s", rank=1):
        pass
    assert tr.trace.spans[1].rank == 1

    # another thread gets its own binding
    seen = []

    def other():
        tr.bind_rank(9)
        with tr.span("o"):
            pass
        seen.append(True)

    th = threading.Thread(target=other)
    th.start()
    th.join()
    assert seen and tr.trace.spans_named("o")[0].rank == 9


def test_counters_accumulate_per_rank():
    tr = Tracer()
    tr.count("bytes", 10, rank=0)
    tr.count("bytes", 5, rank=0)
    tr.count("bytes", 7, rank=1)
    assert tr.trace.counter(0, "bytes") == 15
    assert tr.trace.counter(1, "bytes") == 7
    assert tr.trace.counter(2, "bytes") == 0.0


def test_global_tracer_default_is_null_and_use_tracer_restores():
    assert isinstance(get_tracer(), NullTracer)
    assert not get_tracer().enabled
    tr = Tracer()
    with use_tracer(tr):
        assert get_tracer() is tr
        with use_tracer(None):
            assert isinstance(get_tracer(), NullTracer)
        assert get_tracer() is tr
    assert isinstance(get_tracer(), NullTracer)
    # set_tracer(None) restores the null tracer too
    set_tracer(tr)
    assert get_tracer() is tr
    set_tracer(None)
    assert isinstance(get_tracer(), NullTracer)


def test_null_tracer_is_inert():
    null = NullTracer()
    with null.span("anything", rank=3, arbitrary="arg"):
        null.instant("x")
        null.count("c", 1.0)
        null.add_span("y", 0.0, 1.0)
        null.bind_rank(2)
    assert null.trace is None


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _sample_trace() -> Tracer:
    tr = Tracer(clock=TickClock(), name="sample")
    tr.bind_rank(0)
    with tr.span("step", cat="solver", step=1):
        with tr.span("sweep", cat="solver"):
            pass
    tr.instant("mark", cat="engine", rank=1, ts=2.5, note="hello")
    tr.count("bytes", 42.0, rank=1)
    return tr


def test_jsonl_roundtrip(tmp_path):
    tr = _sample_trace()
    p = tmp_path / "t.jsonl"
    text = to_jsonl(tr.trace, str(p))
    assert p.read_text() == text
    back = load_trace(str(p))
    assert back.meta["name"] == "sample"
    assert [s.name for s in back.ordered_spans()] == ["step", "sweep"]
    sweep = back.spans_named("sweep")[0]
    assert sweep.parent == "step"
    assert back.events[0].args == (("note", "hello"),)
    assert back.counters == {(1, "bytes"): 42.0}
    assert back.total("step") == tr.trace.total("step")


def test_chrome_export_structure(tmp_path):
    tr = _sample_trace()
    doc = json.loads(chrome_trace_json(tr.trace))
    evs = doc["traceEvents"]
    phases = [e["ph"] for e in evs]
    # thread-name metadata for both ranks, slices, one instant
    assert phases.count("M") == 2
    assert phases.count("X") == 2
    assert phases.count("i") == 1
    x = [e for e in evs if e["ph"] == "X"]
    assert x[0]["name"] == "step" and x[0]["tid"] == 0
    assert x[0]["ts"] == pytest.approx(tr.trace.spans[1].t0 * 1e6)
    assert all(e["dur"] > 0 for e in x)
    assert doc["otherData"]["rank1.bytes"] == 42.0
    assert doc["otherData"]["name"] == "sample"


def test_chrome_roundtrip(tmp_path):
    from repro.obs import write_chrome_trace

    tr = _sample_trace()
    p = tmp_path / "t.json"
    write_chrome_trace(tr.trace, str(p))
    back = load_trace(str(p))
    assert [s.name for s in back.ordered_spans()] == ["step", "sweep"]
    assert back.counters == {(1, "bytes"): 42.0}
    assert back.meta["name"] == "sample"
    assert back.total("sweep") == pytest.approx(tr.trace.total("sweep"))


def test_chrome_counter_tracks_trail_and_roundtrip(tmp_path):
    """Perfetto 'C' counter tracks: cumulative per-rank series appended
    *after* every X/i record, so positional seq numbering — and hence the
    round-tripped trace — is unchanged by their presence."""
    from repro.obs import chrome_counter_events, write_chrome_trace

    tr = Tracer(clock=TickClock(), name="counters")
    tr.bind_rank(0)
    with tr.span("comm.send", cat="comm"):
        pass
    with tr.span("solver.step", cat="solver"):
        pass
    with tr.span("comm.recv", cat="comm", rank=1):
        pass
    tr.instant("fault.drop", cat="fault")
    tr.instant("fault.retransmission", cat="fault")
    tr.count("bytes_sent", 123.0, rank=0)

    evs = json.loads(chrome_trace_json(tr.trace))["traceEvents"]
    phases = [e["ph"] for e in evs]
    assert "C" in phases
    last_slice = max(i for i, p in enumerate(phases) if p in ("X", "i"))
    first_counter = min(i for i, p in enumerate(phases) if p == "C")
    assert first_counter > last_slice  # counters strictly trail

    counters = chrome_counter_events(tr.trace)
    faults = [e for e in counters if e["name"] == "rank0.faults"]
    assert [e["args"]["faults"] for e in faults] == [1, 2]  # cumulative
    calls0 = [e for e in counters if e["name"] == "rank0.comm_calls"]
    calls1 = [e for e in counters if e["name"] == "rank1.comm_calls"]
    assert [e["args"]["calls"] for e in calls0] == [1]
    assert [e["args"]["calls"] for e in calls1] == [1]
    # non-comm/fault records produce no counter samples
    assert not any("solver" in e["name"] for e in counters)

    p = tmp_path / "t.json"
    write_chrome_trace(tr.trace, str(p))
    back = load_trace(str(p))
    assert [s.name for s in back.ordered_spans()] == [
        "comm.send", "solver.step", "comm.recv"
    ]
    assert [e.name for e in back.ordered_events()] == [
        "fault.drop", "fault.retransmission"
    ]
    assert back.counters == {(0, "bytes_sent"): 123.0}
    # re-export of the round-tripped trace is stable
    assert chrome_trace_json(back) == chrome_trace_json(load_trace(str(p)))


def test_zero_duration_spans_get_min_chrome_dur():
    tr = Tracer(clock=lambda: 1.0)
    with tr.span("instantaneous"):
        pass
    ev = [e for e in chrome_trace_events(tr.trace) if e["ph"] == "X"][0]
    assert ev["dur"] > 0


# ---------------------------------------------------------------------------
# Engine events and DES timelines
# ---------------------------------------------------------------------------


def test_engine_records_schedule_and_resume_events():
    from repro.simulate.engine import Delay, Engine

    def prog():
        yield Delay(1.0)
        yield Delay(0.5)

    tr = Tracer()
    eng = Engine(tracer=tr)
    eng.add_process(prog(), name="p0")
    eng.run()
    resumes = [e.t for e in tr.trace.events if e.name == "proc.resume"]
    assert resumes == [0.0, 1.0, 1.5]
    scheds = [e for e in tr.trace.events if e.name == "proc.schedule"]
    assert [dict(e.args)["at"] for e in scheds] == [0.0, 1.0, 1.5]
    assert all(dict(e.args)["proc"] == "p0" for e in scheds)


def test_trace_from_timelines_spans_and_counters():
    from repro.simulate.timeline import RankTimeline, Segment

    tl = RankTimeline(rank=2)
    tl.busy = 3.0
    tl.compute = 2.5
    tl.library = 0.5
    tl.comm_wait = 1.0
    tl.segments = [
        Segment(kind="compute", start=0.0, end=2.5),
        Segment(kind="library", start=2.5, end=3.0),
        Segment(kind="wait", start=3.0, end=4.0),
    ]
    trace = trace_from_timelines([tl], meta={"platform": "x"})
    assert trace.total("sim.compute", rank=2) == pytest.approx(2.5)
    assert trace.total("sim.library", rank=2) == pytest.approx(0.5)
    assert trace.total("sim.wait", rank=2) == pytest.approx(1.0)
    assert trace.counter(2, "busy_seconds") == pytest.approx(3.0)
    assert trace.meta["platform"] == "x"


# ---------------------------------------------------------------------------
# Determinism: identical simulated runs export identical bytes
# ---------------------------------------------------------------------------


def _traced_sim_run() -> Tracer:
    from repro.machines.platforms import LACE_560
    from repro.simulate.machine import SimulatedMachine
    from repro.simulate.workload import NAVIER_STOKES

    tr = Tracer(name="det")
    SimulatedMachine(LACE_560, 4, version=5).run(
        NAVIER_STOKES, steps_window=2, tracer=tr
    )
    return tr


def test_simulated_trace_exports_are_byte_identical():
    a, b = _traced_sim_run(), _traced_sim_run()
    assert a.trace.spans, "traced simulation produced no spans"
    assert a.trace.events, "engine produced no schedule/resume events"
    assert to_jsonl(a.trace) == to_jsonl(b.trace)
    assert chrome_trace_json(a.trace) == chrome_trace_json(b.trace)


def test_instrumented_serial_solver_spans():
    from repro import run

    res = run("jet", steps=2, nx=32, nr=16, trace=True)
    names = {s.name for s in res.trace.spans}
    assert {
        "solver.step",
        "solver.dt",
        "solver.sweep_x",
        "solver.sweep_r",
        "solver.filter",
        "solver.boundaries",
        "maccormack.predictor",
        "maccormack.corrector",
    } <= names
    assert len(res.trace.spans_named("solver.step")) == 2
    # hierarchical: sweeps are children of the step span
    sweep = res.trace.spans_named("solver.sweep_x")[0]
    assert sweep.parent == "solver.step"
