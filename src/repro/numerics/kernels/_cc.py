"""C kernel source and the gcc/ctypes JIT engine for the compiled backend.

The C translation unit below transcribes the fused backend's numpy kernels
*operation for operation*: every per-element expression keeps the exact
association order of the ``np.<ufunc>(..., out=...)`` chains in
``fused.py``/``fluxes.py``/``viscous.py``/``stencils.py``, divisions stay
divisions, and the build disables floating-point contraction
(``-ffp-contract=off``, no ``-ffast-math``), so each kernel produces
bitwise-identical IEEE-754 doubles.  See ``tests/test_compiled.py`` for the
differential wall that enforces this.

The shared object is cached on disk keyed by a hash of the source and the
compiler command (``$REPRO_CC_CACHE`` or ``~/.cache/repro-cc``), so only
the first process on a machine ever pays the compile; later processes —
including forked process-substrate ranks — just ``dlopen`` the cached
library.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

#: Environment overrides for the compiler and the on-disk build cache.
CC_ENV_VAR = "REPRO_CC"
CACHE_ENV_VAR = "REPRO_CC_CACHE"

#: Flags pinned for bitwise reproducibility: optimization without value
#: changes (no fast-math, no FMA contraction of a*b+c).
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

SOURCE = r"""
#include <stddef.h>

/* Primitives: 1/rho, u, v, p (and T when requested), transcribing
   physics.fluxes.primitives_into per element. */
void k_prim(const double* q, double gamma, double* inv_rho, double* u,
            double* v, double* p, double* T, long n)
{
    const double* q0 = q;
    const double* q1 = q + n;
    const double* q2 = q + 2 * n;
    const double* q3 = q + 3 * n;
    double gm1 = gamma - 1.0;
    for (long i = 0; i < n; i++) {
        double ir = 1.0 / q0[i];
        double ui = q1[i] * ir;
        double vi = q2[i] * ir;
        double ta = q1[i] * ui;
        double tb = q2[i] * vi;
        ta = ta + tb;
        ta = ta * 0.5;
        ta = q3[i] - ta;
        double pi = ta * gm1;
        inv_rho[i] = ir;
        u[i] = ui;
        v[i] = vi;
        p[i] = pi;
        if (T) {
            double tt = pi * gamma;
            T[i] = tt * ir;
        }
    }
}

/* Axial inviscid flux rows (fluxes.axial_inviscid_into). */
void k_ax_inv(const double* q, const double* u, const double* v,
              const double* p, double* F, long n)
{
    const double* q1 = q + n;
    const double* q3 = q + 3 * n;
    double* F0 = F;
    double* F1 = F + n;
    double* F2 = F + 2 * n;
    double* F3 = F + 3 * n;
    for (long i = 0; i < n; i++) {
        F0[i] = q1[i];
        double f1 = q1[i] * u[i];
        f1 = f1 + p[i];
        F1[i] = f1;
        F2[i] = q1[i] * v[i];
        double ep = q3[i] + p[i];
        F3[i] = u[i] * ep;
    }
}

/* Radial inviscid flux rows (fluxes.radial_inviscid_into). */
void k_rad_inv(const double* q, const double* u, const double* v,
               const double* p, double* G, long n)
{
    const double* q2 = q + 2 * n;
    const double* q3 = q + 3 * n;
    double* G0 = G;
    double* G1 = G + n;
    double* G2 = G + 2 * n;
    double* G3 = G + 3 * n;
    for (long i = 0; i < n; i++) {
        G0[i] = q2[i];
        G1[i] = q2[i] * u[i];
        double g2 = q2[i] * v[i];
        g2 = g2 + p[i];
        G2[i] = g2;
        double ep = q3[i] + p[i];
        G3[i] = v[i] * ep;
    }
}

/* Cubic (4-point Lagrange) ghost extrapolation, transcribing
   stencils.cubic_ghosts per element: Python's sum() starts from int 0,
   so the chain is ((((0 + w0*p0) + w1*p1) + w2*p2) + w3*p3) — the
   leading 0.0 + t is kept for signed-zero fidelity. */
static double cubic_g1(double p0, double p1, double p2, double p3)
{
    double t = 4.0 * p0;
    double g = 0.0 + t;
    t = -6.0 * p1;
    g = g + t;
    t = 4.0 * p2;
    g = g + t;
    t = -1.0 * p3;
    g = g + t;
    return g;
}

static double cubic_g2(double p0, double p1, double p2, double p3)
{
    double t = 10.0 * p0;
    double g = 0.0 + t;
    t = -20.0 * p1;
    g = g + t;
    t = 15.0 * p2;
    g = g + t;
    t = -4.0 * p3;
    g = g + t;
    return g;
}

/* Coefficients of numpy.gradient's interior/edge formulas for spacing h
   (viscous.gradient_axis): interior (f[i+1]-f[i-1])/(2h), edges
   (a*f0 + b*f1) + c*f2 with the same left-associated order. */
typedef struct {
    double h2, a0, b0, c0, a1, b1, c1;
} gcoef;

static gcoef mk_gcoef(double h)
{
    gcoef c;
    c.h2 = 2.0 * h;
    c.a0 = -1.5 / h;
    c.b0 = 2.0 / h;
    c.c0 = -0.5 / h;
    c.a1 = 0.5 / h;
    c.b1 = -2.0 / h;
    c.c1 = 1.5 / h;
    return c;
}

static double grad_x(const double* f, long i, long j, long nx, long nr,
                     const gcoef* c)
{
    if (i == 0)
        return (c->a0 * f[j] + c->b0 * f[nr + j]) + c->c0 * f[2 * nr + j];
    if (i == nx - 1)
        return (c->a1 * f[(nx - 3) * nr + j] + c->b1 * f[(nx - 2) * nr + j])
               + c->c1 * f[(nx - 1) * nr + j];
    return (f[(i + 1) * nr + j] - f[(i - 1) * nr + j]) / c->h2;
}

static double grad_r(const double* f, long i, long j, long nr, const gcoef* c)
{
    const double* fi = f + i * nr;
    if (j == 0)
        return (c->a0 * fi[0] + c->b0 * fi[1]) + c->c0 * fi[2];
    if (j == nr - 1)
        return (c->a1 * fi[nr - 3] + c->b1 * fi[nr - 2]) + c->c1 * fi[nr - 1];
    return (fi[j + 1] - fi[j - 1]) / c->h2;
}

/* One fused pass of velocity/temperature gradients + dilatation + stress
   assembly + viscous subtraction (viscous.field_gradients,
   fused._two_thirds_dilatation, the stress rows, and _subtract_viscous).
   The five gradients are evaluated per element with the formulas above —
   the same values the fused backend materializes into its g_* buffers,
   without the five intermediate array passes.
   radial=0 subtracts (tau_xx, tau_xr, heat_x) from F rows (1, 2, 3) and
   takes dT/dx; radial=1 subtracts (tau_rr, tau_xr, heat_r) from G rows
   (2, 1, 3), takes dT/dr, and stores tau_theta_theta for the geometric
   source.  mu and k are each a field (pointer) or a scalar: the scalar
   heat path receives -k pre-negated (numpy computes g_t * (-k)); the
   field path mirrors numpy's multiply-then-negate. */
/* Stress assembly + subtraction from the five gradient values at one
   element (shared by the interior fast loops and the edge epilogues). */
static void visc_store(double* F1, double* F2, double* F3,
                       double* tau_tt_out, const double* u, const double* v,
                       const double* r, const double* mu_a, double mu_s,
                       const double* k_a, double negk_s, int radial,
                       long idx, long j, double g_ux, double g_ur,
                       double g_vx, double g_vr, double g_t)
{
    double two_thirds = 2.0 / 3.0;
    double mu = mu_a ? mu_a[idx] : mu_s;
    double vr = v[idx] / r[j];
    double dil = g_ux + g_vr;
    dil = dil + vr;
    dil = dil * two_thirds;
    double tn = (radial ? g_vr : g_ux) * 2.0;
    tn = tn - dil;
    tn = tn * mu;
    double ts = g_ur + g_vx;
    ts = ts * mu;
    double heat;
    if (k_a) {
        heat = g_t * k_a[idx];
        heat = -heat;
    } else {
        heat = g_t * negk_s;
    }
    double ta, tb;
    if (radial) {
        ta = u[idx] * ts;
        tb = v[idx] * tn;
    } else {
        ta = u[idx] * tn;
        tb = v[idx] * ts;
    }
    ta = ta + tb;
    ta = ta - heat;
    if (radial) {
        double ttt = vr * 2.0;
        ttt = ttt - dil;
        ttt = ttt * mu;
        tau_tt_out[idx] = ttt;
        F2[idx] = F2[idx] - tn;
        F1[idx] = F1[idx] - ts;
    } else {
        F1[idx] = F1[idx] - tn;
        F2[idx] = F2[idx] - ts;
    }
    F3[idx] = F3[idx] - ta;
}

void k_visc(double* F, double* tau_tt_out, const double* u, const double* v,
            const double* T, const double* r, const double* mu_a,
            double mu_s, const double* k_a, double negk_s, long nx, long nr,
            double dx, double dr, int radial)
{
    long n = nx * nr;
    double* F1 = F + n;
    double* F2 = F + 2 * n;
    double* F3 = F + 3 * n;
    gcoef cx = mk_gcoef(dx);
    gcoef cr = mk_gcoef(dr);
    for (long i = 0; i < nx; i++) {
        long base = i * nr;
        /* Interior columns, with the row-invariant x-stencil kind hoisted
           so the inner loops stay branch-free (and vectorizable). */
        if (i > 0 && i < nx - 1) {
            const double* uP = u + base + nr;
            const double* uM = u + base - nr;
            const double* vP = v + base + nr;
            const double* vM = v + base - nr;
            const double* tP = T + base + nr;
            const double* tM = T + base - nr;
            const double* ui = u + base;
            const double* vi = v + base;
            const double* ti = T + base;
            if (radial) {
                for (long j = 1; j < nr - 1; j++) {
                    long idx = base + j;
                    double g_ux = (uP[j] - uM[j]) / cx.h2;
                    double g_ur = (ui[j + 1] - ui[j - 1]) / cr.h2;
                    double g_vx = (vP[j] - vM[j]) / cx.h2;
                    double g_vr = (vi[j + 1] - vi[j - 1]) / cr.h2;
                    double g_t = (ti[j + 1] - ti[j - 1]) / cr.h2;
                    visc_store(F1, F2, F3, tau_tt_out, u, v, r, mu_a, mu_s,
                               k_a, negk_s, radial, idx, j, g_ux, g_ur,
                               g_vx, g_vr, g_t);
                }
            } else {
                for (long j = 1; j < nr - 1; j++) {
                    long idx = base + j;
                    double g_ux = (uP[j] - uM[j]) / cx.h2;
                    double g_ur = (ui[j + 1] - ui[j - 1]) / cr.h2;
                    double g_vx = (vP[j] - vM[j]) / cx.h2;
                    double g_vr = (vi[j + 1] - vi[j - 1]) / cr.h2;
                    double g_t = (tP[j] - tM[j]) / cx.h2;
                    visc_store(F1, F2, F3, tau_tt_out, u, v, r, mu_a, mu_s,
                               k_a, negk_s, radial, idx, j, g_ux, g_ur,
                               g_vx, g_vr, g_t);
                }
            }
        } else {
            /* First/last row: one-sided x gradients, coefficients and row
               pointers hoisted; the inner loop stays branch-free. */
            double xa, xb, xc;
            const double* x0;
            const double* x1;
            const double* x2;
            if (i == 0) {
                xa = cx.a0;
                xb = cx.b0;
                xc = cx.c0;
                x0 = u;
                x1 = u + nr;
                x2 = u + 2 * nr;
            } else {
                xa = cx.a1;
                xb = cx.b1;
                xc = cx.c1;
                x0 = u + (nx - 3) * nr;
                x1 = u + (nx - 2) * nr;
                x2 = u + (nx - 1) * nr;
            }
            long off = x0 - u; /* same row offsets apply to v and T */
            const double* ui = u + base;
            const double* vi = v + base;
            const double* ti = T + base;
            for (long j = 1; j < nr - 1; j++) {
                long idx = base + j;
                double g_ux = (xa * x0[j] + xb * x1[j]) + xc * x2[j];
                double g_ur = (ui[j + 1] - ui[j - 1]) / cr.h2;
                double g_vx = (xa * v[off + j] + xb * v[off + nr + j])
                              + xc * v[off + 2 * nr + j];
                double g_vr = (vi[j + 1] - vi[j - 1]) / cr.h2;
                double g_t = radial
                                 ? (ti[j + 1] - ti[j - 1]) / cr.h2
                                 : (xa * T[off + j] + xb * T[off + nr + j])
                                       + xc * T[off + 2 * nr + j];
                visc_store(F1, F2, F3, tau_tt_out, u, v, r, mu_a, mu_s,
                           k_a, negk_s, radial, idx, j, g_ux, g_ur, g_vx,
                           g_vr, g_t);
            }
        }
        /* First/last column: fully general per-element epilogue. */
        for (long jj = 0; jj < 2; jj++) {
            long j = jj ? nr - 1 : 0;
            long idx = base + j;
            double g_ux = grad_x(u, i, j, nx, nr, &cx);
            double g_ur = grad_r(u, i, j, nr, &cr);
            double g_vx = grad_x(v, i, j, nx, nr, &cx);
            double g_vr = grad_r(v, i, j, nr, &cr);
            double g_t = radial ? grad_r(T, i, j, nr, &cr)
                                : grad_x(T, i, j, nx, nr, &cx);
            visc_store(F1, F2, F3, tau_tt_out, u, v, r, mu_a, mu_s, k_a,
                       negk_s, radial, idx, j, g_ux, g_ur, g_vx, g_vr, g_t);
        }
    }
}

/* Axisymmetric radial finish: G *= r weight; S2 = p - tau_tt (viscous)
   or S2 = p (Euler; p - 0.0 is a bitwise identity). */
void k_rad_finish(double* G, double* S2, const double* p,
                  const double* tau_tt, const double* r, long nx, long nr,
                  int viscous)
{
    long n = nx * nr;
    for (int vv = 0; vv < 4; vv++) {
        double* Gv = G + (long)vv * n;
        for (long i = 0; i < nx; i++) {
            double* Gi = Gv + i * nr;
            for (long j = 0; j < nr; j++)
                Gi[j] = Gi[j] * r[j];
        }
    }
    if (viscous) {
        for (long idx = 0; idx < n; idx++)
            S2[idx] = p[idx] - tau_tt[idx];
    } else {
        for (long idx = 0; idx < n; idx++)
            S2[idx] = p[idx];
    }
}

/* Fused ghost extension + one-sided 2-4 difference + source/negate + 1/r
   weight (stencils.extend_axis + forward/backward_difference +
   SplitOperator._rate_into in one pass over the unextended flux):
   d = (7*(f1-f0) - (f2-f1)) / (6h) forward, the mirrored backward form
   otherwise; rate = S - d when a source exists else -d; then *= iw[j]
   when the radial 1/r weight applies.  The one-sided stencil only ever
   reaches past one boundary (high for forward, low for backward); ``gh``
   supplies that side's two ghost planes — layout (2, 4, plane) ordered
   outward, exactly what the sweep's ghost provider returns — or NULL for
   the serial cubic extrapolation, computed inline at the edge rows. */
/* One-sided 2-4 difference from three stencil values, matching the
   fused forward/backward_difference ufunc chains op for op. */
static double rate_tail(double f0, double f1, double f2, int forward,
                        double h6)
{
    double t, t2;
    if (forward) {
        t = f1 - f0;
        t = t * 7.0;
        t2 = f2 - f1;
    } else {
        t = f0 - f1;
        t = t * 7.0;
        t2 = f1 - f2;
    }
    double d = t - t2;
    return d / h6;
}

void k_rate(const double* f, const double* gh, const double* S,
            const double* iw, double* out, long nx, long nr, int axis,
            double h, int forward)
{
    double h6 = 6.0 * h;
    long n = nx * nr;
    long gplane = (axis == 1) ? nr : nx;
    for (int vv = 0; vv < 4; vv++) {
        const double* fv = f + (long)vv * n;
        const double* Sv = S ? S + (long)vv * n : NULL;
        double* ov = out + (long)vv * n;
        const double* G1 = gh ? gh + (long)vv * gplane : NULL;
        const double* G2 = gh ? gh + (4 + (long)vv) * gplane : NULL;
        for (long i = 0; i < nx; i++) {
            const double* r0 = fv + i * nr;
            const double* Svr = Sv ? Sv + i * nr : NULL;
            double* ovr = ov + i * nr;
            if (axis == 1) {
                int interior = forward ? (i + 2 < nx) : (i >= 2);
                if (interior) {
                    /* Whole row away from the reached-past boundary: the
                       stencil rows are fixed, the inner loop is
                       branch-free and contiguous. */
                    const double* rA = forward ? r0 + nr : r0 - nr;
                    const double* rB = forward ? r0 + 2 * nr : r0 - 2 * nr;
                    for (long j = 0; j < nr; j++) {
                        double d = rate_tail(r0[j], rA[j], rB[j], forward,
                                             h6);
                        double rr = Svr ? (Svr[j] - d) : (-d);
                        if (iw)
                            rr = rr * iw[j];
                        ovr[j] = rr;
                    }
                } else {
                    /* Last (forward) / first (backward) two rows reach
                       into the ghost planes (or cubic extrapolation). */
                    long e0 = forward ? (nx - 1) * nr : 0;
                    long estep = forward ? -nr : nr;
                    int outermost = forward ? (i == nx - 1) : (i == 0);
                    for (long j = 0; j < nr; j++) {
                        double g1 =
                            G1 ? G1[j]
                               : cubic_g1(fv[e0 + j], fv[e0 + estep + j],
                                          fv[e0 + 2 * estep + j],
                                          fv[e0 + 3 * estep + j]);
                        double f1, f2;
                        if (outermost) {
                            f1 = g1;
                            f2 = G2 ? G2[j]
                                    : cubic_g2(fv[e0 + j],
                                               fv[e0 + estep + j],
                                               fv[e0 + 2 * estep + j],
                                               fv[e0 + 3 * estep + j]);
                        } else {
                            f1 = forward ? r0[nr + j] : r0[j - nr];
                            f2 = g1;
                        }
                        double d = rate_tail(r0[j], f1, f2, forward, h6);
                        double rr = Svr ? (Svr[j] - d) : (-d);
                        if (iw)
                            rr = rr * iw[j];
                        ovr[j] = rr;
                    }
                }
            } else {
                /* Radial sweep: branch-free interior columns, then the
                   two columns that reach past the boundary (their ghost
                   values depend only on the row, so hoist them). */
                long jlo, jhi; /* [jlo, jhi) interior range */
                if (forward) {
                    jlo = 0;
                    jhi = nr - 2;
                } else {
                    jlo = 2;
                    jhi = nr;
                }
                long d1 = forward ? 1 : -1;
                for (long j = jlo; j < jhi; j++) {
                    double d = rate_tail(r0[j], r0[j + d1], r0[j + 2 * d1],
                                         forward, h6);
                    double rr = Svr ? (Svr[j] - d) : (-d);
                    if (iw)
                        rr = rr * iw[j];
                    ovr[j] = rr;
                }
                long e0 = forward ? nr - 1 : 0;
                long estep = forward ? -1 : 1;
                double g1 = G1 ? G1[i]
                               : cubic_g1(r0[e0], r0[e0 + estep],
                                          r0[e0 + 2 * estep],
                                          r0[e0 + 3 * estep]);
                double g2 = G2 ? G2[i]
                               : cubic_g2(r0[e0], r0[e0 + estep],
                                          r0[e0 + 2 * estep],
                                          r0[e0 + 3 * estep]);
                long jn = forward ? nr - 2 : 1; /* next-to-edge column */
                double d = rate_tail(r0[jn], r0[e0], g1, forward, h6);
                double rr = Svr ? (Svr[jn] - d) : (-d);
                if (iw)
                    rr = rr * iw[jn];
                ovr[jn] = rr;
                d = rate_tail(r0[e0], g1, g2, forward, h6);
                rr = Svr ? (Svr[e0] - d) : (-d);
                if (iw)
                    rr = rr * iw[e0];
                ovr[e0] = rr;
            }
        }
    }
}

/* MacCormack predictor combine: rate *= dt (the numpy path mutates the
   rate buffer in place); q_star = q + rate. */
void k_predict(const double* q, double* rate, double dt, double* qs, long n)
{
    for (long i = 0; i < n; i++) {
        double rr = rate[i] * dt;
        rate[i] = rr;
        qs[i] = q[i] + rr;
    }
}

/* MacCormack corrector combine: out = 0.5 * ((q + q_star) + dt*rate). */
void k_correct(const double* q, const double* qs, double* rate, double dt,
               double* out, long n)
{
    for (long i = 0; i < n; i++) {
        double o = q[i] + qs[i];
        double rr = rate[i] * dt;
        rate[i] = rr;
        o = o + rr;
        out[i] = o * 0.5;
    }
}

/* One stencil value q(center + off) along the filter axis, reading this
   variable's ghost planes (g1/g2 per side, each of length plane, possibly
   NULL -> cubic from the unmutated variable plane) past the boundaries. */
static double filter_pt2(const double* qv, long i, long j, long off, long nx,
                         long nr, int axis, const double* lo1,
                         const double* lo2, const double* hi1,
                         const double* hi2)
{
    long m = (axis == 1) ? nx : nr;
    long c = (axis == 1) ? i : j;
    long k = c + off;
    if (k >= 0 && k < m)
        return (axis == 1) ? qv[k * nr + j] : qv[i * nr + k];
    long p = (axis == 1) ? j : i;
    long g = (k < 0) ? (-k - 1) : (k - m); /* 0 = nearest ghost, 1 = next */
    const double* gh = (k < 0) ? (g == 0 ? lo1 : lo2) : (g == 0 ? hi1 : hi2);
    if (gh)
        return gh[p];
    double p0, p1, p2, p3;
    if (axis == 1) {
        if (k < 0) {
            p0 = qv[j];
            p1 = qv[nr + j];
            p2 = qv[2 * nr + j];
            p3 = qv[3 * nr + j];
        } else {
            p0 = qv[(nx - 1) * nr + j];
            p1 = qv[(nx - 2) * nr + j];
            p2 = qv[(nx - 3) * nr + j];
            p3 = qv[(nx - 4) * nr + j];
        }
    } else {
        const double* r0 = qv + i * nr;
        if (k < 0) {
            p0 = r0[0];
            p1 = r0[1];
            p2 = r0[2];
            p3 = r0[3];
        } else {
            p0 = r0[nr - 1];
            p1 = r0[nr - 2];
            p2 = r0[nr - 3];
            p3 = r0[nr - 4];
        }
    }
    return (g == 0) ? cubic_g1(p0, p1, p2, p3) : cubic_g2(p0, p1, p2, p3);
}

/* Conservative fourth-difference filter applied in place to q, mirroring
   the in-place ufunc chain in CompressibleSolver.apply_filter, with the
   ghost extension folded in (lo/hi planes or NULL -> cubic).  Each
   variable runs two passes over a caller-supplied scratch plane — the
   fourth difference is fully evaluated from the unmutated plane before
   any element of it is updated, exactly as the extended-copy path did. */
/* The scaled fourth difference from the five stencil values, matching
   the in-place ufunc chain in apply_filter op for op. */
static double filter_d4(double qm2, double qm1, double q0, double qp1,
                        double qp2, double eps)
{
    double d4 = qm1 * 4.0;
    d4 = qm2 - d4;
    double t = q0 * 6.0;
    d4 = d4 + t;
    t = qp1 * 4.0;
    d4 = d4 - t;
    d4 = d4 + qp2;
    return d4 * eps;
}

void k_filter(double* q, const double* lo, const double* hi, double* d4s,
              double eps, long nx, long nr, int axis)
{
    long n = nx * nr;
    for (int vv = 0; vv < 4; vv++) {
        double* qv = q + (long)vv * n;
        long gplane = (axis == 1) ? nr : nx;
        const double* lov = lo ? lo + (long)vv * gplane : NULL;
        const double* lov2 = lo ? lo + (4 + (long)vv) * gplane : NULL;
        const double* hiv = hi ? hi + (long)vv * gplane : NULL;
        const double* hiv2 = hi ? hi + (4 + (long)vv) * gplane : NULL;
        for (long i = 0; i < nx; i++) {
            const double* c0 = qv + i * nr;
            double* dr = d4s + i * nr;
            if (axis == 1 && i >= 2 && i + 2 < nx) {
                /* Interior row, axial stencil: fixed neighbour rows,
                   branch-free contiguous inner loop. */
                const double* cm2 = c0 - 2 * nr;
                const double* cm1 = c0 - nr;
                const double* cp1 = c0 + nr;
                const double* cp2 = c0 + 2 * nr;
                for (long j = 0; j < nr; j++)
                    dr[j] = filter_d4(cm2[j], cm1[j], c0[j], cp1[j],
                                      cp2[j], eps);
                continue;
            }
            if (axis == 2) {
                /* Radial stencil: branch-free interior columns, then the
                   (up to) four edge columns via the general helper.
                   Duplicate j's on tiny grids just recompute the same
                   value into d4s. */
                for (long j = 2; j + 2 < nr; j++)
                    dr[j] = filter_d4(c0[j - 2], c0[j - 1], c0[j],
                                      c0[j + 1], c0[j + 2], eps);
                long edges[4] = {0, 1, nr - 2, nr - 1};
                for (int e = 0; e < 4; e++) {
                    long j = edges[e];
                    if (j < 0 || j >= nr)
                        continue;
                    dr[j] = filter_d4(
                        filter_pt2(qv, i, j, -2, nx, nr, axis, lov, lov2,
                                   hiv, hiv2),
                        filter_pt2(qv, i, j, -1, nx, nr, axis, lov, lov2,
                                   hiv, hiv2),
                        c0[j],
                        filter_pt2(qv, i, j, 1, nx, nr, axis, lov, lov2,
                                   hiv, hiv2),
                        filter_pt2(qv, i, j, 2, nx, nr, axis, lov, lov2,
                                   hiv, hiv2),
                        eps);
                }
                continue;
            }
            /* Axial stencil, edge row: per-element general helper. */
            for (long j = 0; j < nr; j++)
                dr[j] = filter_d4(
                    filter_pt2(qv, i, j, -2, nx, nr, axis, lov, lov2, hiv,
                               hiv2),
                    filter_pt2(qv, i, j, -1, nx, nr, axis, lov, lov2, hiv,
                               hiv2),
                    c0[j],
                    filter_pt2(qv, i, j, 1, nx, nr, axis, lov, lov2, hiv,
                               hiv2),
                    filter_pt2(qv, i, j, 2, nx, nr, axis, lov, lov2, hiv,
                               hiv2),
                    eps);
        }
        for (long idx = 0; idx < n; idx++)
            qv[idx] = qv[idx] - d4s[idx];
    }
}
"""


def find_compiler() -> str | None:
    """The C compiler to use, or ``None`` when the host has none."""
    cc = os.environ.get(CC_ENV_VAR)
    if cc:
        return cc if shutil.which(cc) else None
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


def _cache_dir() -> str:
    root = os.environ.get(CACHE_ENV_VAR)
    if not root:
        root = os.path.join(
            os.path.expanduser("~"), ".cache", "repro-cc"
        )
    return root


def build_library(cc: str | None = None) -> str:
    """Compile (or reuse) the kernel shared object; returns its path.

    Raises ``RuntimeError`` with the compiler diagnostics on failure; the
    caller (``compiled._resolve_ops``) converts that into
    ``BackendUnavailable``.
    """
    cc = cc or find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler found (cc/gcc/clang; set $REPRO_CC)")
    key = hashlib.sha256(
        ("\x00".join((cc, *CFLAGS)) + SOURCE).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_kernels_{key}.so")
    if os.path.exists(lib_path):
        return lib_path
    os.makedirs(cache, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        src = os.path.join(tmp, "repro_kernels.c")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write(SOURCE)
        out = os.path.join(tmp, "repro_kernels.so")
        proc = subprocess.run(
            [cc, *CFLAGS, src, "-o", out],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{cc} failed ({proc.returncode}): {proc.stderr.strip()}"
            )
        # Atomic publish: concurrent builders (forked ranks racing on a
        # cold cache) each rename their own file onto the same key.
        os.replace(out, lib_path)
    return lib_path


_SIGNATURES = {
    "k_prim": [
        ctypes.c_void_p, ctypes.c_double, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_long,
    ],
    "k_ax_inv": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_long,
    ],
    "k_rad_inv": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_long,
    ],
    "k_visc": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_double,
        ctypes.c_void_p, ctypes.c_double, ctypes.c_long, ctypes.c_long,
        ctypes.c_double, ctypes.c_double, ctypes.c_int,
    ],
    "k_rad_finish": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_long, ctypes.c_long, ctypes.c_int,
    ],
    "k_rate": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_long, ctypes.c_long, ctypes.c_int,
        ctypes.c_double, ctypes.c_int,
    ],
    "k_predict": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_double, ctypes.c_void_p,
        ctypes.c_long,
    ],
    "k_correct": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_double,
        ctypes.c_void_p, ctypes.c_long,
    ],
    "k_filter": [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_double, ctypes.c_long, ctypes.c_long, ctypes.c_int,
    ],
}


def load_library(cc: str | None = None) -> ctypes.CDLL:
    """Build if needed, load, and type the kernel library."""
    lib = ctypes.CDLL(build_library(cc))
    for name, argtypes in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = None
    return lib
