"""Reproduction benchmark: Figure 12: MPL vs PVMe (Euler; IBM SP)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig12(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig12"),
        "Figure 12: MPL vs PVMe (Euler; IBM SP)",
    )
