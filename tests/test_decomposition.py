"""Block decomposition properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.decomposition import (
    AxialDecomposition,
    BlockDecomposition1D,
    RadialDecomposition,
)


class TestBasics:
    def test_single_part_owns_everything(self):
        d = AxialDecomposition(nx=30, nparts=1)
        assert d.bounds(0) == (0, 30)
        assert d.neighbors(0) == (None, None)

    def test_even_split(self):
        d = AxialDecomposition(nx=40, nparts=4)
        assert d.sizes() == [10, 10, 10, 10]

    def test_remainder_goes_to_first_parts(self):
        d = AxialDecomposition(nx=43, nparts=4)
        assert d.sizes() == [11, 11, 11, 10]

    def test_paper_configuration(self):
        """250 columns over 16 processors: near-perfect balance
        (the mechanism behind the paper's Figure 13)."""
        d = AxialDecomposition(nx=250, nparts=16)
        sizes = d.sizes()
        assert max(sizes) - min(sizes) == 1
        assert sum(sizes) == 250

    def test_neighbors(self):
        d = AxialDecomposition(nx=40, nparts=4)
        assert d.neighbors(0) == (None, 1)
        assert d.neighbors(2) == (1, 3)
        assert d.neighbors(3) == (2, None)

    def test_min_block_enforced(self):
        with pytest.raises(ValueError, match="at least"):
            AxialDecomposition(nx=20, nparts=5)

    def test_invalid_part(self):
        d = AxialDecomposition(nx=20, nparts=2)
        with pytest.raises(IndexError):
            d.bounds(2)
        with pytest.raises(IndexError):
            d.bounds(-1)

    def test_local_slice(self):
        d = AxialDecomposition(nx=20, nparts=2)
        assert d.local_slice(1) == slice(10, 20)


class TestProperties:
    @given(n=st.integers(10, 500), nparts=st.integers(1, 16))
    @settings(max_examples=150, deadline=None)
    def test_partition_covers_and_is_disjoint(self, n, nparts):
        if n // nparts < 5:
            return  # rejected configurations tested separately
        d = BlockDecomposition1D(n=n, nparts=nparts)
        covered = []
        for k in range(nparts):
            lo, hi = d.bounds(k)
            assert lo < hi
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    @given(n=st.integers(10, 500), nparts=st.integers(1, 16))
    @settings(max_examples=150, deadline=None)
    def test_balance_within_one(self, n, nparts):
        if n // nparts < 5:
            return
        sizes = BlockDecomposition1D(n=n, nparts=nparts).sizes()
        assert max(sizes) - min(sizes) <= 1

    @given(
        n=st.integers(20, 300),
        nparts=st.integers(1, 8),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_owner_consistent_with_bounds(self, n, nparts, data):
        if n // nparts < 5:
            return
        d = BlockDecomposition1D(n=n, nparts=nparts)
        i = data.draw(st.integers(0, n - 1))
        k = d.owner(i)
        lo, hi = d.bounds(k)
        assert lo <= i < hi


class TestRadialVariant:
    def test_axis_attribute(self):
        assert AxialDecomposition(nx=20, nparts=2).axis == 1
        assert RadialDecomposition(nr=20, nparts=2).axis == 2

    def test_radial_partition(self):
        d = RadialDecomposition(nr=100, nparts=4)
        assert d.sizes() == [25, 25, 25, 25]
        assert d.nr == 100
